// Table II: summary metrics for the variants explored by the three
// delta-debugging campaigns (MPAS-A, ADCIRC, MOM6) on the simulated
// 20-node / 12-hour cluster with 3x-baseline per-variant timeouts.
//
// Each campaign is run twice — serial (jobs=1) and parallel (jobs=4, or
// --jobs when > 1) — and the host wall-clock seconds of both runs plus the
// parallel speedup land in BENCH_parallel_eval.json. The Table II numbers
// come from the serial run; the parallel run must (and is checked to)
// reproduce them bit-identically.
// A chaos leg re-runs the MPAS-A campaign with the write-ahead journal and
// deterministic fault injection on, emulates a mid-campaign crash by
// truncating the journal at half its variant records, resumes from the
// truncated journal, and verifies the resumed search is bit-identical. The
// measured overheads and the recovery ratio land in
// BENCH_chaos_campaigns.json.
// A served leg runs the MPAS-A campaign against an in-process evaluation
// daemon (serve/server.h) twice — once against a cold result store, once
// against the warm store a restarted daemon reloads — and verifies both are
// bit-identical to the local run while the warm pass executes (nearly) no
// evaluations. Evals executed, store-served counts, and wall times land in
// BENCH_served_cache.json.
// A fleet leg runs the MPAS-A campaign against a 3-shard replicated fleet
// (R=2, segmented stores) with one shard hard-killed mid-run, then a warm
// rerun against the two survivors; both must be bit-identical to local and
// the warm pass must be served from the surviving replicas. Wall times,
// failover tallies, and the warm served fraction land in BENCH_fleet.json.
// A metrics leg times every Table II campaign with the observability
// registry off and on (best of 3 interleaved reps), verifies the searches
// are bit-identical either way, and lands the relative overhead in
// BENCH_metrics_overhead.json. Target: <= 2% on the hot path.
// A VM-dispatch leg times every Table II campaign under the reference
// interpreter and the pre-decoded direct-threaded engine (median of paired
// per-rep CPU-time ratios, 5 interleaved reps), verifies the searches are
// bit-identical, and lands the speedup plus superinstruction coverage in
// BENCH_vm_dispatch.json. Target: >= 1.5x host-time speedup.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "models/models.h"
#include "serve/client.h"
#include "serve/server.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "tuner/html_report.h"
#include "tuner/journal.h"

using namespace prose;
using namespace prose::tuner;

namespace {

struct TimedRun {
  CampaignResult result;
  double seconds = 0.0;
};

TimedRun timed_run(const TargetSpec& spec, CampaignOptions options,
                   std::size_t jobs) {
  options.jobs = jobs;
  const auto t0 = std::chrono::steady_clock::now();
  TimedRun run;
  run.result = bench::run_or_die(spec, options);
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return run;
}

/// The determinism contract, spot-checked on the bench path: a parallel run
/// must reproduce the serial SearchResult exactly.
bool same_search(const SearchResult& a, const SearchResult& b) {
  if (a.records.size() != b.records.size()) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (!(a.records[i].config == b.records[i].config)) return false;
    if (a.records[i].eval.speedup != b.records[i].eval.speedup) return false;
    if (a.records[i].eval.outcome != b.records[i].eval.outcome) return false;
  }
  return a.accepted == b.accepted && a.best == b.best &&
         a.best_speedup == b.best_speedup && a.cache_hits == b.cache_hits;
}

struct ParallelEvalRow {
  std::string model;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  bool identical = false;
};

std::string parallel_eval_json(const std::vector<ParallelEvalRow>& rows,
                               std::size_t jobs) {
  std::string out = "{\n";
  out += "  \"parallel_jobs\": " + std::to_string(jobs) + ",\n";
  out += "  \"host_hardware_threads\": " +
         std::to_string(ThreadPool::hardware_workers()) + ",\n";
  out += "  \"campaigns\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    const double speedup =
        r.parallel_seconds > 0.0 ? r.serial_seconds / r.parallel_seconds : 0.0;
    out += "    {\"model\": \"" + r.model + "\", \"serial_seconds\": " +
           format_double(r.serial_seconds, 4) + ", \"parallel_seconds\": " +
           format_double(r.parallel_seconds, 4) + ", \"speedup\": " +
           format_double(speedup, 3) + ", \"identical_results\": " +
           (r.identical ? "true" : "false") + "}";
    out += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

/// Copies the journal at `path` to `out`, keeping the header and only the
/// first `keep_variants` variant records — the byte pattern a SIGKILL
/// mid-campaign leaves behind (modulo the batch markers, which resume
/// ignores).
std::size_t truncate_journal(const std::string& path, const std::string& out,
                             std::size_t keep_variants) {
  std::ifstream in(path);
  std::ofstream trimmed(out, std::ios::out | std::ios::trunc);
  std::string line;
  std::size_t kept = 0;
  while (std::getline(in, line)) {
    const bool is_variant = line.find("\"type\":\"variant\"") != std::string::npos;
    if (is_variant && kept >= keep_variants) break;
    trimmed << line << '\n';
    if (is_variant) ++kept;
  }
  return kept;
}

}  // namespace

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::from_args(argc, argv);
  bench::header("Table II — summary metrics for variants explored");

  struct PaperRow {
    const char* model;
    const char* total;
    const char* pass;
    const char* fail;
    const char* timeout;
    const char* error;
    const char* speedup;
  };
  const PaperRow paper[] = {
      {"MPAS-A", "48", "37.5%", "56.2%", "6.3%", "0%", "1.95x"},
      {"ADCIRC", "74", "36.4%", "33.8%", "0%", "29.7%", "1.12x"},
      {"MOM6", "858", "17.2%", "31.0%", "0%", "51.7%", "1.04x"},
  };

  TextTable table({"Model", "Total", "Pass", "Fail", "Timeout", "Error", "Speedup"});
  CsvWriter csv;
  csv.add_row({"model", "total", "pass_pct", "fail_pct", "timeout_pct", "error_pct",
               "best_speedup", "finished", "wall_hours"});

  // Host worker threads for the parallel leg of each campaign (the serial
  // leg always runs jobs=1). Results are bit-identical either way.
  const std::size_t parallel_jobs = io.jobs > 1 ? io.jobs : 4;
  std::vector<ParallelEvalRow> timing;

  std::vector<TargetSpec> specs = {models::mpas_target(), models::adcirc_target(),
                                   models::mom6_target()};
  std::vector<CampaignSummary> summaries;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    std::cout << "running " << specs[i].name << " campaign (serial, then jobs="
              << parallel_jobs << ")...\n";
    CampaignOptions options;
    options.trace = io.trace_options(specs[i].name);
    options.diagnose = io.diagnose;
    const auto serial = timed_run(specs[i], options, 1);
    // Time the parallel leg without tracing so it measures evaluation alone.
    const auto parallel = timed_run(specs[i], CampaignOptions{}, parallel_jobs);
    timing.push_back({specs[i].name, serial.seconds, parallel.seconds,
                      same_search(serial.result.search, parallel.result.search)});
    const auto& result = serial.result;
    const CampaignSummary& s = result.summary;
    summaries.push_back(s);
    table.add_row({"paper " + std::string(paper[i].model), paper[i].total,
                   paper[i].pass, paper[i].fail, paper[i].timeout, paper[i].error,
                   paper[i].speedup});
    table.add_row(table2_row(s));
    csv.add_row({s.model, std::to_string(s.total), format_double(s.pass_pct, 1),
                 format_double(s.fail_pct, 1), format_double(s.timeout_pct, 1),
                 format_double(s.error_pct, 1), format_double(s.best_speedup, 3),
                 s.finished ? "yes" : "no", format_double(s.wall_hours, 2)});
    std::cout << final_variant_report(result);
    if (io.diagnose) {
      std::cout << diagnosis_report(result);
      io.write_file("json", "diagnosis_" + s.model + ".json",
                    diagnosis_json(s.model, result.diagnosis));
      io.write_html("diagnosis_" + s.model + ".html",
                    diagnosis_html(s.model + " diagnosis", result.diagnosis));
    }
    std::cout << "  simulated wall time: " << format_double(s.wall_hours, 1)
              << " h (12 h budget); search "
              << (s.finished ? "reached 1-minimality" : "was cut off") << "\n\n";
  }

  // The paper's MOM6 search did not finish its 12 hours at 351 atoms; our
  // 33-atom mini needs ~7 h and finishes. Re-running with a reduced wall
  // budget demonstrates the same cutoff behavior — a search interrupted
  // mid-flight before reaching 1-minimality.
  {
    CampaignOptions scaled;
    scaled.cluster.wall_budget_seconds = 5.0 * 3600.0;
    scaled.trace = io.trace_options("MOM6-5h");
    std::cout << "running MOM6 campaign at a reduced (5 h) budget...\n";
    const auto serial = timed_run(models::mom6_target(), scaled, 1);
    CampaignOptions scaled_parallel;
    scaled_parallel.cluster.wall_budget_seconds = 5.0 * 3600.0;
    const auto parallel =
        timed_run(models::mom6_target(), scaled_parallel, parallel_jobs);
    timing.push_back({"MOM6-5h", serial.seconds, parallel.seconds,
                      same_search(serial.result.search, parallel.result.search)});
    const auto& result = serial.result;
    CampaignSummary s = result.summary;
    s.model = "MOM6 (5h budget)";
    table.add_row(table2_row(s));
    csv.add_row({s.model, std::to_string(s.total), format_double(s.pass_pct, 1),
                 format_double(s.fail_pct, 1), format_double(s.timeout_pct, 1),
                 format_double(s.error_pct, 1), format_double(s.best_speedup, 3),
                 s.finished ? "yes" : "no", format_double(s.wall_hours, 2)});
    std::cout << "  search " << (s.finished ? "finished" : "was cut off mid-flight")
              << " after " << format_double(s.wall_hours, 2) << " h ("
              << s.total << " variants) — the paper's MOM6 outcome\n\n";
  }

  std::cout << table.to_string();
  io.write_csv("table2_campaigns.csv", csv.str());
  io.write_file("json", "BENCH_parallel_eval.json",
                parallel_eval_json(timing, parallel_jobs));
  for (const auto& r : timing) {
    const double speedup =
        r.parallel_seconds > 0.0 ? r.serial_seconds / r.parallel_seconds : 0.0;
    std::cout << "  parallel eval " << pad_right(r.model, 10) << " serial "
              << format_double(r.serial_seconds, 2) << " s -> jobs="
              << parallel_jobs << " " << format_double(r.parallel_seconds, 2)
              << " s (" << format_double(speedup, 2) << "x, results "
              << (r.identical ? "identical" : "DIVERGED") << ")\n";
  }

  // --- Chaos leg: journaling + fault-injection overhead and crash recovery.
  // The MPAS-A campaign is run (a) bare, (b) with the write-ahead journal,
  // (c) with journal + injected faults; then the journal from (c) is
  // truncated at half its variant records — the state a SIGKILL would have
  // left — and the campaign resumed from it. The resumed search must be
  // bit-identical to (c)'s.
  {
    bench::header("Chaos — journaling / fault-injection overhead and recovery");
    const TargetSpec spec = models::mpas_target();
    const std::string journal_path = io.outdir + "/chaos_mpas.journal.jsonl";
    const std::string cut_path = io.outdir + "/chaos_mpas.journal.cut.jsonl";
    const char* kFaults =
        "compile:p=0.02;transient:p=0.05;straggler:p=0.03,slow=4x;"
        "node_crash:node=7,at=3600s";

    std::cout << "running MPAS-A bare / journaled / faulted / resumed...\n";
    const auto base = timed_run(spec, CampaignOptions{}, 1);

    CampaignOptions journaled;
    journaled.journal_path = journal_path;
    const auto with_journal = timed_run(spec, journaled, 1);

    CampaignOptions faulted = journaled;
    faulted.fault_spec = kFaults;
    const auto with_faults = timed_run(spec, faulted, 1);

    const auto loaded = tuner::Journal::load(journal_path);
    const std::size_t total_variants =
        loaded.is_ok() ? loaded.value().variants.size() : 0;
    // Crash emulation: keep half of the faulted run's journal, then resume
    // from the cut copy with identical options.
    truncate_journal(journal_path, cut_path, total_variants / 2);
    CampaignOptions resumed_opts = faulted;
    resumed_opts.journal_path = cut_path;
    resumed_opts.resume = true;
    const auto resumed = timed_run(spec, resumed_opts, 1);

    const bool identical =
        same_search(with_faults.result.search, resumed.result.search) &&
        with_faults.result.final_kinds == resumed.result.final_kinds;
    const double journal_overhead =
        base.seconds > 0.0 ? with_journal.seconds / base.seconds : 0.0;
    const double faults_overhead =
        base.seconds > 0.0 ? with_faults.seconds / base.seconds : 0.0;
    const double recovery_ratio =
        with_faults.result.search.records.size() > 0
            ? static_cast<double>(resumed.result.replayed_from_journal) /
                  static_cast<double>(with_faults.result.search.records.size())
            : 0.0;

    std::string json = "{\n";
    json += "  \"model\": \"" + spec.name + "\",\n";
    json += "  \"fault_spec\": \"" + std::string(kFaults) + "\",\n";
    json += "  \"base_seconds\": " + format_double(base.seconds, 4) + ",\n";
    json += "  \"journal_seconds\": " + format_double(with_journal.seconds, 4) + ",\n";
    json += "  \"journal_overhead\": " + format_double(journal_overhead, 3) + ",\n";
    json += "  \"faults_seconds\": " + format_double(with_faults.seconds, 4) + ",\n";
    json += "  \"faults_overhead\": " + format_double(faults_overhead, 3) + ",\n";
    json += "  \"journaled_variants\": " + std::to_string(total_variants) + ",\n";
    json += "  \"lost_pct\": " +
            format_double(with_faults.result.summary.lost_pct, 2) + ",\n";
    json += "  \"resume_seconds\": " + format_double(resumed.seconds, 4) + ",\n";
    json += "  \"replayed_from_journal\": " +
            std::to_string(resumed.result.replayed_from_journal) + ",\n";
    json += "  \"recovery_ratio\": " + format_double(recovery_ratio, 3) + ",\n";
    json += std::string("  \"identical_after_resume\": ") +
            (identical ? "true" : "false") + "\n";
    json += "}\n";
    io.write_file("json", "BENCH_chaos_campaigns.json", json);

    std::cout << "  journal overhead " << format_double(journal_overhead, 2)
              << "x, faults overhead " << format_double(faults_overhead, 2)
              << "x, recovery " << format_double(100.0 * recovery_ratio, 1)
              << "% replayed, resume "
              << (identical ? "bit-identical" : "DIVERGED") << "\n";
  }

  // --- Served leg: tuning-as-a-service, cold store vs warm store.
  // The same MPAS-A campaign offloaded to an in-process daemon: the cold
  // pass executes every variant and persists it; a *restarted* daemon over
  // the same store then serves the warm pass from disk. Both passes must be
  // bit-identical to the local run.
  {
    bench::header("Served — evaluation daemon, cold vs warm result store");
    const TargetSpec spec = models::mpas_target();
    // Unix socket paths are length-limited (~107 bytes), so the socket goes
    // under /tmp rather than the (possibly deep) outdir.
    const std::string sock =
        "/tmp/prose_bench_served_" + std::to_string(::getpid()) + ".sock";
    const std::string store = io.outdir + "/bench_served.store.jsonl";
    std::remove(store.c_str());

    const auto resolver =
        [](const std::string& model) -> StatusOr<TargetSpec> {
      if (model == "MPAS-A") return models::mpas_target();
      return Status(StatusCode::kNotFound, "unknown model '" + model + "'");
    };

    std::cout << "running MPAS-A local / served-cold / served-warm...\n";
    const auto local = timed_run(spec, CampaignOptions{}, 1);

    struct ServedLeg {
      TimedRun run;
      serve::ServerStats stats;
    };
    const auto served_leg = [&]() -> ServedLeg {
      serve::ServerOptions sopts;
      sopts.endpoint = sock;
      sopts.store_path = store;
      sopts.jobs = 4;
      serve::Server server(sopts, resolver);
      if (Status s = server.start(); !s.is_ok()) {
        std::cerr << "serve: " << s.to_string() << "\n";
        std::exit(1);
      }
      serve::ServeClient::Options copts;
      copts.endpoint = sock;
      copts.model = spec.name;
      copts.target_digest = serve::target_digest(spec);
      auto client = serve::ServeClient::connect(copts);
      if (!client.is_ok()) {
        std::cerr << "serve: " << client.status().to_string() << "\n";
        std::exit(1);
      }
      CampaignOptions options;
      options.backend = client.value().get();
      options.jobs = 1;
      const auto t0 = std::chrono::steady_clock::now();
      ServedLeg leg;
      leg.run.result = bench::run_or_die(spec, options);
      leg.run.seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      leg.stats = server.stats();
      server.shutdown();
      server.wait();
      return leg;
    };
    const ServedLeg cold = served_leg();
    const ServedLeg warm = served_leg();  // fresh daemon, same store file

    const bool cold_identical =
        same_search(local.result.search, cold.run.result.search);
    const bool warm_identical =
        same_search(local.result.search, warm.run.result.search);
    const double warm_served_fraction =
        warm.stats.requests > 0
            ? static_cast<double>(warm.stats.store_hits) /
                  static_cast<double>(warm.stats.requests)
            : 0.0;

    std::string json = "{\n";
    json += "  \"model\": \"" + spec.name + "\",\n";
    json += "  \"local_seconds\": " + format_double(local.seconds, 4) + ",\n";
    json += "  \"cold\": {\"wall_seconds\": " +
            format_double(cold.run.seconds, 4) +
            ", \"requests\": " + std::to_string(cold.stats.requests) +
            ", \"evals_executed\": " +
            std::to_string(cold.stats.evals_executed) +
            ", \"store_served\": " + std::to_string(cold.stats.store_hits) +
            ", \"identical_to_local\": " +
            (cold_identical ? "true" : "false") + "},\n";
    json += "  \"warm\": {\"wall_seconds\": " +
            format_double(warm.run.seconds, 4) +
            ", \"requests\": " + std::to_string(warm.stats.requests) +
            ", \"evals_executed\": " +
            std::to_string(warm.stats.evals_executed) +
            ", \"store_served\": " + std::to_string(warm.stats.store_hits) +
            ", \"identical_to_local\": " +
            (warm_identical ? "true" : "false") + "},\n";
    json += "  \"warm_served_fraction\": " +
            format_double(warm_served_fraction, 4) + ",\n";
    json += "  \"store_records\": " + std::to_string(warm.stats.store_records) +
            "\n";
    json += "}\n";
    io.write_file("json", "BENCH_served_cache.json", json);

    std::cout << "  cold: " << cold.stats.evals_executed << " evals executed, "
              << format_double(cold.run.seconds, 2) << " s ("
              << (cold_identical ? "identical" : "DIVERGED") << ")\n"
              << "  warm: " << warm.stats.evals_executed
              << " evals executed, " << warm.stats.store_hits
              << " store-served, " << format_double(warm.run.seconds, 2)
              << " s (" << (warm_identical ? "identical" : "DIVERGED")
              << ", " << format_double(100.0 * warm_served_fraction, 1)
              << "% served)\n";
  }

  // --- Fleet leg: sharded, replicated serving under a mid-run SIGKILL.
  // The MPAS-A campaign runs against a 3-shard fleet (replication R=2,
  // segmented stores); one shard is hard-killed as soon as it has served
  // real work. The search must stay bit-identical to the local run, and a
  // warm rerun against the two survivors must be served from their replicas
  // without executing anything.
  {
    bench::header("Fleet — 3 shards, one killed mid-run, warm failover rerun");
    const TargetSpec spec = models::mpas_target();
    const auto resolver =
        [](const std::string& model) -> StatusOr<TargetSpec> {
      if (model == "MPAS-A") return models::mpas_target();
      return Status(StatusCode::kNotFound, "unknown model '" + model + "'");
    };
    const std::string base =
        "/tmp/prose_bench_fleet_" + std::to_string(::getpid());
    std::vector<std::string> endpoints, stores;
    for (int i = 0; i < 3; ++i) {
      endpoints.push_back(base + "_" + std::to_string(i) + ".sock");
      stores.push_back(io.outdir + "/bench_fleet_store" + std::to_string(i));
    }
    const auto make_shard = [&](std::size_t i) {
      serve::ServerOptions sopts;
      sopts.endpoint = endpoints[i];
      sopts.store_path = stores[i];
      sopts.store_dir = true;
      sopts.peers = endpoints;
      sopts.replicate = 2;
      sopts.jobs = 2;
      auto server = std::make_unique<serve::Server>(sopts, resolver);
      if (Status s = server->start(); !s.is_ok()) {
        std::cerr << "fleet: " << s.to_string() << "\n";
        std::exit(1);
      }
      return server;
    };
    const auto fleet_run = [&](std::vector<std::unique_ptr<serve::Server>>&
                                   shards,
                               bool kill_one) {
      serve::ServeClient::Options copts;
      copts.endpoints = endpoints;
      copts.model = spec.name;
      copts.target_digest = serve::target_digest(spec);
      copts.connect_timeout_seconds = 2.0;
      auto client = serve::ServeClient::connect(copts);
      if (!client.is_ok()) {
        std::cerr << "fleet: " << client.status().to_string() << "\n";
        std::exit(1);
      }
      std::atomic<bool> stop{false};
      std::thread killer([&] {
        while (kill_one && !stop.load()) {
          if (shards[2] != nullptr && shards[2]->stats().requests >= 2) {
            shards[2]->hard_kill();
            return;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
      CampaignOptions options;
      options.backend = client.value().get();
      options.jobs = 1;
      const auto t0 = std::chrono::steady_clock::now();
      TimedRun run;
      run.result = bench::run_or_die(spec, options);
      run.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
      stop.store(true);
      killer.join();
      return std::make_pair(std::move(run), client.value()->counters());
    };

    std::cout << "running MPAS-A local / fleet-cold (one shard killed) / "
                 "fleet-warm (two survivors)...\n";
    const auto local = timed_run(spec, CampaignOptions{}, 1);

    std::vector<std::unique_ptr<serve::Server>> shards;
    for (std::size_t i = 0; i < 3; ++i) shards.push_back(make_shard(i));
    auto [cold_run, cold_counters] = fleet_run(shards, /*kill_one=*/true);
    shards[2]->hard_kill();  // in case the killer never saw enough traffic
    std::uint64_t cold_evals = 0;
    for (const auto& s : shards) cold_evals += s->stats().evals_executed;
    for (auto& s : shards) {
      s->shutdown();
      s->wait();
    }

    // Warm rerun: only the survivors restart (slot 2 stays dead); every
    // result must come from their stores, R=2 guarantees coverage.
    shards.clear();
    shards.push_back(make_shard(0));
    shards.push_back(make_shard(1));
    shards.push_back(nullptr);
    auto [warm_run, warm_counters] = fleet_run(shards, /*kill_one=*/false);
    std::uint64_t warm_evals = 0, warm_hits = 0, warm_requests = 0;
    for (const auto& s : shards) {
      if (s == nullptr) continue;
      warm_evals += s->stats().evals_executed;
      warm_hits += s->stats().store_hits;
      warm_requests += s->stats().requests;
    }
    for (auto& s : shards) {
      if (s == nullptr) continue;
      s->shutdown();
      s->wait();
    }

    const bool cold_identical =
        same_search(local.result.search, cold_run.result.search);
    const bool warm_identical =
        same_search(local.result.search, warm_run.result.search);
    const double warm_served_fraction =
        warm_requests > 0 ? static_cast<double>(warm_hits) /
                                static_cast<double>(warm_requests)
                          : 0.0;

    std::string json = "{\n";
    json += "  \"model\": \"" + spec.name + "\",\n";
    json += "  \"shards\": 3,\n  \"replicate\": 2,\n";
    json += "  \"local_seconds\": " + format_double(local.seconds, 4) + ",\n";
    json += "  \"cold\": {\"wall_seconds\": " +
            format_double(cold_run.seconds, 4) +
            ", \"evals_executed\": " + std::to_string(cold_evals) +
            ", \"failovers\": " + std::to_string(cold_counters.failovers) +
            ", \"shards_lost\": " + std::to_string(cold_counters.shards_lost) +
            ", \"identical_to_local\": " +
            (cold_identical ? "true" : "false") + "},\n";
    json += "  \"warm\": {\"wall_seconds\": " +
            format_double(warm_run.seconds, 4) +
            ", \"evals_executed\": " + std::to_string(warm_evals) +
            ", \"store_served\": " + std::to_string(warm_hits) +
            ", \"identical_to_local\": " +
            (warm_identical ? "true" : "false") + "},\n";
    json += "  \"warm_served_fraction\": " +
            format_double(warm_served_fraction, 4) + "\n";
    json += "}\n";
    io.write_file("json", "BENCH_fleet.json", json);

    std::cout << "  cold (shard 2 killed mid-run): "
              << format_double(cold_run.seconds, 2) << " s, "
              << cold_counters.shards_lost << " shard lost, "
              << cold_counters.failovers << " failovers ("
              << (cold_identical ? "identical" : "DIVERGED") << ")\n"
              << "  warm (2 survivors): " << warm_evals
              << " evals executed, " << warm_hits << " store-served, "
              << format_double(warm_run.seconds, 2) << " s ("
              << (warm_identical ? "identical" : "DIVERGED") << ", "
              << format_double(100.0 * warm_served_fraction, 1)
              << "% served)\n";
  }

  // --- Metrics leg: observability overhead on the evaluation hot path.
  // Each Table II campaign runs with the metrics registry disabled and
  // enabled, interleaved off/on for 5 reps. The legs are serial (jobs=1),
  // so process CPU time — not wall-clock, which scheduler preemption on a
  // shared host perturbs by far more than the 2% being resolved — is the
  // timing; the overhead estimator is the *median of the paired per-rep
  // ratios*, so a slow ambient drift cancels inside each off/on pair and a
  // perturbed rep cannot drag the estimate. The searches must be
  // bit-identical: the registry observes the clock, it never feeds the
  // computation.
  {
    bench::header("Metrics — registry overhead, on vs off");
    constexpr int kReps = 5;
    const auto cpu_now = []() {
      struct timespec ts{};
      ::clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
      return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
    };
    struct OverheadRow {
      std::string model;
      double off_seconds = 0.0;  // fastest rep per side
      double on_seconds = 0.0;
      double overhead = 0.0;  // median(on_i / off_i) - 1
      std::size_t series = 0;
      bool identical = false;
    };
    std::vector<OverheadRow> rows;
    std::cout << "running MPAS-A / ADCIRC / MOM6 with metrics off and on ("
              << kReps << " interleaved reps each, CPU time)...\n";
    for (const auto& spec : specs) {
      OverheadRow row;
      row.model = spec.name;
      CampaignResult off_result, on_result;
      std::vector<double> ratios;
      for (int rep = 0; rep < kReps; ++rep) {
        CampaignOptions off_opts;
        off_opts.metrics = false;
        double t0 = cpu_now();
        off_result = bench::run_or_die(spec, off_opts);
        const double off_cpu = cpu_now() - t0;
        CampaignOptions on_opts;
        on_opts.metrics = true;
        t0 = cpu_now();
        on_result = bench::run_or_die(spec, on_opts);
        const double on_cpu = cpu_now() - t0;
        if (rep == 0 || off_cpu < row.off_seconds) row.off_seconds = off_cpu;
        if (rep == 0 || on_cpu < row.on_seconds) row.on_seconds = on_cpu;
        if (off_cpu > 0.0) ratios.push_back(on_cpu / off_cpu);
      }
      std::sort(ratios.begin(), ratios.end());
      row.overhead = ratios.empty() ? 0.0 : ratios[ratios.size() / 2] - 1.0;
      row.series = on_result.summary.metrics.series.size();
      row.identical = same_search(off_result.search, on_result.search);
      rows.push_back(row);
    }

    double off_total = 0.0, weighted = 0.0;
    bool all_identical = true;
    std::string json = "{\n  \"reps\": " + std::to_string(kReps) +
                       ",\n  \"campaigns\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      off_total += r.off_seconds;
      weighted += r.off_seconds * r.overhead;
      all_identical = all_identical && r.identical;
      json += "    {\"model\": \"" + r.model + "\", \"off_cpu_seconds\": " +
              format_double(r.off_seconds, 4) + ", \"on_cpu_seconds\": " +
              format_double(r.on_seconds, 4) + ", \"overhead\": " +
              format_double(r.overhead, 4) + ", \"series\": " +
              std::to_string(r.series) + ", \"identical_results\": " +
              (r.identical ? "true" : "false") + "}";
      json += (i + 1 < rows.size()) ? ",\n" : "\n";
      std::cout << "  " << pad_right(r.model, 10) << " off "
                << format_double(r.off_seconds, 3) << " s -> on "
                << format_double(r.on_seconds, 3) << " s ("
                << format_double(100.0 * r.overhead, 2) << "% overhead, "
                << r.series << " series, results "
                << (r.identical ? "identical" : "DIVERGED") << ")\n";
    }
    // Campaign-weighted mean of the per-model median overheads.
    const double total_overhead = off_total > 0.0 ? weighted / off_total : 0.0;
    json += "  ],\n  \"total_off_cpu_seconds\": " + format_double(off_total, 4) +
            ",\n  \"total_overhead\": " + format_double(total_overhead, 4) +
            ",\n  \"overhead_target\": 0.02,\n  \"identical_results\": " +
            (all_identical ? "true" : "false") + "\n}\n";
    io.write_file("json", "BENCH_metrics_overhead.json", json);
    std::cout << "  total overhead " << format_double(100.0 * total_overhead, 2)
              << "% (target <= 2%), results "
              << (all_identical ? "bit-identical" : "DIVERGED") << "\n";
  }

  // --- Trace leg: distributed-tracing overhead on a fleet campaign.
  // The MPAS-A campaign runs against a fresh in-process 3-shard fleet
  // (memory-only stores, so every rep evaluates cold) untraced and fully
  // traced — client sink, one sink per shard, a context on every wire
  // frame — interleaved off/on for 5 reps. Same estimator discipline as
  // the metrics leg: serial client, process CPU time (client and shards
  // share the process, so this is the whole fleet's CPU), overhead =
  // median of the paired per-rep ratios. The searches must be
  // bit-identical: tracing observes, it never feeds back.
  {
    bench::header("Tracing — fleet campaign, traced vs untraced");
    constexpr int kReps = 5;
    const auto cpu_now = []() {
      struct timespec ts{};
      ::clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
      return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
    };
    const TargetSpec spec = models::mpas_target();
    const auto resolver =
        [](const std::string& model) -> StatusOr<TargetSpec> {
      if (model == "MPAS-A") return models::mpas_target();
      return Status(StatusCode::kNotFound, "unknown model '" + model + "'");
    };
    const std::string base =
        "/tmp/prose_bench_trace_" + std::to_string(::getpid());
    std::vector<std::string> endpoints;
    for (int i = 0; i < 3; ++i) {
      endpoints.push_back(base + "_" + std::to_string(i) + ".sock");
    }
    const auto run_fleet = [&](bool traced) {
      std::vector<std::unique_ptr<serve::Server>> shards;
      for (std::size_t i = 0; i < endpoints.size(); ++i) {
        serve::ServerOptions sopts;
        sopts.endpoint = endpoints[i];
        sopts.peers = endpoints;
        sopts.replicate = 2;
        sopts.jobs = 2;
        if (traced) {
          sopts.trace.chrome_path =
              io.outdir + "/bench_trace_shard" + std::to_string(i) + ".json";
        }
        auto server = std::make_unique<serve::Server>(sopts, resolver);
        if (Status s = server->start(); !s.is_ok()) {
          std::cerr << "trace bench: " << s.to_string() << "\n";
          std::exit(1);
        }
        shards.push_back(std::move(server));
      }
      serve::ServeClient::Options copts;
      copts.endpoints = endpoints;
      copts.model = spec.name;
      copts.target_digest = serve::target_digest(spec);
      copts.connect_timeout_seconds = 2.0;
      auto client = serve::ServeClient::connect(copts);
      if (!client.is_ok()) {
        std::cerr << "trace bench: " << client.status().to_string() << "\n";
        std::exit(1);
      }
      CampaignOptions options;
      options.backend = client.value().get();
      options.jobs = 1;
      if (traced) {
        options.trace.chrome_path = io.outdir + "/bench_trace_client.json";
      }
      const double t0 = cpu_now();
      CampaignResult result = bench::run_or_die(spec, options);
      const double cpu = cpu_now() - t0;
      for (auto& s : shards) {
        s->shutdown();
        s->wait();
      }
      return std::make_pair(std::move(result), cpu);
    };

    std::cout << "running MPAS-A against a 3-shard fleet untraced and traced ("
              << kReps << " interleaved reps each, CPU time)...\n";
    double off_best = 0.0, on_best = 0.0;
    std::vector<double> ratios;
    CampaignResult off_result, on_result;
    for (int rep = 0; rep < kReps; ++rep) {
      auto [off_r, off_cpu] = run_fleet(/*traced=*/false);
      auto [on_r, on_cpu] = run_fleet(/*traced=*/true);
      off_result = std::move(off_r);
      on_result = std::move(on_r);
      if (rep == 0 || off_cpu < off_best) off_best = off_cpu;
      if (rep == 0 || on_cpu < on_best) on_best = on_cpu;
      if (off_cpu > 0.0) ratios.push_back(on_cpu / off_cpu);
    }
    std::sort(ratios.begin(), ratios.end());
    const double overhead = ratios.empty() ? 0.0 : ratios[ratios.size() / 2] - 1.0;
    const bool identical = same_search(off_result.search, on_result.search);

    std::string json = "{\n  \"model\": \"" + spec.name +
                       "\",\n  \"shards\": 3,\n  \"replicate\": 2,\n  \"reps\": " +
                       std::to_string(kReps) + ",\n  \"untraced_cpu_seconds\": " +
                       format_double(off_best, 4) + ",\n  \"traced_cpu_seconds\": " +
                       format_double(on_best, 4) + ",\n  \"overhead\": " +
                       format_double(overhead, 4) +
                       ",\n  \"overhead_target\": 0.05,\n  \"identical_results\": " +
                       (identical ? "true" : "false") + "\n}\n";
    io.write_file("json", "BENCH_trace_overhead.json", json);
    std::cout << "  untraced " << format_double(off_best, 3) << " s -> traced "
              << format_double(on_best, 3) << " s ("
              << format_double(100.0 * overhead, 2)
              << "% overhead, target <= 5%), results "
              << (identical ? "bit-identical" : "DIVERGED") << "\n";
  }

  // --- VM dispatch leg: interpreter vs pre-decoded direct-threaded engine.
  // Each Table II campaign runs under the reference interpreter and the
  // threaded (computed-goto, superinstruction-fused) engine, interleaved
  // for 5 reps. Same estimator discipline as the metrics leg: serial legs,
  // process CPU time, and the speedup is the *median of the paired per-rep
  // ratios*. The searches must be bit-identical — the engines differ in
  // host time only, never in anything the campaign measures.
  {
    bench::header("VM dispatch — interpreter vs direct-threaded engine");
    constexpr int kReps = 5;
    const auto cpu_now = []() {
      struct timespec ts{};
      ::clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
      return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
    };
    struct DispatchRow {
      std::string model;
      double interp_seconds = 0.0;    // fastest rep per engine
      double threaded_seconds = 0.0;
      double speedup = 0.0;           // median(interp_i / threaded_i)
      double fused_covered_fraction = 0.0;  // instructions inside fused pairs
      std::uint64_t instructions = 0;
      bool identical = false;
    };
    std::vector<DispatchRow> rows;
    std::cout << "running MPAS-A / ADCIRC / MOM6 under interp and threaded "
              << "dispatch (" << kReps << " interleaved reps each, CPU time; "
              << "threaded engine "
              << (sim::Vm::threaded_available() ? "available" : "UNAVAILABLE — switch fallback")
              << ")...\n";
    for (const auto& spec : specs) {
      DispatchRow row;
      row.model = spec.name;
      CampaignResult interp_result, threaded_result;
      std::vector<double> ratios;
      for (int rep = 0; rep < kReps; ++rep) {
        CampaignOptions interp_opts;
        interp_opts.vm_dispatch = sim::VmDispatch::kInterpret;
        double t0 = cpu_now();
        interp_result = bench::run_or_die(spec, interp_opts);
        const double interp_cpu = cpu_now() - t0;
        CampaignOptions threaded_opts;
        threaded_opts.vm_dispatch = sim::VmDispatch::kThreaded;
        t0 = cpu_now();
        threaded_result = bench::run_or_die(spec, threaded_opts);
        const double threaded_cpu = cpu_now() - t0;
        if (rep == 0 || interp_cpu < row.interp_seconds) row.interp_seconds = interp_cpu;
        if (rep == 0 || threaded_cpu < row.threaded_seconds) {
          row.threaded_seconds = threaded_cpu;
        }
        if (threaded_cpu > 0.0) ratios.push_back(interp_cpu / threaded_cpu);
      }
      std::sort(ratios.begin(), ratios.end());
      row.speedup = ratios.empty() ? 0.0 : ratios[ratios.size() / 2];
      row.instructions = threaded_result.vm_exec.instructions;
      row.fused_covered_fraction =
          row.instructions > 0
              ? static_cast<double>(threaded_result.vm_exec.fused_covered) /
                    static_cast<double>(row.instructions)
              : 0.0;
      row.identical = same_search(interp_result.search, threaded_result.search);
      rows.push_back(row);
    }

    double interp_total = 0.0, weighted = 0.0;
    bool all_identical = true;
    std::string json = "{\n  \"reps\": " + std::to_string(kReps) +
                       ",\n  \"threaded_available\": " +
                       (sim::Vm::threaded_available() ? "true" : "false") +
                       ",\n  \"campaigns\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      interp_total += r.interp_seconds;
      weighted += r.interp_seconds * r.speedup;
      all_identical = all_identical && r.identical;
      json += "    {\"model\": \"" + r.model + "\", \"interp_cpu_seconds\": " +
              format_double(r.interp_seconds, 4) + ", \"threaded_cpu_seconds\": " +
              format_double(r.threaded_seconds, 4) + ", \"speedup\": " +
              format_double(r.speedup, 3) + ", \"instructions\": " +
              std::to_string(r.instructions) + ", \"fused_covered_fraction\": " +
              format_double(r.fused_covered_fraction, 4) +
              ", \"identical_results\": " + (r.identical ? "true" : "false") + "}";
      json += (i + 1 < rows.size()) ? ",\n" : "\n";
      std::cout << "  " << pad_right(r.model, 10) << " interp "
                << format_double(r.interp_seconds, 3) << " s -> threaded "
                << format_double(r.threaded_seconds, 3) << " s ("
                << format_double(r.speedup, 2) << "x, fusion covers "
                << format_double(100.0 * r.fused_covered_fraction, 1)
                << "% of instructions, results "
                << (r.identical ? "identical" : "DIVERGED") << ")\n";
    }
    // Campaign-weighted mean of the per-model median-of-ratio speedups.
    const double total_speedup = interp_total > 0.0 ? weighted / interp_total : 0.0;
    json += "  ],\n  \"total_interp_cpu_seconds\": " +
            format_double(interp_total, 4) +
            ",\n  \"total_speedup\": " + format_double(total_speedup, 3) +
            ",\n  \"speedup_target\": 1.5,\n  \"identical_results\": " +
            (all_identical ? "true" : "false") + "\n}\n";
    io.write_file("json", "BENCH_vm_dispatch.json", json);
    std::cout << "  total speedup " << format_double(total_speedup, 2)
              << "x (target >= 1.5x), results "
              << (all_identical ? "bit-identical" : "DIVERGED") << "\n";
  }

  bench::header("Table II recap (shape checks)");
  bench::recap("MPAS-A best speedup", "1.95x",
               format_double(summaries[0].best_speedup, 2) + "x");
  bench::recap("ADCIRC best speedup", "1.12x",
               format_double(summaries[1].best_speedup, 2) + "x");
  bench::recap("MOM6 best speedup", "1.04x (negligible)",
               format_double(summaries[2].best_speedup, 2) + "x");
  bench::recap("MPAS-A runtime errors", "0%",
               format_double(summaries[0].error_pct, 1) + "%");
  bench::recap("ADCIRC has all three outcome classes", "yes",
               (summaries[1].fail_pct > 0 && summaries[1].error_pct > 0 ? "yes" : "NO"));
  bench::recap("MOM6 dominated by runtime errors", "51.7%",
               format_double(summaries[2].error_pct, 1) + "%");
  std::cout << "  note: totals scale with the mini-models' atom counts (paper models\n"
               "  have 445/468/351 atoms; see DESIGN.md and EXPERIMENTS.md).\n";
  return 0;
}
