// Table II: summary metrics for the variants explored by the three
// delta-debugging campaigns (MPAS-A, ADCIRC, MOM6) on the simulated
// 20-node / 12-hour cluster with 3x-baseline per-variant timeouts.
//
// Each campaign is run twice — serial (jobs=1) and parallel (jobs=4, or
// --jobs when > 1) — and the host wall-clock seconds of both runs plus the
// parallel speedup land in BENCH_parallel_eval.json. The Table II numbers
// come from the serial run; the parallel run must (and is checked to)
// reproduce them bit-identically.
#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "models/models.h"
#include "support/table.h"
#include "support/thread_pool.h"

using namespace prose;
using namespace prose::tuner;

namespace {

struct TimedRun {
  CampaignResult result;
  double seconds = 0.0;
};

TimedRun timed_run(const TargetSpec& spec, CampaignOptions options,
                   std::size_t jobs) {
  options.jobs = jobs;
  const auto t0 = std::chrono::steady_clock::now();
  TimedRun run;
  run.result = bench::run_or_die(spec, options);
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return run;
}

/// The determinism contract, spot-checked on the bench path: a parallel run
/// must reproduce the serial SearchResult exactly.
bool same_search(const SearchResult& a, const SearchResult& b) {
  if (a.records.size() != b.records.size()) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (!(a.records[i].config == b.records[i].config)) return false;
    if (a.records[i].eval.speedup != b.records[i].eval.speedup) return false;
    if (a.records[i].eval.outcome != b.records[i].eval.outcome) return false;
  }
  return a.accepted == b.accepted && a.best == b.best &&
         a.best_speedup == b.best_speedup && a.cache_hits == b.cache_hits;
}

struct ParallelEvalRow {
  std::string model;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  bool identical = false;
};

std::string parallel_eval_json(const std::vector<ParallelEvalRow>& rows,
                               std::size_t jobs) {
  std::string out = "{\n";
  out += "  \"parallel_jobs\": " + std::to_string(jobs) + ",\n";
  out += "  \"host_hardware_threads\": " +
         std::to_string(ThreadPool::hardware_workers()) + ",\n";
  out += "  \"campaigns\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    const double speedup =
        r.parallel_seconds > 0.0 ? r.serial_seconds / r.parallel_seconds : 0.0;
    out += "    {\"model\": \"" + r.model + "\", \"serial_seconds\": " +
           format_double(r.serial_seconds, 4) + ", \"parallel_seconds\": " +
           format_double(r.parallel_seconds, 4) + ", \"speedup\": " +
           format_double(speedup, 3) + ", \"identical_results\": " +
           (r.identical ? "true" : "false") + "}";
    out += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::from_args(argc, argv);
  bench::header("Table II — summary metrics for variants explored");

  struct PaperRow {
    const char* model;
    const char* total;
    const char* pass;
    const char* fail;
    const char* timeout;
    const char* error;
    const char* speedup;
  };
  const PaperRow paper[] = {
      {"MPAS-A", "48", "37.5%", "56.2%", "6.3%", "0%", "1.95x"},
      {"ADCIRC", "74", "36.4%", "33.8%", "0%", "29.7%", "1.12x"},
      {"MOM6", "858", "17.2%", "31.0%", "0%", "51.7%", "1.04x"},
  };

  TextTable table({"Model", "Total", "Pass", "Fail", "Timeout", "Error", "Speedup"});
  CsvWriter csv;
  csv.add_row({"model", "total", "pass_pct", "fail_pct", "timeout_pct", "error_pct",
               "best_speedup", "finished", "wall_hours"});

  // Host worker threads for the parallel leg of each campaign (the serial
  // leg always runs jobs=1). Results are bit-identical either way.
  const std::size_t parallel_jobs = io.jobs > 1 ? io.jobs : 4;
  std::vector<ParallelEvalRow> timing;

  std::vector<TargetSpec> specs = {models::mpas_target(), models::adcirc_target(),
                                   models::mom6_target()};
  std::vector<CampaignSummary> summaries;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    std::cout << "running " << specs[i].name << " campaign (serial, then jobs="
              << parallel_jobs << ")...\n";
    CampaignOptions options;
    options.trace = io.trace_options(specs[i].name);
    const auto serial = timed_run(specs[i], options, 1);
    // Time the parallel leg without tracing so it measures evaluation alone.
    const auto parallel = timed_run(specs[i], CampaignOptions{}, parallel_jobs);
    timing.push_back({specs[i].name, serial.seconds, parallel.seconds,
                      same_search(serial.result.search, parallel.result.search)});
    const auto& result = serial.result;
    const CampaignSummary& s = result.summary;
    summaries.push_back(s);
    table.add_row({"paper " + std::string(paper[i].model), paper[i].total,
                   paper[i].pass, paper[i].fail, paper[i].timeout, paper[i].error,
                   paper[i].speedup});
    table.add_row(table2_row(s));
    csv.add_row({s.model, std::to_string(s.total), format_double(s.pass_pct, 1),
                 format_double(s.fail_pct, 1), format_double(s.timeout_pct, 1),
                 format_double(s.error_pct, 1), format_double(s.best_speedup, 3),
                 s.finished ? "yes" : "no", format_double(s.wall_hours, 2)});
    std::cout << final_variant_report(result);
    std::cout << "  simulated wall time: " << format_double(s.wall_hours, 1)
              << " h (12 h budget); search "
              << (s.finished ? "reached 1-minimality" : "was cut off") << "\n\n";
  }

  // The paper's MOM6 search did not finish its 12 hours at 351 atoms; our
  // 33-atom mini needs ~7 h and finishes. Re-running with a reduced wall
  // budget demonstrates the same cutoff behavior — a search interrupted
  // mid-flight before reaching 1-minimality.
  {
    CampaignOptions scaled;
    scaled.cluster.wall_budget_seconds = 5.0 * 3600.0;
    scaled.trace = io.trace_options("MOM6-5h");
    std::cout << "running MOM6 campaign at a reduced (5 h) budget...\n";
    const auto serial = timed_run(models::mom6_target(), scaled, 1);
    CampaignOptions scaled_parallel;
    scaled_parallel.cluster.wall_budget_seconds = 5.0 * 3600.0;
    const auto parallel =
        timed_run(models::mom6_target(), scaled_parallel, parallel_jobs);
    timing.push_back({"MOM6-5h", serial.seconds, parallel.seconds,
                      same_search(serial.result.search, parallel.result.search)});
    const auto& result = serial.result;
    CampaignSummary s = result.summary;
    s.model = "MOM6 (5h budget)";
    table.add_row(table2_row(s));
    csv.add_row({s.model, std::to_string(s.total), format_double(s.pass_pct, 1),
                 format_double(s.fail_pct, 1), format_double(s.timeout_pct, 1),
                 format_double(s.error_pct, 1), format_double(s.best_speedup, 3),
                 s.finished ? "yes" : "no", format_double(s.wall_hours, 2)});
    std::cout << "  search " << (s.finished ? "finished" : "was cut off mid-flight")
              << " after " << format_double(s.wall_hours, 2) << " h ("
              << s.total << " variants) — the paper's MOM6 outcome\n\n";
  }

  std::cout << table.to_string();
  io.write_csv("table2_campaigns.csv", csv.str());
  io.write_file("json", "BENCH_parallel_eval.json",
                parallel_eval_json(timing, parallel_jobs));
  for (const auto& r : timing) {
    const double speedup =
        r.parallel_seconds > 0.0 ? r.serial_seconds / r.parallel_seconds : 0.0;
    std::cout << "  parallel eval " << pad_right(r.model, 10) << " serial "
              << format_double(r.serial_seconds, 2) << " s -> jobs="
              << parallel_jobs << " " << format_double(r.parallel_seconds, 2)
              << " s (" << format_double(speedup, 2) << "x, results "
              << (r.identical ? "identical" : "DIVERGED") << ")\n";
  }

  bench::header("Table II recap (shape checks)");
  bench::recap("MPAS-A best speedup", "1.95x",
               format_double(summaries[0].best_speedup, 2) + "x");
  bench::recap("ADCIRC best speedup", "1.12x",
               format_double(summaries[1].best_speedup, 2) + "x");
  bench::recap("MOM6 best speedup", "1.04x (negligible)",
               format_double(summaries[2].best_speedup, 2) + "x");
  bench::recap("MPAS-A runtime errors", "0%",
               format_double(summaries[0].error_pct, 1) + "%");
  bench::recap("ADCIRC has all three outcome classes", "yes",
               (summaries[1].fail_pct > 0 && summaries[1].error_pct > 0 ? "yes" : "NO"));
  bench::recap("MOM6 dominated by runtime errors", "51.7%",
               format_double(summaries[2].error_pct, 1) + "%");
  std::cout << "  note: totals scale with the mini-models' atom counts (paper models\n"
               "  have 445/468/351 atoms; see DESIGN.md and EXPERIMENTS.md).\n";
  return 0;
}
