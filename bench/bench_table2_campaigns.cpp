// Table II: summary metrics for the variants explored by the three
// delta-debugging campaigns (MPAS-A, ADCIRC, MOM6) on the simulated
// 20-node / 12-hour cluster with 3x-baseline per-variant timeouts.
#include <iostream>

#include "bench_common.h"
#include "models/models.h"
#include "support/table.h"

using namespace prose;
using namespace prose::tuner;

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::from_args(argc, argv);
  bench::header("Table II — summary metrics for variants explored");

  struct PaperRow {
    const char* model;
    const char* total;
    const char* pass;
    const char* fail;
    const char* timeout;
    const char* error;
    const char* speedup;
  };
  const PaperRow paper[] = {
      {"MPAS-A", "48", "37.5%", "56.2%", "6.3%", "0%", "1.95x"},
      {"ADCIRC", "74", "36.4%", "33.8%", "0%", "29.7%", "1.12x"},
      {"MOM6", "858", "17.2%", "31.0%", "0%", "51.7%", "1.04x"},
  };

  TextTable table({"Model", "Total", "Pass", "Fail", "Timeout", "Error", "Speedup"});
  CsvWriter csv;
  csv.add_row({"model", "total", "pass_pct", "fail_pct", "timeout_pct", "error_pct",
               "best_speedup", "finished", "wall_hours"});

  std::vector<TargetSpec> specs = {models::mpas_target(), models::adcirc_target(),
                                   models::mom6_target()};
  std::vector<CampaignSummary> summaries;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    std::cout << "running " << specs[i].name << " campaign...\n";
    CampaignOptions options;
    options.trace = io.trace_options(specs[i].name);
    const auto result = bench::run_or_die(specs[i], options);
    const CampaignSummary& s = result.summary;
    summaries.push_back(s);
    table.add_row({"paper " + std::string(paper[i].model), paper[i].total,
                   paper[i].pass, paper[i].fail, paper[i].timeout, paper[i].error,
                   paper[i].speedup});
    table.add_row(table2_row(s));
    csv.add_row({s.model, std::to_string(s.total), format_double(s.pass_pct, 1),
                 format_double(s.fail_pct, 1), format_double(s.timeout_pct, 1),
                 format_double(s.error_pct, 1), format_double(s.best_speedup, 3),
                 s.finished ? "yes" : "no", format_double(s.wall_hours, 2)});
    std::cout << final_variant_report(result);
    std::cout << "  simulated wall time: " << format_double(s.wall_hours, 1)
              << " h (12 h budget); search "
              << (s.finished ? "reached 1-minimality" : "was cut off") << "\n\n";
  }

  // The paper's MOM6 search did not finish its 12 hours at 351 atoms; our
  // 33-atom mini needs ~7 h and finishes. Re-running with a reduced wall
  // budget demonstrates the same cutoff behavior — a search interrupted
  // mid-flight before reaching 1-minimality.
  {
    CampaignOptions scaled;
    scaled.cluster.wall_budget_seconds = 5.0 * 3600.0;
    scaled.trace = io.trace_options("MOM6-5h");
    std::cout << "running MOM6 campaign at a reduced (5 h) budget...\n";
    const auto result = bench::run_or_die(models::mom6_target(), scaled);
    CampaignSummary s = result.summary;
    s.model = "MOM6 (5h budget)";
    table.add_row(table2_row(s));
    csv.add_row({s.model, std::to_string(s.total), format_double(s.pass_pct, 1),
                 format_double(s.fail_pct, 1), format_double(s.timeout_pct, 1),
                 format_double(s.error_pct, 1), format_double(s.best_speedup, 3),
                 s.finished ? "yes" : "no", format_double(s.wall_hours, 2)});
    std::cout << "  search " << (s.finished ? "finished" : "was cut off mid-flight")
              << " after " << format_double(s.wall_hours, 2) << " h ("
              << s.total << " variants) — the paper's MOM6 outcome\n\n";
  }

  std::cout << table.to_string();
  io.write_csv("table2_campaigns.csv", csv.str());

  bench::header("Table II recap (shape checks)");
  bench::recap("MPAS-A best speedup", "1.95x",
               format_double(summaries[0].best_speedup, 2) + "x");
  bench::recap("ADCIRC best speedup", "1.12x",
               format_double(summaries[1].best_speedup, 2) + "x");
  bench::recap("MOM6 best speedup", "1.04x (negligible)",
               format_double(summaries[2].best_speedup, 2) + "x");
  bench::recap("MPAS-A runtime errors", "0%",
               format_double(summaries[0].error_pct, 1) + "%");
  bench::recap("ADCIRC has all three outcome classes", "yes",
               (summaries[1].fail_pct > 0 && summaries[1].error_pct > 0 ? "yes" : "NO"));
  bench::recap("MOM6 dominated by runtime errors", "51.7%",
               format_double(summaries[2].error_pct, 1) + "%");
  std::cout << "  note: totals scale with the mini-models' atom counts (paper models\n"
               "  have 445/468/351 atoms; see DESIGN.md and EXPERIMENTS.md).\n";
  return 0;
}
