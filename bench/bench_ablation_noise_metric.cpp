// Ablation: the noise-tolerant speedup metric, Eq. (1).
//
// The paper sizes n (the median window) from the observed baseline RSD:
// n = 1 at the 1% noise of MPAS-A/ADCIRC, n = 7 at MOM6's 9%. This bench
// quantifies why: for two variants whose true speedups differ by a margin,
// it estimates the probability that Eq. (1) *misranks* them under each noise
// level and n, and the probability that a truly-faster-than-baseline variant
// is wrongly rejected by the speedup >= 1 acceptance rule.
#include <iostream>

#include "bench_common.h"
#include "support/table.h"
#include "tuner/metrics.h"

using namespace prose;
using namespace prose::tuner;

namespace {

/// Monte-Carlo probability that Eq. (1) ranks variant B (true speedup sb)
/// above variant A (true speedup sa > sb).
double misrank_probability(double sa, double sb, double rsd, int n, int trials) {
  int misranked = 0;
  for (int t = 0; t < trials; ++t) {
    const auto base = sample_noisy_times(100.0, rsd, n, 99, 3 * static_cast<std::uint64_t>(t));
    const auto va = sample_noisy_times(100.0 / sa, rsd, n, 99, 3 * static_cast<std::uint64_t>(t) + 1);
    const auto vb = sample_noisy_times(100.0 / sb, rsd, n, 99, 3 * static_cast<std::uint64_t>(t) + 2);
    if (eq1_speedup(base, vb) > eq1_speedup(base, va)) ++misranked;
  }
  return static_cast<double>(misranked) / trials;
}

/// Probability that a variant with true speedup s >= 1 measures below 1.
double false_reject_probability(double s, double rsd, int n, int trials) {
  int rejected = 0;
  for (int t = 0; t < trials; ++t) {
    const auto base = sample_noisy_times(100.0, rsd, n, 7, 2 * static_cast<std::uint64_t>(t));
    const auto v = sample_noisy_times(100.0 / s, rsd, n, 7, 2 * static_cast<std::uint64_t>(t) + 1);
    if (eq1_speedup(base, v) < 1.0) ++rejected;
  }
  return static_cast<double>(rejected) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::BenchIo::from_args(argc, argv);
  bench::header("Ablation — Eq. (1) median-of-n under timing noise");
  const int trials = io.quick ? 2000 : 20000;

  CsvWriter csv;
  csv.add_row({"rsd", "n", "misrank_5pct_margin", "false_reject_1.03x"});

  TextTable table({"RSD", "n", "P(misrank A=1.10x vs B=1.05x)",
                   "P(reject true 1.03x variant)"});
  for (const double rsd : {0.01, 0.09}) {
    for (const int n : {1, 3, 7}) {
      const double mis = misrank_probability(1.10, 1.05, rsd, n, trials);
      const double rej = false_reject_probability(1.03, rsd, n, trials);
      table.add_row({format_percent(rsd, 0), std::to_string(n),
                     format_percent(mis, 1), format_percent(rej, 1)});
      csv.add_row({format_double(rsd, 2), std::to_string(n), format_double(mis, 4),
                   format_double(rej, 4)});
    }
  }
  std::cout << table.to_string();
  io.write_csv("ablation_noise_metric.csv", csv.str());

  bench::header("Ablation recap");
  std::cout
      << "  At 1% RSD a single run already ranks variants reliably (the paper's\n"
         "  n = 1 for MPAS-A/ADCIRC); at MOM6's 9% RSD, n = 1 misranks nearby\n"
         "  variants a large fraction of the time and n = 7 restores reliable\n"
         "  ranking — the paper's choice (§III-E, §IV-A).\n";
  return 0;
}
