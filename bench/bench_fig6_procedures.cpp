// Figure 6: per-procedure performance of the unique precision assignments
// explored by each search. Speedup is the baseline's mean CPU time per call
// divided by the variant's, on a log axis, one column per procedure.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "tuner/html_report.h"
#include "models/models.h"

using namespace prose;
using namespace prose::tuner;

namespace {

struct ProcSummary {
  std::size_t variants = 0;
  double best = 0.0;
  double worst = 0.0;
};

std::map<std::string, ProcSummary> summarize_procs(
    const std::vector<ProcedureVariantPoint>& points) {
  std::map<std::string, ProcSummary> out;
  for (const auto& p : points) {
    auto& s = out[p.proc];
    if (s.variants == 0) {
      s.best = s.worst = p.speedup;
    } else {
      s.best = std::max(s.best, p.speedup);
      s.worst = std::min(s.worst, p.speedup);
    }
    ++s.variants;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::from_args(argc, argv);
  bench::header("Figure 6 — per-procedure variant performance (log axis)");

  const std::vector<TargetSpec> specs = {models::mpas_target(), models::adcirc_target(),
                                         models::mom6_target()};
  std::map<std::string, ProcSummary> all;
  for (const auto& spec : specs) {
    std::cout << "running " << spec.name << " campaign...\n";
    const auto result = bench::run_or_die(spec, io.campaign_options(spec.name));
    std::cout << figure6_scatter("Fig 6 — " + spec.name, result.figure6);
    io.write_csv("fig6_" + to_lower(spec.name) + "_procedures.csv",
                 figure6_csv(result.figure6));
    io.write_html("fig6_" + to_lower(spec.name) + ".html",
                  figure6_html("Figure 6 — " + spec.name, result.figure6));
    for (const auto& [proc, s] : summarize_procs(result.figure6)) all[proc] = s;
    std::cout << "\n";
  }

  bench::header("Figure 6 recap (artifact-appendix shape checks)");
  const auto get = [&](const std::string& proc) { return all[proc]; };
  const auto fmt = [](const ProcSummary& s) {
    return std::to_string(s.variants) + " variants, best " +
           format_double(s.best, 2) + "x, worst " + format_double(s.worst, 3) + "x";
  };

  bench::recap("MPAS flux slowdown variants", "0.03-0.1x worst",
               fmt(get("atm_time_integration::flux4")));
  bench::recap("MPAS dyn_tend explored heavily", "many variants",
               fmt(get("atm_time_integration::atm_compute_dyn_tend_work")));
  bench::recap("MPAS acoustic converged quickly", "few variants",
               fmt(get("atm_time_integration::atm_advance_acoustic_step_work")));
  bench::recap("ADCIRC pjac best", "1.1-1.2x",
               fmt(get("itpackv::pjac")));
  bench::recap("ADCIRC peror best", "1.1-1.2x",
               fmt(get("itpackv::peror")));
  bench::recap("ADCIRC jcg bimodal", "<=1x and 3-10x",
               fmt(get("itpackv::jcg")));
  bench::recap("MOM6 zonal_flux_adjust worst", "0.01-0.1x",
               fmt(get("mom_continuity_ppm::zonal_flux_adjust")));
  return 0;
}
