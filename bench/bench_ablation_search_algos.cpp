// Ablation: search-algorithm comparison.
//
// The paper deliberately reimplements only the canonical delta-debugging
// strategy (§III-B) and cites prior comparisons for its competitiveness.
// This ablation reproduces that justification on our substrate: on the
// funarc space (where brute force gives ground truth) and on the ADCIRC
// hotspot, compare delta debugging against random sampling and greedy
// one-atom-at-a-time lowering on (a) evaluations spent and (b) quality of
// the best acceptable variant found.
#include <iostream>

#include "bench_common.h"
#include "models/models.h"
#include "support/table.h"
#include "tuner/search.h"

using namespace prose;
using namespace prose::tuner;

namespace {

struct AlgoResult {
  std::string algo;
  std::size_t evaluations = 0;
  double best_speedup = 0.0;
  bool one_minimal = false;
};

AlgoResult run_algo(const std::string& name, Evaluator& ev,
                    const std::function<SearchResult(Evaluator&)>& fn) {
  const std::size_t before = ev.unique_evaluations();
  const SearchResult r = fn(ev);
  AlgoResult out;
  out.algo = name;
  out.evaluations = ev.unique_evaluations() - before;
  out.best_speedup = r.best_speedup;
  out.one_minimal = r.one_minimal;
  return out;
}

void run_target(const char* label, const TargetSpec& spec, bool include_brute,
                bench::BenchIo& io, CsvWriter& csv) {
  std::cout << "\n--- " << label << " ---\n";
  TextTable table({"Algorithm", "Unique evals", "Best speedup", "1-minimal"});
  // Fresh evaluator per algorithm: each pays its own evaluations.
  const auto row = [&](AlgoResult r) {
    table.add_row({r.algo, std::to_string(r.evaluations),
                   format_double(r.best_speedup, 3) + "x", r.one_minimal ? "yes" : "-"});
    csv.add_row({label, r.algo, std::to_string(r.evaluations),
                 format_double(r.best_speedup, 4), r.one_minimal ? "yes" : "no"});
  };

  {
    auto ev = Evaluator::create(spec);
    if (!ev.is_ok()) {
      std::cerr << ev.status().to_string() << "\n";
      std::exit(1);
    }
    row(run_algo("delta-debug", **ev,
                 [](Evaluator& e) { return delta_debug_search(e); }));
  }
  {
    auto ev = Evaluator::create(spec);
    row(run_algo("random-64", **ev,
                 [](Evaluator& e) { return random_search(e, 64, 1234); }));
  }
  {
    auto ev = Evaluator::create(spec);
    row(run_algo("one-at-a-time", **ev,
                 [](Evaluator& e) { return one_at_a_time_search(e); }));
  }
  if (include_brute) {
    auto ev = Evaluator::create(spec);
    row(run_algo("brute-force", **ev,
                 [](Evaluator& e) { return brute_force_search(e); }));
  }
  std::cout << table.to_string();
  (void)io;
}

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::BenchIo::from_args(argc, argv);
  bench::header("Ablation — search algorithms (delta debugging vs baselines)");
  CsvWriter csv;
  csv.add_row({"target", "algorithm", "unique_evals", "best_speedup", "one_minimal"});

  run_target("funarc (2^8 space, brute force = ground truth)",
             models::funarc_target(), /*include_brute=*/true, io, csv);
  run_target("ADCIRC itpackv hotspot", models::adcirc_target(),
             /*include_brute=*/false, io, csv);

  io.write_csv("ablation_search_algos.csv", csv.str());

  bench::header("Ablation recap");
  std::cout
      << "  Delta debugging reaches a 1-minimal variant in far fewer evaluations\n"
         "  than brute force and, unlike random sampling, certifies minimality;\n"
         "  one-at-a-time spends one evaluation per atom but gets stuck at the\n"
         "  first unlucky ordering — consistent with the comparisons the paper\n"
         "  cites for choosing the canonical strategy (§III-B).\n";
  return 0;
}
