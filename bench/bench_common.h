// Shared helpers for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the relevant experiment on the simulated substrate, prints the series in
// the paper's shape (ASCII table/scatter), writes the raw data as CSV next
// to the binary (or under --outdir), and prints a PAPER vs MEASURED recap.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "support/cli.h"
#include "support/strings.h"
#include "support/trace.h"
#include "tuner/campaign.h"
#include "tuner/report.h"

namespace prose::bench {

struct BenchIo {
  std::string outdir = "bench_out";
  bool quick = false;  // reduced scale for smoke runs
  /// Host worker threads for variant evaluation (--jobs=N; 1 = serial,
  /// 0 = hardware concurrency). Campaign results are bit-identical for any
  /// value — jobs only changes host wall-clock time.
  std::size_t jobs = 1;
  /// Flight-recorder sinks (--trace-out=<chrome.json>, --trace-jsonl=<log>);
  /// empty = tracing off. Benches that run several campaigns tag the paths
  /// per campaign via trace_options(tag).
  std::string trace_out;
  std::string trace_jsonl;
  /// Fault-injection spec + seed (--faults=SPEC, --fault-seed=N); empty =
  /// faults off. Forwarded into campaign_options() like the trace knobs.
  std::string faults;
  std::uint64_t fault_seed = 2025;
  /// Write-ahead journal (--journal=<file>, --resume); benches tag the path
  /// per campaign via tagged_path, like the trace sinks.
  std::string journal;
  bool resume = false;
  /// Numerical flight recorder (--diagnose): shadow re-run each campaign's
  /// rejected variants and report the root-cause blame ranking. Pure
  /// observer — the campaign numbers are bit-identical either way.
  bool diagnose = false;

  static BenchIo from_args(int argc, char** argv) {
    BenchIo io;
    auto flags = CliFlags::parse(argc, argv);
    if (flags.is_ok()) {
      io.outdir = flags->get_string("outdir", "bench_out");
      io.quick = flags->get_bool("quick", false);
      io.jobs = static_cast<std::size_t>(flags->get_int("jobs", 1));
      io.trace_out = flags->get_string("trace-out", "");
      io.trace_jsonl = flags->get_string("trace-jsonl", "");
      io.faults = flags->get_string("faults", "");
      io.fault_seed = static_cast<std::uint64_t>(flags->get_int("fault-seed", 2025));
      io.journal = flags->get_string("journal", "");
      io.resume = flags->get_bool("resume", false);
      io.diagnose = flags->get_bool("diagnose", false);
    }
    std::error_code ec;
    std::filesystem::create_directories(io.outdir, ec);  // best effort
    return io;
  }

  /// Inserts ".<tag>" before the final extension ("campaign.trace.json" +
  /// "MPAS-A" → "campaign.trace.MPAS-A.json") so multi-campaign benches
  /// write one trace pair per campaign instead of overwriting one file.
  static std::string tagged_path(const std::string& path, const std::string& tag) {
    if (path.empty() || tag.empty()) return path;
    std::string safe = tag;
    for (char& c : safe) {
      if (c == '/' || c == '\\' || c == ' ') c = '-';
    }
    const std::size_t slash = path.find_last_of("/\\");
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
      return path + "." + safe;
    }
    return path.substr(0, dot) + "." + safe + path.substr(dot);
  }

  [[nodiscard]] trace::TraceOptions trace_options(const std::string& tag = "") const {
    trace::TraceOptions t;
    t.chrome_path = tagged_path(trace_out, tag);
    t.jsonl_path = tagged_path(trace_jsonl, tag);
    return t;
  }

  /// CampaignOptions carrying the shared bench knobs (--jobs, --trace-*,
  /// --faults, --journal/--resume).
  [[nodiscard]] tuner::CampaignOptions campaign_options(
      const std::string& tag = "") const {
    tuner::CampaignOptions options;
    options.jobs = jobs;
    options.trace = trace_options(tag);
    options.fault_spec = faults;
    options.fault_seed = fault_seed;
    options.journal_path = tagged_path(journal, tag);
    options.resume = resume;
    options.diagnose = diagnose;
    return options;
  }

  void write_file(const std::string& tag, const std::string& name,
                  const std::string& content) const {
    const std::string path = outdir + "/" + name;
    std::ofstream f(path);
    if (f) {
      f << content;
      std::cout << "[" << tag << "] wrote " << path << "\n";
    } else {
      std::cout << "[" << tag << "] could not write " << path << " (skipped)\n";
    }
  }

  void write_csv(const std::string& name, const std::string& content) const {
    write_file("csv", name, content);
  }

  /// HTML counterpart of the paper artifact's interactive visualizations.
  void write_html(const std::string& name, const std::string& content) const {
    write_file("html", name, content);
  }
};

inline void header(const std::string& title) {
  std::cout << "\n" << std::string(74, '=') << "\n" << title << "\n"
            << std::string(74, '=') << "\n";
}

/// "paper: X | measured: Y" recap line.
inline void recap(const std::string& what, const std::string& paper,
                  const std::string& measured) {
  std::cout << "  " << pad_right(what, 44) << " paper: " << pad_right(paper, 12)
            << " measured: " << measured << "\n";
}

/// Runs a campaign and prints its Table II row; exits the process on failure
/// (benches must be loud about broken substrates).
inline tuner::CampaignResult run_or_die(const tuner::TargetSpec& spec,
                                        const tuner::CampaignOptions& options = {}) {
  auto result = tuner::run_campaign(spec, options);
  if (!result.is_ok()) {
    std::cerr << "campaign failed for " << spec.name << ": "
              << result.status().to_string() << "\n";
    std::exit(1);
  }
  return std::move(result.value());
}

}  // namespace prose::bench
