// Microbenchmarks (google-benchmark) for the substrate itself: frontend
// throughput, transformation cost, reduction cost, and VM execution rate.
// These are the components whose per-variant cost the campaign scheduler
// models (T0-T3 of the artifact's workflow).
#include <benchmark/benchmark.h>

#include <set>

#include "ftn/callgraph.h"
#include "ftn/lexer.h"
#include "ftn/paramflow.h"
#include "ftn/parser.h"
#include "ftn/reduce.h"
#include "ftn/sema.h"
#include "ftn/transform.h"
#include "ftn/unparse.h"
#include "models/models.h"
#include "sim/compile.h"
#include "sim/vm.h"

namespace {

using namespace prose;

const std::string& mpas_src() {
  static const std::string src = models::mpas_source();
  return src;
}

const ftn::ResolvedProgram& mpas_resolved() {
  static ftn::ResolvedProgram rp = [] {
    auto r = ftn::parse_and_resolve(mpas_src());
    PROSE_CHECK(r.is_ok());
    return std::move(r.value());
  }();
  return rp;
}

void BM_Lex(benchmark::State& state) {
  for (auto _ : state) {
    auto tokens = ftn::lex(mpas_src(), "mpas");
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(mpas_src().size()));
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto prog = ftn::parse_source(mpas_src());
    benchmark::DoNotOptimize(prog);
  }
}
BENCHMARK(BM_Parse);

void BM_Resolve(benchmark::State& state) {
  for (auto _ : state) {
    auto prog = ftn::parse_source(mpas_src());
    auto rp = ftn::resolve(std::move(prog.value()));
    benchmark::DoNotOptimize(rp);
  }
}
BENCHMARK(BM_Resolve);

void BM_Unparse(benchmark::State& state) {
  const auto& rp = mpas_resolved();
  for (auto _ : state) {
    auto text = ftn::unparse(rp.program);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_Unparse);

void BM_CallGraphAndFlow(benchmark::State& state) {
  const auto& rp = mpas_resolved();
  for (auto _ : state) {
    const auto cg = ftn::CallGraph::build(rp);
    const auto pf = ftn::build_param_flow(rp, cg);
    benchmark::DoNotOptimize(pf.edges.size());
  }
}
BENCHMARK(BM_CallGraphAndFlow);

void BM_MakeVariantWithWrappers(benchmark::State& state) {
  const auto& rp = mpas_resolved();
  // Lower every atom-scope declaration: maximal wrapper generation work.
  ftn::PrecisionAssignment pa;
  for (const auto& sym : rp.symbols.all()) {
    if (sym.is_variable() && sym.type.is_real() &&
        sym.module_name == "atm_time_integration") {
      pa.kinds[sym.decl_node] = 4;
    }
  }
  for (auto _ : state) {
    auto variant = ftn::make_variant(rp.program, pa);
    benchmark::DoNotOptimize(variant);
  }
}
BENCHMARK(BM_MakeVariantWithWrappers);

void BM_TaintReduction(benchmark::State& state) {
  const auto& rp = mpas_resolved();
  std::set<ftn::NodeId> targets;
  for (const auto& sym : rp.symbols.all()) {
    if (sym.is_variable() && sym.type.is_real() && sym.proc_name == "flux4") {
      targets.insert(sym.decl_node);
    }
  }
  for (auto _ : state) {
    auto reduced = ftn::reduce_for_targets(rp, targets);
    benchmark::DoNotOptimize(reduced);
  }
}
BENCHMARK(BM_TaintReduction);

void BM_CompileBytecode(benchmark::State& state) {
  const auto& rp = mpas_resolved();
  for (auto _ : state) {
    auto compiled = sim::compile(rp, sim::MachineModel{});
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompileBytecode);

void BM_VmFullModelRun(benchmark::State& state) {
  const auto& rp = mpas_resolved();
  auto compiled = sim::compile(rp, sim::MachineModel{});
  PROSE_CHECK(compiled.is_ok());
  sim::Vm vm(&compiled.value());
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    vm.reset();
    auto r = vm.call("mpas_model::run_model");
    PROSE_CHECK(r.status.is_ok());
    instructions += r.instructions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
  state.SetLabel("items = VM instructions");
}
BENCHMARK(BM_VmFullModelRun);

}  // namespace

BENCHMARK_MAIN();
