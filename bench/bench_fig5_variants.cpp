// Figure 5: every explored mixed-precision hotspot variant on speedup-error
// axes, one panel per model, with the threshold guide lines and the paper's
// cluster checks (e.g. MPAS-A's three clusters by %32-bit).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "tuner/html_report.h"
#include "models/models.h"
#include "tuner/frontier.h"

using namespace prose;
using namespace prose::tuner;

namespace {

/// Mean speedup of completed variants whose fraction32 lies in [lo, hi).
struct ClusterStat {
  std::size_t n = 0;
  double mean_speedup = 0.0;
  double min_speedup = 0.0;
  double max_speedup = 0.0;
};

ClusterStat cluster(const SearchResult& search, double lo, double hi) {
  ClusterStat c;
  double sum = 0.0;
  for (const auto& r : search.records) {
    if (r.eval.outcome != Outcome::kPass && r.eval.outcome != Outcome::kFail) continue;
    if (r.eval.fraction32 < lo || r.eval.fraction32 >= hi) continue;
    if (c.n == 0) {
      c.min_speedup = c.max_speedup = r.eval.speedup;
    } else {
      c.min_speedup = std::min(c.min_speedup, r.eval.speedup);
      c.max_speedup = std::max(c.max_speedup, r.eval.speedup);
    }
    sum += r.eval.speedup;
    ++c.n;
  }
  if (c.n > 0) c.mean_speedup = sum / static_cast<double>(c.n);
  return c;
}

std::string show(const ClusterStat& c) {
  if (c.n == 0) return "(none)";
  return std::to_string(c.n) + " variants, mean " + format_double(c.mean_speedup, 2) +
         "x [" + format_double(c.min_speedup, 2) + ", " +
         format_double(c.max_speedup, 2) + "]";
}

}  // namespace

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::from_args(argc, argv);
  bench::header("Figure 5 — hotspot variants on speedup-error axes");

  const std::vector<TargetSpec> specs = {models::mpas_target(), models::adcirc_target(),
                                         models::mom6_target()};
  std::vector<SearchResult> searches;
  for (const auto& spec : specs) {
    std::cout << "running " << spec.name << " campaign...\n";
    auto result = bench::run_or_die(spec, io.campaign_options(spec.name));
    std::cout << variants_scatter("Fig 5 — " + spec.name, result.search,
                                  spec.error_threshold);
    io.write_csv("fig5_" + to_lower(spec.name) + "_variants.csv",
                 variants_csv(result.search));
    io.write_html("fig5_" + to_lower(spec.name) + ".html",
                  variants_html("Figure 5 — " + spec.name, result.search,
                                spec.error_threshold));
    const auto frontier = optimal_frontier(result.search.records);
    std::cout << "optimal frontier: " << frontier.size() << " variants\n\n";
    searches.push_back(std::move(result.search));
  }

  bench::header("Figure 5 recap (artifact-appendix shape checks)");
  // MPAS-A clusters by %32-bit.
  const auto low = cluster(searches[0], 0.0, 0.30);
  const auto mid = cluster(searches[0], 0.50, 0.90);
  const auto high = cluster(searches[0], 0.90, 1.01);
  bench::recap("MPAS-A <30% 32-bit", "<= 1x speedup", show(low));
  bench::recap("MPAS-A 50-89% 32-bit", "0.7-1.8x", show(mid));
  bench::recap("MPAS-A >90% 32-bit", ">= 1.8x (best)", show(high));

  // ADCIRC: fast-but-wrong upper cluster, correct ~1x cluster.
  std::size_t adcirc_fast_wrong = 0, adcirc_correct = 0;
  for (const auto& r : searches[1].records) {
    if (r.eval.outcome == Outcome::kFail && r.eval.speedup > 1.5) ++adcirc_fast_wrong;
    if (r.eval.outcome == Outcome::kPass) ++adcirc_correct;
  }
  bench::recap("ADCIRC fast-but-intolerable variants", "upper-right cluster",
               std::to_string(adcirc_fast_wrong) + " variants");
  bench::recap("ADCIRC correct ~1x variants", "bottom-right cluster",
               std::to_string(adcirc_correct) + " variants");

  // MOM6: executable highly-lowered variants are slowdowns.
  const auto mom6_high = cluster(searches[2], 0.70, 1.01);
  bench::recap("MOM6 executable >70% 32-bit", "0.2-0.6x slowdowns", show(mom6_high));
  return 0;
}
