// Figure 2 (and Figure 3): the funarc motivating example.
//
// Brute-force sweep of all 2^8 = 256 mixed-precision variants, plotted on
// speedup-error axes; the optimal frontier; the fraction of variants worse
// than the original on both axes (paper: ~67%); and the Fig. 3-style diff of
// the threshold-selected frontier variant (keeps only s1 in 64-bit).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "tuner/html_report.h"
#include "ftn/transform.h"
#include "ftn/unparse.h"
#include "models/funarc.h"
#include "tuner/frontier.h"
#include "tuner/search.h"

using namespace prose;
using namespace prose::tuner;

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::from_args(argc, argv);
  bench::header("Figure 2 — funarc: brute-force sweep of 256 variants");

  const TargetSpec spec = models::funarc_target();
  auto evaluator = Evaluator::create(spec);
  if (!evaluator.is_ok()) {
    std::cerr << evaluator.status().to_string() << "\n";
    return 1;
  }
  Evaluator& ev = *evaluator.value();

  const SearchResult sweep = brute_force_search(ev);
  std::cout << "variants evaluated: " << sweep.records.size() << "\n";

  // Scatter in the paper's orientation.
  std::cout << variants_scatter("funarc variants (speedup vs relative error)", sweep,
                                spec.error_threshold);
  io.write_csv("fig2_funarc_variants.csv", variants_csv(sweep));
  io.write_html("fig2_funarc.html",
                variants_html("Figure 2 — funarc variants", sweep, spec.error_threshold));

  // Optimal frontier and threshold selection.
  const auto frontier = optimal_frontier(sweep.records);
  std::cout << "\noptimal frontier (" << frontier.size() << " variants):\n";
  for (const auto& p : frontier) {
    std::cout << "  variant " << p.variant_id << ": speedup "
              << format_double(p.speedup, 3) << ", error " << format_sci(p.error, 3)
              << "\n";
  }
  const int chosen = select_within_threshold(frontier, spec.error_threshold);
  std::cout << "selected under threshold " << format_sci(spec.error_threshold, 2)
            << ": variant " << chosen << "\n";

  // Fraction worse than the original on both axes (left of the dotted line
  // AND below 1x in Fig. 2).
  std::size_t worse_both = 0, completed = 0;
  const VariantRecord* chosen_rec = nullptr;
  for (const auto& r : sweep.records) {
    if (r.eval.outcome != Outcome::kPass && r.eval.outcome != Outcome::kFail) continue;
    ++completed;
    if (r.eval.speedup < 1.0 && r.eval.error > 0.0) ++worse_both;
    if (r.id == chosen) chosen_rec = &r;
  }
  const double pct = completed ? 100.0 * static_cast<double>(worse_both) /
                                     static_cast<double>(completed)
                               : 0.0;
  std::cout << "variants worse than the original on both axes: "
            << format_double(pct, 1) << "%\n";

  // Fig. 3: the diff of the chosen variant against the uniform-64 original.
  if (chosen_rec != nullptr) {
    auto variant = ftn::make_variant(ev.pristine().program,
                                     ev.space().to_assignment(chosen_rec->config));
    if (variant.is_ok()) {
      std::cout << "\nFigure 3 — diff of the selected variant vs the original:\n"
                << ftn::source_diff(ev.pristine().program, variant->program);
    }
    // Which atoms stayed 64-bit?
    std::cout << "kept in 64-bit:";
    for (std::size_t i = 0; i < ev.space().size(); ++i) {
      if (chosen_rec->config.kinds[i] == 8) {
        std::cout << " " << ev.space().atoms()[i].qualified;
      }
    }
    std::cout << "\n";
  }

  // Figure 4: the wrapper required for mixed-precision parameter passing.
  // Lower everything except fun's dummy `x`: the call site then needs a
  // 4-to-8 wrapper routing the argument through an assignment — exactly the
  // paper's example.
  {
    Config keep_x = ev.space().uniform(4);
    const auto xi = ev.space().index_of("funarc_mod::fun::x");
    if (xi >= 0) keep_x.kinds[static_cast<std::size_t>(xi)] = 8;
    auto wrapped = ftn::make_variant(ev.pristine().program,
                                     ev.space().to_assignment(keep_x));
    if (wrapped.is_ok()) {
      const ftn::Module* m = wrapped->program.find_module("funarc_mod");
      for (const auto& proc : m->procedures) {
        if (proc.generated) {
          std::cout << "\nFigure 4 — generated wrapper for mixed-precision "
                       "parameter passing:\n"
                    << ftn::unparse(proc);
        }
      }
    }
  }

  // Paper-vs-measured recap.
  const Evaluation& u32 = ev.evaluate(ev.space().uniform(4));
  bench::header("Figure 2 recap (shape checks)");
  bench::recap("search space", "2^8 = 256", std::to_string(sweep.records.size()));
  bench::recap("% worse on both axes", "~67%", format_double(pct, 1) + "%");
  bench::recap("uniform-32 speedup", "~1.35x", format_double(u32.speedup, 2) + "x");
  if (chosen_rec != nullptr) {
    bench::recap("frontier pick speedup", "~1.3x",
                 format_double(chosen_rec->eval.speedup, 2) + "x");
    bench::recap("error vs uniform-32", "4.5x less",
                 format_double(u32.error / std::max(chosen_rec->eval.error, 1e-300), 1) +
                     "x less");
  }
  return 0;
}
