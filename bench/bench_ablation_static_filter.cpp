// Ablation: §V's static variant filters.
//
// The paper recommends statically rejecting variants with heavy
// mixed-precision interprocedural data flow (cost ∝ calls × elements) or a
// regressed vectorization report, to save dynamic evaluations. This bench
// replays a recorded delta-debugging trace through the static screeners and
// reports (a) how many dynamic evaluations each filter would have saved,
// (b) whether any *acceptable* variant would have been wrongly rejected, and
// (c) the precision/recall of "rejected" vs "dynamically bad".
#include <iostream>

#include "bench_common.h"
#include "models/models.h"
#include "support/table.h"
#include "tuner/search.h"
#include "tuner/static_filter.h"

using namespace prose;
using namespace prose::tuner;

namespace {

void run_target(const char* label, const TargetSpec& spec, CsvWriter& csv) {
  std::cout << "\n--- " << label << " ---\n";
  auto evaluator = Evaluator::create(spec);
  if (!evaluator.is_ok()) {
    std::cerr << evaluator.status().to_string() << "\n";
    std::exit(1);
  }
  Evaluator& ev = *evaluator.value();
  const SearchResult trace = delta_debug_search(ev);
  std::cout << "trace: " << trace.records.size() << " dynamically evaluated variants\n";

  TextTable table({"flow threshold", "rejected", "evals saved", "true pos.",
                   "false pos.", "missed bad"});
  for (const double threshold : {0.1, 0.25, 0.5, 1.0}) {
    StaticFilterOptions options;
    options.mixed_flow_fraction_threshold = threshold;
    auto screener = StaticScreener::create(ev, options);
    if (!screener.is_ok()) {
      std::cerr << screener.status().to_string() << "\n";
      std::exit(1);
    }
    std::size_t rejected = 0;
    std::size_t rejected_and_bad = 0;    // true positives (saved evaluations)
    std::size_t rejected_but_good = 0;   // false positives (lost variants)
    std::size_t kept_but_bad = 0;        // misses
    for (const auto& r : trace.records) {
      const auto screen = screener->screen(ev, r.config);
      // "Dynamically bad": not acceptable (fails correctness/perf or crashes).
      const bool bad = !r.eval.acceptable();
      if (screen.rejected) {
        ++rejected;
        if (bad) {
          ++rejected_and_bad;
        } else {
          ++rejected_but_good;
        }
      } else if (bad) {
        ++kept_but_bad;
      }
    }
    const double total = static_cast<double>(trace.records.size());
    table.add_row({format_double(threshold, 2), std::to_string(rejected),
                   format_percent(total ? static_cast<double>(rejected) / total : 0),
                   std::to_string(rejected_and_bad), std::to_string(rejected_but_good),
                   std::to_string(kept_but_bad)});
    csv.add_row({label, format_double(threshold, 2),
                 std::to_string(trace.records.size()), std::to_string(rejected),
                 std::to_string(rejected_and_bad), std::to_string(rejected_but_good),
                 std::to_string(kept_but_bad)});
  }
  std::cout << table.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::BenchIo::from_args(argc, argv);
  bench::header("Ablation — §V static filters vs dynamic evaluation");
  CsvWriter csv;
  csv.add_row({"target", "flow_threshold", "variants", "rejected", "true_pos", "false_pos", "missed"});

  run_target("MPAS-A", models::mpas_target(), csv);
  run_target("MOM6", models::mom6_target(), csv);

  io.write_csv("ablation_static_filter.csv", csv.str());

  // End-to-end: run the MPAS-A search WITH the filter in the loop (the §V
  // "minimizing overhead of variant evaluation during FPPT" usage) and
  // compare dynamic-evaluation counts and result quality.
  bench::header("End-to-end: delta debugging with the static prefilter in the loop");
  {
    auto plain_ev = Evaluator::create(models::mpas_target());
    const SearchResult plain = delta_debug_search(**plain_ev);

    auto filt_ev = Evaluator::create(models::mpas_target());
    StaticFilterOptions fopts;
    fopts.mixed_flow_fraction_threshold = 1.0;  // the zero-false-positive point
    auto screener = StaticScreener::create(**filt_ev, fopts);
    SearchOptions sopts;
    sopts.prefilter = [&](const Config& c) {
      return !screener->screen(**filt_ev, c).rejected;
    };
    const SearchResult filtered = delta_debug_search(**filt_ev, sopts);

    TextTable table({"search", "dynamic evals", "statically skipped", "best speedup",
                     "1-minimal"});
    table.add_row({"plain", std::to_string((*plain_ev)->unique_evaluations()), "0",
                   format_double(plain.best_speedup, 3) + "x",
                   plain.one_minimal ? "yes" : "no"});
    table.add_row({"with prefilter", std::to_string((*filt_ev)->unique_evaluations()),
                   std::to_string(filtered.statically_skipped),
                   format_double(filtered.best_speedup, 3) + "x",
                   filtered.one_minimal ? "yes" : "no"});
    std::cout << table.to_string();
  }

  bench::header("Ablation recap");
  std::cout
      << "  The mixed-flow penalty (calls x elements) and the vectorization-report\n"
         "  filter pre-reject a sizable share of the variants the dynamic search\n"
         "  would otherwise compile and run — the paper's §V scalability\n"
         "  recommendation — at the cost of a small number of false rejections.\n";
  return 0;
}
