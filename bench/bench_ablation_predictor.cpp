// Ablation: learned static prediction of variant performance (§V's closing
// recommendation, the paper's ref. [42] direction).
//
// Trains a ridge model on static features of the first portion of each
// recorded search trace and scores it on the held-out remainder: R²,
// Spearman rank correlation, and the practical payoff — if the search
// consulted the predictor and skipped the statically-worst half of the
// held-out variants, how many dynamically-bad evaluations would it have
// avoided, and would it have lost any acceptable variant?
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "models/models.h"
#include "support/table.h"
#include "tuner/predictor.h"
#include "tuner/search.h"

using namespace prose;
using namespace prose::tuner;

namespace {

void run_target(const char* label, const TargetSpec& spec, CsvWriter& csv) {
  std::cout << "\n--- " << label << " ---\n";
  auto evaluator = Evaluator::create(spec);
  if (!evaluator.is_ok()) {
    std::cerr << evaluator.status().to_string() << "\n";
    std::exit(1);
  }
  Evaluator& ev = *evaluator.value();
  // A mixed trace: the delta-debug trajectory plus random exploration, so
  // the model sees both good and bad regions.
  SearchResult trace = delta_debug_search(ev);
  const SearchResult extra = random_search(ev, 40, 4242);
  for (const auto& r : extra.records) trace.records.push_back(r);

  auto quality = evaluate_predictor_on_trace(ev, trace, 0.6, 1.0);
  if (!quality.is_ok()) {
    std::cout << "  (not enough completed variants: " << quality.status().to_string()
              << ")\n";
    return;
  }

  // Practical filter experiment on the held-out tail: skip the predicted-
  // slowest half.
  std::vector<const VariantRecord*> completed;
  for (const auto& r : trace.records) {
    if (r.eval.outcome == Outcome::kPass || r.eval.outcome == Outcome::kFail) {
      completed.push_back(&r);
    }
  }
  const auto split =
      static_cast<std::size_t>(static_cast<double>(completed.size()) * 0.6);
  std::vector<VariantFeatures> train_x;
  std::vector<double> train_y;
  for (std::size_t i = 0; i < split; ++i) {
    auto f = extract_features(ev, completed[i]->config);
    if (!f.is_ok()) continue;
    train_x.push_back(*f);
    train_y.push_back(completed[i]->eval.speedup);
  }
  RidgePredictor model(1.0);
  if (!model.fit(train_x, train_y).is_ok()) return;

  struct Scored {
    const VariantRecord* rec;
    double predicted;
  };
  std::vector<Scored> held;
  for (std::size_t i = split; i < completed.size(); ++i) {
    auto f = extract_features(ev, completed[i]->config);
    if (f.is_ok()) held.push_back({completed[i], model.predict(*f)});
  }
  std::sort(held.begin(), held.end(),
            [](const Scored& a, const Scored& b) { return a.predicted < b.predicted; });
  const std::size_t skip = held.size() / 2;
  std::size_t skipped_bad = 0, skipped_good = 0;
  for (std::size_t i = 0; i < skip; ++i) {
    if (held[i].rec->eval.acceptable()) {
      ++skipped_good;
    } else {
      ++skipped_bad;
    }
  }

  TextTable table({"metric", "value"});
  table.add_row({"train / held-out variants", std::to_string(quality->train_samples) +
                                                   " / " +
                                                   std::to_string(quality->test_samples)});
  table.add_row({"held-out R^2", format_double(quality->r2, 3)});
  table.add_row({"held-out Spearman rank corr.", format_double(quality->spearman, 3)});
  table.add_row({"skipping predicted-worst half", std::to_string(skip) + " variants"});
  table.add_row({"  of which dynamically bad", std::to_string(skipped_bad)});
  table.add_row({"  of which acceptable (lost)", std::to_string(skipped_good)});
  std::cout << table.to_string();

  csv.add_row({label, std::to_string(quality->train_samples),
               std::to_string(quality->test_samples), format_double(quality->r2, 4),
               format_double(quality->spearman, 4), std::to_string(skip),
               std::to_string(skipped_bad), std::to_string(skipped_good)});
}

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::BenchIo::from_args(argc, argv);
  bench::header("Ablation — learned static performance prediction (§V / ref. 42)");
  CsvWriter csv;
  csv.add_row({"target", "train", "test", "r2", "spearman", "skipped", "skipped_bad",
               "skipped_good"});

  run_target("funarc", models::funarc_target(), csv);
  run_target("ADCIRC", models::adcirc_target(), csv);
  run_target("MPAS-A", models::mpas_target(), csv);

  io.write_csv("ablation_predictor.csv", csv.str());

  bench::header("Ablation recap");
  std::cout << "  Static features (fraction lowered, mixed-flow penalty, wrapper\n"
               "  count, vectorization report, cast sites) rank variant speedups\n"
               "  well enough to pre-skip a large share of bad variants — the\n"
               "  paper's argument that learned predictors can cut the dominant\n"
               "  dynamic-evaluation cost of FPPT at scale.\n";
  return 0;
}
