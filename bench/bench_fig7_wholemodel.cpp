// Figure 7: the MPAS-A search guided by whole-model wall time (§IV-C).
//
// The same hotspot atoms, but Eq. (1) measured over the entire model run:
// the casting overhead of moving the double-precision input state into a
// low-precision hotspot on every call swamps the hotspot gains, so
// low-precision variants cluster below 1x and the 1-minimal variant lowers
// only a small fraction of the variables with no appreciable speedup.
#include <iostream>

#include "bench_common.h"
#include "tuner/html_report.h"
#include "models/models.h"

using namespace prose;
using namespace prose::tuner;

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::from_args(argc, argv);
  bench::header("Figure 7 — MPAS-A variants under the whole-model metric");

  const TargetSpec spec = models::mpas_whole_model_target();
  std::cout << "running MPAS-A whole-model campaign...\n";
  const auto result = bench::run_or_die(spec, io.campaign_options(spec.name));

  std::cout << variants_scatter("Fig 7 — MPAS-A (whole-model wall time)",
                                result.search, spec.error_threshold);
  io.write_csv("fig7_mpas_wholemodel_variants.csv", variants_csv(result.search));
  io.write_html("fig7_mpas_wholemodel.html",
                variants_html("Figure 7 — MPAS-A (whole-model)", result.search,
                              spec.error_threshold));
  std::cout << final_variant_report(result);

  // Cluster stats by fraction lowered.
  double lo_sum = 0.0, hi_sum = 0.0;
  std::size_t lo_n = 0, hi_n = 0;
  for (const auto& r : result.search.records) {
    if (r.eval.outcome != Outcome::kPass && r.eval.outcome != Outcome::kFail) continue;
    if (r.eval.fraction32 < 0.5) {
      lo_sum += r.eval.speedup;
      ++lo_n;
    } else if (r.eval.fraction32 > 0.9) {
      hi_sum += r.eval.speedup;
      ++hi_n;
    }
  }

  // How much of the final variant stayed high-precision?
  std::size_t lowered = 0;
  for (const auto& [name, kind] : result.final_kinds) {
    if (kind == 4) ++lowered;
  }
  const double lowered_pct =
      100.0 * static_cast<double>(lowered) / static_cast<double>(result.final_kinds.size());

  bench::header("Figure 7 recap (artifact-appendix shape checks)");
  bench::recap("best whole-model speedup", "< 1.1x",
               format_double(result.summary.best_speedup, 2) + "x");
  bench::recap("<50% 32-bit cluster", "0.8-1x speedup",
               lo_n ? format_double(lo_sum / static_cast<double>(lo_n), 2) + "x mean (" +
                          std::to_string(lo_n) + " variants)"
                    : "(none)");
  bench::recap(">90% 32-bit cluster", "<0.6x speedup",
               hi_n ? format_double(hi_sum / static_cast<double>(hi_n), 2) + "x mean (" +
                          std::to_string(hi_n) + " variants)"
                    : "(none)");
  bench::recap("1-minimal variant lowers", "~10% of variables",
               format_double(lowered_pct, 1) + "%");
  return 0;
}
