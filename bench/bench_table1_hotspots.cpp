// Table I: summary statistics for the targeted hotspots.
//
// For each model: the targeted module, its measured share of CPU time under
// the representative workload (GPTL-instrumented, as in the paper), and the
// number of floating-point variables in the search space. Absolute variable
// counts are smaller than the paper's full models (documented substitution);
// the CPU-time shares are calibrated to the paper's.
#include <iostream>

#include "bench_common.h"
#include "models/models.h"
#include "support/table.h"

using namespace prose;
using namespace prose::tuner;

namespace {

struct Row {
  const char* model;
  const char* module_name;
  const char* paper_share;
  int paper_vars;
  TargetSpec spec;
};

}  // namespace

int main(int argc, char** argv) {
  const auto io = bench::BenchIo::from_args(argc, argv);
  bench::header("Table I — summary statistics for targeted hotspots");

  std::vector<Row> rows;
  rows.push_back({"MPAS-A", "atm_time_integration", "15%", 445, models::mpas_target()});
  rows.push_back({"ADCIRC", "itpackv", "12%", 468, models::adcirc_target()});
  rows.push_back({"MOM6", "MOM_continuity_PPM", "9%", 351, models::mom6_target()});

  TextTable table({"Model", "Targeted Module", "% CPU (paper)", "% CPU (measured)",
                   "# FP Vars (paper)", "# FP Vars (ours)"});
  CsvWriter csv;
  csv.add_row({"model", "module", "paper_cpu_share", "measured_cpu_share",
               "paper_fp_vars", "our_fp_vars"});

  for (auto& row : rows) {
    auto evaluator = Evaluator::create(row.spec);
    if (!evaluator.is_ok()) {
      std::cerr << row.model << ": " << evaluator.status().to_string() << "\n";
      return 1;
    }
    Evaluator& ev = *evaluator.value();
    const double share =
        ev.baseline().hotspot_cycles / ev.baseline().whole_cycles;
    table.add_row({row.model, row.module_name, row.paper_share,
                   format_percent(share, 1), std::to_string(row.paper_vars),
                   std::to_string(ev.space().size())});
    csv.add_row({row.model, row.module_name, row.paper_share,
                 format_double(share, 4), std::to_string(row.paper_vars),
                 std::to_string(ev.space().size())});
  }

  std::cout << table.to_string();
  io.write_csv("table1_hotspots.csv", csv.str());

  bench::header("Table I recap (shape checks)");
  bench::recap("MPAS-A hotspot CPU share", "15%", "see table");
  bench::recap("ADCIRC hotspot CPU share", "12%", "see table");
  bench::recap("MOM6 hotspot CPU share", "9%", "see table");
  std::cout << "  note: variable counts are scaled-down minis (see DESIGN.md); the\n"
               "  CPU-time shares are the calibrated quantities.\n";
  return 0;
}
