#include "tuner/campaign.h"

#include <set>

namespace prose::tuner {

CampaignSummary summarize(const std::string& model, const SearchResult& search,
                          const ClusterSim& cluster) {
  CampaignSummary s;
  s.model = model;
  s.total = search.records.size();
  std::size_t pass = 0, fail = 0, timeout = 0, error = 0;
  for (const auto& r : search.records) {
    switch (r.eval.outcome) {
      case Outcome::kPass: ++pass; break;
      case Outcome::kFail: ++fail; break;
      case Outcome::kTimeout: ++timeout; break;
      case Outcome::kRuntimeError:
      case Outcome::kCompileError: ++error; break;
    }
  }
  if (s.total > 0) {
    const auto pct = [&](std::size_t n) {
      return 100.0 * static_cast<double>(n) / static_cast<double>(s.total);
    };
    s.pass_pct = pct(pass);
    s.fail_pct = pct(fail);
    s.timeout_pct = pct(timeout);
    s.error_pct = pct(error);
  }
  s.best_speedup = search.best_speedup;
  s.finished = search.one_minimal;
  s.wall_hours = cluster.elapsed_seconds() / 3600.0;
  return s;
}

std::vector<ProcedureVariantPoint> figure6_series(const Evaluator& evaluator,
                                                  const SearchResult& search) {
  std::vector<ProcedureVariantPoint> out;
  const auto& spec = evaluator.spec();
  const auto& space = evaluator.space();
  for (const auto& proc : spec.figure6_procs) {
    const auto base_it = evaluator.baseline().proc_mean_cycles.find(proc);
    if (base_it == evaluator.baseline().proc_mean_cycles.end()) continue;
    const double base_mean = base_it->second;
    const auto proc_atoms = space.atoms_in_scope(proc);
    std::set<std::string> seen;
    for (const auto& r : search.records) {
      const auto it = r.eval.proc_mean_cycles.find(proc);
      if (it == r.eval.proc_mean_cycles.end() || it->second <= 0.0) continue;
      const std::string key = space.scope_key(r.config, proc);
      if (!seen.insert(key).second) continue;  // unique procedure variants only
      ProcedureVariantPoint p;
      p.proc = proc;
      p.scope_key = key;
      p.speedup = base_mean / it->second;
      if (!proc_atoms.empty()) {
        std::size_t low = 0;
        for (const std::size_t a : proc_atoms) {
          if (r.config.kinds[a] == 4) ++low;
        }
        p.fraction32 = static_cast<double>(low) / static_cast<double>(proc_atoms.size());
      }
      out.push_back(std::move(p));
    }
  }
  return out;
}

StatusOr<CampaignResult> run_campaign(const TargetSpec& spec,
                                      const CampaignOptions& options) {
  trace::Tracer tracer(options.trace);
  if (options.trace.enabled() && !tracer.error().is_ok()) {
    return tracer.error();
  }
  trace::Tracer* tr = tracer.enabled() ? &tracer : nullptr;

  // The work pool for batch-parallel variant evaluation (jobs == 1 → serial
  // path, no threads spawned). Results are bit-identical either way.
  const std::size_t jobs =
      options.jobs == 0 ? ThreadPool::hardware_workers() : options.jobs;
  std::unique_ptr<ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<ThreadPool>(jobs);

  if (tr != nullptr) {
    tr->set_process_name(trace::Track::kPipelinePid, "tuning-pipeline");
    tr->set_thread_name(trace::Track::kPipelinePid, trace::Track::kEvaluatorTid, "evaluator");
    tr->set_thread_name(trace::Track::kPipelinePid, trace::Track::kSearchTid, "search");
    tr->set_thread_name(trace::Track::kPipelinePid, trace::Track::kCampaignTid, "campaign");
    if (pool != nullptr) {
      for (std::size_t w = 0; w < pool->size(); ++w) {
        tr->set_thread_name(trace::Track::kPipelinePid,
                            trace::Track::kWorkerTidBase + static_cast<int>(w),
                            "worker-" + std::to_string(w));
      }
    }
  }

  auto evaluator = Evaluator::create(spec, options.noise_seed, tr);
  if (!evaluator.is_ok()) return evaluator.status();
  Evaluator& ev = *evaluator.value();

  ClusterSim cluster(options.cluster);
  cluster.set_tracer(tr);
  SearchOptions sopts;
  sopts.max_variants = options.max_variants;
  sopts.pool = pool.get();
  sopts.tracer = tr;
  sopts.batch_hook = [&](const std::vector<const VariantRecord*>& batch) {
    if (tr != nullptr) {
      std::vector<ClusterTask> tasks(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        tasks[i].seconds = batch[i]->eval.node_seconds;
        tasks[i].label = "v" + std::to_string(batch[i]->id) + " " +
                         to_string(batch[i]->eval.outcome);
      }
      return cluster.run_labeled_batch(tasks);
    }
    std::vector<double> tasks;
    tasks.reserve(batch.size());
    for (const auto* r : batch) tasks.push_back(r->eval.node_seconds);
    return cluster.run_batch(tasks);
  };

  CampaignResult result;
  {
    trace::Span campaign_span(tr, trace::Track::campaign(),
                              "campaign " + spec.name);
    result.search = delta_debug_search(ev, sopts);
    result.summary = summarize(spec.name, result.search, cluster);
    if (tr != nullptr) {
      campaign_span.annotate({{"variants", result.summary.total},
                              {"best_speedup", result.summary.best_speedup},
                              {"wall_hours", result.summary.wall_hours},
                              {"finished", result.summary.finished}});
      tr->instant("campaign/summary", trace::Track::campaign(), tr->now_us(),
                  {{"model", result.summary.model},
                   {"total", result.summary.total},
                   {"pass_pct", result.summary.pass_pct},
                   {"fail_pct", result.summary.fail_pct},
                   {"timeout_pct", result.summary.timeout_pct},
                   {"error_pct", result.summary.error_pct},
                   {"best_speedup", result.summary.best_speedup},
                   {"finished", result.summary.finished},
                   {"wall_hours", result.summary.wall_hours}});
    }
  }
  result.figure6 = figure6_series(ev, result.search);

  const Config& final_config = result.search.best.has_value()
                                   ? *result.search.best
                                   : result.search.accepted;
  for (std::size_t i = 0; i < ev.space().size(); ++i) {
    result.final_kinds[ev.space().atoms()[i].qualified] = final_config.kinds[i];
  }
  if (tr != nullptr) {
    // Flush explicitly so a sink that failed mid-run surfaces as a campaign
    // error instead of being swallowed by the destructor.
    const Status flushed = tracer.flush();
    if (!flushed.is_ok()) return flushed;
  }
  return result;
}

}  // namespace prose::tuner
