#include "tuner/campaign.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>

#include "tuner/journal.h"

namespace prose::tuner {

namespace {

/// A variant the campaign would not ship: wrong, slow, or broken. Lost
/// variants carry no information and compile errors never ran, so neither
/// can be shadow-diagnosed.
bool rejected_variant(const Evaluation& e) {
  switch (e.outcome) {
    case Outcome::kFail:
    case Outcome::kTimeout:
    case Outcome::kRuntimeError:
      return true;
    case Outcome::kPass:
      return e.speedup < 1.0;
    case Outcome::kCompileError:
    case Outcome::kLost:
      return false;
  }
  return false;
}

}  // namespace

bool vm_dispatch_from_string(std::string_view s, sim::VmDispatch* out) {
  if (s == "auto") {
    *out = sim::VmDispatch::kAuto;
  } else if (s == "interp" || s == "interpret") {
    *out = sim::VmDispatch::kInterpret;
  } else if (s == "switch") {
    *out = sim::VmDispatch::kSwitch;
  } else if (s == "threaded") {
    *out = sim::VmDispatch::kThreaded;
  } else {
    return false;
  }
  return true;
}

const char* to_string(sim::VmDispatch dispatch) {
  switch (dispatch) {
    case sim::VmDispatch::kAuto: return "auto";
    case sim::VmDispatch::kInterpret: return "interp";
    case sim::VmDispatch::kSwitch: return "switch";
    case sim::VmDispatch::kThreaded: return "threaded";
  }
  return "?";
}

CampaignSummary summarize(const std::string& model, const SearchResult& search,
                          const ClusterSim& cluster) {
  CampaignSummary s;
  s.model = model;
  s.total = search.records.size();
  std::size_t pass = 0, fail = 0, timeout = 0, error = 0, lost = 0;
  for (const auto& r : search.records) {
    switch (r.eval.outcome) {
      case Outcome::kPass: ++pass; break;
      case Outcome::kFail: ++fail; break;
      case Outcome::kTimeout: ++timeout; break;
      case Outcome::kRuntimeError:
      case Outcome::kCompileError: ++error; break;
      case Outcome::kLost: ++lost; break;  // quarantined: no information
    }
  }
  if (s.total > 0) {
    const auto pct = [&](std::size_t n) {
      return 100.0 * static_cast<double>(n) / static_cast<double>(s.total);
    };
    s.pass_pct = pct(pass);
    s.fail_pct = pct(fail);
    s.timeout_pct = pct(timeout);
    s.error_pct = pct(error);
    s.lost_pct = pct(lost);
  }
  s.best_speedup = search.best_speedup;
  s.finished = search.one_minimal;
  s.wall_hours = cluster.elapsed_seconds() / 3600.0;
  return s;
}

std::vector<ProcedureVariantPoint> figure6_series(const Evaluator& evaluator,
                                                  const SearchResult& search) {
  std::vector<ProcedureVariantPoint> out;
  const auto& spec = evaluator.spec();
  const auto& space = evaluator.space();
  for (const auto& proc : spec.figure6_procs) {
    const auto base_it = evaluator.baseline().proc_mean_cycles.find(proc);
    if (base_it == evaluator.baseline().proc_mean_cycles.end()) continue;
    const double base_mean = base_it->second;
    const auto proc_atoms = space.atoms_in_scope(proc);
    std::set<std::string> seen;
    for (const auto& r : search.records) {
      const auto it = r.eval.proc_mean_cycles.find(proc);
      if (it == r.eval.proc_mean_cycles.end() || it->second <= 0.0) continue;
      const std::string key = space.scope_key(r.config, proc);
      if (!seen.insert(key).second) continue;  // unique procedure variants only
      ProcedureVariantPoint p;
      p.proc = proc;
      p.scope_key = key;
      p.speedup = base_mean / it->second;
      if (!proc_atoms.empty()) {
        std::size_t low = 0;
        for (const std::size_t a : proc_atoms) {
          if (r.config.kinds[a] == 4) ++low;
        }
        p.fraction32 = static_cast<double>(low) / static_cast<double>(proc_atoms.size());
      }
      out.push_back(std::move(p));
    }
  }
  return out;
}

CampaignDiagnosis diagnose_campaign(Evaluator& evaluator,
                                    const SearchResult& search,
                                    const Config& final_config,
                                    std::size_t max_diagnosed) {
  CampaignDiagnosis diag;
  diag.enabled = true;
  const SearchSpace& space = evaluator.space();

  // Distinct completed variants in search order: the association evidence.
  std::set<std::string> seen;
  std::vector<const VariantRecord*> completed;
  for (const auto& r : search.records) {
    if (r.eval.outcome == Outcome::kLost ||
        r.eval.outcome == Outcome::kCompileError) {
      continue;
    }
    if (!seen.insert(r.config.key()).second) continue;
    completed.push_back(&r);
  }

  // Shadow re-runs of the rejected variants (capped — each re-run costs one
  // real execution of the model).
  for (const VariantRecord* r : completed) {
    if (!rejected_variant(r->eval)) continue;
    ++diag.rejected;
    if (diag.diagnosed >= max_diagnosed) continue;
    auto report = evaluator.diagnose(r->config);
    if (!report.is_ok()) continue;  // transform/compile broke: nothing to blame
    diag.reports.push_back(std::move(report.value()));
    ++diag.diagnosed;
  }

  // Atom criticality: demotion↔rejection association over every completed
  // variant, plus the shadow divergence seen while demoted.
  std::vector<AtomCriticality> atoms(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    atoms[i].qualified = space.atoms()[i].qualified;
    atoms[i].final64 = final_config.kinds[i] == 8;
  }
  std::map<std::string, bool> rejected_by_key;  // key → rejected?
  for (const VariantRecord* r : completed) {
    rejected_by_key[r->config.key()] = rejected_variant(r->eval);
  }
  for (const VariantRecord* r : completed) {
    const bool rej = rejected_variant(r->eval);
    std::string flipped = r->config.key();
    for (std::size_t i = 0; i < space.size(); ++i) {
      if (r->config.kinds[i] != 4) continue;
      ++atoms[i].demoted_total;
      if (rej) {
        ++atoms[i].demoted_rejected;
        // Pivotal pair: the same variant with only this atom promoted back
        // to 64-bit was evaluated and NOT rejected — this one demotion alone
        // flipped the outcome.
        flipped[i] = '8';
        const auto it = rejected_by_key.find(flipped);
        if (it != rejected_by_key.end() && !it->second) ++atoms[i].pivotal;
        flipped[i] = '4';
      }
    }
  }
  for (const BlameReport& rep : diag.reports) {
    for (const VariableBlame& vb : rep.variables) {
      if (!vb.demoted) continue;
      const std::ptrdiff_t idx = space.index_of(vb.qualified);
      if (idx < 0) continue;
      AtomCriticality& a = atoms[static_cast<std::size_t>(idx)];
      a.max_rel_div = std::max(a.max_rel_div, vb.max_rel_div);
    }
  }
  for (AtomCriticality& a : atoms) {
    if (a.demoted_total == 0) continue;  // never demoted: no evidence
    a.fail_association = static_cast<double>(a.demoted_rejected) /
                         static_cast<double>(a.demoted_total);
    a.score = 0.45 * a.fail_association + 0.25 * std::min(1.0, a.max_rel_div) +
              (a.pivotal > 0 ? 0.20 : 0.0) + (a.final64 ? 0.10 : 0.0);
    diag.atoms.push_back(std::move(a));
  }
  std::sort(diag.atoms.begin(), diag.atoms.end(),
            [](const AtomCriticality& x, const AtomCriticality& y) {
              if (x.score != y.score) return x.score > y.score;
              return x.qualified < y.qualified;
            });

  // Procedure criticality: each diagnosed variant distributes one unit of
  // blame across its procedures, so blame_share sums to the number of
  // variants whose rejection a procedure fully explains.
  std::map<std::string, ProcCriticality> procs;
  for (const BlameReport& rep : diag.reports) {
    double total = 0.0;
    for (const ProcedureBlame& pb : rep.procedures) total += pb.blame;
    for (const ProcedureBlame& pb : rep.procedures) {
      ProcCriticality& p = procs[pb.qualified];
      p.qualified = pb.qualified;
      if (total > 0.0) p.blame_share += pb.blame / total;
      p.max_rel_div = std::max(p.max_rel_div, pb.max_rel_div);
      p.cancellations += pb.cancellations;
      p.control_divergences += pb.control_divergences;
      if (pb.faulted) ++p.faults;
      p.cast_cycles = std::max(p.cast_cycles, pb.cast_cycles);
    }
  }
  diag.procedures.reserve(procs.size());
  for (auto& [name, p] : procs) diag.procedures.push_back(std::move(p));
  std::sort(diag.procedures.begin(), diag.procedures.end(),
            [](const ProcCriticality& x, const ProcCriticality& y) {
              if (x.blame_share != y.blame_share) {
                return x.blame_share > y.blame_share;
              }
              // Blame ties (e.g. all-slow-pass campaigns) rank by the cost of
              // demotion instead: the cast-dominated procedures first.
              if (x.cast_cycles != y.cast_cycles) {
                return x.cast_cycles > y.cast_cycles;
              }
              return x.qualified < y.qualified;
            });
  return diag;
}

StatusOr<CampaignResult> run_campaign(const TargetSpec& spec,
                                      const CampaignOptions& options) {
  trace::Tracer tracer(options.trace);
  if (options.trace.enabled() && !tracer.error().is_ok()) {
    return tracer.error();
  }
  trace::Tracer* tr = tracer.enabled() ? &tracer : nullptr;

  // Fault plan: parsed up front so a bad spec fails the campaign before any
  // work, like a bad flag would.
  FaultPlan plan;
  if (!options.fault_spec.empty()) {
    auto parsed = FaultPlan::parse(options.fault_spec, options.fault_seed);
    if (!parsed.is_ok()) return parsed.status();
    plan = std::move(parsed.value());
    for (const NodeCrash& c : plan.node_crashes()) {
      if (c.node >= options.cluster.nodes) {
        return Status(StatusCode::kInvalidArgument,
                      "fault plan crashes node " + std::to_string(c.node) +
                          " but the cluster has only " +
                          std::to_string(options.cluster.nodes) + " nodes");
      }
    }
  }

  // Campaign identity for the journal: a resume refuses a journal recorded
  // under different seeds/faults/cluster shape.
  JournalHeader header;
  header.model = spec.name;
  header.noise_seed = options.noise_seed;
  header.fault_spec = options.fault_spec;
  header.fault_seed = options.fault_seed;
  header.retry_max_attempts = options.retry.max_attempts;
  header.retry_backoff_seconds = options.retry.backoff_seconds;
  header.nodes = options.cluster.nodes;
  header.wall_budget_seconds = options.cluster.wall_budget_seconds;

  JournalData recovered;
  if (options.resume) {
    if (options.journal_path.empty()) {
      return Status(StatusCode::kInvalidArgument,
                    "resume requested but no journal path given");
    }
    auto loaded = Journal::load(options.journal_path);
    if (!loaded.is_ok()) return loaded.status();
    recovered = std::move(loaded.value());
    if (recovered.has_header) {
      if (const std::string why = recovered.header.mismatch(header); !why.empty()) {
        return Status(StatusCode::kInvalidArgument,
                      "journal " + options.journal_path +
                          " is from a different campaign: " + why);
      }
    }
  }

  // Observability registry for this campaign. Instruments are registered up
  // front and threaded through every layer; the hot paths then only bump
  // atomics (zero-allocation contract). Collection never influences results.
  std::unique_ptr<obs::Registry> registry;
  if (options.metrics) {
    registry = std::make_unique<obs::Registry>();
    trace::TraceMetrics tm;
    tm.events = registry->counter("prose_trace_events_total",
                                  "Flight-recorder events emitted");
    tm.write_errors = registry->counter(
        "prose_trace_write_errors_total",
        "Flight-recorder sink degradations (sticky write failures)");
    tracer.set_metrics(tm);
  }

  // The work pool for batch-parallel variant evaluation (jobs == 1 → serial
  // path, no threads spawned). Results are bit-identical either way.
  const std::size_t jobs =
      options.jobs == 0 ? ThreadPool::hardware_workers() : options.jobs;
  std::unique_ptr<ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<ThreadPool>(jobs);
  if (pool != nullptr && registry != nullptr) {
    PoolMetrics pm;
    pm.batches = registry->counter("prose_pool_batches_total",
                                   "Work-pool batches dispatched");
    pm.items = registry->counter("prose_pool_items_total",
                                 "Work-pool items completed");
    pm.queue_depth = registry->gauge(
        "prose_pool_queue_depth", "Items of the active batch not yet claimed");
    pm.active_workers = registry->gauge(
        "prose_pool_active_workers", "Workers currently evaluating a variant");
    pool->set_metrics(pm);
  }

  if (tr != nullptr) {
    tr->set_process_name(trace::Track::kPipelinePid, "tuning-pipeline");
    tr->set_thread_name(trace::Track::kPipelinePid, trace::Track::kEvaluatorTid, "evaluator");
    tr->set_thread_name(trace::Track::kPipelinePid, trace::Track::kSearchTid, "search");
    tr->set_thread_name(trace::Track::kPipelinePid, trace::Track::kCampaignTid, "campaign");
    if (pool != nullptr) {
      for (std::size_t w = 0; w < pool->size(); ++w) {
        tr->set_thread_name(trace::Track::kPipelinePid,
                            trace::Track::kWorkerTidBase + static_cast<int>(w),
                            "worker-" + std::to_string(w));
      }
    }
  }

  auto evaluator =
      Evaluator::create(spec, options.noise_seed, tr, options.vm_dispatch);
  if (!evaluator.is_ok()) return evaluator.status();
  Evaluator& ev = *evaluator.value();

  if (registry != nullptr) ev.set_metrics(registry.get());
  if (!plan.empty()) {
    ev.set_fault_plan(&plan);
    ev.set_retry_policy(options.retry);
  }
  if (options.backend != nullptr) {
    ev.set_backend(options.backend);
    // The backend (serve client) emits request-scoped spans onto the same
    // timeline and threads trace context over the wire. Observability only.
    options.backend->set_tracer(tr);
  }
  if (options.resume && !recovered.variants.empty()) {
    ev.set_journal_replay(recovered.variants);
  }

  // Open the journal after the baseline run (the baseline is deterministic
  // setup, not campaign progress — it is always recomputed on resume).
  std::unique_ptr<Journal> journal;
  if (!options.journal_path.empty()) {
    auto opened = Journal::open(options.journal_path, header,
                                options.resume
                                    ? std::optional<std::size_t>(recovered.valid_bytes)
                                    : std::nullopt);
    if (!opened.is_ok()) return opened.status();
    journal = std::move(opened.value());
    if (options.journal_kill_after > 0) {
      journal->set_kill_after_variants(options.journal_kill_after);
    }
    if (registry != nullptr) journal->set_metrics(registry.get());
    ev.set_journal(journal.get());
  }

  ClusterSim cluster(options.cluster);
  cluster.set_tracer(tr);
  if (!plan.node_crashes().empty()) cluster.set_crashes(plan.node_crashes());
  SearchOptions sopts;
  sopts.max_variants = options.max_variants;
  sopts.pool = pool.get();
  sopts.tracer = tr;
  sopts.batch_hook = [&](const std::vector<const VariantRecord*>& batch) {
    bool ok;
    // Cooperative cancellation (SIGINT/SIGTERM in the CLI drivers): stop
    // proposing work but account for the batch already evaluated, so the
    // journal stays a resumable prefix of the uninterrupted campaign.
    if (options.stop != nullptr &&
        options.stop->load(std::memory_order_relaxed)) {
      if (journal != nullptr) {
        journal->append_batch(cluster.batches(), cluster.elapsed_seconds(),
                              batch.size());
      }
      return false;
    }
    if (tr != nullptr) {
      std::vector<ClusterTask> tasks(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        tasks[i].seconds = batch[i]->eval.node_seconds;
        std::string label = "v";
        label += std::to_string(batch[i]->id);
        label += ' ';
        label += to_string(batch[i]->eval.outcome);
        tasks[i].label = std::move(label);
      }
      ok = cluster.run_labeled_batch(tasks);
    } else {
      std::vector<double> tasks;
      tasks.reserve(batch.size());
      for (const auto* r : batch) tasks.push_back(r->eval.node_seconds);
      ok = cluster.run_batch(tasks);
    }
    if (journal != nullptr) {
      // Informational marker: search round + simulated cluster clock, so a
      // journal reader can line evaluations up with campaign progress.
      journal->append_batch(cluster.batches(), cluster.elapsed_seconds(),
                            batch.size());
    }
    return ok;
  };

  CampaignResult result;
  {
    trace::Span campaign_span(tr, trace::Track::campaign(),
                              "campaign " + spec.name);
    result.search = delta_debug_search(ev, sopts);
    result.summary = summarize(spec.name, result.search, cluster);
    if (tr != nullptr) {
      campaign_span.annotate({{"variants", result.summary.total},
                              {"best_speedup", result.summary.best_speedup},
                              {"wall_hours", result.summary.wall_hours},
                              {"finished", result.summary.finished}});
      tr->instant("campaign/summary", trace::Track::campaign(), tr->now_us(),
                  {{"model", result.summary.model},
                   {"total", result.summary.total},
                   {"pass_pct", result.summary.pass_pct},
                   {"fail_pct", result.summary.fail_pct},
                   {"timeout_pct", result.summary.timeout_pct},
                   {"error_pct", result.summary.error_pct},
                   {"best_speedup", result.summary.best_speedup},
                   {"finished", result.summary.finished},
                   {"wall_hours", result.summary.wall_hours}});
    }
  }
  result.figure6 = figure6_series(ev, result.search);

  const Config& final_config = result.search.best.has_value()
                                   ? *result.search.best
                                   : result.search.accepted;
  for (std::size_t i = 0; i < ev.space().size(); ++i) {
    result.final_kinds[ev.space().atoms()[i].qualified] = final_config.kinds[i];
  }
  result.replayed_from_journal = ev.replayed_from_journal();
  result.vm_exec = ev.vm_exec_stats();

  if (options.diagnose) {
    // The diagnosis runs strictly after the campaign proper: by the time the
    // first shadow re-run starts, every variant/batch record is already
    // journaled and every summary number is final, so an undiagnosed run's
    // journal is a byte-identical prefix of the diagnosed run's.
    trace::Span diag_span(tr, trace::Track::campaign(),
                          "diagnosis " + spec.name);
    result.diagnosis = diagnose_campaign(ev, result.search, final_config,
                                         options.max_diagnosed);
    if (journal != nullptr) {
      for (const BlameReport& rep : result.diagnosis.reports) {
        journal->append_diag(rep);
      }
    }
    if (tr != nullptr) {
      diag_span.annotate({{"rejected", result.diagnosis.rejected},
                          {"diagnosed", result.diagnosis.diagnosed}});
      tr->instant(
          "campaign/diagnosis", trace::Track::campaign(), tr->now_us(),
          {{"model", spec.name},
           {"rejected", result.diagnosis.rejected},
           {"diagnosed", result.diagnosis.diagnosed},
           {"top_atom", result.diagnosis.atoms.empty()
                            ? std::string()
                            : result.diagnosis.atoms.front().qualified},
           {"top_proc", result.diagnosis.procedures.empty()
                            ? std::string()
                            : result.diagnosis.procedures.front().qualified}});
    }
  }

  if (options.backend != nullptr) {
    // Served-mode degradation counters into the summary (and the registry,
    // so a scraped campaign shows them too).
    const EvalBackend::Counters counters = options.backend->counters();
    result.summary.fallbacks = counters.fallback_items;
    result.summary.busy_retries = counters.busy_retries;
    result.summary.hedges = counters.hedges;
    result.summary.hedge_wins = counters.hedge_wins;
    result.summary.failovers = counters.failovers;
    result.summary.shards_lost = counters.shards_lost;
    result.summary.busy_backoff_seconds = counters.busy_backoff_seconds;
    if (registry != nullptr) {
      registry
          ->gauge("prose_client_busy_retries",
                  "Busy rounds the serve client waited out (cumulative)")
          ->set(static_cast<double>(counters.busy_retries));
      registry
          ->gauge("prose_client_fallback_items",
                  "Items the serve client failed to resolve (cumulative)")
          ->set(static_cast<double>(counters.fallback_items));
      registry
          ->gauge("prose_client_hedges",
                  "Hedged requests the serve client issued (cumulative)")
          ->set(static_cast<double>(counters.hedges));
      registry
          ->gauge("prose_client_hedge_wins",
                  "Hedged requests resolved by the hedge replica (cumulative)")
          ->set(static_cast<double>(counters.hedge_wins));
      registry
          ->gauge("prose_client_failovers",
                  "Requests rerouted off a dead or draining shard "
                  "(cumulative)")
          ->set(static_cast<double>(counters.failovers));
      registry
          ->gauge("prose_client_shards_lost",
                  "Fleet shards declared dead mid-campaign (cumulative)")
          ->set(static_cast<double>(counters.shards_lost));
      registry
          ->gauge("prose_client_busy_backoff_seconds",
                  "Total deterministic busy backoff slept (cumulative)")
          ->set(counters.busy_backoff_seconds);
    }
  }
  if (registry != nullptr) {
    result.summary.metrics = registry->snapshot();
    if (journal != nullptr && options.metrics_footer) {
      // Strictly after every variant/batch/diag record, mirroring the diag
      // discipline: a footer-less journal is a byte-identical prefix.
      journal->append_metrics(result.summary.metrics);
    }
  }
  if (journal != nullptr && !journal->error().is_ok()) {
    result.summary.journal_error = journal->error().to_string();
  }
  if (tr != nullptr) {
    // Flush explicitly so a sink that failed mid-run surfaces in the
    // summary. A campaign that spent 12 simulated hours searching is worth
    // more than its timeline — losing the trace degrades the run, it does
    // not void it. (Failing to *open* a sink still fails the campaign up
    // front, before any work.)
    const Status flushed = tracer.flush();
    if (!flushed.is_ok()) result.summary.trace_error = flushed.to_string();
  }
  return result;
}

}  // namespace prose::tuner
