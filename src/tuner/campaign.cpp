#include "tuner/campaign.h"

#include <optional>
#include <set>

#include "tuner/journal.h"

namespace prose::tuner {

CampaignSummary summarize(const std::string& model, const SearchResult& search,
                          const ClusterSim& cluster) {
  CampaignSummary s;
  s.model = model;
  s.total = search.records.size();
  std::size_t pass = 0, fail = 0, timeout = 0, error = 0, lost = 0;
  for (const auto& r : search.records) {
    switch (r.eval.outcome) {
      case Outcome::kPass: ++pass; break;
      case Outcome::kFail: ++fail; break;
      case Outcome::kTimeout: ++timeout; break;
      case Outcome::kRuntimeError:
      case Outcome::kCompileError: ++error; break;
      case Outcome::kLost: ++lost; break;  // quarantined: no information
    }
  }
  if (s.total > 0) {
    const auto pct = [&](std::size_t n) {
      return 100.0 * static_cast<double>(n) / static_cast<double>(s.total);
    };
    s.pass_pct = pct(pass);
    s.fail_pct = pct(fail);
    s.timeout_pct = pct(timeout);
    s.error_pct = pct(error);
    s.lost_pct = pct(lost);
  }
  s.best_speedup = search.best_speedup;
  s.finished = search.one_minimal;
  s.wall_hours = cluster.elapsed_seconds() / 3600.0;
  return s;
}

std::vector<ProcedureVariantPoint> figure6_series(const Evaluator& evaluator,
                                                  const SearchResult& search) {
  std::vector<ProcedureVariantPoint> out;
  const auto& spec = evaluator.spec();
  const auto& space = evaluator.space();
  for (const auto& proc : spec.figure6_procs) {
    const auto base_it = evaluator.baseline().proc_mean_cycles.find(proc);
    if (base_it == evaluator.baseline().proc_mean_cycles.end()) continue;
    const double base_mean = base_it->second;
    const auto proc_atoms = space.atoms_in_scope(proc);
    std::set<std::string> seen;
    for (const auto& r : search.records) {
      const auto it = r.eval.proc_mean_cycles.find(proc);
      if (it == r.eval.proc_mean_cycles.end() || it->second <= 0.0) continue;
      const std::string key = space.scope_key(r.config, proc);
      if (!seen.insert(key).second) continue;  // unique procedure variants only
      ProcedureVariantPoint p;
      p.proc = proc;
      p.scope_key = key;
      p.speedup = base_mean / it->second;
      if (!proc_atoms.empty()) {
        std::size_t low = 0;
        for (const std::size_t a : proc_atoms) {
          if (r.config.kinds[a] == 4) ++low;
        }
        p.fraction32 = static_cast<double>(low) / static_cast<double>(proc_atoms.size());
      }
      out.push_back(std::move(p));
    }
  }
  return out;
}

StatusOr<CampaignResult> run_campaign(const TargetSpec& spec,
                                      const CampaignOptions& options) {
  trace::Tracer tracer(options.trace);
  if (options.trace.enabled() && !tracer.error().is_ok()) {
    return tracer.error();
  }
  trace::Tracer* tr = tracer.enabled() ? &tracer : nullptr;

  // Fault plan: parsed up front so a bad spec fails the campaign before any
  // work, like a bad flag would.
  FaultPlan plan;
  if (!options.fault_spec.empty()) {
    auto parsed = FaultPlan::parse(options.fault_spec, options.fault_seed);
    if (!parsed.is_ok()) return parsed.status();
    plan = std::move(parsed.value());
    for (const NodeCrash& c : plan.node_crashes()) {
      if (c.node >= options.cluster.nodes) {
        return Status(StatusCode::kInvalidArgument,
                      "fault plan crashes node " + std::to_string(c.node) +
                          " but the cluster has only " +
                          std::to_string(options.cluster.nodes) + " nodes");
      }
    }
  }

  // Campaign identity for the journal: a resume refuses a journal recorded
  // under different seeds/faults/cluster shape.
  JournalHeader header;
  header.model = spec.name;
  header.noise_seed = options.noise_seed;
  header.fault_spec = options.fault_spec;
  header.fault_seed = options.fault_seed;
  header.retry_max_attempts = options.retry.max_attempts;
  header.retry_backoff_seconds = options.retry.backoff_seconds;
  header.nodes = options.cluster.nodes;
  header.wall_budget_seconds = options.cluster.wall_budget_seconds;

  JournalData recovered;
  if (options.resume) {
    if (options.journal_path.empty()) {
      return Status(StatusCode::kInvalidArgument,
                    "resume requested but no journal path given");
    }
    auto loaded = Journal::load(options.journal_path);
    if (!loaded.is_ok()) return loaded.status();
    recovered = std::move(loaded.value());
    if (recovered.has_header) {
      if (const std::string why = recovered.header.mismatch(header); !why.empty()) {
        return Status(StatusCode::kInvalidArgument,
                      "journal " + options.journal_path +
                          " is from a different campaign: " + why);
      }
    }
  }

  // The work pool for batch-parallel variant evaluation (jobs == 1 → serial
  // path, no threads spawned). Results are bit-identical either way.
  const std::size_t jobs =
      options.jobs == 0 ? ThreadPool::hardware_workers() : options.jobs;
  std::unique_ptr<ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<ThreadPool>(jobs);

  if (tr != nullptr) {
    tr->set_process_name(trace::Track::kPipelinePid, "tuning-pipeline");
    tr->set_thread_name(trace::Track::kPipelinePid, trace::Track::kEvaluatorTid, "evaluator");
    tr->set_thread_name(trace::Track::kPipelinePid, trace::Track::kSearchTid, "search");
    tr->set_thread_name(trace::Track::kPipelinePid, trace::Track::kCampaignTid, "campaign");
    if (pool != nullptr) {
      for (std::size_t w = 0; w < pool->size(); ++w) {
        tr->set_thread_name(trace::Track::kPipelinePid,
                            trace::Track::kWorkerTidBase + static_cast<int>(w),
                            "worker-" + std::to_string(w));
      }
    }
  }

  auto evaluator = Evaluator::create(spec, options.noise_seed, tr);
  if (!evaluator.is_ok()) return evaluator.status();
  Evaluator& ev = *evaluator.value();

  if (!plan.empty()) {
    ev.set_fault_plan(&plan);
    ev.set_retry_policy(options.retry);
  }
  if (options.resume && !recovered.variants.empty()) {
    ev.set_journal_replay(recovered.variants);
  }

  // Open the journal after the baseline run (the baseline is deterministic
  // setup, not campaign progress — it is always recomputed on resume).
  std::unique_ptr<Journal> journal;
  if (!options.journal_path.empty()) {
    auto opened = Journal::open(options.journal_path, header,
                                options.resume
                                    ? std::optional<std::size_t>(recovered.valid_bytes)
                                    : std::nullopt);
    if (!opened.is_ok()) return opened.status();
    journal = std::move(opened.value());
    if (options.journal_kill_after > 0) {
      journal->set_kill_after_variants(options.journal_kill_after);
    }
    ev.set_journal(journal.get());
  }

  ClusterSim cluster(options.cluster);
  cluster.set_tracer(tr);
  if (!plan.node_crashes().empty()) cluster.set_crashes(plan.node_crashes());
  SearchOptions sopts;
  sopts.max_variants = options.max_variants;
  sopts.pool = pool.get();
  sopts.tracer = tr;
  sopts.batch_hook = [&](const std::vector<const VariantRecord*>& batch) {
    bool ok;
    if (tr != nullptr) {
      std::vector<ClusterTask> tasks(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        tasks[i].seconds = batch[i]->eval.node_seconds;
        std::string label = "v";
        label += std::to_string(batch[i]->id);
        label += ' ';
        label += to_string(batch[i]->eval.outcome);
        tasks[i].label = std::move(label);
      }
      ok = cluster.run_labeled_batch(tasks);
    } else {
      std::vector<double> tasks;
      tasks.reserve(batch.size());
      for (const auto* r : batch) tasks.push_back(r->eval.node_seconds);
      ok = cluster.run_batch(tasks);
    }
    if (journal != nullptr) {
      // Informational marker: search round + simulated cluster clock, so a
      // journal reader can line evaluations up with campaign progress.
      journal->append_batch(cluster.batches(), cluster.elapsed_seconds(),
                            batch.size());
    }
    return ok;
  };

  CampaignResult result;
  {
    trace::Span campaign_span(tr, trace::Track::campaign(),
                              "campaign " + spec.name);
    result.search = delta_debug_search(ev, sopts);
    result.summary = summarize(spec.name, result.search, cluster);
    if (tr != nullptr) {
      campaign_span.annotate({{"variants", result.summary.total},
                              {"best_speedup", result.summary.best_speedup},
                              {"wall_hours", result.summary.wall_hours},
                              {"finished", result.summary.finished}});
      tr->instant("campaign/summary", trace::Track::campaign(), tr->now_us(),
                  {{"model", result.summary.model},
                   {"total", result.summary.total},
                   {"pass_pct", result.summary.pass_pct},
                   {"fail_pct", result.summary.fail_pct},
                   {"timeout_pct", result.summary.timeout_pct},
                   {"error_pct", result.summary.error_pct},
                   {"best_speedup", result.summary.best_speedup},
                   {"finished", result.summary.finished},
                   {"wall_hours", result.summary.wall_hours}});
    }
  }
  result.figure6 = figure6_series(ev, result.search);

  const Config& final_config = result.search.best.has_value()
                                   ? *result.search.best
                                   : result.search.accepted;
  for (std::size_t i = 0; i < ev.space().size(); ++i) {
    result.final_kinds[ev.space().atoms()[i].qualified] = final_config.kinds[i];
  }
  result.replayed_from_journal = ev.replayed_from_journal();
  if (journal != nullptr && !journal->error().is_ok()) {
    result.summary.journal_error = journal->error().to_string();
  }
  if (tr != nullptr) {
    // Flush explicitly so a sink that failed mid-run surfaces in the
    // summary. A campaign that spent 12 simulated hours searching is worth
    // more than its timeline — losing the trace degrades the run, it does
    // not void it. (Failing to *open* a sink still fails the campaign up
    // front, before any work.)
    const Status flushed = tracer.flush();
    if (!flushed.is_ok()) result.summary.trace_error = flushed.to_string();
  }
  return result;
}

}  // namespace prose::tuner
