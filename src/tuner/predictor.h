// Learned variant-performance prediction (§V's closing recommendation).
//
// The paper argues that scaling FPPT requires avoiding dynamic evaluation of
// bad variants and points at learned predictors of mixed-precision
// performance (its ref. [42]) as the needed innovation. This module
// implements that extension over our substrate: a ridge-regression model on
// cheap *static* features of a variant (fraction lowered, mixed-flow
// penalty, wrapper count, vectorization report, cast sites) that predicts
// Eq. (1) speedup without running the variant. The ablation bench trains it
// on a prefix of a recorded search trace and scores it on the rest.
#pragma once

#include <vector>

#include "tuner/evaluator.h"
#include "tuner/search.h"

namespace prose::tuner {

/// Static (no-execution) features of one configuration. Computing them costs
/// one transform + resolve + compile — the T2 half of the cycle, without T3.
struct VariantFeatures {
  double fraction32 = 0.0;
  double mixed_flow_penalty = 0.0;    // pre-wrap calls × elements (normalized)
  double wrappers = 0.0;              // wrappers the transform generated
  double vectorized_loops = 0.0;      // post-transform vectorization report
  double cast_sites = 0.0;            // in-loop kind-conversion points
  double array_atoms_lowered = 0.0;   // lowered atoms that are arrays

  static constexpr std::size_t kCount = 6;
  [[nodiscard]] std::array<double, kCount> as_array() const {
    return {fraction32, mixed_flow_penalty, wrappers,
            vectorized_loops, cast_sites, array_atoms_lowered};
  }
};

/// Extracts features; fails only if the transform itself fails.
StatusOr<VariantFeatures> extract_features(const Evaluator& evaluator,
                                           const Config& config);

/// Ridge regression over standardized features.
class RidgePredictor {
 public:
  explicit RidgePredictor(double lambda = 1.0) : lambda_(lambda) {}

  /// Fits targets ~ features. Requires at least 2 samples.
  Status fit(const std::vector<VariantFeatures>& features,
             const std::vector<double>& targets);

  [[nodiscard]] bool trained() const { return trained_; }
  [[nodiscard]] double predict(const VariantFeatures& f) const;

  /// Coefficient of determination on a held-out set.
  [[nodiscard]] double r_squared(const std::vector<VariantFeatures>& features,
                                 const std::vector<double>& targets) const;

 private:
  double lambda_;
  bool trained_ = false;
  std::array<double, VariantFeatures::kCount> mean_{};
  std::array<double, VariantFeatures::kCount> scale_{};
  std::array<double, VariantFeatures::kCount> weights_{};
  double intercept_ = 0.0;
};

/// Spearman rank correlation between two equally-sized samples — the
/// ranking quality that matters for using predictions as a search pre-filter.
double spearman_correlation(const std::vector<double>& a, const std::vector<double>& b);

/// Convenience: train on the first `train_fraction` of a recorded trace
/// (completed variants only) and report held-out quality.
struct PredictorEvaluation {
  std::size_t train_samples = 0;
  std::size_t test_samples = 0;
  double r2 = 0.0;
  double spearman = 0.0;
};

StatusOr<PredictorEvaluation> evaluate_predictor_on_trace(
    const Evaluator& evaluator, const SearchResult& trace,
    double train_fraction = 0.6, double lambda = 1.0);

}  // namespace prose::tuner
