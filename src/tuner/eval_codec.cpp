#include "tuner/eval_codec.h"

#include <cmath>
#include <cstdio>

#include "support/trace.h"

namespace prose::tuner {

std::string json_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0.0 ? "Infinity" : "-Infinity";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_quoted(std::string_view s) {
  return '"' + trace::json_escape(s) + '"';
}

void append_json_map(std::string& out, const char* name,
                     const std::map<std::string, double>& m) {
  out += json_quoted(name);
  out += ":{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out += ',';
    first = false;
    out += json_quoted(k);
    out += ':';
    out += json_double(v);
  }
  out += '}';
}

void append_json_map(std::string& out, const char* name,
                     const std::map<std::string, std::uint64_t>& m) {
  out += json_quoted(name);
  out += ":{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out += ',';
    first = false;
    out += json_quoted(k);
    out += ':';
    out += std::to_string(v);
  }
  out += '}';
}

void append_evaluation_fields(std::string& out, const Evaluation& e) {
  out += ",\"outcome\":" + json_quoted(to_string(e.outcome));
  if (!e.detail.empty()) out += ",\"detail\":" + json_quoted(e.detail);
  out += ",\"attempts\":" + std::to_string(e.attempts);
  out += ",\"metric\":" + json_double(e.metric);
  out += ",\"error\":" + json_double(e.error);
  out += ",\"hotspot_cycles\":" + json_double(e.hotspot_cycles);
  out += ",\"whole_cycles\":" + json_double(e.whole_cycles);
  out += ",\"cast_cycles\":" + json_double(e.cast_cycles);
  out += ",\"measured_cycles\":" + json_double(e.measured_cycles);
  out += ",\"speedup\":" + json_double(e.speedup);
  out += ",\"fraction32\":" + json_double(e.fraction32);
  out += ",\"wrappers\":" + std::to_string(e.wrappers);
  out += ",\"node_seconds\":" + json_double(e.node_seconds);
  out += ',';
  append_json_map(out, "proc_mean_cycles", e.proc_mean_cycles);
  out += ',';
  append_json_map(out, "proc_calls", e.proc_calls);
}

StatusOr<Evaluation> evaluation_from_json(const json::Value& v) {
  Evaluation e;
  const json::Value* outcome = v.find("outcome");
  if (outcome == nullptr ||
      !outcome_from_string(outcome->str_or(""), &e.outcome)) {
    return Status(StatusCode::kParseError,
                  "evaluation record has no valid outcome");
  }
  const auto num = [&](const char* name, double* slot) {
    if (const json::Value* f = v.find(name); f != nullptr) *slot = f->num_or(0.0);
  };
  if (const json::Value* f = v.find("detail"); f != nullptr) {
    e.detail = f->str_or("");
  }
  num("metric", &e.metric);
  num("error", &e.error);
  num("hotspot_cycles", &e.hotspot_cycles);
  num("whole_cycles", &e.whole_cycles);
  num("cast_cycles", &e.cast_cycles);
  num("measured_cycles", &e.measured_cycles);
  num("speedup", &e.speedup);
  num("fraction32", &e.fraction32);
  num("node_seconds", &e.node_seconds);
  if (const json::Value* f = v.find("wrappers"); f != nullptr) {
    e.wrappers = static_cast<int>(f->int_or(0));
  }
  if (const json::Value* f = v.find("attempts"); f != nullptr) {
    e.attempts = static_cast<int>(f->int_or(1));
  }
  if (const json::Value* f = v.find("proc_mean_cycles");
      f != nullptr && f->is_object()) {
    for (const auto& [k, val] : f->members()) {
      e.proc_mean_cycles[k] = val.num_or(0.0);
    }
  }
  if (const json::Value* f = v.find("proc_calls"); f != nullptr && f->is_object()) {
    for (const auto& [k, val] : f->members()) {
      e.proc_calls[k] = static_cast<std::uint64_t>(val.int_or(0));
    }
  }
  return e;
}

}  // namespace prose::tuner
