#include "tuner/static_filter.h"

#include "ftn/callgraph.h"
#include "ftn/paramflow.h"
#include "ftn/transform.h"
#include "support/strings.h"

namespace prose::tuner {

StatusOr<StaticScreener> StaticScreener::create(const Evaluator& evaluator,
                                                StaticFilterOptions options) {
  StaticScreener screener;
  screener.options_ = options;
  const auto& rp = evaluator.pristine();
  const ftn::CallGraph cg = ftn::CallGraph::build(rp);
  const ftn::ParamFlowGraph pf = ftn::build_param_flow(rp, cg);
  screener.baseline_total_flow_ = pf.total_flow();

  auto compiled = sim::compile(rp, evaluator.spec().machine);
  if (!compiled.is_ok()) return compiled.status();
  screener.baseline_vectorized_ = compiled->vec_report.vectorized_count();
  return screener;
}

StaticScreenResult StaticScreener::screen(const Evaluator& evaluator,
                                          const Config& config) const {
  StaticScreenResult result;
  result.baseline_vectorized_loops = baseline_vectorized_;

  auto variant = ftn::make_variant(evaluator.pristine().program,
                                   evaluator.space().to_assignment(config));
  if (!variant.is_ok()) {
    result.rejected = true;
    result.reason = "transform failed: " + variant.status().to_string();
    return result;
  }

  if (options_.use_mixed_flow_filter) {
    // After wrapping, the former mismatches appear as wrapper-internal array
    // copies; measure the *pre-wrap* mismatch volume instead, which is what
    // the §V cost model would see.
    ftn::Program raw = evaluator.pristine().program.clone();
    if (ftn::apply_assignment(raw, evaluator.space().to_assignment(config)).is_ok()) {
      auto resolved = ftn::resolve(std::move(raw));
      if (resolved.is_ok()) {
        const ftn::CallGraph cg = ftn::CallGraph::build(resolved.value());
        const ftn::ParamFlowGraph pf = ftn::build_param_flow(resolved.value(), cg);
        result.mixed_flow_penalty = pf.mismatch_penalty();
        if (baseline_total_flow_ > 0.0 &&
            result.mixed_flow_penalty >
                options_.mixed_flow_fraction_threshold * baseline_total_flow_) {
          result.rejected = true;
          result.reason = "mixed-precision interprocedural flow penalty " +
                          format_double(result.mixed_flow_penalty, 0) + " exceeds " +
                          format_percent(options_.mixed_flow_fraction_threshold) +
                          " of baseline flow";
        }
      }
    }
  }

  if (options_.use_vectorization_filter && !result.rejected) {
    auto compiled = sim::compile(variant.value(), evaluator.spec().machine);
    if (compiled.is_ok()) {
      result.vectorized_loops = compiled->vec_report.vectorized_count();
      if (result.vectorized_loops < baseline_vectorized_) {
        result.rejected = true;
        result.reason = "vectorization report regressed: " +
                        std::to_string(result.vectorized_loops) + " < baseline " +
                        std::to_string(baseline_vectorized_);
      }
    }
  }
  return result;
}

}  // namespace prose::tuner
