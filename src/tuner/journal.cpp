#include "tuner/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/json.h"
#include "support/trace.h"
#include "tuner/eval_codec.h"

namespace prose::tuner {
namespace {

// The %.17g / Infinity / NaN double encoding and the Evaluation field codec
// live in eval_codec.h, shared with the evaluation service (wire frames,
// result store) — a served result round-trips to the exact bytes a local
// journal would have written.
std::string quoted(std::string_view s) { return json_quoted(s); }

std::string header_line(const JournalHeader& h) {
  std::string line = "{\"type\":\"campaign\",\"format\":1";
  line += ",\"model\":" + quoted(h.model);
  line += ",\"noise_seed\":" + std::to_string(h.noise_seed);
  line += ",\"fault_spec\":" + quoted(h.fault_spec);
  line += ",\"fault_seed\":" + std::to_string(h.fault_seed);
  line += ",\"retry_max_attempts\":" + std::to_string(h.retry_max_attempts);
  line += ",\"retry_backoff_seconds\":" + json_double(h.retry_backoff_seconds);
  line += ",\"nodes\":" + std::to_string(h.nodes);
  line += ",\"wall_budget_seconds\":" + json_double(h.wall_budget_seconds);
  line += "}";
  return line;
}

StatusOr<JournalHeader> parse_header(const json::Value& v) {
  JournalHeader h;
  const json::Value* model = v.find("model");
  if (model == nullptr || !model->is_string()) {
    return Status(StatusCode::kParseError, "journal header has no model");
  }
  h.model = model->str_or("");
  h.noise_seed = static_cast<std::uint64_t>(
      v.find("noise_seed") != nullptr ? v.find("noise_seed")->int_or(0) : 0);
  if (const json::Value* f = v.find("fault_spec"); f != nullptr) {
    h.fault_spec = f->str_or("");
  }
  h.fault_seed = static_cast<std::uint64_t>(
      v.find("fault_seed") != nullptr ? v.find("fault_seed")->int_or(0) : 0);
  if (const json::Value* f = v.find("retry_max_attempts"); f != nullptr) {
    h.retry_max_attempts = static_cast<int>(f->int_or(1));
  }
  if (const json::Value* f = v.find("retry_backoff_seconds"); f != nullptr) {
    h.retry_backoff_seconds = f->num_or(0.0);
  }
  if (const json::Value* f = v.find("nodes"); f != nullptr) {
    h.nodes = static_cast<std::size_t>(f->int_or(0));
  }
  if (const json::Value* f = v.find("wall_budget_seconds"); f != nullptr) {
    h.wall_budget_seconds = f->num_or(0.0);
  }
  return h;
}

StatusOr<JournalVariant> parse_variant(const json::Value& v) {
  JournalVariant out;
  const json::Value* key = v.find("key");
  if (key == nullptr || !key->is_string()) {
    return Status(StatusCode::kParseError, "variant record has no key");
  }
  out.key = key->str_or("");
  out.stream = static_cast<std::uint64_t>(
      v.find("stream") != nullptr ? v.find("stream")->int_or(0) : 0);
  auto eval = evaluation_from_json(v);
  if (!eval.is_ok()) return eval.status();
  out.eval = std::move(eval.value());
  return out;
}

}  // namespace

std::string JournalHeader::mismatch(const JournalHeader& other) const {
  const auto differs = [](const std::string& what, const std::string& a,
                          const std::string& b) {
    return what + " ('" + a + "' vs '" + b + "')";
  };
  if (model != other.model) return differs("model", model, other.model);
  if (noise_seed != other.noise_seed) {
    return differs("noise seed", std::to_string(noise_seed),
                   std::to_string(other.noise_seed));
  }
  if (fault_spec != other.fault_spec) {
    return differs("fault spec", fault_spec, other.fault_spec);
  }
  if (fault_seed != other.fault_seed) {
    return differs("fault seed", std::to_string(fault_seed),
                   std::to_string(other.fault_seed));
  }
  if (retry_max_attempts != other.retry_max_attempts) {
    return differs("retry max attempts", std::to_string(retry_max_attempts),
                   std::to_string(other.retry_max_attempts));
  }
  if (retry_backoff_seconds != other.retry_backoff_seconds) {
    return differs("retry backoff", json_double(retry_backoff_seconds),
                   json_double(other.retry_backoff_seconds));
  }
  if (nodes != other.nodes) {
    return differs("cluster nodes", std::to_string(nodes),
                   std::to_string(other.nodes));
  }
  if (wall_budget_seconds != other.wall_budget_seconds) {
    return differs("wall budget", json_double(wall_budget_seconds),
                   json_double(other.wall_budget_seconds));
  }
  return "";
}

StatusOr<JournalData> Journal::load(const std::string& path) {
  JournalData data;
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) return data;  // missing file: fresh start
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  if (text.empty()) return data;

  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // partial trailing record: stop
    const std::string_view line(text.data() + pos, nl - pos);
    if (!line.empty()) {
      auto parsed = json::parse(line);
      if (!parsed.is_ok()) {
        if (first) {
          // A journal's first line is one fsync'd header record; a torn
          // header never gains a newline. A *complete* first line that is
          // not JSON means this is somebody else's file — refuse before
          // open() would truncate it.
          return Status(StatusCode::kInvalidArgument,
                        "'" + path +
                            "' does not start with a campaign header — "
                            "refusing to treat it as a journal");
        }
        break;  // corrupt record: keep the prefix before it
      }
      const json::Value& v = parsed.value();
      const std::string type =
          v.find("type") != nullptr ? v.find("type")->str_or("") : "";
      if (first) {
        if (type != "campaign") {
          return Status(StatusCode::kInvalidArgument,
                        "'" + path +
                            "' does not start with a campaign header — "
                            "refusing to treat it as a journal");
        }
        auto header = parse_header(v);
        if (!header.is_ok()) return header.status();
        data.header = std::move(header.value());
        data.has_header = true;
        first = false;
      } else if (type == "variant") {
        auto variant = parse_variant(v);
        if (!variant.is_ok()) break;  // corrupt record: stop at the prefix
        data.variants.push_back(std::move(variant.value()));
      }
      // "batch" markers (and unknown record types) are informational.
    }
    pos = nl + 1;
    data.valid_bytes = pos;
  }
  if (!data.has_header && data.valid_bytes > 0) {
    return Status(StatusCode::kInvalidArgument,
                  "'" + path + "' has records but no campaign header");
  }
  return data;
}

Journal::Journal(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

Journal::~Journal() {
  std::lock_guard lock(mu_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

StatusOr<std::unique_ptr<Journal>> Journal::open(
    const std::string& path, const JournalHeader& header,
    std::optional<std::size_t> keep_bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return Status(StatusCode::kInvalidArgument,
                  "cannot open journal '" + path + "': " + std::strerror(errno));
  }
  const off_t keep =
      keep_bytes.has_value() ? static_cast<off_t>(*keep_bytes) : 0;
  if (::ftruncate(fd, keep) != 0 || ::lseek(fd, keep, SEEK_SET) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status(StatusCode::kInvalidArgument,
                  "cannot truncate journal '" + path + "': " + err);
  }
  std::unique_ptr<Journal> journal(new Journal(fd, path));
  if (keep == 0) {
    journal->append_line(header_line(header), /*count_variant=*/false);
    if (Status s = journal->error(); !s.is_ok()) return s;
  }
  return journal;
}

void Journal::append_line(const std::string& line, bool count_variant) {
  std::size_t killer = 0;
  {
    std::lock_guard lock(mu_);
    if (fd_ < 0 || !error_.is_ok()) return;
    const std::string record = line + "\n";
    const char* p = record.data();
    std::size_t left = record.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        error_ = Status(StatusCode::kInvalidArgument,
                        "journal write failed on '" + path_ +
                            "': " + std::strerror(errno));
        if (m_errors_ != nullptr) m_errors_->inc();
        std::fprintf(stderr,
                     "warning: %s — campaign continues without journaling\n",
                     error_.message().c_str());
        ::close(fd_);
        fd_ = -1;
        return;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    // Make the record durable before the campaign acts on the evaluation:
    // that is what makes the journal a write-ahead log.
    const auto fsync_start = std::chrono::steady_clock::now();
    if (::fsync(fd_) != 0) {
      error_ = Status(StatusCode::kInvalidArgument,
                      "journal fsync failed on '" + path_ +
                          "': " + std::strerror(errno));
      if (m_errors_ != nullptr) m_errors_->inc();
      std::fprintf(stderr,
                   "warning: %s — campaign continues without journaling\n",
                   error_.message().c_str());
      ::close(fd_);
      fd_ = -1;
      return;
    }
    if (m_fsync_seconds_ != nullptr) {
      m_fsync_seconds_->observe(std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    fsync_start)
                                    .count());
    }
    if (m_records_ != nullptr) m_records_->inc();
    if (count_variant) {
      ++appended_;
      if (kill_after_ > 0 && appended_ >= kill_after_) killer = appended_;
    }
  }
  if (killer > 0) {
    // Chaos knob: die *after* the record is durable, exactly like a node
    // loss between two evaluations. Raised outside the lock so the signal
    // handler (none, for SIGKILL) cannot deadlock.
    std::fprintf(stderr, "journal: chaos kill after %zu variants\n", killer);
    std::raise(SIGKILL);
  }
}

void Journal::append_variant(const std::string& key, std::uint64_t stream,
                             const Evaluation& e) {
  std::string line = "{\"type\":\"variant\"";
  line += ",\"key\":" + quoted(key);
  line += ",\"stream\":" + std::to_string(stream);
  append_evaluation_fields(line, e);
  line += '}';
  append_line(line, /*count_variant=*/true);
}

void Journal::append_diag(const BlameReport& r) {
  std::string line = "{\"type\":\"diag\"";
  line += ",\"key\":" + quoted(r.key);
  line += ",\"outcome\":" + quoted(to_string(r.outcome));
  line += ",\"max_rel_div\":" + json_double(r.max_rel_div);
  line += ",\"cancellations\":" + std::to_string(r.cancellations);
  line += ",\"control_divergences\":" + std::to_string(r.control_divergences);
  if (r.has_first_divergence) {
    line += ",\"first_divergence_proc\":" + quoted(r.first_divergence_proc);
    line += ",\"first_divergence_instr\":" +
            std::to_string(r.first_divergence_instr);
  }
  if (!r.fault_proc.empty()) {
    line += ",\"fault_proc\":" + quoted(r.fault_proc);
  }
  // Top of each ranking only — the journal is provenance, not the report.
  std::map<std::string, double> vars;
  for (const VariableBlame& v : r.variables) {
    if (!v.demoted) continue;
    vars[v.qualified] = v.max_rel_div;
    if (vars.size() >= 8) break;
  }
  line += ',';
  append_json_map(line, "variables", vars);
  std::map<std::string, double> procs;
  for (const ProcedureBlame& p : r.procedures) {
    procs[p.qualified] = p.blame;
    if (procs.size() >= 8) break;
  }
  line += ',';
  append_json_map(line, "procedures", procs);
  line += '}';
  append_line(line, /*count_variant=*/false);
}

void Journal::append_batch(std::size_t round, double cluster_seconds,
                           std::size_t variants) {
  std::string line = "{\"type\":\"batch\"";
  line += ",\"round\":" + std::to_string(round);
  line += ",\"cluster_seconds\":" + json_double(cluster_seconds);
  line += ",\"variants\":" + std::to_string(variants);
  line += '}';
  append_line(line, /*count_variant=*/false);
}

void Journal::append_metrics(const obs::MetricsSnapshot& snapshot) {
  std::string line = "{\"type\":\"metrics\"";
  std::map<std::string, double> scalars;
  for (const auto& s : snapshot.series) {
    if (s.kind != obs::SeriesKind::kHistogram) {
      scalars[s.name] = s.value;
      continue;
    }
    scalars[s.name + "_count"] = static_cast<double>(s.hist.count);
    scalars[s.name + "_sum"] = s.hist.sum;
    scalars[s.name + "_p50"] = s.hist.quantile(0.5);
    scalars[s.name + "_p99"] = s.hist.quantile(0.99);
  }
  line += ',';
  append_json_map(line, "series", scalars);
  line += '}';
  append_line(line, /*count_variant=*/false);
}

void Journal::set_metrics(obs::Registry* registry) {
  std::lock_guard lock(mu_);
  if (registry == nullptr) {
    m_records_ = nullptr;
    m_fsync_seconds_ = nullptr;
    m_errors_ = nullptr;
    return;
  }
  m_records_ = registry->counter("prose_journal_records_total",
                                 "Journal records made durable");
  m_fsync_seconds_ = registry->histogram("prose_journal_fsync_seconds",
                                         "Journal record fsync latency",
                                         obs::latency_buckets_seconds());
  m_errors_ = registry->counter(
      "prose_journal_errors_total",
      "Journal write/fsync failures (sticky degradation to no journaling)");
}

Status Journal::error() const {
  std::lock_guard lock(mu_);
  return error_;
}

std::size_t Journal::appended_variants() const {
  std::lock_guard lock(mu_);
  return appended_;
}

void Journal::set_kill_after_variants(std::size_t n) {
  std::lock_guard lock(mu_);
  kill_after_ = n;
}

}  // namespace prose::tuner
