#include "tuner/html_report.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "support/strings.h"

namespace prose::tuner {
namespace {

constexpr int kWidth = 860;
constexpr int kHeight = 540;
constexpr int kMarginLeft = 70;
constexpr int kMarginRight = 30;
constexpr int kMarginTop = 50;
constexpr int kMarginBottom = 60;

struct AxisMap {
  double lo = 0.0;
  double hi = 1.0;
  bool log_scale = false;
  int pixel_lo = 0;
  int pixel_hi = 1;

  [[nodiscard]] double to_pixel(double v) const {
    const double t = log_scale ? (std::log10(v) - std::log10(lo)) /
                                     (std::log10(hi) - std::log10(lo))
                               : (v - lo) / (hi - lo);
    return pixel_lo + t * (pixel_hi - pixel_lo);
  }
};

std::string html_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      // Also neutral inside attribute values (SVG <title> text and table
      // cells are built from model-supplied identifiers).
      case '"': out += "&quot;"; break;
      case '\'': out += "&#39;"; break;
      default: out += c;
    }
  }
  return out;
}

void page_head(std::ostringstream& os, const std::string& title) {
  os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>"
     << html_escape(title) << "</title>\n<style>\n"
     << "body { font-family: sans-serif; margin: 24px; }\n"
     << "svg { border: 1px solid #ccc; background: #fff; }\n"
     << "circle:hover { stroke: #000; stroke-width: 2; }\n"
     << ".legend { font-size: 14px; margin-top: 8px; }\n"
     << ".note { color: #555; font-size: 13px; }\n"
     << "</style></head><body>\n<h2>" << html_escape(title) << "</h2>\n";
}

void svg_axes(std::ostringstream& os, const AxisMap& x, const AxisMap& y,
              const std::string& x_label, const std::string& y_label) {
  // Frame.
  os << "<rect x=\"" << kMarginLeft << "\" y=\"" << kMarginTop << "\" width=\""
     << kWidth - kMarginLeft - kMarginRight << "\" height=\""
     << kHeight - kMarginTop - kMarginBottom
     << "\" fill=\"none\" stroke=\"#888\"/>\n";
  // X ticks.
  const int n_ticks = 6;
  for (int t = 0; t <= n_ticks; ++t) {
    double v;
    if (x.log_scale) {
      const double e = std::log10(x.lo) +
                       (std::log10(x.hi) - std::log10(x.lo)) * t / n_ticks;
      v = std::pow(10.0, e);
    } else {
      v = x.lo + (x.hi - x.lo) * t / n_ticks;
    }
    const double px = x.to_pixel(v);
    os << "<line x1=\"" << px << "\" y1=\"" << kHeight - kMarginBottom
       << "\" x2=\"" << px << "\" y2=\"" << kHeight - kMarginBottom + 5
       << "\" stroke=\"#555\"/>\n"
       << "<text x=\"" << px << "\" y=\"" << kHeight - kMarginBottom + 20
       << "\" text-anchor=\"middle\" font-size=\"11\">" << format_sci(v, 2)
       << "</text>\n";
  }
  // Y ticks.
  for (int t = 0; t <= n_ticks; ++t) {
    double v;
    if (y.log_scale) {
      const double e = std::log10(y.lo) +
                       (std::log10(y.hi) - std::log10(y.lo)) * t / n_ticks;
      v = std::pow(10.0, e);
    } else {
      v = y.lo + (y.hi - y.lo) * t / n_ticks;
    }
    const double py = y.to_pixel(v);
    os << "<line x1=\"" << kMarginLeft - 5 << "\" y1=\"" << py << "\" x2=\""
       << kMarginLeft << "\" y2=\"" << py << "\" stroke=\"#555\"/>\n"
       << "<text x=\"" << kMarginLeft - 8 << "\" y=\"" << py + 4
       << "\" text-anchor=\"end\" font-size=\"11\">" << format_double(v, 2)
       << "</text>\n";
  }
  os << "<text x=\"" << (kMarginLeft + kWidth - kMarginRight) / 2 << "\" y=\""
     << kHeight - 12 << "\" text-anchor=\"middle\" font-size=\"13\">"
     << html_escape(x_label) << "</text>\n";
  os << "<text x=\"18\" y=\"" << (kMarginTop + kHeight - kMarginBottom) / 2
     << "\" text-anchor=\"middle\" font-size=\"13\" transform=\"rotate(-90 18 "
     << (kMarginTop + kHeight - kMarginBottom) / 2 << ")\">"
     << html_escape(y_label) << "</text>\n";
}

}  // namespace

std::string variants_html(const std::string& title, const SearchResult& search,
                          double error_threshold) {
  std::ostringstream os;
  page_head(os, title);

  // Plottable points.
  struct Pt {
    const VariantRecord* rec;
    double err;
  };
  std::vector<Pt> pts;
  std::size_t timeouts = 0, errors = 0;
  double err_lo = error_threshold > 0 ? error_threshold : 1e-12;
  double err_hi = err_lo * 10;
  double sp_lo = 0.9, sp_hi = 1.1;
  for (const auto& r : search.records) {
    if (r.eval.outcome == Outcome::kTimeout) {
      ++timeouts;
      continue;
    }
    if (r.eval.outcome == Outcome::kRuntimeError ||
        r.eval.outcome == Outcome::kCompileError) {
      ++errors;
      continue;
    }
    if (!std::isfinite(r.eval.error) || !std::isfinite(r.eval.speedup)) continue;
    const double err = std::max(r.eval.error, 1e-17);
    pts.push_back({&r, err});
    err_lo = std::min(err_lo, err);
    err_hi = std::max(err_hi, err);
    sp_lo = std::min(sp_lo, r.eval.speedup);
    sp_hi = std::max(sp_hi, r.eval.speedup);
  }
  AxisMap x{err_lo / 2, err_hi * 2, true, kMarginLeft, kWidth - kMarginRight};
  AxisMap y{sp_lo * 0.92, sp_hi * 1.08, false, kHeight - kMarginBottom, kMarginTop};

  os << "<svg width=\"" << kWidth << "\" height=\"" << kHeight << "\">\n";
  svg_axes(os, x, y, "relative error (log)", "speedup (Eq. 1)");

  // Guides: error threshold (vertical) and speedup 1x (horizontal).
  if (error_threshold > x.lo && error_threshold < x.hi) {
    const double px = x.to_pixel(error_threshold);
    os << "<line x1=\"" << px << "\" y1=\"" << kMarginTop << "\" x2=\"" << px
       << "\" y2=\"" << kHeight - kMarginBottom
       << "\" stroke=\"#c33\" stroke-dasharray=\"5,4\"/>\n";
  }
  if (1.0 > y.lo && 1.0 < y.hi) {
    const double py = y.to_pixel(1.0);
    os << "<line x1=\"" << kMarginLeft << "\" y1=\"" << py << "\" x2=\""
       << kWidth - kMarginRight << "\" y2=\"" << py
       << "\" stroke=\"#36c\" stroke-dasharray=\"5,4\"/>\n";
  }

  for (const auto& p : pts) {
    const bool pass = p.rec->eval.outcome == Outcome::kPass;
    os << "<circle cx=\"" << x.to_pixel(p.err) << "\" cy=\""
       << y.to_pixel(p.rec->eval.speedup) << "\" r=\"4\" fill=\""
       << (pass ? "#2a2" : "#d44") << "\" fill-opacity=\"0.75\">"
       << "<title>variant " << p.rec->id << "\nspeedup "
       << format_double(p.rec->eval.speedup, 3) << "x\nerror "
       << format_sci(p.rec->eval.error, 3) << "\n32-bit "
       << format_percent(p.rec->eval.fraction32) << "\nwrappers "
       << p.rec->eval.wrappers << "</title></circle>\n";
  }
  os << "</svg>\n";
  os << "<div class=\"legend\"><span style=\"color:#2a2\">&#9679;</span> pass "
     << "&nbsp; <span style=\"color:#d44\">&#9679;</span> fail &nbsp; "
     << "red dashes: error threshold &nbsp; blue dashes: speedup 1x</div>\n";
  os << "<p class=\"note\">" << pts.size() << " completed variants plotted; "
     << timeouts << " timeouts and " << errors
     << " runtime/compile errors have no coordinates.</p>\n";
  os << "</body></html>\n";
  return os.str();
}

std::string figure6_html(const std::string& title,
                         const std::vector<ProcedureVariantPoint>& points) {
  std::ostringstream os;
  page_head(os, title);

  std::map<std::string, std::vector<const ProcedureVariantPoint*>> by_proc;
  double sp_lo = 0.5, sp_hi = 2.0;
  for (const auto& p : points) {
    by_proc[p.proc].push_back(&p);
    const double s = std::max(p.speedup, 1e-4);
    sp_lo = std::min(sp_lo, s);
    sp_hi = std::max(sp_hi, s);
  }
  AxisMap x{0.5, static_cast<double>(by_proc.size()) + 0.5, false, kMarginLeft,
            kWidth - kMarginRight};
  AxisMap y{sp_lo / 1.5, sp_hi * 1.5, true, kHeight - kMarginBottom, kMarginTop};

  os << "<svg width=\"" << kWidth << "\" height=\"" << kHeight << "\">\n";
  // Frame + log y ticks; x tick per procedure.
  os << "<rect x=\"" << kMarginLeft << "\" y=\"" << kMarginTop << "\" width=\""
     << kWidth - kMarginLeft - kMarginRight << "\" height=\""
     << kHeight - kMarginTop - kMarginBottom
     << "\" fill=\"none\" stroke=\"#888\"/>\n";
  for (double v = std::pow(10.0, std::floor(std::log10(y.lo))); v <= y.hi; v *= 10.0) {
    if (v < y.lo) continue;
    const double py = y.to_pixel(v);
    os << "<line x1=\"" << kMarginLeft << "\" y1=\"" << py << "\" x2=\""
       << kWidth - kMarginRight << "\" y2=\"" << py
       << "\" stroke=\"#eee\"/><text x=\"" << kMarginLeft - 8 << "\" y=\""
       << py + 4 << "\" text-anchor=\"end\" font-size=\"11\">"
       << format_double(v, v < 1 ? 2 : 0) << "x</text>\n";
  }
  if (1.0 > y.lo && 1.0 < y.hi) {
    const double py = y.to_pixel(1.0);
    os << "<line x1=\"" << kMarginLeft << "\" y1=\"" << py << "\" x2=\""
       << kWidth - kMarginRight << "\" y2=\"" << py
       << "\" stroke=\"#36c\" stroke-dasharray=\"5,4\"/>\n";
  }

  double col = 1.0;
  for (const auto& [proc, pts] : by_proc) {
    const double px_center = x.to_pixel(col);
    // Shortened label: the procedure name without the module prefix.
    const std::size_t sep = proc.rfind("::");
    const std::string short_name = sep == std::string::npos ? proc : proc.substr(sep + 2);
    os << "<text x=\"" << px_center << "\" y=\"" << kHeight - kMarginBottom + 20
       << "\" text-anchor=\"middle\" font-size=\"10\">" << html_escape(short_name)
       << " (" << pts.size() << ")</text>\n";
    double jitter = -0.18;
    for (const auto* p : pts) {
      const double s = std::max(p->speedup, 1e-4);
      os << "<circle cx=\"" << x.to_pixel(col + jitter) << "\" cy=\""
         << y.to_pixel(s) << "\" r=\"4\" fill=\"#37b\" fill-opacity=\"0.7\">"
         << "<title>" << html_escape(proc) << "\npattern "
         << html_escape(p->scope_key)
         << "\nper-call speedup " << format_double(p->speedup, 3) << "x\n32-bit "
         << format_percent(p->fraction32) << "</title></circle>\n";
      jitter += 0.36 / std::max<std::size_t>(1, pts.size());
    }
    col += 1.0;
  }
  os << "</svg>\n";
  os << "<p class=\"note\">One dot per unique per-procedure precision "
        "assignment; per-call speedup on a log axis (blue dashes: 1x). Hover "
        "a dot for its pattern.</p>\n";
  os << "</body></html>\n";
  return os.str();
}

std::string diagnosis_html(const std::string& title,
                           const CampaignDiagnosis& diag) {
  std::ostringstream os;
  page_head(os, title);
  os << "<style>table { border-collapse: collapse; margin-bottom: 18px; }\n"
     << "th, td { border: 1px solid #ccc; padding: 3px 9px; font-size: 13px; "
        "text-align: left; }\nth { background: #f3f3f3; }\n"
     << "td.num { text-align: right; font-variant-numeric: tabular-nums; }\n"
     << "</style>\n";
  os << "<p class=\"note\">" << diag.rejected << " distinct rejected variants, "
     << diag.diagnosed << " shadow-diagnosed (binary64 shadow re-run).</p>\n";

  const auto num = [](double v, int digits) {
    return std::isfinite(v) ? format_double(v, digits) : std::string("&infin;");
  };

  os << "<h3>Variable criticality</h3>\n<table>\n<tr><th>#</th>"
     << "<th>variable</th><th>score</th><th>fail assoc.</th>"
     << "<th>max divergence</th><th>demoted→rejected</th><th>pivotal</th>"
     << "<th>final</th></tr>\n";
  std::size_t rank = 0;
  for (const AtomCriticality& a : diag.atoms) {
    if (++rank > 20) break;
    os << "<tr><td class=\"num\">" << rank << "</td><td>"
       << html_escape(a.qualified) << "</td><td class=\"num\">"
       << num(a.score, 3) << "</td><td class=\"num\">"
       << num(a.fail_association, 3) << "</td><td class=\"num\">"
       << (std::isfinite(a.max_rel_div) ? format_sci(a.max_rel_div, 2)
                                        : std::string("&infin;"))
       << "</td><td class=\"num\">" << a.demoted_rejected << "/"
       << a.demoted_total << "</td><td class=\"num\">" << a.pivotal
       << "</td><td>" << (a.final64 ? "64-bit" : "32-bit") << "</td></tr>\n";
  }
  os << "</table>\n";

  os << "<h3>Procedure blame</h3>\n<table>\n<tr><th>#</th><th>procedure</th>"
     << "<th>blame share</th><th>cancellations</th><th>control div.</th>"
     << "<th>faults</th><th>cast cycles</th></tr>\n";
  rank = 0;
  for (const ProcCriticality& p : diag.procedures) {
    if (++rank > 20) break;
    os << "<tr><td class=\"num\">" << rank << "</td><td>"
       << html_escape(p.qualified) << "</td><td class=\"num\">"
       << num(p.blame_share, 3) << "</td><td class=\"num\">" << p.cancellations
       << "</td><td class=\"num\">" << p.control_divergences
       << "</td><td class=\"num\">" << p.faults << "</td><td class=\"num\">"
       << format_double(p.cast_cycles, 0) << "</td></tr>\n";
  }
  os << "</table>\n";

  os << "<h3>Diagnosed variants</h3>\n<table>\n<tr><th>variant</th>"
     << "<th>outcome</th><th>max divergence</th><th>first divergence</th>"
     << "<th>fault site</th></tr>\n";
  for (const BlameReport& r : diag.reports) {
    os << "<tr><td><code>" << html_escape(r.key) << "</code></td><td>"
       << to_string(r.outcome) << "</td><td class=\"num\">"
       << (std::isfinite(r.max_rel_div) ? format_sci(r.max_rel_div, 2)
                                        : std::string("&infin;"))
       << "</td><td>";
    if (r.has_first_divergence) {
      os << html_escape(r.first_divergence_proc) << " +"
         << r.first_divergence_instr;
    } else {
      os << "&mdash;";
    }
    os << "</td><td>"
       << (r.fault_proc.empty() ? std::string("&mdash;")
                                : html_escape(r.fault_proc))
       << "</td></tr>\n";
  }
  os << "</table>\n";
  os << "<p class=\"note\">Score = 0.45·fail-association + "
        "0.25·min(1, max divergence) + 0.20·pivotal + 0.10·kept-64-bit. "
        "Pivotal: a rejected variant differs from an evaluated non-rejected "
        "one in this atom's demotion alone. Blame share: each "
        "diagnosed variant distributes one unit of blame over its procedures "
        "(introduced divergence, cancellations, control divergences, fault "
        "site).</p>\n";
  os << "</body></html>\n";
  return os.str();
}

}  // namespace prose::tuner
