// Shared JSON encoding of Evaluation records.
//
// One encoding, three consumers: the write-ahead journal, the evaluation
// service's wire protocol, and the persistent result store all serialize
// evaluations through these helpers, so a result computed on a server and
// shipped over a socket round-trips to the exact bytes a local journal
// would have written. Doubles use %.17g (bit-exact round trip through
// json::parse's from_chars path); non-finite values use the
// Infinity/-Infinity/NaN tokens both json::parse and Python accept.
#pragma once

#include <map>
#include <string>

#include "support/json.h"
#include "tuner/evaluator.h"

namespace prose::tuner {

/// %.17g, with Infinity/-Infinity/NaN for non-finite values.
std::string json_double(double v);

/// `"escaped"` — the string as a quoted JSON literal.
std::string json_quoted(std::string_view s);

/// Appends `"name":{"k":v,...}` (no leading comma).
void append_json_map(std::string& out, const char* name,
                     const std::map<std::string, double>& m);
void append_json_map(std::string& out, const char* name,
                     const std::map<std::string, std::uint64_t>& m);

/// Appends every Evaluation field as `,"field":value` pairs (leading comma
/// included), suitable for splicing into an open JSON object.
void append_evaluation_fields(std::string& out, const Evaluation& e);

/// Inverse of append_evaluation_fields: reads the fields back out of a
/// parsed JSON object. Fails only on a missing/unknown outcome; every other
/// field is optional with a zero default (journal compatibility).
StatusOr<Evaluation> evaluation_from_json(const json::Value& v);

}  // namespace prose::tuner
