// Write-ahead campaign journal: crash-safe persistence of every evaluated
// variant, enabling bit-identical resume after a kill.
//
// The journal is an append-only JSONL file. The first record is a campaign
// header (model, seeds, fault spec, retry policy, cluster shape); every
// subsequent record is either one evaluated variant (config key, noise
// stream id, and the complete Evaluation) or a batch marker (search round +
// simulated cluster clock, informational). Each record is written with a
// single write() and fsync'd before append_variant returns, so a campaign
// killed at any instant leaves a journal whose complete-line prefix is a
// consistent write-ahead log; at most the in-flight record is lost.
//
// Resume never replays "campaign state" — it replays *evaluations*. The
// searches are deterministic given the evaluator, so a resumed campaign
// reruns the search from the start while the evaluator satisfies journaled
// configurations from the log instead of re-simulating them (see
// Evaluator::set_journal_replay). All derived state — memo cache, noise
// stream assignment, ClusterSim clock, delta-debug decisions — is recomputed
// on the identical inputs, which makes the final CampaignResult bit-identical
// to the uninterrupted run, for any worker count.
//
// Write failures (full disk, yanked volume) degrade gracefully: the journal
// warns once on stderr, stops writing, and records the error for
// CampaignSummary; the campaign itself keeps running.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "tuner/evaluator.h"

namespace prose::tuner {

/// Campaign identity, written as the journal's first record. A resume
/// refuses a journal whose header does not match the resuming campaign —
/// evaluations from a different model, seed, fault plan, or retry policy
/// would silently poison the memo cache.
struct JournalHeader {
  std::string model;
  std::uint64_t noise_seed = 0;
  std::string fault_spec;
  std::uint64_t fault_seed = 0;
  int retry_max_attempts = 1;
  double retry_backoff_seconds = 0.0;
  std::size_t nodes = 0;
  double wall_budget_seconds = 0.0;

  /// Empty string when compatible; otherwise names the first mismatch.
  [[nodiscard]] std::string mismatch(const JournalHeader& other) const;
};

/// One journaled evaluation.
struct JournalVariant {
  std::string key;            // Config::key()
  std::uint64_t stream = 0;   // proposal-order noise stream id
  Evaluation eval;
};

/// Everything recovered from a journal file.
struct JournalData {
  bool has_header = false;
  JournalHeader header;
  std::vector<JournalVariant> variants;
  /// Byte offset after the last complete, parseable record — the
  /// crash-consistent prefix. Appending resumes from here (any partial
  /// trailing record from a mid-write kill is truncated away).
  std::size_t valid_bytes = 0;
};

class Journal {
 public:
  /// Reads a journal back for resume. A missing or empty file yields an
  /// empty JournalData (fresh start), and so does a torn first line with no
  /// newline (a kill mid-header-write). A non-empty file whose first
  /// *complete* line is not a campaign header record is rejected — refuse to
  /// treat a foreign file as a journal, since open() would truncate it.
  /// Parsing stops at the first incomplete or corrupt record — the
  /// write-ahead prefix up to that point is returned.
  static StatusOr<JournalData> load(const std::string& path);

  /// Opens the journal for crash-safe appending. `keep_bytes == nullopt`
  /// starts fresh: the file is truncated and the header record written.
  /// Otherwise the file is truncated to `keep_bytes` (discarding a partial
  /// trailing record) and appending continues; when keep_bytes == 0 the
  /// header is written as for a fresh file.
  static StatusOr<std::unique_ptr<Journal>> open(
      const std::string& path, const JournalHeader& header,
      std::optional<std::size_t> keep_bytes = std::nullopt);

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends + fsyncs one variant record. Thread-safe. On write failure the
  /// journal degrades: one stderr warning, no further writes, error() set.
  void append_variant(const std::string& key, std::uint64_t stream,
                      const Evaluation& eval);

  /// Appends a batch marker (search round, simulated cluster clock).
  void append_batch(std::size_t round, double cluster_seconds,
                    std::size_t variants);

  /// Appends one shadow-diagnosis record (CampaignOptions::diagnose). Only
  /// ever written after the final variant/batch record, so an undiagnosed
  /// campaign's journal is a byte-identical prefix of the diagnosed one's;
  /// load() treats "diag" records as informational, keeping resume exact.
  /// Divergences can be non-finite: doubles are serialized with the
  /// Infinity/-Infinity/NaN tokens (accepted by json::parse and Python's
  /// json.loads).
  void append_diag(const BlameReport& report);

  /// Appends one metrics-footer record (a campaign's final MetricsSnapshot:
  /// counters, gauges, histogram count/sum/quantiles). Opt-in — the footer
  /// carries wall-clock values, so CampaignOptions::metrics_footer keeps it
  /// off by default to preserve byte-identical journals across runs and
  /// worker counts. Like diag records, it is only written after the final
  /// variant/batch record and load() treats it as informational, so resume
  /// stays exact either way.
  void append_metrics(const obs::MetricsSnapshot& snapshot);

  /// Attaches an observability registry (non-owning; null detaches):
  /// registers journal_records/fsync-latency/error series and bumps them
  /// from append_line. Call before concurrent appends begin.
  void set_metrics(obs::Registry* registry);

  /// First write failure, sticky; OK while the journal is healthy.
  [[nodiscard]] Status error() const;

  /// Variant records appended by this process (excludes replayed history).
  [[nodiscard]] std::size_t appended_variants() const;

  /// Chaos-testing knob: raise SIGKILL immediately after the Nth variant
  /// record of this process is made durable — a deterministic mid-campaign
  /// crash for the resume tests and the CI chaos job. 0 disables.
  void set_kill_after_variants(std::size_t n);

 private:
  explicit Journal(int fd, std::string path);
  void append_line(const std::string& line, bool count_variant);

  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  Status error_;
  std::size_t appended_ = 0;
  std::size_t kill_after_ = 0;
  obs::Counter* m_records_ = nullptr;        // instruments; null = no metrics
  obs::Histogram* m_fsync_seconds_ = nullptr;
  obs::Counter* m_errors_ = nullptr;
};

}  // namespace prose::tuner
