// Campaign driver: one full tuning experiment (paper §IV).
//
// Wires the delta-debugging search to the simulated 20-node cluster with a
// 12-hour budget and 3×-baseline per-variant timeouts, then aggregates the
// Table II summary row and the Figure 5/6 series.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "tuner/evaluator.h"
#include "tuner/schedule.h"
#include "tuner/search.h"

namespace prose::tuner {

struct CampaignOptions {
  ClusterOptions cluster;
  std::size_t max_variants = 0;  // safety cap on top of the wall budget
  std::uint64_t noise_seed = 2024;
  /// Host worker threads for batch-parallel variant evaluation (the --jobs N
  /// knob). 1 = serial; 0 = one per hardware thread. The CampaignResult is
  /// bit-identical for every value — jobs only changes host wall-clock time,
  /// never the simulated campaign (ClusterSim node-seconds are computed per
  /// variant, not from host time).
  std::size_t jobs = 1;
  /// Flight-recorder sinks (both empty = tracing off; zero cost). When set,
  /// the campaign traces every variant lifecycle, the delta-debug decisions,
  /// and per-node cluster occupancy into a Perfetto-loadable timeline.
  trace::TraceOptions trace;

  /// Deterministic fault-injection spec (empty = no faults), e.g.
  /// "compile:p=0.02;transient:p=0.05;straggler:p=0.03,slow=4x;
  /// node_crash:node=7,at=3600s" — see FaultPlan::parse. The injected
  /// sequence depends only on (fault_seed, config, attempt), so it is
  /// identical across runs and worker counts.
  std::string fault_spec;
  std::uint64_t fault_seed = 2025;
  /// Retry/quarantine policy for injected transient faults.
  RetryPolicy retry;

  /// Write-ahead journal path (empty = no journal). Every evaluated variant
  /// is appended and fsync'd before the search sees it, so a killed campaign
  /// can resume. With `resume`, the journal at journal_path is loaded first
  /// and its evaluations replayed instead of re-simulated; the resumed
  /// CampaignResult is bit-identical to the uninterrupted run's.
  std::string journal_path;
  bool resume = false;
  /// Chaos knob: SIGKILL the process after this many variant records have
  /// been made durable (0 = off). For crash/resume testing only.
  std::size_t journal_kill_after = 0;
};

/// Table II row.
struct CampaignSummary {
  std::string model;
  std::size_t total = 0;
  double pass_pct = 0.0;
  double fail_pct = 0.0;
  double timeout_pct = 0.0;
  double error_pct = 0.0;  // runtime errors (the paper's "Error" column)
  /// Variants quarantined after exhausting the transient-fault retry budget
  /// ("no information" — excluded from pass/fail reasoning).
  double lost_pct = 0.0;
  double best_speedup = 0.0;
  bool finished = false;       // search reached 1-minimality within budget
  double wall_hours = 0.0;
  /// Non-fatal sink failures (empty = healthy): the campaign completed, but
  /// the flight recorder / journal lost writes along the way.
  std::string trace_error;
  std::string journal_error;
};

/// Figure 6 series: per procedure, the unique per-procedure precision
/// assignments explored and their mean-cycles-per-call speedups.
struct ProcedureVariantPoint {
  std::string proc;
  std::string scope_key;     // per-procedure precision pattern
  double speedup = 0.0;      // baseline mean/call ÷ variant mean/call
  double fraction32 = 0.0;   // fraction of the procedure's atoms at 32-bit
};

struct CampaignResult {
  CampaignSummary summary;
  SearchResult search;
  std::vector<ProcedureVariantPoint> figure6;
  /// The 1-minimal (or best-so-far) configuration's per-atom kinds, by
  /// qualified name — the paper's human-readable variant description.
  std::map<std::string, int> final_kinds;
  /// Evaluations satisfied from the journal instead of re-simulated (resume
  /// accounting; 0 on a fresh run). Deliberately outside CampaignSummary so
  /// summaries compare bit-identical between original and resumed runs.
  std::size_t replayed_from_journal = 0;
};

/// Runs one campaign on a target spec.
StatusOr<CampaignResult> run_campaign(const TargetSpec& spec,
                                      const CampaignOptions& options = {});

/// Builds the Figure 6 series from an existing evaluator + search trace.
std::vector<ProcedureVariantPoint> figure6_series(const Evaluator& evaluator,
                                                  const SearchResult& search);

/// Summarizes a search trace into the Table II row shape.
CampaignSummary summarize(const std::string& model, const SearchResult& search,
                          const ClusterSim& cluster);

}  // namespace prose::tuner
