// Campaign driver: one full tuning experiment (paper §IV).
//
// Wires the delta-debugging search to the simulated 20-node cluster with a
// 12-hour budget and 3×-baseline per-variant timeouts, then aggregates the
// Table II summary row and the Figure 5/6 series.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "tuner/evaluator.h"
#include "tuner/schedule.h"
#include "tuner/search.h"

namespace prose::tuner {

struct CampaignOptions {
  ClusterOptions cluster;
  std::size_t max_variants = 0;  // safety cap on top of the wall budget
  std::uint64_t noise_seed = 2024;
  /// Host worker threads for batch-parallel variant evaluation (the --jobs N
  /// knob). 1 = serial; 0 = one per hardware thread. The CampaignResult is
  /// bit-identical for every value — jobs only changes host wall-clock time,
  /// never the simulated campaign (ClusterSim node-seconds are computed per
  /// variant, not from host time).
  std::size_t jobs = 1;
  /// Flight-recorder sinks (both empty = tracing off; zero cost). When set,
  /// the campaign traces every variant lifecycle, the delta-debug decisions,
  /// and per-node cluster occupancy into a Perfetto-loadable timeline.
  trace::TraceOptions trace;
};

/// Table II row.
struct CampaignSummary {
  std::string model;
  std::size_t total = 0;
  double pass_pct = 0.0;
  double fail_pct = 0.0;
  double timeout_pct = 0.0;
  double error_pct = 0.0;  // runtime errors (the paper's "Error" column)
  double best_speedup = 0.0;
  bool finished = false;       // search reached 1-minimality within budget
  double wall_hours = 0.0;
};

/// Figure 6 series: per procedure, the unique per-procedure precision
/// assignments explored and their mean-cycles-per-call speedups.
struct ProcedureVariantPoint {
  std::string proc;
  std::string scope_key;     // per-procedure precision pattern
  double speedup = 0.0;      // baseline mean/call ÷ variant mean/call
  double fraction32 = 0.0;   // fraction of the procedure's atoms at 32-bit
};

struct CampaignResult {
  CampaignSummary summary;
  SearchResult search;
  std::vector<ProcedureVariantPoint> figure6;
  /// The 1-minimal (or best-so-far) configuration's per-atom kinds, by
  /// qualified name — the paper's human-readable variant description.
  std::map<std::string, int> final_kinds;
};

/// Runs one campaign on a target spec.
StatusOr<CampaignResult> run_campaign(const TargetSpec& spec,
                                      const CampaignOptions& options = {});

/// Builds the Figure 6 series from an existing evaluator + search trace.
std::vector<ProcedureVariantPoint> figure6_series(const Evaluator& evaluator,
                                                  const SearchResult& search);

/// Summarizes a search trace into the Table II row shape.
CampaignSummary summarize(const std::string& model, const SearchResult& search,
                          const ClusterSim& cluster);

}  // namespace prose::tuner
