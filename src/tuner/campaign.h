// Campaign driver: one full tuning experiment (paper §IV).
//
// Wires the delta-debugging search to the simulated 20-node cluster with a
// 12-hour budget and 3×-baseline per-variant timeouts, then aggregates the
// Table II summary row and the Figure 5/6 series.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "tuner/evaluator.h"
#include "tuner/schedule.h"
#include "tuner/search.h"

namespace prose::tuner {

struct CampaignOptions {
  ClusterOptions cluster;
  std::size_t max_variants = 0;  // safety cap on top of the wall budget
  std::uint64_t noise_seed = 2024;
  /// Host worker threads for batch-parallel variant evaluation (the --jobs N
  /// knob). 1 = serial; 0 = one per hardware thread. The CampaignResult is
  /// bit-identical for every value — jobs only changes host wall-clock time,
  /// never the simulated campaign (ClusterSim node-seconds are computed per
  /// variant, not from host time).
  std::size_t jobs = 1;
  /// Flight-recorder sinks (both empty = tracing off; zero cost). When set,
  /// the campaign traces every variant lifecycle, the delta-debug decisions,
  /// and per-node cluster occupancy into a Perfetto-loadable timeline.
  trace::TraceOptions trace;

  /// Deterministic fault-injection spec (empty = no faults), e.g.
  /// "compile:p=0.02;transient:p=0.05;straggler:p=0.03,slow=4x;
  /// node_crash:node=7,at=3600s" — see FaultPlan::parse. The injected
  /// sequence depends only on (fault_seed, config, attempt), so it is
  /// identical across runs and worker counts.
  std::string fault_spec;
  std::uint64_t fault_seed = 2025;
  /// Retry/quarantine policy for injected transient faults.
  RetryPolicy retry;

  /// Write-ahead journal path (empty = no journal). Every evaluated variant
  /// is appended and fsync'd before the search sees it, so a killed campaign
  /// can resume. With `resume`, the journal at journal_path is loaded first
  /// and its evaluations replayed instead of re-simulated; the resumed
  /// CampaignResult is bit-identical to the uninterrupted run's.
  std::string journal_path;
  bool resume = false;
  /// Chaos knob: SIGKILL the process after this many variant records have
  /// been made durable (0 = off). For crash/resume testing only.
  std::size_t journal_kill_after = 0;

  /// Remote-evaluation backend (non-owning; null = evaluate in-process).
  /// A serve client plugged in here offloads every cache miss to a
  /// prose_served daemon; the CampaignResult — and the journal bytes — are
  /// bit-identical to the local run's (the client carries the evaluator's
  /// proposal-order noise streams with each request).
  EvalBackend* backend = nullptr;

  /// Cooperative cancellation (non-owning; null = never stop). Checked
  /// between search batches: when set, the campaign stops proposing work,
  /// marks the search budget-exhausted, and tears down normally — journal
  /// fsync'd, tracer flushed — so a SIGINT'd campaign is resumable. Wired to
  /// a signal handler by the CLI drivers.
  const std::atomic<bool>* stop = nullptr;

  /// Observability registry. On by default: collection is a handful of
  /// relaxed atomics per variant, and — hard contract, same as tracing —
  /// wall-clock time feeds metric *values* only, never scheduling or
  /// simulated time, so a metrics-on campaign is bit-identical to a
  /// metrics-off one, journal bytes included. Off exists for the overhead
  /// benchmark and for paranoid A/B checks.
  bool metrics = true;
  /// Opt-in journal metrics footer: append one {"type":"metrics"} record
  /// (counters, gauges, histogram count/sum/quantiles) after every campaign
  /// record. Off by default because the footer carries wall-clock values —
  /// appending it would break byte-identical journal comparisons across
  /// runs and worker counts. Like diag records, load() treats the footer as
  /// informational, so resume is exact either way.
  bool metrics_footer = false;

  /// VM execution engine for variant runs (the --vm-dispatch knob). All
  /// engines produce bit-identical campaigns — summaries, journals, blame
  /// reports — so this only changes host wall-clock time. kAuto = the
  /// build's default (direct-threaded where the compiler supports it).
  /// Shadow diagnosis always runs on the reference interpreter.
  sim::VmDispatch vm_dispatch = sim::VmDispatch::kAuto;

  /// Numerical flight recorder: after the search finishes, re-run the
  /// rejected variants under binary64 shadow execution and aggregate their
  /// blame reports into a root-cause criticality ranking (paper §V, done by
  /// hand there). Diagnosis is a pure observer: the diagnosed campaign's
  /// outcomes, simulated cycles, frontier, and journal variant records are
  /// bit-identical to the undiagnosed run's — "diag" journal records are
  /// appended only after every campaign record.
  bool diagnose = false;
  /// Cap on distinct rejected variants re-run under shadow execution.
  std::size_t max_diagnosed = 64;
};

/// Table II row.
struct CampaignSummary {
  std::string model;
  std::size_t total = 0;
  double pass_pct = 0.0;
  double fail_pct = 0.0;
  double timeout_pct = 0.0;
  double error_pct = 0.0;  // runtime errors (the paper's "Error" column)
  /// Variants quarantined after exhausting the transient-fault retry budget
  /// ("no information" — excluded from pass/fail reasoning).
  double lost_pct = 0.0;
  double best_speedup = 0.0;
  bool finished = false;       // search reached 1-minimality within budget
  double wall_hours = 0.0;
  /// Non-fatal sink failures (empty = healthy): the campaign completed, but
  /// the flight recorder / journal lost writes along the way.
  std::string trace_error;
  std::string journal_error;
  /// Served-mode degradation (zeros for local campaigns): variants the
  /// remote backend failed to resolve (computed locally instead — results
  /// unchanged, locality changed) and busy rounds spent waiting out server
  /// admission rejections. Transport-dependent, so excluded from bit-identity
  /// comparisons, which cover everything the campaign *measured*.
  std::uint64_t fallbacks = 0;
  std::uint64_t busy_retries = 0;
  /// Fleet-mode degradation (zeros for local and single-server campaigns):
  /// hedged re-issues (and how many the hedge won), primary-shard failovers,
  /// shards declared lost mid-campaign, and total deterministic busy backoff
  /// slept. Transport-dependent like the two above — excluded from
  /// bit-identity.
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t failovers = 0;
  std::uint64_t shards_lost = 0;
  double busy_backoff_seconds = 0.0;
  /// Final registry snapshot (empty when CampaignOptions::metrics is off).
  /// Wall-clock metric values — also excluded from bit-identity comparisons.
  obs::MetricsSnapshot metrics;
};

/// Figure 6 series: per procedure, the unique per-procedure precision
/// assignments explored and their mean-cycles-per-call speedups.
struct ProcedureVariantPoint {
  std::string proc;
  std::string scope_key;     // per-procedure precision pattern
  double speedup = 0.0;      // baseline mean/call ÷ variant mean/call
  double fraction32 = 0.0;   // fraction of the procedure's atoms at 32-bit
};

/// Campaign-level criticality of one search-space atom: how strongly its
/// demotion associates with rejected variants, combined with the shadow
/// divergence observed when it was demoted. The ranking the paper's §V
/// derives by hand ("which variable cannot be 32-bit, and why").
struct AtomCriticality {
  std::string qualified;
  /// Ranking score in [0, 1]:
  ///   0.45 · fail_association + 0.25 · min(1, max_rel_div)
  ///   + 0.20 · (pivotal > 0) + 0.10 · final64.
  double score = 0.0;
  /// Of the distinct variants that demoted this atom, the fraction that were
  /// rejected (failed, timed out, errored, or passed slower than 1×).
  double fail_association = 0.0;
  /// Max shadow divergence recorded against this atom while demoted (+inf
  /// when a demoted write went non-finite).
  double max_rel_div = 0.0;
  std::size_t demoted_rejected = 0;
  std::size_t demoted_total = 0;
  /// Direct causal evidence: rejected variants that differ from an evaluated
  /// non-rejected variant in this atom's demotion ALONE. Divergence ranking
  /// cannot separate the root cause from the variables it contaminates
  /// downstream; a pivotal pair can (it is the delta-debug 1-minimality
  /// probe, recycled as provenance).
  std::size_t pivotal = 0;
  /// The atom survived at 64-bit in the final (1-minimal) configuration —
  /// the search itself refused to demote it.
  bool final64 = false;
};

/// Campaign-level criticality of one procedure: its summed share of the
/// per-variant blame across all diagnosed variants (1.0 = it owned all the
/// blame of one entire diagnosed variant).
struct ProcCriticality {
  std::string qualified;
  double blame_share = 0.0;      // Σ over diagnosed variants of blame_p / Σblame
  double max_rel_div = 0.0;
  std::uint64_t cancellations = 0;
  std::uint64_t control_divergences = 0;
  std::uint64_t faults = 0;      // diagnosed re-runs that faulted/stalled here
  double cast_cycles = 0.0;      // max simulated cast cycles across re-runs
};

/// Aggregated root-cause diagnosis of one campaign (CampaignOptions::diagnose).
struct CampaignDiagnosis {
  bool enabled = false;
  std::size_t rejected = 0;    // distinct rejected variants seen by the search
  std::size_t diagnosed = 0;   // of those, re-run under shadow execution
  std::vector<AtomCriticality> atoms;       // score desc — root cause first
  std::vector<ProcCriticality> procedures;  // blame share desc
  std::vector<BlameReport> reports;         // per diagnosed variant, search order
};

struct CampaignResult {
  CampaignSummary summary;
  SearchResult search;
  std::vector<ProcedureVariantPoint> figure6;
  /// The 1-minimal (or best-so-far) configuration's per-atom kinds, by
  /// qualified name — the paper's human-readable variant description.
  std::map<std::string, int> final_kinds;
  /// Evaluations satisfied from the journal instead of re-simulated (resume
  /// accounting; 0 on a fresh run). Deliberately outside CampaignSummary so
  /// summaries compare bit-identical between original and resumed runs.
  std::size_t replayed_from_journal = 0;
  /// Root-cause diagnosis (empty/disabled unless CampaignOptions::diagnose).
  /// Deliberately outside CampaignSummary so diagnosed and undiagnosed runs
  /// compare bit-identical on everything the campaign measured.
  CampaignDiagnosis diagnosis;
  /// Cumulative VM execution statistics (instructions executed, fused-pair
  /// dispatches) across the campaign's local variant runs. Host-side
  /// observability — deliberately outside CampaignSummary: the fused counts
  /// legitimately differ between engines (zero under the interpreter), while
  /// the summary must stay engine-independent.
  Evaluator::VmExecStats vm_exec;
};

/// Parses a --vm-dispatch value ("auto", "interp", "switch", "threaded").
/// Returns false on anything else.
bool vm_dispatch_from_string(std::string_view s, sim::VmDispatch* out);
const char* to_string(sim::VmDispatch dispatch);

/// Runs one campaign on a target spec.
StatusOr<CampaignResult> run_campaign(const TargetSpec& spec,
                                      const CampaignOptions& options = {});

/// Builds the Figure 6 series from an existing evaluator + search trace.
std::vector<ProcedureVariantPoint> figure6_series(const Evaluator& evaluator,
                                                  const SearchResult& search);

/// Summarizes a search trace into the Table II row shape.
CampaignSummary summarize(const std::string& model, const SearchResult& search,
                          const ClusterSim& cluster);

/// Shadow-diagnoses the rejected variants of a finished search and aggregates
/// the blame into the criticality rankings. `final_config` is the accepted
/// (best-or-accepted) configuration, used for the final64 signal. Re-runs at
/// most `max_diagnosed` distinct rejected configurations. Pure observer: uses
/// Evaluator::diagnose, which bypasses the memo cache, noise streams, and
/// journal.
CampaignDiagnosis diagnose_campaign(Evaluator& evaluator,
                                    const SearchResult& search,
                                    const Config& final_config,
                                    std::size_t max_diagnosed = 64);

}  // namespace prose::tuner
