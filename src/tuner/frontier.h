// Optimal (Pareto) frontier extraction over speedup-error points (Fig. 2/5).
#pragma once

#include <vector>

#include "tuner/search.h"

namespace prose::tuner {

struct FrontierPoint {
  int variant_id = 0;
  double speedup = 0.0;
  double error = 0.0;
};

/// Variants on the optimal frontier: maximize speedup, minimize error.
/// A point dominates another if it has >= speedup and <= error (strict in at
/// least one). Only completed runs (pass/fail outcomes) participate —
/// timeouts and runtime errors have no meaningful coordinates.
/// Result is sorted by ascending error.
std::vector<FrontierPoint> optimal_frontier(const std::vector<VariantRecord>& records);

/// Picks from the frontier the fastest variant whose error is within the
/// threshold; -1 when none qualifies.
int select_within_threshold(const std::vector<FrontierPoint>& frontier,
                            double error_threshold);

}  // namespace prose::tuner
