#include "tuner/search.h"

#include <algorithm>
#include <deque>

#include "support/rng.h"

namespace prose::tuner {
namespace {

/// Shared bookkeeping for all search strategies.
class Recorder {
 public:
  Recorder(Evaluator& evaluator, const SearchOptions& options)
      : evaluator_(evaluator), options_(options) {}

  /// Evaluates and records one proposal round. The round's cache misses fan
  /// out to options_.pool (serial when null), but every piece of bookkeeping
  /// replicates a sequential probe walk bit-for-bit: prefilter rejections
  /// are dropped before evaluation, cache hits count in proposal order, and
  /// with a variant cap the round is truncated at the proposal that trips it
  /// *before* anything runs — so cache contents and noise-stream assignment
  /// match the serial path exactly, for any worker count.
  ///
  /// Returns the records a serial probe loop would have received non-null,
  /// in proposal order; when the cap fired (stopped() turns true), the
  /// record that tripped it is last.
  std::vector<const VariantRecord*> probe_batch(const std::vector<Config>& proposals) {
    std::vector<const VariantRecord*> out;
    if (stopped_) return out;

    // Plan: which proposals would a serial walk process before stopping?
    std::vector<Config> processed;
    processed.reserve(proposals.size());
    std::size_t planned_new = 0;
    for (const Config& proposal : proposals) {
      if (options_.prefilter && !options_.prefilter(proposal)) {
        // Statically rejected (§V): no dynamic evaluation, treated as an
        // unacceptable candidate by the caller (no record returned).
        ++result_.statically_skipped;
        if (options_.tracer != nullptr && options_.tracer->enabled()) {
          options_.tracer->instant("search/static-skip", trace::Track::search(),
                                   options_.tracer->now_us(),
                                   {{"skipped_so_far", result_.statically_skipped}});
        }
        continue;
      }
      // A record for this config will exist by the time the serial walk
      // reaches it iff it was recorded before, or appeared earlier in this
      // round (first occurrence records it, later ones are cache hits).
      bool have_record = find_record(proposal) != nullptr;
      for (std::size_t e = 0; !have_record && e < processed.size(); ++e) {
        have_record = processed[e] == proposal;
      }
      processed.push_back(proposal);
      if (!have_record) {
        ++planned_new;
        if (options_.max_variants > 0 &&
            records_.size() + planned_new >= options_.max_variants) {
          break;  // this proposal trips the cap; the rest are never evaluated
        }
      }
    }

    const auto items = evaluator_.evaluate_batch(
        std::span<const Config>(processed.data(), processed.size()),
        options_.pool);

    for (std::size_t i = 0; i < processed.size(); ++i) {
      const Config& config = processed[i];
      const Evaluation& eval = *items[i].eval;
      if (items[i].cache_hit) {
        ++result_.cache_hits;
        // Cached configurations were already recorded; find them. (A deque
        // keeps references stable across push_back.)
        if (const VariantRecord* existing = find_record(config);
            existing != nullptr) {
          out.push_back(existing);
          continue;
        }
      }
      VariantRecord rec;
      rec.id = static_cast<int>(records_.size()) + 1;
      rec.config = config;
      rec.eval = eval;
      records_.push_back(std::move(rec));
      const VariantRecord* stored = &records_.back();
      pending_batch_.push_back(stored);
      out.push_back(stored);

      // Quarantined variants carry no information; count them so reports can
      // show how much of the budget faults consumed.
      if (eval.outcome == Outcome::kLost) ++result_.lost;
      if (eval.outcome == Outcome::kPass &&
          (!result_.best.has_value() || eval.speedup > result_.best_speedup)) {
        result_.best = config;
        result_.best_speedup = eval.speedup;
      }
      if (options_.max_variants > 0 && records_.size() >= options_.max_variants) {
        stopped_ = true;
        result_.budget_exhausted = true;
        break;
      }
    }
    return out;
  }

  /// Flushes the pending proposals through the batch hook (campaign timing).
  void end_batch() {
    if (pending_batch_.empty()) return;
    if (options_.batch_hook && !options_.batch_hook(pending_batch_)) {
      stopped_ = true;
      result_.budget_exhausted = true;
    }
    pending_batch_.clear();
  }

  [[nodiscard]] bool stopped() const { return stopped_; }
  SearchResult take() {
    end_batch();
    result_.records.assign(std::make_move_iterator(records_.begin()),
                           std::make_move_iterator(records_.end()));
    records_.clear();
    return std::move(result_);
  }

 private:
  [[nodiscard]] const VariantRecord* find_record(const Config& config) const {
    for (const auto& r : records_) {
      if (r.config == config) return &r;
    }
    return nullptr;
  }

  Evaluator& evaluator_;
  const SearchOptions& options_;
  SearchResult result_;
  std::deque<VariantRecord> records_;
  std::vector<const VariantRecord*> pending_batch_;
  bool stopped_ = false;
};

Config lower_atoms(const Config& base, const std::vector<std::size_t>& atoms) {
  Config out = base;
  for (const std::size_t i : atoms) out.kinds[i] = 4;
  return out;
}

std::vector<std::size_t> still_high(const Config& config) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < config.kinds.size(); ++i) {
    if (config.kinds[i] == 8) out.push_back(i);
  }
  return out;
}

/// Splits `items` into `parts` contiguous chunks of near-equal size.
std::vector<std::vector<std::size_t>> partition(const std::vector<std::size_t>& items,
                                                std::size_t parts) {
  parts = std::min(parts, items.size());
  std::vector<std::vector<std::size_t>> out(parts);
  for (std::size_t i = 0; i < items.size(); ++i) {
    out[i * parts / items.size()].push_back(items[i]);
  }
  return out;
}

}  // namespace

SearchResult delta_debug_search(Evaluator& evaluator, const SearchOptions& options) {
  Recorder rec(evaluator, options);
  trace::Tracer* tr =
      (options.tracer != nullptr && options.tracer->enabled()) ? options.tracer
                                                               : nullptr;
  const trace::Track track = trace::Track::search();

  Config accepted = evaluator.space().uniform(8);
  // Respect declarations that were already 32-bit in the original source.
  for (std::size_t i = 0; i < evaluator.space().atoms().size(); ++i) {
    accepted.kinds[i] =
        static_cast<std::uint8_t>(evaluator.space().atoms()[i].original_kind);
  }

  std::vector<std::size_t> candidates = still_high(accepted);
  std::size_t div = 2;
  bool reached_minimal = false;
  int round = 0;

  if (tr != nullptr) {
    tr->begin("delta-debug", track, tr->now_us(),
              {{"atoms", evaluator.space().size()},
               {"candidates", candidates.size()}});
  }

  // First proposal: the uniform 32-bit configuration (the paper's searches
  // always measure it — it anchors Figures 2/5).
  {
    const auto first = rec.probe_batch({lower_atoms(accepted, candidates)});
    if (!first.empty() && first.front()->eval.acceptable()) {
      accepted = first.front()->config;
      candidates.clear();
      reached_minimal = true;  // nothing left in 64-bit
      if (tr != nullptr) {
        tr->instant("dd/accept", track, tr->now_us(),
                    {{"round", 0}, {"what", "uniform32"}, {"remaining", 0}});
      }
    }
  }
  rec.end_batch();

  while (!candidates.empty() && !rec.stopped()) {
    const auto subsets = partition(candidates, div);
    bool progressed = false;
    ++round;
    if (tr != nullptr) {
      const double ts = tr->now_us();
      tr->instant("dd/round", track, ts,
                  {{"round", round},
                   {"div", div},
                   {"partitions", subsets.size()},
                   {"candidates", candidates.size()}});
      tr->counter("dd/candidates-remaining", track, ts,
                  static_cast<double>(candidates.size()));
    }

    // Try lowering each subset as one proposal round — the paper evaluates
    // these in parallel across nodes, and probe_batch fans them out to the
    // work pool the same way. Statically-rejected candidates are skipped;
    // when the variant cap stopped the search mid-round, the capping record
    // is recorded but (like the serial walk) not scanned for acceptance.
    std::vector<Config> subset_round;
    subset_round.reserve(subsets.size());
    for (const auto& subset : subsets) {
      subset_round.push_back(lower_atoms(accepted, subset));
    }
    std::vector<const VariantRecord*> batch = rec.probe_batch(subset_round);
    if (rec.stopped() && !batch.empty()) batch.pop_back();
    rec.end_batch();
    if (rec.stopped()) break;

    for (std::size_t si = 0; si < batch.size(); ++si) {
      if (batch[si]->eval.acceptable()) {
        accepted = batch[si]->config;
        candidates = still_high(accepted);
        div = std::max<std::size_t>(2, div - 1);
        progressed = true;
        if (tr != nullptr) {
          tr->instant("dd/accept-subset", track, tr->now_us(),
                      {{"round", round},
                       {"subset", si},
                       {"variant", batch[si]->id},
                       {"remaining", candidates.size()}});
        }
        break;
      }
    }
    if (progressed) continue;

    // Try the complements (skip when div == 2: complements equal the other
    // subset) — also one proposal round.
    if (div > 2) {
      std::vector<Config> cround;
      cround.reserve(subsets.size());
      for (const auto& subset : subsets) {
        std::vector<std::size_t> complement;
        for (const std::size_t c : candidates) {
          if (std::find(subset.begin(), subset.end(), c) == subset.end()) {
            complement.push_back(c);
          }
        }
        if (complement.empty()) continue;
        cround.push_back(lower_atoms(accepted, complement));
      }
      std::vector<const VariantRecord*> cbatch = rec.probe_batch(cround);
      if (rec.stopped() && !cbatch.empty()) cbatch.pop_back();
      rec.end_batch();
      if (rec.stopped()) break;
      for (const auto* r : cbatch) {
        if (r->eval.acceptable()) {
          accepted = r->config;
          candidates = still_high(accepted);
          div = std::max<std::size_t>(2, div - 2);
          progressed = true;
          if (tr != nullptr) {
            tr->instant("dd/accept-complement", track, tr->now_us(),
                        {{"round", round},
                         {"variant", r->id},
                         {"remaining", candidates.size()}});
          }
          break;
        }
      }
      if (progressed) continue;
    }

    // Refine the partition; at singleton granularity we are done and the
    // accepted configuration is 1-minimal by construction.
    if (div >= candidates.size()) {
      reached_minimal = true;
      if (tr != nullptr) {
        tr->instant("dd/one-minimal", track, tr->now_us(),
                    {{"round", round}, {"remaining", candidates.size()}});
      }
      break;
    }
    div = std::min(candidates.size(), div * 2);
    if (tr != nullptr) {
      tr->instant("dd/refine", track, tr->now_us(),
                  {{"round", round}, {"div", div}});
    }
  }

  SearchResult result = rec.take();
  result.accepted = accepted;
  result.one_minimal = reached_minimal && !result.budget_exhausted;
  if (tr != nullptr) {
    const double ts = tr->now_us();
    if (result.budget_exhausted) {
      tr->instant("dd/stopped", track, ts,
                  {{"round", round}, {"budget_exhausted", true}});
    }
    tr->end("delta-debug", track, ts,
            {{"variants", result.records.size()},
             {"one_minimal", result.one_minimal},
             {"cache_hits", result.cache_hits},
             {"statically_skipped", result.statically_skipped},
             {"lost", result.lost},
             {"best_speedup", result.best_speedup}});
  }
  return result;
}

SearchResult brute_force_search(Evaluator& evaluator, const SearchOptions& options) {
  Recorder rec(evaluator, options);
  const std::size_t n = evaluator.space().size();
  PROSE_CHECK_MSG(n <= 24, "brute force is limited to 2^24 variants");
  const std::size_t total = std::size_t{1} << n;
  // Enumerate in rounds of 64 masks — one proposal batch each, fanned out to
  // the pool by probe_batch.
  constexpr std::size_t kRound = 64;
  for (std::size_t base = 0; base < total && !rec.stopped(); base += kRound) {
    const std::size_t end = std::min(total, base + kRound);
    std::vector<Config> round;
    round.reserve(end - base);
    for (std::size_t mask = base; mask < end; ++mask) {
      Config config = evaluator.space().uniform(8);
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (std::size_t{1} << i)) config.kinds[i] = 4;
      }
      round.push_back(std::move(config));
    }
    rec.probe_batch(round);
    if (end - base == kRound) rec.end_batch();
  }
  SearchResult result = rec.take();
  if (result.best.has_value()) result.accepted = *result.best;
  return result;
}

SearchResult random_search(Evaluator& evaluator, std::size_t samples,
                           std::uint64_t seed, const SearchOptions& options) {
  Recorder rec(evaluator, options);
  Rng rng(seed);
  const std::size_t n = evaluator.space().size();
  // Samples are independent, so propose them in rounds — the cluster-batch
  // analogue of the paper's one-variant-per-node fan-out.
  constexpr std::size_t kRound = 16;
  for (std::size_t s = 0; s < samples && !rec.stopped(); s += kRound) {
    const std::size_t count = std::min(kRound, samples - s);
    std::vector<Config> round;
    round.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      Config config = evaluator.space().uniform(8);
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.chance(0.5)) config.kinds[i] = 4;
      }
      round.push_back(std::move(config));
    }
    rec.probe_batch(round);
    rec.end_batch();
  }
  SearchResult result = rec.take();
  if (result.best.has_value()) result.accepted = *result.best;
  return result;
}

SearchResult one_at_a_time_search(Evaluator& evaluator, const SearchOptions& options) {
  Recorder rec(evaluator, options);
  Config accepted = evaluator.space().uniform(8);
  // Inherently sequential — each step's candidate depends on the previous
  // acceptance — so every round is a single proposal.
  for (std::size_t i = 0; i < evaluator.space().size() && !rec.stopped(); ++i) {
    Config candidate = accepted;
    candidate.kinds[i] = 4;
    const auto batch = rec.probe_batch({candidate});
    rec.end_batch();
    if (!batch.empty() && batch.front()->eval.acceptable()) accepted = candidate;
  }
  SearchResult result = rec.take();
  result.accepted = accepted;
  return result;
}

std::vector<std::size_t> check_one_minimal(Evaluator& evaluator, const Config& config) {
  std::vector<std::size_t> violations;
  for (std::size_t i = 0; i < config.kinds.size(); ++i) {
    if (config.kinds[i] != 8) continue;
    Config candidate = config;
    candidate.kinds[i] = 4;
    if (evaluator.evaluate(candidate).acceptable()) violations.push_back(i);
  }
  return violations;
}

}  // namespace prose::tuner
