#include "tuner/search.h"

#include <algorithm>
#include <deque>

#include "support/rng.h"

namespace prose::tuner {
namespace {

/// Shared bookkeeping for all search strategies.
class Recorder {
 public:
  Recorder(Evaluator& evaluator, const SearchOptions& options)
      : evaluator_(evaluator), options_(options) {}

  /// Evaluates and records a configuration; returns null when the search
  /// must stop (variant cap or batch hook said so).
  const VariantRecord* probe(const Config& config) {
    if (stopped_) return nullptr;
    if (options_.prefilter && !options_.prefilter(config)) {
      // Statically rejected (§V): no dynamic evaluation, treated as an
      // unacceptable candidate by the caller (probe returns null).
      ++result_.statically_skipped;
      if (options_.tracer != nullptr && options_.tracer->enabled()) {
        options_.tracer->instant("search/static-skip", trace::Track::search(),
                                 options_.tracer->now_us(),
                                 {{"skipped_so_far", result_.statically_skipped}});
      }
      return nullptr;
    }
    bool cache_hit = false;
    const Evaluation& eval = evaluator_.evaluate(config, &cache_hit);
    if (cache_hit) {
      ++result_.cache_hits;
      // Cached configurations were already recorded; find them. (A deque
      // keeps references stable across push_back.)
      for (const auto& r : records_) {
        if (r.config == config) return &r;
      }
    }
    VariantRecord rec;
    rec.id = static_cast<int>(records_.size()) + 1;
    rec.config = config;
    rec.eval = eval;
    records_.push_back(std::move(rec));
    const VariantRecord* stored = &records_.back();
    pending_batch_.push_back(stored);

    if (eval.outcome == Outcome::kPass &&
        (!result_.best.has_value() || eval.speedup > result_.best_speedup)) {
      result_.best = config;
      result_.best_speedup = eval.speedup;
    }
    if (options_.max_variants > 0 && records_.size() >= options_.max_variants) {
      stopped_ = true;
      result_.budget_exhausted = true;
    }
    return stored;
  }

  /// Flushes the pending proposals through the batch hook (campaign timing).
  void end_batch() {
    if (pending_batch_.empty()) return;
    if (options_.batch_hook && !options_.batch_hook(pending_batch_)) {
      stopped_ = true;
      result_.budget_exhausted = true;
    }
    pending_batch_.clear();
  }

  [[nodiscard]] bool stopped() const { return stopped_; }
  SearchResult take() {
    end_batch();
    result_.records.assign(std::make_move_iterator(records_.begin()),
                           std::make_move_iterator(records_.end()));
    records_.clear();
    return std::move(result_);
  }

 private:
  Evaluator& evaluator_;
  const SearchOptions& options_;
  SearchResult result_;
  std::deque<VariantRecord> records_;
  std::vector<const VariantRecord*> pending_batch_;
  bool stopped_ = false;
};

Config lower_atoms(const Config& base, const std::vector<std::size_t>& atoms) {
  Config out = base;
  for (const std::size_t i : atoms) out.kinds[i] = 4;
  return out;
}

std::vector<std::size_t> still_high(const Config& config) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < config.kinds.size(); ++i) {
    if (config.kinds[i] == 8) out.push_back(i);
  }
  return out;
}

/// Splits `items` into `parts` contiguous chunks of near-equal size.
std::vector<std::vector<std::size_t>> partition(const std::vector<std::size_t>& items,
                                                std::size_t parts) {
  parts = std::min(parts, items.size());
  std::vector<std::vector<std::size_t>> out(parts);
  for (std::size_t i = 0; i < items.size(); ++i) {
    out[i * parts / items.size()].push_back(items[i]);
  }
  return out;
}

}  // namespace

SearchResult delta_debug_search(Evaluator& evaluator, const SearchOptions& options) {
  Recorder rec(evaluator, options);
  trace::Tracer* tr =
      (options.tracer != nullptr && options.tracer->enabled()) ? options.tracer
                                                               : nullptr;
  const trace::Track track = trace::Track::search();

  Config accepted = evaluator.space().uniform(8);
  // Respect declarations that were already 32-bit in the original source.
  for (std::size_t i = 0; i < evaluator.space().atoms().size(); ++i) {
    accepted.kinds[i] =
        static_cast<std::uint8_t>(evaluator.space().atoms()[i].original_kind);
  }

  std::vector<std::size_t> candidates = still_high(accepted);
  std::size_t div = 2;
  bool reached_minimal = false;
  int round = 0;

  if (tr != nullptr) {
    tr->begin("delta-debug", track, tr->now_us(),
              {{"atoms", evaluator.space().size()},
               {"candidates", candidates.size()}});
  }

  // First proposal: the uniform 32-bit configuration (the paper's searches
  // always measure it — it anchors Figures 2/5).
  if (const auto* r = rec.probe(lower_atoms(accepted, candidates)); r != nullptr) {
    if (r->eval.acceptable()) {
      accepted = r->config;
      candidates.clear();
      reached_minimal = true;  // nothing left in 64-bit
      if (tr != nullptr) {
        tr->instant("dd/accept", track, tr->now_us(),
                    {{"round", 0}, {"what", "uniform32"}, {"remaining", 0}});
      }
    }
  }
  rec.end_batch();

  while (!candidates.empty() && !rec.stopped()) {
    const auto subsets = partition(candidates, div);
    bool progressed = false;
    ++round;
    if (tr != nullptr) {
      const double ts = tr->now_us();
      tr->instant("dd/round", track, ts,
                  {{"round", round},
                   {"div", div},
                   {"partitions", subsets.size()},
                   {"candidates", candidates.size()}});
      tr->counter("dd/candidates-remaining", track, ts,
                  static_cast<double>(candidates.size()));
    }

    // Try lowering each subset (one batch: the paper evaluates these in
    // parallel across nodes). A null probe is either a statically-rejected
    // candidate (skip it) or a stopped search (break).
    std::vector<const VariantRecord*> batch;
    for (const auto& subset : subsets) {
      const auto* r = rec.probe(lower_atoms(accepted, subset));
      if (rec.stopped()) break;
      if (r != nullptr) batch.push_back(r);
    }
    rec.end_batch();
    if (rec.stopped()) break;

    for (std::size_t si = 0; si < batch.size(); ++si) {
      if (batch[si]->eval.acceptable()) {
        accepted = batch[si]->config;
        candidates = still_high(accepted);
        div = std::max<std::size_t>(2, div - 1);
        progressed = true;
        if (tr != nullptr) {
          tr->instant("dd/accept-subset", track, tr->now_us(),
                      {{"round", round},
                       {"subset", si},
                       {"variant", batch[si]->id},
                       {"remaining", candidates.size()}});
        }
        break;
      }
    }
    if (progressed) continue;

    // Try the complements (skip when div == 2: complements equal the other
    // subset).
    if (div > 2) {
      std::vector<const VariantRecord*> cbatch;
      for (const auto& subset : subsets) {
        std::vector<std::size_t> complement;
        for (const std::size_t c : candidates) {
          if (std::find(subset.begin(), subset.end(), c) == subset.end()) {
            complement.push_back(c);
          }
        }
        if (complement.empty()) continue;
        const auto* r = rec.probe(lower_atoms(accepted, complement));
        if (rec.stopped()) break;
        if (r != nullptr) cbatch.push_back(r);
      }
      rec.end_batch();
      if (rec.stopped()) break;
      for (const auto* r : cbatch) {
        if (r->eval.acceptable()) {
          accepted = r->config;
          candidates = still_high(accepted);
          div = std::max<std::size_t>(2, div - 2);
          progressed = true;
          if (tr != nullptr) {
            tr->instant("dd/accept-complement", track, tr->now_us(),
                        {{"round", round},
                         {"variant", r->id},
                         {"remaining", candidates.size()}});
          }
          break;
        }
      }
      if (progressed) continue;
    }

    // Refine the partition; at singleton granularity we are done and the
    // accepted configuration is 1-minimal by construction.
    if (div >= candidates.size()) {
      reached_minimal = true;
      if (tr != nullptr) {
        tr->instant("dd/one-minimal", track, tr->now_us(),
                    {{"round", round}, {"remaining", candidates.size()}});
      }
      break;
    }
    div = std::min(candidates.size(), div * 2);
    if (tr != nullptr) {
      tr->instant("dd/refine", track, tr->now_us(),
                  {{"round", round}, {"div", div}});
    }
  }

  SearchResult result = rec.take();
  result.accepted = accepted;
  result.one_minimal = reached_minimal && !result.budget_exhausted;
  if (tr != nullptr) {
    const double ts = tr->now_us();
    if (result.budget_exhausted) {
      tr->instant("dd/stopped", track, ts,
                  {{"round", round}, {"budget_exhausted", true}});
    }
    tr->end("delta-debug", track, ts,
            {{"variants", result.records.size()},
             {"one_minimal", result.one_minimal},
             {"cache_hits", result.cache_hits},
             {"statically_skipped", result.statically_skipped},
             {"best_speedup", result.best_speedup}});
  }
  return result;
}

SearchResult brute_force_search(Evaluator& evaluator, const SearchOptions& options) {
  Recorder rec(evaluator, options);
  const std::size_t n = evaluator.space().size();
  PROSE_CHECK_MSG(n <= 24, "brute force is limited to 2^24 variants");
  const std::size_t total = std::size_t{1} << n;
  for (std::size_t mask = 0; mask < total && !rec.stopped(); ++mask) {
    Config config = evaluator.space().uniform(8);
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) config.kinds[i] = 4;
    }
    rec.probe(config);
    if ((mask & 0x3f) == 0x3f) rec.end_batch();
  }
  SearchResult result = rec.take();
  if (result.best.has_value()) result.accepted = *result.best;
  return result;
}

SearchResult random_search(Evaluator& evaluator, std::size_t samples,
                           std::uint64_t seed, const SearchOptions& options) {
  Recorder rec(evaluator, options);
  Rng rng(seed);
  const std::size_t n = evaluator.space().size();
  for (std::size_t s = 0; s < samples && !rec.stopped(); ++s) {
    Config config = evaluator.space().uniform(8);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(0.5)) config.kinds[i] = 4;
    }
    rec.probe(config);
    rec.end_batch();
  }
  SearchResult result = rec.take();
  if (result.best.has_value()) result.accepted = *result.best;
  return result;
}

SearchResult one_at_a_time_search(Evaluator& evaluator, const SearchOptions& options) {
  Recorder rec(evaluator, options);
  Config accepted = evaluator.space().uniform(8);
  for (std::size_t i = 0; i < evaluator.space().size() && !rec.stopped(); ++i) {
    Config candidate = accepted;
    candidate.kinds[i] = 4;
    const auto* r = rec.probe(candidate);
    rec.end_batch();
    if (r != nullptr && r->eval.acceptable()) accepted = candidate;
  }
  SearchResult result = rec.take();
  result.accepted = accepted;
  return result;
}

std::vector<std::size_t> check_one_minimal(Evaluator& evaluator, const Config& config) {
  std::vector<std::size_t> violations;
  for (std::size_t i = 0; i < config.kinds.size(); ++i) {
    if (config.kinds[i] != 8) continue;
    Config candidate = config;
    candidate.kinds[i] = 4;
    if (evaluator.evaluate(candidate).acceptable()) violations.push_back(i);
  }
  return violations;
}

}  // namespace prose::tuner
