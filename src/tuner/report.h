// Report builders: the tables and figure series the benches print.
#pragma once

#include <string>
#include <vector>

#include "tuner/campaign.h"
#include "tuner/frontier.h"

namespace prose::tuner {

/// CSV of a search trace: one row per variant with id, outcome, speedup,
/// error, %32-bit, wrappers (the Figure 2/5/7 series).
std::string variants_csv(const SearchResult& search);

/// CSV of the Figure 6 per-procedure series.
std::string figure6_csv(const std::vector<ProcedureVariantPoint>& points);

/// ASCII scatter of a search trace on speedup-error axes, with the paper's
/// threshold guide lines (Fig. 5 style). Glyphs: '+' pass, 'x' fail,
/// 't' timeout, 'e' runtime error.
std::string variants_scatter(const std::string& title, const SearchResult& search,
                             double error_threshold, bool log_error_axis = true);

/// ASCII scatter of per-procedure speedups on a log axis (Fig. 6 style),
/// one row block per procedure.
std::string figure6_scatter(const std::string& title,
                            const std::vector<ProcedureVariantPoint>& points);

/// Table II row cells for one campaign summary.
std::vector<std::string> table2_row(const CampaignSummary& summary);

/// A human-readable description of the final variant: which atoms stayed in
/// 64-bit (the paper reports these counts, e.g. ADCIRC's single variable).
std::string final_variant_report(const CampaignResult& result);

/// Human-readable root-cause diagnosis (CampaignOptions::diagnose): the
/// variable/procedure criticality rankings and per-variant divergence sites —
/// the automated counterpart of the paper's §V hand analysis.
std::string diagnosis_report(const CampaignResult& result);

/// Machine-readable diagnosis export (one JSON document). Non-finite
/// divergences are serialized with the Infinity/-Infinity/NaN tokens, which
/// both json::parse and Python's json.loads accept.
std::string diagnosis_json(const std::string& model,
                           const CampaignDiagnosis& diagnosis);

}  // namespace prose::tuner
