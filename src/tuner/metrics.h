// Performance and correctness metrics (paper §III-D, §III-E).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.h"
#include "support/status.h"

namespace prose::tuner {

/// Equation (1): Speedup = median(T_baseline_1..n) / median(T_variant_1..n).
/// Values above 1 are improvements.
double eq1_speedup(std::span<const double> baseline_times,
                   std::span<const double> variant_times);

/// The paper's rule for choosing n from the observed baseline relative
/// standard deviation: a 10-member MPAS-A/ADCIRC ensemble at ~1% RSD used
/// n = 1, MOM6 at ~9% used n = 7. We generalize: n = 1 below 2% RSD, n = 7
/// at or above, which reproduces both published choices.
int choose_eq1_n(double observed_rsd);

/// Draws `n` noisy timing samples around a deterministic simulated time,
/// using multiplicative log-normal noise of the given RSD. The stream is
/// derived from (seed, stream_id) so results are independent of evaluation
/// order.
std::vector<double> sample_noisy_times(double deterministic_time, double rsd, int n,
                                       std::uint64_t seed, std::uint64_t stream_id);

/// Relative error per the paper: |(out_baseline - out_variant)/out_baseline|.
/// Non-finite variant outputs map to +infinity (always over threshold).
double output_relative_error(double baseline_metric, double variant_metric);

/// Field-series error: partitions both series into consecutive groups of
/// `group_size`, takes the most extreme per-element relative error within
/// each group, and returns the L2 norm across groups — the paper's MPAS-A
/// construction (per-timestep max over cells, then L2 over time). With
/// group_size == 1 it is the ADCIRC/MOM6 L2-of-relative-errors form.
/// Series length mismatch or non-finite variant entries yield +infinity.
double series_error(std::span<const double> baseline, std::span<const double> variant,
                    std::size_t group_size);

}  // namespace prose::tuner
