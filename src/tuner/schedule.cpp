#include "tuner/schedule.h"

#include <algorithm>

#include "support/status.h"

namespace prose::tuner {

ClusterSim::ClusterSim(ClusterOptions options) : options_(options) {
  PROSE_CHECK(options_.nodes > 0);
}

double ClusterSim::remaining_seconds() const {
  return std::max(0.0, options_.wall_budget_seconds - elapsed_);
}

bool ClusterSim::run_batch(const std::vector<double>& task_seconds) {
  if (exhausted_) return false;
  ++batches_;
  // Longest-processing-time list scheduling onto the least-loaded node.
  std::vector<double> sorted = task_seconds;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::vector<double> node_load(options_.nodes, 0.0);
  for (const double t : sorted) {
    PROSE_CHECK(t >= 0.0);
    auto least = std::min_element(node_load.begin(), node_load.end());
    *least += t;
    busy_ += t;
  }
  const double makespan = *std::max_element(node_load.begin(), node_load.end());
  elapsed_ += makespan;
  if (elapsed_ >= options_.wall_budget_seconds) {
    exhausted_ = true;
    return false;
  }
  return true;
}

}  // namespace prose::tuner
