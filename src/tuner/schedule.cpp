#include "tuner/schedule.h"

#include <algorithm>

#include "support/status.h"

namespace prose::tuner {

ClusterSim::ClusterSim(ClusterOptions options) : options_(options) {
  PROSE_CHECK(options_.nodes > 0);
  alive_.assign(options_.nodes, 1);
  death_at_.assign(options_.nodes, 0.0);
}

void ClusterSim::set_crashes(std::vector<NodeCrash> crashes) {
  for (const NodeCrash& c : crashes) PROSE_CHECK(c.node < options_.nodes);
  crashes_ = std::move(crashes);
  std::sort(crashes_.begin(), crashes_.end(),
            [](const NodeCrash& a, const NodeCrash& b) {
              if (a.at_seconds != b.at_seconds) return a.at_seconds < b.at_seconds;
              return a.node < b.node;
            });
  crash_fired_.assign(crashes_.size(), 0);
}

std::size_t ClusterSim::alive_nodes() const {
  std::size_t n = 0;
  for (const std::uint8_t a : alive_) n += a;
  return n;
}

void ClusterSim::fire_crash(std::size_t crash_index) {
  crash_fired_[crash_index] = 1;
  const NodeCrash& c = crashes_[crash_index];
  if (alive_[c.node] == 0) return;
  alive_[c.node] = 0;
  death_at_[c.node] = c.at_seconds;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->instant("cluster/node-crash",
                     trace::Track::node(static_cast<int>(c.node)),
                     c.at_seconds * 1e6,
                     {{"node", c.node},
                      {"at_seconds", c.at_seconds},
                      {"alive_nodes", alive_nodes()}});
  }
}

void ClusterSim::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->set_process_name(trace::Track::kClusterPid, "cluster-sim");
    for (std::size_t n = 0; n < options_.nodes; ++n) {
      tracer_->set_thread_name(trace::Track::kClusterPid, static_cast<int>(n),
                               "node " + std::to_string(n));
    }
  }
}

double ClusterSim::remaining_seconds() const {
  return std::max(0.0, options_.wall_budget_seconds - elapsed_);
}

bool ClusterSim::run_batch(const std::vector<double>& task_seconds) {
  std::vector<ClusterTask> tasks(task_seconds.size());
  for (std::size_t i = 0; i < task_seconds.size(); ++i) {
    tasks[i].seconds = task_seconds[i];
  }
  return run_labeled_batch(tasks);
}

bool ClusterSim::run_labeled_batch(const std::vector<ClusterTask>& tasks) {
  if (exhausted_) return false;
  trace::Tracer* tr =
      (tracer_ != nullptr && tracer_->enabled()) ? tracer_ : nullptr;
  // Fire crashes that happened while the cluster sat idle between batches —
  // those nodes died with nothing in flight.
  for (std::size_t i = 0; i < crashes_.size(); ++i) {
    if (crash_fired_[i] == 0 && crashes_[i].at_seconds <= elapsed_) {
      fire_crash(i);
    }
  }
  if (alive_nodes() == 0) {
    exhausted_ = true;
    if (tr != nullptr) {
      tr->instant("cluster/all-nodes-dead", trace::Track::node(0),
                  elapsed_ * 1e6, {{"elapsed_seconds", elapsed_}});
    }
    return false;
  }
  ++batches_;
  // Longest-processing-time list scheduling onto the least-loaded node. A
  // stable sort keeps equal-length tasks in proposal order so traced slices
  // are deterministic; node loads (and therefore elapsed/busy) are identical
  // to any other descending order, since equal durations are interchangeable.
  std::vector<const ClusterTask*> sorted;
  sorted.reserve(tasks.size());
  for (const ClusterTask& t : tasks) sorted.push_back(&t);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ClusterTask* a, const ClusterTask* b) {
                     return a->seconds > b->seconds;
                   });
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<double> node_load(options_.nodes, 0.0);
  double latest_crash = 0.0;  // latest crash fired during this batch
  for (const ClusterTask* t : sorted) {
    PROSE_CHECK(t->seconds >= 0.0);
    // Placement loop: a chosen node may crash before (or while) running the
    // task, in which case the task is rescheduled on the survivors.
    while (true) {
      std::size_t best = kNone;
      for (std::size_t n = 0; n < options_.nodes; ++n) {
        if (alive_[n] != 0 && (best == kNone || node_load[n] < node_load[best])) {
          best = n;
        }
      }
      if (best == kNone) {
        // Every node is gone; the rest of the batch is unrunnable.
        exhausted_ = true;
        elapsed_ = std::max(elapsed_, latest_crash);
        if (tr != nullptr) {
          tr->instant("cluster/all-nodes-dead", trace::Track::node(0),
                      elapsed_ * 1e6, {{"elapsed_seconds", elapsed_}});
        }
        return false;
      }
      const double start = elapsed_ + node_load[best];
      const double end = start + t->seconds;
      // Earliest unfired crash for this node; if it lands before the task
      // would finish, the node dies here.
      std::size_t ci = kNone;
      for (std::size_t i = 0; i < crashes_.size(); ++i) {
        if (crash_fired_[i] == 0 && crashes_[i].node == best) {
          ci = i;
          break;
        }
      }
      if (ci != kNone && crashes_[ci].at_seconds < end) {
        const double at = crashes_[ci].at_seconds;
        if (at > start) {
          // The task was mid-flight: its partial slice is wasted work.
          if (tr != nullptr) {
            tr->complete((t->label.empty() ? "task" : t->label) + " (lost)",
                         trace::Track::node(static_cast<int>(best)),
                         start * 1e6, (at - start) * 1e6,
                         {{"seconds", t->seconds},
                          {"lost", true},
                          {"batch", batches_}});
          }
          busy_ += at - start;
        }
        latest_crash = std::max(latest_crash, at);
        fire_crash(ci);
        continue;  // reschedule the task from scratch on a survivor
      }
      if (tr != nullptr) {
        tr->complete(t->label.empty() ? "task" : t->label,
                     trace::Track::node(static_cast<int>(best)), start * 1e6,
                     t->seconds * 1e6,
                     {{"seconds", t->seconds}, {"batch", batches_}});
      }
      node_load[best] += t->seconds;
      busy_ += t->seconds;
      break;
    }
  }
  double makespan = 0.0;
  for (std::size_t n = 0; n < options_.nodes; ++n) {
    if (alive_[n] != 0) makespan = std::max(makespan, node_load[n]);
  }
  elapsed_ += makespan;
  elapsed_ = std::max(elapsed_, latest_crash);
  if (tr != nullptr) {
    const double ts = elapsed_ * 1e6;
    tr->counter("cluster/busy-node-seconds", trace::Track::node(0), ts, busy_);
    // Capacity honours node deaths: a dead node contributed only until its
    // crash. The all-alive formula is kept verbatim so traces without
    // crashes stay bit-identical to earlier builds.
    double capacity = 0.0;
    if (alive_nodes() == options_.nodes) {
      capacity = elapsed_ * static_cast<double>(options_.nodes);
    } else {
      for (std::size_t n = 0; n < options_.nodes; ++n) {
        capacity += alive_[n] != 0 ? elapsed_ : std::min(elapsed_, death_at_[n]);
      }
    }
    tr->counter("cluster/utilization", trace::Track::node(0), ts,
                capacity > 0.0 ? busy_ / capacity : 0.0);
  }
  if (elapsed_ >= options_.wall_budget_seconds) {
    exhausted_ = true;
    if (tr != nullptr) {
      tr->instant("cluster/budget-exhausted", trace::Track::node(0),
                  elapsed_ * 1e6,
                  {{"elapsed_seconds", elapsed_},
                   {"budget_seconds", options_.wall_budget_seconds},
                   {"batches", batches_}});
    }
    return false;
  }
  return true;
}

}  // namespace prose::tuner
