#include "tuner/schedule.h"

#include <algorithm>

#include "support/status.h"

namespace prose::tuner {

ClusterSim::ClusterSim(ClusterOptions options) : options_(options) {
  PROSE_CHECK(options_.nodes > 0);
}

void ClusterSim::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->set_process_name(trace::Track::kClusterPid, "cluster-sim");
    for (std::size_t n = 0; n < options_.nodes; ++n) {
      tracer_->set_thread_name(trace::Track::kClusterPid, static_cast<int>(n),
                               "node " + std::to_string(n));
    }
  }
}

double ClusterSim::remaining_seconds() const {
  return std::max(0.0, options_.wall_budget_seconds - elapsed_);
}

bool ClusterSim::run_batch(const std::vector<double>& task_seconds) {
  std::vector<ClusterTask> tasks(task_seconds.size());
  for (std::size_t i = 0; i < task_seconds.size(); ++i) {
    tasks[i].seconds = task_seconds[i];
  }
  return run_labeled_batch(tasks);
}

bool ClusterSim::run_labeled_batch(const std::vector<ClusterTask>& tasks) {
  if (exhausted_) return false;
  ++batches_;
  trace::Tracer* tr =
      (tracer_ != nullptr && tracer_->enabled()) ? tracer_ : nullptr;
  // Longest-processing-time list scheduling onto the least-loaded node. A
  // stable sort keeps equal-length tasks in proposal order so traced slices
  // are deterministic; node loads (and therefore elapsed/busy) are identical
  // to any other descending order, since equal durations are interchangeable.
  std::vector<const ClusterTask*> sorted;
  sorted.reserve(tasks.size());
  for (const ClusterTask& t : tasks) sorted.push_back(&t);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ClusterTask* a, const ClusterTask* b) {
                     return a->seconds > b->seconds;
                   });
  std::vector<double> node_load(options_.nodes, 0.0);
  for (const ClusterTask* t : sorted) {
    PROSE_CHECK(t->seconds >= 0.0);
    auto least = std::min_element(node_load.begin(), node_load.end());
    if (tr != nullptr) {
      const int node = static_cast<int>(least - node_load.begin());
      tr->complete(t->label.empty() ? "task" : t->label,
                   trace::Track::node(node), (elapsed_ + *least) * 1e6,
                   t->seconds * 1e6,
                   {{"seconds", t->seconds}, {"batch", batches_}});
    }
    *least += t->seconds;
    busy_ += t->seconds;
  }
  const double makespan = *std::max_element(node_load.begin(), node_load.end());
  elapsed_ += makespan;
  if (tr != nullptr) {
    const double ts = elapsed_ * 1e6;
    tr->counter("cluster/busy-node-seconds", trace::Track::node(0), ts, busy_);
    const double capacity = elapsed_ * static_cast<double>(options_.nodes);
    tr->counter("cluster/utilization", trace::Track::node(0), ts,
                capacity > 0.0 ? busy_ / capacity : 0.0);
  }
  if (elapsed_ >= options_.wall_budget_seconds) {
    exhausted_ = true;
    if (tr != nullptr) {
      tr->instant("cluster/budget-exhausted", trace::Track::node(0),
                  elapsed_ * 1e6,
                  {{"elapsed_seconds", elapsed_},
                   {"budget_seconds", options_.wall_budget_seconds},
                   {"batches", batches_}});
    }
    return false;
  }
  return true;
}

}  // namespace prose::tuner
