// Static variant evaluation (paper §V recommendations).
//
// Two filters that predict a bad variant *without* running it:
//   1. Mixed-flow cost model: penalize mixed-precision interprocedural data
//     flow as a function of estimated call count × array element count
//     (suggested by the MPAS-A flux and MOM6 zonal_mass_flux analyses).
//   2. Vectorization report filter: reject variants whose compiled code
//     vectorizes fewer loops than the baseline (suggested by the flux
//     inlining analysis).
// The ablation bench measures how many dynamic evaluations these filters
// would have saved and whether they ever reject an acceptable variant.
#pragma once

#include <string>

#include "sim/compile.h"
#include "tuner/evaluator.h"

namespace prose::tuner {

struct StaticScreenResult {
  bool rejected = false;
  std::string reason;
  double mixed_flow_penalty = 0.0;   // Σ calls × elements over mismatched edges
  std::size_t vectorized_loops = 0;
  std::size_t baseline_vectorized_loops = 0;
};

struct StaticFilterOptions {
  /// Reject when the mixed-flow penalty exceeds this fraction of the
  /// baseline's total interprocedural FP flow.
  double mixed_flow_fraction_threshold = 0.25;
  bool use_mixed_flow_filter = true;
  bool use_vectorization_filter = true;
};

class StaticScreener {
 public:
  /// Precomputes baseline facts (flow volume, vectorized-loop count).
  static StatusOr<StaticScreener> create(const Evaluator& evaluator,
                                         StaticFilterOptions options = {});

  /// Screens one configuration: transforms (cheap, no execution), rebuilds
  /// the flow graph and vectorization report, and applies the filters.
  StaticScreenResult screen(const Evaluator& evaluator, const Config& config) const;

 private:
  StaticFilterOptions options_;
  double baseline_total_flow_ = 0.0;
  std::size_t baseline_vectorized_ = 0;
};

}  // namespace prose::tuner
