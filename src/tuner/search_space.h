// Search-space construction (paper §III-A).
//
// Search atoms are floating-point *variable declarations* within the targeted
// scope (a module, or specific procedures), at two precision levels — the
// paper's choices for keeping the 2^n design space tractable and the
// resulting variants readable by domain experts.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "ftn/sema.h"
#include "ftn/transform.h"

namespace prose::tuner {

/// One tunable declaration.
struct Atom {
  ftn::NodeId decl = ftn::kInvalidNode;
  std::string qualified;     // "module::proc::var" or "module::var"
  bool is_array = false;
  std::int64_t elements = 1; // 0 when the shape is assumed/automatic
  int original_kind = 8;
};

/// A precision configuration: kinds[i] applies to atoms[i]. Value semantics,
/// cheap to copy, hashable for the evaluation cache.
struct Config {
  std::vector<std::uint8_t> kinds;  // 4 or 8 per atom

  [[nodiscard]] std::size_t count32() const {
    std::size_t n = 0;
    for (const auto k : kinds) {
      if (k == 4) ++n;
    }
    return n;
  }
  [[nodiscard]] double fraction32() const {
    return kinds.empty() ? 0.0
                         : static_cast<double>(count32()) / static_cast<double>(kinds.size());
  }
  [[nodiscard]] std::string key() const {
    std::string k(kinds.size(), '8');
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      if (kinds[i] == 4) k[i] = '4';
    }
    return k;
  }
  friend bool operator==(const Config&, const Config&) = default;
};

class SearchSpace {
 public:
  /// Enumerates the real-typed variable declarations of the given scopes.
  /// A scope is a module name ("mpas") or a procedure ("mpas::flux4").
  /// `exclude` removes atoms by qualified name (e.g. funarc's `result`).
  static StatusOr<SearchSpace> build(const ftn::ResolvedProgram& rp,
                                     const std::vector<std::string>& scopes,
                                     const std::set<std::string>& exclude = {});

  [[nodiscard]] const std::vector<Atom>& atoms() const { return atoms_; }
  [[nodiscard]] std::size_t size() const { return atoms_.size(); }

  /// All-64-bit / all-32-bit configurations.
  [[nodiscard]] Config uniform(int kind) const;

  /// Converts a configuration into the transformation plan. Only atoms whose
  /// kind differs from the declaration's original kind appear in the plan.
  [[nodiscard]] ftn::PrecisionAssignment to_assignment(const Config& config) const;

  /// Index of an atom by qualified name; -1 if absent.
  [[nodiscard]] std::ptrdiff_t index_of(const std::string& qualified) const;

  /// Atoms belonging to one procedure ("module::proc"), for per-procedure
  /// variant analysis (Figure 6).
  [[nodiscard]] std::vector<std::size_t> atoms_in_scope(const std::string& scope) const;

  /// Restriction of a config to one scope, as a key string (identifies the
  /// unique per-procedure variants of Figure 6).
  [[nodiscard]] std::string scope_key(const Config& config,
                                      const std::string& scope) const;

 private:
  std::vector<Atom> atoms_;
};

}  // namespace prose::tuner
