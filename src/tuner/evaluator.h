// Dynamic variant evaluation (paper Fig. 1: transform → compile → execute →
// measure), with memoization — the delta-debugging search revisits
// configurations, and the paper's tool caches them too.
//
// Evaluation is batch-parallel: the searches propose whole rounds of
// independent variants, and evaluate_batch() fans them out to a ThreadPool
// the way the paper fanned variants out one-per-node across 20 Derecho nodes
// (§IV-A). Parallel evaluation is bit-identical to the serial path:
//
//   * the memo cache is thread-safe with single-flight per config key — a
//     key is computed exactly once no matter how many callers race on it;
//   * noise streams are preassigned in proposal order during batch planning
//     (first occurrence of each uncached key claims the next stream), which
//     is exactly the order the serial path would have assigned them;
//   * simulated quantities (cycles, node-seconds) are computed per variant
//     from the VM run, never from host wall time, so ClusterSim accounting
//     is unaffected by the worker count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ftn/reduce.h"
#include "ftn/sema.h"
#include "obs/metrics.h"
#include "support/faultinject.h"
#include "support/strings.h"
#include "support/thread_pool.h"
#include "support/trace.h"
#include "tuner/metrics.h"
#include "tuner/search_space.h"
#include "tuner/target.h"

namespace prose::tuner {

class Journal;
struct JournalVariant;

enum class Outcome : std::uint8_t {
  kPass,           // ran to completion, correctness within threshold
  kFail,           // ran to completion, correctness over threshold
  kTimeout,        // exceeded 3× the baseline budget
  kRuntimeError,   // trapped (non-finite, OOB, ...)
  kCompileError,   // transformation or compilation failed
  kLost,           // quarantined: injected transient faults exhausted the
                   // retry budget — "no information", not pass/fail
};

const char* to_string(Outcome o);
/// Inverse of to_string (journal deserialization). Returns false on an
/// unknown outcome name.
bool outcome_from_string(std::string_view s, Outcome* out);

/// Everything measured about one variant.
struct Evaluation {
  Outcome outcome = Outcome::kCompileError;
  std::string detail;           // failure diagnostics

  double metric = 0.0;          // the model's scalar correctness metric
  double error = 0.0;           // relative error vs. the baseline metric
  double hotspot_cycles = 0.0;  // GPTL-attributed hotspot CPU time
  double whole_cycles = 0.0;    // whole-run simulated time
  double cast_cycles = 0.0;
  double measured_cycles = 0.0; // the quantity Eq. (1) is computed over
  double speedup = 0.0;         // Eq. (1) vs. the baseline, noise included
  double fraction32 = 0.0;

  int wrappers = 0;
  /// Evaluation attempts consumed (1 without fault injection; >1 when
  /// injected transient faults were retried). Backoff and straggler costs of
  /// every attempt are already folded into node_seconds.
  int attempts = 1;
  /// Per-procedure mean cycles per call (Fig. 6), for the spec's
  /// figure6_procs that executed.
  std::map<std::string, double> proc_mean_cycles;
  std::map<std::string, std::uint64_t> proc_calls;

  /// Simulated wall seconds this evaluation would cost on one node
  /// (build + n executions), for the campaign scheduler.
  double node_seconds = 0.0;

  [[nodiscard]] bool acceptable() const {
    return outcome == Outcome::kPass && speedup >= 1.0;
  }
};

/// One blamed variable in one diagnosed variant (shadow re-run). Relative
/// divergence is |primary − binary64 shadow| / max(|primary|, |shadow|);
/// a variable whose demotion overflowed or produced a non-finite value
/// records +inf.
struct VariableBlame {
  std::string qualified;
  bool demoted = false;        // at binary32 in this variant's config
  double max_rel_div = 0.0;
  std::uint64_t writes = 0;
};

/// One procedure's divergence contribution in one diagnosed variant.
/// `blame` is the ranking score: introduced divergence (error born in this
/// procedure, not inherited) plus 0.01 per cancellation / control
/// divergence, plus a 1e6 bump for the procedure the run faulted in.
struct ProcedureBlame {
  std::string qualified;
  double blame = 0.0;
  double introduced_sum = 0.0;
  double introduced_max = 0.0;
  double max_rel_div = 0.0;
  std::uint64_t cancellations = 0;
  std::uint64_t control_divergences = 0;
  double cast_cycles = 0.0;
  bool faulted = false;
};

/// Shadow-execution diagnosis of one rejected variant: why it was rejected,
/// stated as ranked variable and procedure blame (Evaluator::diagnose).
struct BlameReport {
  std::string key;                            // Config::key()
  Outcome outcome = Outcome::kCompileError;   // outcome of the shadow re-run
  double max_rel_div = 0.0;
  std::uint64_t cancellations = 0;
  std::uint64_t control_divergences = 0;
  bool has_first_divergence = false;
  std::string first_divergence_proc;
  std::int32_t first_divergence_instr = -1;   // proc-relative instruction
  std::string fault_proc;                     // empty if the re-run finished
  std::vector<VariableBlame> variables;       // demoted-first, divergence desc
  std::vector<ProcedureBlame> procedures;     // blame desc — root cause first
};

/// Pluggable remote-evaluation transport (the serve client implements this;
/// the interface lives here so the tuner does not depend on the serve
/// library). The evaluator hands over (config, noise-stream) pairs whose
/// streams it already assigned in proposal order — the backend must evaluate
/// each pair on exactly that stream, which is what makes a served campaign
/// bit-identical to a local one regardless of client arrival order.
class EvalBackend {
 public:
  /// One remote result. Exactly one of three shapes:
  ///   ok          — `eval` holds the evaluation;
  ///   aborted     — the server hit an injected evaluator abort; `error` is
  ///                 the exception text the local path would have thrown;
  ///   neither     — transport/protocol failure; the caller computes the
  ///                 variant locally (bit-identical either way).
  struct RemoteItem {
    bool ok = false;
    bool aborted = false;
    std::string error;
    Evaluation eval;
  };
  virtual ~EvalBackend() = default;
  /// Evaluates configs[i] on streams[i] for every i. Must return one item
  /// per input (a short or oversized reply is treated as transport failure
  /// for every item). Called with the evaluator's cache lock *not* held.
  virtual std::vector<RemoteItem> evaluate_many(
      std::span<const Config> configs,
      std::span<const std::uint64_t> streams) = 0;

  /// Cumulative degradation counters, surfaced in CampaignSummary so
  /// served-mode trouble is visible in reports, not just stderr: items the
  /// backend could not resolve (the caller computed them locally) and busy
  /// rounds spent waiting out server admission rejections.
  struct Counters {
    std::uint64_t fallback_items = 0;
    std::uint64_t busy_retries = 0;
    /// Fleet-mode degradation tallies (zero for single-server backends).
    /// None of these affect results — a fleet campaign is bit-identical to
    /// a local one — they record how hard the client worked to stay up.
    std::uint64_t hedges = 0;       // hedged duplicate requests issued
    std::uint64_t hedge_wins = 0;   // items resolved by the hedge, not primary
    std::uint64_t failovers = 0;    // items rerouted off a dead/draining shard
    std::uint64_t shards_lost = 0;  // shard connections declared dead
    double busy_backoff_seconds = 0.0;  // total deterministic backoff slept
  };
  [[nodiscard]] virtual Counters counters() const { return {}; }

  /// Attaches the campaign's flight recorder so the backend can emit
  /// request-scoped spans (and propagate trace context over its transport).
  /// Pure observability: results are bit-identical with or without it.
  /// Default no-op keeps transports that don't trace trivially conformant.
  virtual void set_tracer(trace::Tracer* /*tracer*/) {}
};

class Evaluator {
 public:
  /// Parses and resolves the spec's source, builds the search space, and
  /// evaluates the uniform-64 baseline. Fails if the model itself is broken.
  /// `tracer` (optional, non-owning, must outlive the evaluator) records one
  /// span per variant lifecycle — transform → compile → execute → measure —
  /// plus per-run VM op-mix counters and GPTL region counters.
  /// `dispatch` selects the VM execution engine for every run this
  /// evaluator performs, the baseline included (see set_vm_dispatch).
  static StatusOr<std::unique_ptr<Evaluator>> create(
      const TargetSpec& spec, std::uint64_t noise_seed = 2024,
      trace::Tracer* tracer = nullptr,
      sim::VmDispatch dispatch = sim::VmDispatch::kAuto);

  /// Attach or detach the flight recorder after construction.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Attach a deterministic fault plan (non-owning; must outlive the
  /// evaluator; null detaches). Faults are keyed off the FNV-1a config hash
  /// and attempt number, so the injected sequence is identical across runs
  /// and worker counts. The baseline evaluation is never faulted.
  void set_fault_plan(const FaultPlan* plan) { fault_plan_ = plan; }

  /// Retry semantics for injected transient faults (see RetryPolicy).
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  /// Attach a write-ahead journal (non-owning; null detaches): every freshly
  /// computed evaluation is appended — and fsync'd — before it is returned
  /// to the search.
  void set_journal(Journal* journal) { journal_ = journal; }

  /// Attach an observability registry (non-owning; null detaches): registers
  /// per-phase latency histograms, cache hit/miss, retry/quarantine/fault,
  /// and backend-fallback counters, and bumps them on the evaluation paths.
  /// Pure telemetry under the tracing contract: wall-clock feeds metric
  /// *values* only, never scheduling or simulated time, so an instrumented
  /// campaign is bit-identical to an uninstrumented one.
  void set_metrics(obs::Registry* registry);

  /// Selects the VM execution engine for variant runs (default kAuto — the
  /// build-configured default, normally direct-threaded). All engines are
  /// bit-identical in outcomes, metrics, and accounting (the
  /// dispatch-equivalence suite pins this), so this is purely a host-speed
  /// knob. diagnose() is unaffected: shadow execution always runs on the
  /// reference interpreter. Set before evaluating; not synchronized against
  /// in-flight evaluations.
  void set_vm_dispatch(sim::VmDispatch dispatch) { vm_dispatch_ = dispatch; }
  [[nodiscard]] sim::VmDispatch vm_dispatch() const { return vm_dispatch_; }

  /// Cumulative VM execution statistics across every attempt this evaluator
  /// ran locally (baseline included; remote/backend evaluations excluded).
  /// Observability for the bench fusion hit-rate and campaign reports.
  struct VmExecStats {
    std::uint64_t runs = 0;           // VM executions (attempts, not variants)
    std::uint64_t instructions = 0;   // executed VM instructions
    std::uint64_t fused_pairs = 0;    // superinstruction dispatches
    std::uint64_t fused_covered = 0;  // instructions covered by fused pairs
  };
  [[nodiscard]] VmExecStats vm_exec_stats() const;

  /// Attach a remote-evaluation backend (non-owning; null detaches). Cache
  /// misses are offloaded through it instead of simulated in-process; any
  /// transport failure falls back to local computation (once-per-evaluator
  /// stderr warning), so attaching a backend never changes results — only
  /// where they are computed. Journaling, memoization, and noise-stream
  /// assignment are unaffected.
  void set_backend(EvalBackend* backend) { backend_ = backend; }

  /// Serve-side entry point: evaluates one variant on an explicit,
  /// caller-assigned noise stream — no memo cache, no stream counter, no
  /// journal. Thread-safe. May throw on an injected `abort` fault, exactly
  /// like the local path (the server forwards the exception text in an
  /// error frame). `worker` names the trace track.
  Evaluation evaluate_remote(const Config& config, std::uint64_t stream,
                             int worker);

  /// Primes the resume path with journaled evaluations: a cache miss whose
  /// key is found here (with the matching proposal-order noise stream) is
  /// satisfied from the journal instead of re-simulated, making a resumed
  /// campaign bit-identical to — and much cheaper than — the original.
  /// Replayed variants are not re-journaled.
  void set_journal_replay(const std::vector<JournalVariant>& variants);

  /// Variants satisfied from the journal so far (resume accounting).
  [[nodiscard]] std::size_t replayed_from_journal() const;

  [[nodiscard]] const SearchSpace& space() const { return space_; }
  [[nodiscard]] const TargetSpec& spec() const { return spec_; }
  [[nodiscard]] const Evaluation& baseline() const { return baseline_; }
  [[nodiscard]] const ftn::ResolvedProgram& pristine() const { return pristine_; }
  [[nodiscard]] int eq1_n() const { return eq1_n_; }
  /// Simulated seconds per cycle (calibrated from baseline_wall_seconds).
  [[nodiscard]] double seconds_per_cycle() const { return seconds_per_cycle_; }

  /// Evaluates a configuration (memoized). `cache_hit` reports reuse.
  /// Thread-safe: concurrent calls on the same key single-flight — one
  /// caller computes, the others block until the entry is ready. Returned
  /// references stay valid for the evaluator's lifetime.
  const Evaluation& evaluate(const Config& config, bool* cache_hit = nullptr);

  /// One proposal's result within a batch.
  struct BatchItem {
    const Evaluation* eval = nullptr;
    /// True iff a serial walk of the batch would have hit the cache at this
    /// position: the key was cached before the batch, or appeared earlier in
    /// the batch.
    bool cache_hit = false;
  };

  /// Evaluates a whole proposal batch, fanning cache misses out to `pool`
  /// (null or single-worker pool → serial evaluation, same code path as
  /// evaluate()). Results — outcomes, speedups, noise streams, cache-hit
  /// flags — are bit-identical to calling evaluate() on each config in
  /// order. Duplicate keys inside the batch are evaluated once.
  std::vector<BatchItem> evaluate_batch(std::span<const Config> configs,
                                        ThreadPool* pool = nullptr);

  /// True when the configuration's key is already memoized (a completed
  /// entry; in-flight entries count too). Used by the searches to replicate
  /// serial bookkeeping without forcing an evaluation.
  [[nodiscard]] bool is_cached(const Config& config) const;

  /// Number of distinct variants evaluated so far (excluding the baseline).
  [[nodiscard]] std::size_t unique_evaluations() const;

  /// Memo-cache hit statistics (lookups = hits + misses), also exported as
  /// cache/* trace counters when a tracer is attached.
  [[nodiscard]] std::uint64_t cache_lookups() const;
  [[nodiscard]] std::uint64_t cache_hit_count() const;

  /// Statistics of the T0 reduction preprocessing; nullopt unless the spec
  /// enabled run_reduction_preprocessing.
  [[nodiscard]] const std::optional<ftn::ReductionStats>& reduction_stats() const {
    return reduction_stats_;
  }

  /// Diagnosis pass: re-runs one (typically rejected) configuration under
  /// VM shadow-precision execution and distills the divergence provenance
  /// into a BlameReport. Completely outside the memo cache, the noise
  /// streams, and the journal — a diagnosed campaign stays bit-identical to
  /// an undiagnosed one. Emits diag/* trace counters when a tracer is
  /// attached. Fails only if the variant cannot be transformed or compiled.
  StatusOr<BlameReport> diagnose(const Config& config);

 private:
  /// Memo entry. `ready` flips exactly once, under cache_mu_; waiters on the
  /// single-flight condition variable watch it. Node-based unordered_map
  /// keeps entry addresses stable across rehashes, so &entry.eval may be
  /// handed out while the map keeps growing.
  struct CacheEntry {
    bool ready = false;
    Evaluation eval;
  };
  /// Hash the config key with FNV-1a (fixed across platforms) — the same
  /// hash that names configs in traces, computed once per lookup.
  struct KeyHash {
    std::size_t operator()(const std::string& key) const {
      return static_cast<std::size_t>(fnv1a64(key));
    }
  };

  /// A journaled evaluation staged for replay on resume.
  struct ReplayEntry {
    std::uint64_t stream = 0;
    Evaluation eval;
  };

  Evaluator(const TargetSpec& spec, std::uint64_t noise_seed);
  Status init();
  /// Full evaluation of one variant: the fault-injection / retry loop around
  /// run_attempt. Without a fault plan this is exactly one attempt. May
  /// throw on an injected `abort` fault (host-level crash simulation).
  Evaluation run_variant(const Config& config, bool is_baseline,
                         std::uint64_t stream_id, trace::Track track);
  /// One traced attempt (transform → compile → execute → measure).
  Evaluation run_attempt(const Config& config, bool is_baseline,
                         std::uint64_t stream_id, trace::Track track);
  /// run_attempt body; `tr` is null when tracing is disabled (zero-cost path).
  Evaluation run_variant_impl(const Config& config, bool is_baseline,
                              std::uint64_t stream_id, trace::Track track,
                              trace::Tracer* tr);
  /// If the key was journaled, installs the replayed evaluation into `entry`
  /// (consuming the proposal-order stream) and returns true. Call with
  /// cache_mu_ held.
  bool try_replay_locked(const std::string& key, std::uint64_t stream,
                         CacheEntry* entry);
  /// One cache miss's computation: offloads through backend_ when attached
  /// (transport failure → local fallback; remote abort → throws the
  /// forwarded exception), run_variant otherwise.
  Evaluation compute_variant(const Config& config, std::uint64_t stream,
                             trace::Track track);
  /// Once-per-evaluator stderr note that the backend degraded to local.
  void warn_backend_fallback(const std::string& why);
  /// Decoded instruction stream for this variant's compiled program, from
  /// the per-variant decoded cache (keyed like the memo cache). Null when
  /// decoding failed — the Vm then surfaces the decode error itself.
  std::shared_ptr<const sim::DecodedProgram> decoded_for(
      const std::string& key, const sim::CompiledProgram& compiled);
  /// Counts a lookup and emits the cache/* counters (call with cache_mu_ held).
  void note_lookup_locked(bool hit);
  void emit_cache_hit_instant(const Config& config, const Evaluation& eval);

  TargetSpec spec_;
  std::uint64_t noise_seed_;
  ftn::ResolvedProgram pristine_;
  SearchSpace space_;
  Evaluation baseline_;
  std::vector<double> baseline_series_;
  std::vector<double> baseline_samples_;
  int eq1_n_ = 1;
  double seconds_per_cycle_ = 0.0;
  double cycle_budget_ = 0.0;

  mutable std::mutex cache_mu_;
  std::condition_variable cache_cv_;  // single-flight: signals entries turning ready
  std::unordered_map<std::string, CacheEntry, KeyHash> cache_;
  std::uint64_t next_stream_ = 1;  // proposal-order noise streams; guarded by cache_mu_
  std::uint64_t cache_lookups_ = 0;
  std::uint64_t cache_hits_ = 0;

  std::optional<ftn::ReductionStats> reduction_stats_;
  trace::Tracer* tracer_ = nullptr;  // non-owning flight recorder; may be null

  sim::VmDispatch vm_dispatch_ = sim::VmDispatch::kAuto;
  /// Per-variant decoded-stream cache (decode once, reuse across retry
  /// attempts and dispatch-engine runs of the same key). Compilation is
  /// deterministic, so a stream decoded on attempt 1 is valid for every
  /// recompile of the same configuration. Bounded: cleared when full.
  mutable std::mutex decoded_mu_;
  std::unordered_map<std::string, std::shared_ptr<const sim::DecodedProgram>,
                     KeyHash>
      decoded_cache_;
  mutable std::mutex vm_stats_mu_;
  VmExecStats vm_stats_;

  /// Observability instruments (registered by set_metrics; null = off).
  /// Grouped so the hot paths test one pointer per family.
  struct EvalMetrics {
    obs::Histogram* transform_seconds = nullptr;
    obs::Histogram* compile_seconds = nullptr;
    obs::Histogram* execute_seconds = nullptr;
    obs::Histogram* measure_seconds = nullptr;
    obs::Histogram* variant_seconds = nullptr;
    obs::Counter* attempts = nullptr;
    obs::Counter* cache_lookups = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* quarantined = nullptr;
    obs::Counter* faults = nullptr;
    obs::Counter* backend_fallbacks = nullptr;
  };

  const FaultPlan* fault_plan_ = nullptr;  // non-owning; may be null
  EvalMetrics m_;  // instruments; inert until set_metrics
  RetryPolicy retry_;
  Journal* journal_ = nullptr;  // non-owning write-ahead journal; may be null
  EvalBackend* backend_ = nullptr;  // non-owning remote transport; may be null
  std::atomic<bool> backend_warned_{false};  // fallback warning, once
  /// Journaled evaluations staged for resume; entries are consumed (moved
  /// into the cache) as the search re-proposes them. Guarded by cache_mu_.
  std::unordered_map<std::string, ReplayEntry, KeyHash> replay_;
  std::size_t replayed_ = 0;  // guarded by cache_mu_
};

}  // namespace prose::tuner
