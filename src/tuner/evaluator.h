// Dynamic variant evaluation (paper Fig. 1: transform → compile → execute →
// measure), with memoization — the delta-debugging search revisits
// configurations, and the paper's tool caches them too.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ftn/reduce.h"
#include "ftn/sema.h"
#include "support/trace.h"
#include "tuner/metrics.h"
#include "tuner/search_space.h"
#include "tuner/target.h"

namespace prose::tuner {

enum class Outcome : std::uint8_t {
  kPass,           // ran to completion, correctness within threshold
  kFail,           // ran to completion, correctness over threshold
  kTimeout,        // exceeded 3× the baseline budget
  kRuntimeError,   // trapped (non-finite, OOB, ...)
  kCompileError,   // transformation or compilation failed
};

const char* to_string(Outcome o);

/// Everything measured about one variant.
struct Evaluation {
  Outcome outcome = Outcome::kCompileError;
  std::string detail;           // failure diagnostics

  double metric = 0.0;          // the model's scalar correctness metric
  double error = 0.0;           // relative error vs. the baseline metric
  double hotspot_cycles = 0.0;  // GPTL-attributed hotspot CPU time
  double whole_cycles = 0.0;    // whole-run simulated time
  double cast_cycles = 0.0;
  double measured_cycles = 0.0; // the quantity Eq. (1) is computed over
  double speedup = 0.0;         // Eq. (1) vs. the baseline, noise included
  double fraction32 = 0.0;

  int wrappers = 0;
  /// Per-procedure mean cycles per call (Fig. 6), for the spec's
  /// figure6_procs that executed.
  std::map<std::string, double> proc_mean_cycles;
  std::map<std::string, std::uint64_t> proc_calls;

  /// Simulated wall seconds this evaluation would cost on one node
  /// (build + n executions), for the campaign scheduler.
  double node_seconds = 0.0;

  [[nodiscard]] bool acceptable() const {
    return outcome == Outcome::kPass && speedup >= 1.0;
  }
};

class Evaluator {
 public:
  /// Parses and resolves the spec's source, builds the search space, and
  /// evaluates the uniform-64 baseline. Fails if the model itself is broken.
  /// `tracer` (optional, non-owning, must outlive the evaluator) records one
  /// span per variant lifecycle — transform → compile → execute → measure —
  /// plus per-run VM op-mix counters and GPTL region counters.
  static StatusOr<std::unique_ptr<Evaluator>> create(const TargetSpec& spec,
                                                     std::uint64_t noise_seed = 2024,
                                                     trace::Tracer* tracer = nullptr);

  /// Attach or detach the flight recorder after construction.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  [[nodiscard]] const SearchSpace& space() const { return space_; }
  [[nodiscard]] const TargetSpec& spec() const { return spec_; }
  [[nodiscard]] const Evaluation& baseline() const { return baseline_; }
  [[nodiscard]] const ftn::ResolvedProgram& pristine() const { return pristine_; }
  [[nodiscard]] int eq1_n() const { return eq1_n_; }
  /// Simulated seconds per cycle (calibrated from baseline_wall_seconds).
  [[nodiscard]] double seconds_per_cycle() const { return seconds_per_cycle_; }

  /// Evaluates a configuration (memoized). `cache_hit` reports reuse.
  const Evaluation& evaluate(const Config& config, bool* cache_hit = nullptr);

  /// Number of distinct variants evaluated so far (excluding the baseline).
  [[nodiscard]] std::size_t unique_evaluations() const { return cache_.size(); }

  /// Statistics of the T0 reduction preprocessing; nullopt unless the spec
  /// enabled run_reduction_preprocessing.
  [[nodiscard]] const std::optional<ftn::ReductionStats>& reduction_stats() const {
    return reduction_stats_;
  }

 private:
  Evaluator(const TargetSpec& spec, std::uint64_t noise_seed);
  Status init();
  Evaluation run_variant(const Config& config, bool is_baseline);
  /// run_variant body; `tr` is null when tracing is disabled (zero-cost path).
  Evaluation run_variant_impl(const Config& config, bool is_baseline,
                              trace::Tracer* tr);

  TargetSpec spec_;
  std::uint64_t noise_seed_;
  ftn::ResolvedProgram pristine_;
  SearchSpace space_;
  Evaluation baseline_;
  std::vector<double> baseline_series_;
  std::vector<double> baseline_samples_;
  int eq1_n_ = 1;
  double seconds_per_cycle_ = 0.0;
  double cycle_budget_ = 0.0;
  std::map<std::string, Evaluation> cache_;
  std::optional<ftn::ReductionStats> reduction_stats_;
  std::uint64_t next_stream_ = 1;
  trace::Tracer* tracer_ = nullptr;  // non-owning flight recorder; may be null
};

}  // namespace prose::tuner
