// Search-space exploration (paper §III-B).
//
// The primary strategy is the delta-debugging adaptation introduced by
// Precimonious and reused throughout the FPPT literature: starting from the
// uniform high-precision configuration, repeatedly try to lower groups of
// the remaining 64-bit atoms, refining the partition when no group succeeds,
// until the configuration is *1-minimal* — lowering any single remaining
// 64-bit atom violates the correctness or performance criteria.
//
// Brute-force, random, and greedy one-at-a-time searches are provided as
// baselines for the ablation benches (the paper argues delta debugging is
// the canonical choice; the ablation shows why).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "tuner/evaluator.h"
#include "tuner/search_space.h"

namespace prose::tuner {

/// One explored variant, in exploration order.
struct VariantRecord {
  int id = 0;            // 1-based exploration index
  Config config;
  Evaluation eval;
};

struct SearchResult {
  std::vector<VariantRecord> records;
  /// Best acceptable configuration seen (highest Eq. (1) speedup among
  /// passes); nullopt when nothing acceptable was found.
  std::optional<Config> best;
  double best_speedup = 0.0;
  /// The final accepted configuration of the delta-debug loop (1-minimal
  /// when `one_minimal` is true).
  Config accepted;
  bool one_minimal = false;
  bool budget_exhausted = false;
  std::size_t cache_hits = 0;
  /// Candidates rejected by the static prefilter before dynamic evaluation.
  std::size_t statically_skipped = 0;
  /// Variants quarantined as Outcome::kLost (injected transient faults
  /// exhausted the retry budget). They stay in `records` — they consumed
  /// cluster time — but carry no pass/fail information; the search simply
  /// treats them as unacceptable.
  std::size_t lost = 0;
};

/// Hook letting a campaign driver account simulated wall time per proposed
/// batch (and stop the search when the 12-hour budget runs out). Receives
/// the evaluations of one batch; returns false to stop the search.
using BatchHook = std::function<bool(const std::vector<const VariantRecord*>&)>;

struct SearchOptions {
  /// Hard cap on evaluated variants (0 = unlimited).
  std::size_t max_variants = 0;
  /// Optional work pool (non-owning) for batch-parallel variant evaluation —
  /// the single-host analogue of the paper's one-variant-per-node fan-out.
  /// Every search proposes whole rounds/partitions as batches; with a pool
  /// the round's cache misses evaluate concurrently, and the SearchResult
  /// (records, accepted config, speedups, cache_hits) is bit-identical to
  /// the serial result for any worker count. Null = serial evaluation.
  ThreadPool* pool = nullptr;
  /// Called once per proposal batch; see BatchHook.
  BatchHook batch_hook;
  /// Optional §V static pre-filter: return false to reject a candidate
  /// *without* dynamic evaluation (it is treated as unacceptable and counted
  /// in SearchResult::statically_skipped, not in records).
  std::function<bool(const Config&)> prefilter;
  /// Optional flight recorder (non-owning). The delta-debug search emits
  /// round/partition/decision events so 1-minimality convergence is
  /// replayable; per-variant spans come from the evaluator itself.
  trace::Tracer* tracer = nullptr;
};

/// The delta-debugging search. Deterministic given the evaluator.
SearchResult delta_debug_search(Evaluator& evaluator, const SearchOptions& options = {});

/// Exhaustive enumeration of all 2^n configurations (feasible only for small
/// spaces like funarc's 2^8).
SearchResult brute_force_search(Evaluator& evaluator, const SearchOptions& options = {});

/// Uniform random sampling baseline.
SearchResult random_search(Evaluator& evaluator, std::size_t samples,
                           std::uint64_t seed, const SearchOptions& options = {});

/// Greedy one-atom-at-a-time lowering baseline (the naive O(n^2) approach).
SearchResult one_at_a_time_search(Evaluator& evaluator, const SearchOptions& options = {});

/// Verifies 1-minimality of a configuration: every single remaining 64-bit
/// atom, lowered alone on top of `config`, must be unacceptable. Returns the
/// indices that violate minimality (empty = 1-minimal). Used by tests.
std::vector<std::size_t> check_one_minimal(Evaluator& evaluator, const Config& config);

}  // namespace prose::tuner
