#include "tuner/search_space.h"

#include <algorithm>

#include "support/strings.h"

namespace prose::tuner {

StatusOr<SearchSpace> SearchSpace::build(const ftn::ResolvedProgram& rp,
                                         const std::vector<std::string>& scopes,
                                         const std::set<std::string>& exclude) {
  SearchSpace space;
  const auto in_scope = [&](const ftn::Symbol& sym) {
    for (const auto& scope : scopes) {
      if (scope.find("::") != std::string::npos) {
        const std::size_t sep = scope.find("::");
        const std::string mod = scope.substr(0, sep);
        const std::string proc = scope.substr(sep + 2);
        if (sym.module_name == mod && sym.proc_name == proc) return true;
      } else if (sym.module_name == scope) {
        return true;
      }
    }
    return false;
  };

  for (const auto& sym : rp.symbols.all()) {
    if (!sym.is_variable() || !sym.type.is_real()) continue;
    if (!in_scope(sym)) continue;
    // Declarations inside tool-generated wrappers are not search atoms: the
    // transformation owns them, and retyping them would decouple a wrapper's
    // name from its signature.
    if (!sym.proc_name.empty()) {
      const auto owner = rp.symbols.find_procedure(sym.module_name, sym.proc_name);
      if (owner.has_value() && rp.symbols.get(*owner).generated) continue;
    }
    const std::string q = sym.qualified();
    if (exclude.contains(q)) continue;
    Atom atom;
    atom.decl = sym.decl_node;
    atom.qualified = q;
    atom.is_array = sym.is_array();
    atom.elements = sym.element_count();
    atom.original_kind = sym.type.kind;
    space.atoms_.push_back(std::move(atom));
  }
  if (space.atoms_.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "no real-typed variables found in the targeted scopes");
  }
  return space;
}

Config SearchSpace::uniform(int kind) const {
  Config c;
  c.kinds.assign(atoms_.size(), static_cast<std::uint8_t>(kind));
  return c;
}

ftn::PrecisionAssignment SearchSpace::to_assignment(const Config& config) const {
  PROSE_CHECK(config.kinds.size() == atoms_.size());
  ftn::PrecisionAssignment pa;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (config.kinds[i] != atoms_[i].original_kind) {
      pa.kinds[atoms_[i].decl] = config.kinds[i];
    }
  }
  return pa;
}

std::ptrdiff_t SearchSpace::index_of(const std::string& qualified) const {
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (atoms_[i].qualified == qualified) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

std::vector<std::size_t> SearchSpace::atoms_in_scope(const std::string& scope) const {
  std::vector<std::size_t> out;
  const std::string prefix = scope + "::";
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (starts_with(atoms_[i].qualified, prefix) &&
        atoms_[i].qualified.find("::", prefix.size()) == std::string::npos) {
      out.push_back(i);
    }
  }
  return out;
}

std::string SearchSpace::scope_key(const Config& config, const std::string& scope) const {
  std::string key;
  for (const std::size_t i : atoms_in_scope(scope)) {
    key += config.kinds[i] == 4 ? '4' : '8';
  }
  return key;
}

}  // namespace prose::tuner
