#include "tuner/predictor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ftn/callgraph.h"
#include "ftn/paramflow.h"
#include "ftn/transform.h"
#include "sim/compile.h"

namespace prose::tuner {

StatusOr<VariantFeatures> extract_features(const Evaluator& evaluator,
                                           const Config& config) {
  VariantFeatures f;
  f.fraction32 = config.fraction32();

  const auto& space = evaluator.space();
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (config.kinds[i] == 4 && space.atoms()[i].is_array) {
      f.array_atoms_lowered += 1.0;
    }
  }

  // Pre-wrap mixed-flow penalty (the §V cost model).
  ftn::Program raw = evaluator.pristine().program.clone();
  if (Status s = ftn::apply_assignment(raw, space.to_assignment(config)); !s.is_ok()) {
    return s;
  }
  auto resolved = ftn::resolve(std::move(raw));
  if (!resolved.is_ok()) return resolved.status();
  {
    const ftn::CallGraph cg = ftn::CallGraph::build(resolved.value());
    const auto pf = ftn::build_param_flow(resolved.value(), cg);
    const double total = pf.total_flow();
    f.mixed_flow_penalty = total > 0.0 ? pf.mismatch_penalty() / total : 0.0;
  }

  // Post-wrap vectorization report and wrapper count.
  ftn::WrapperReport wreport;
  auto variant =
      ftn::make_variant(evaluator.pristine().program, space.to_assignment(config),
                        &wreport);
  if (!variant.is_ok()) return variant.status();
  f.wrappers = wreport.wrappers_generated;
  auto compiled = sim::compile(variant.value(), evaluator.spec().machine);
  if (!compiled.is_ok()) return compiled.status();
  f.vectorized_loops = static_cast<double>(compiled->vec_report.vectorized_count());
  double casts = 0.0;
  for (const auto& [id, info] : compiled->vec_report.loops) {
    casts += info.cast_sites;
  }
  f.cast_sites = casts;
  return f;
}

Status RidgePredictor::fit(const std::vector<VariantFeatures>& features,
                           const std::vector<double>& targets) {
  constexpr std::size_t n = VariantFeatures::kCount;
  if (features.size() != targets.size() || features.size() < 2) {
    return Status(StatusCode::kInvalidArgument,
                  "fit needs >= 2 samples with matching targets");
  }
  const auto m = features.size();

  // Standardize features.
  mean_.fill(0.0);
  scale_.fill(0.0);
  for (const auto& f : features) {
    const auto x = f.as_array();
    for (std::size_t j = 0; j < n; ++j) mean_[j] += x[j];
  }
  for (std::size_t j = 0; j < n; ++j) mean_[j] /= static_cast<double>(m);
  for (const auto& f : features) {
    const auto x = f.as_array();
    for (std::size_t j = 0; j < n; ++j) {
      scale_[j] += (x[j] - mean_[j]) * (x[j] - mean_[j]);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    scale_[j] = std::sqrt(scale_[j] / static_cast<double>(m));
    if (scale_[j] < 1e-12) scale_[j] = 1.0;  // constant feature: no effect
  }

  const double target_mean =
      std::accumulate(targets.begin(), targets.end(), 0.0) / static_cast<double>(m);

  // Normal equations (X^T X + λI) w = X^T y on standardized, centered data.
  double xtx[n][n] = {};
  double xty[n] = {};
  for (std::size_t s = 0; s < m; ++s) {
    const auto raw = features[s].as_array();
    std::array<double, n> x;
    for (std::size_t j = 0; j < n; ++j) x[j] = (raw[j] - mean_[j]) / scale_[j];
    const double y = targets[s] - target_mean;
    for (std::size_t j = 0; j < n; ++j) {
      xty[j] += x[j] * y;
      for (std::size_t k = 0; k < n; ++k) xtx[j][k] += x[j] * x[k];
    }
  }
  for (std::size_t j = 0; j < n; ++j) xtx[j][j] += lambda_;

  // Gaussian elimination with partial pivoting on the (n x n) system.
  std::array<std::array<double, n + 1>, n> aug{};
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) aug[j][k] = xtx[j][k];
    aug[j][n] = xty[j];
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(aug[row][col]) > std::abs(aug[pivot][col])) pivot = row;
    }
    std::swap(aug[col], aug[pivot]);
    if (std::abs(aug[col][col]) < 1e-12) {
      return Status(StatusCode::kInvalidArgument, "singular feature matrix");
    }
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col) continue;
      const double factor = aug[row][col] / aug[col][col];
      for (std::size_t k = col; k <= n; ++k) aug[row][k] -= factor * aug[col][k];
    }
  }
  for (std::size_t j = 0; j < n; ++j) weights_[j] = aug[j][n] / aug[j][j];
  intercept_ = target_mean;
  trained_ = true;
  return Status::ok();
}

double RidgePredictor::predict(const VariantFeatures& f) const {
  PROSE_CHECK_MSG(trained_, "predict before fit");
  const auto raw = f.as_array();
  double y = intercept_;
  for (std::size_t j = 0; j < VariantFeatures::kCount; ++j) {
    y += weights_[j] * (raw[j] - mean_[j]) / scale_[j];
  }
  return y;
}

double RidgePredictor::r_squared(const std::vector<VariantFeatures>& features,
                                 const std::vector<double>& targets) const {
  PROSE_CHECK(features.size() == targets.size() && !targets.empty());
  const double mean =
      std::accumulate(targets.begin(), targets.end(), 0.0) /
      static_cast<double>(targets.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const double pred = predict(features[i]);
    ss_res += (targets[i] - pred) * (targets[i] - pred);
    ss_tot += (targets[i] - mean) * (targets[i] - mean);
  }
  if (ss_tot <= 0.0) return ss_res <= 1e-18 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

namespace {

std::vector<double> ranks_of(const std::vector<double>& xs) {
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(xs.size());
  std::size_t i = 0;
  while (i < order.size()) {
    // Average ranks over ties.
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman_correlation(const std::vector<double>& a, const std::vector<double>& b) {
  PROSE_CHECK(a.size() == b.size() && a.size() >= 2);
  const auto ra = ranks_of(a);
  const auto rb = ranks_of(b);
  const double n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

StatusOr<PredictorEvaluation> evaluate_predictor_on_trace(
    const Evaluator& evaluator, const SearchResult& trace, double train_fraction,
    double lambda) {
  std::vector<VariantFeatures> features;
  std::vector<double> speedups;
  for (const auto& r : trace.records) {
    if (r.eval.outcome != Outcome::kPass && r.eval.outcome != Outcome::kFail) continue;
    auto f = extract_features(evaluator, r.config);
    if (!f.is_ok()) continue;
    features.push_back(*f);
    speedups.push_back(r.eval.speedup);
  }
  if (features.size() < 8) {
    return Status(StatusCode::kInvalidArgument,
                  "trace has too few completed variants to train on");
  }
  const auto split = static_cast<std::size_t>(
      static_cast<double>(features.size()) * train_fraction);
  const std::vector<VariantFeatures> train_x(features.begin(),
                                             features.begin() + static_cast<std::ptrdiff_t>(split));
  const std::vector<double> train_y(speedups.begin(),
                                    speedups.begin() + static_cast<std::ptrdiff_t>(split));
  const std::vector<VariantFeatures> test_x(features.begin() + static_cast<std::ptrdiff_t>(split),
                                            features.end());
  const std::vector<double> test_y(speedups.begin() + static_cast<std::ptrdiff_t>(split),
                                   speedups.end());

  RidgePredictor predictor(lambda);
  if (Status s = predictor.fit(train_x, train_y); !s.is_ok()) return s;

  PredictorEvaluation out;
  out.train_samples = train_x.size();
  out.test_samples = test_x.size();
  out.r2 = predictor.r_squared(test_x, test_y);
  std::vector<double> predicted;
  predicted.reserve(test_x.size());
  for (const auto& f : test_x) predicted.push_back(predictor.predict(f));
  out.spearman = test_y.size() >= 2 ? spearman_correlation(predicted, test_y) : 0.0;
  return out;
}

}  // namespace prose::tuner
