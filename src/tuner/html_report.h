// Self-contained HTML/SVG reports — the counterpart of the paper artifact's
// interactive HTML visualizations. Each report is a single standalone file:
// an SVG scatter with axes, threshold guides, outcome-coloured points, and
// per-point hover tooltips (variant id, speedup, error, %32-bit).
#pragma once

#include <string>

#include "tuner/campaign.h"
#include "tuner/search.h"

namespace prose::tuner {

/// Figure 2/5/7-style page: speedup (y) vs relative error (x, log scale),
/// with the error-threshold and speedup-1x guide lines. Timeouts and runtime
/// errors are listed below the plot (they have no meaningful coordinates).
std::string variants_html(const std::string& title, const SearchResult& search,
                          double error_threshold);

/// Figure 6-style page: per-procedure columns with per-call speedup on a log
/// y axis, one dot per unique per-procedure precision assignment.
std::string figure6_html(const std::string& title,
                         const std::vector<ProcedureVariantPoint>& points);

/// Root-cause diagnosis page (CampaignOptions::diagnose): the variable and
/// procedure criticality rankings plus per-variant first-divergence sites —
/// the automated counterpart of the paper's §V hand analysis.
std::string diagnosis_html(const std::string& title,
                           const CampaignDiagnosis& diagnosis);

}  // namespace prose::tuner
