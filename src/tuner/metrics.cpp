#include "tuner/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/stats.h"

namespace prose::tuner {

double eq1_speedup(std::span<const double> baseline_times,
                   std::span<const double> variant_times) {
  PROSE_CHECK(!baseline_times.empty() && !variant_times.empty());
  const double vb = median(baseline_times);
  const double vv = median(variant_times);
  if (vv <= 0.0) return std::numeric_limits<double>::infinity();
  return vb / vv;
}

int choose_eq1_n(double observed_rsd) { return observed_rsd < 0.02 ? 1 : 7; }

std::vector<double> sample_noisy_times(double deterministic_time, double rsd, int n,
                                       std::uint64_t seed, std::uint64_t stream_id) {
  PROSE_CHECK(n >= 1);
  Rng rng = Rng(seed).fork(stream_id);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(deterministic_time * rng.lognormal_noise(rsd));
  }
  return out;
}

double output_relative_error(double baseline_metric, double variant_metric) {
  if (!std::isfinite(variant_metric)) return std::numeric_limits<double>::infinity();
  return relative_error(baseline_metric, variant_metric);
}

double series_error(std::span<const double> baseline, std::span<const double> variant,
                    std::size_t group_size) {
  if (baseline.size() != variant.size() || baseline.empty() || group_size == 0 ||
      baseline.size() % group_size != 0) {
    return std::numeric_limits<double>::infinity();
  }
  std::vector<double> group_max;
  group_max.reserve(baseline.size() / group_size);
  for (std::size_t g = 0; g < baseline.size(); g += group_size) {
    double worst = 0.0;
    for (std::size_t i = g; i < g + group_size; ++i) {
      if (!std::isfinite(variant[i])) return std::numeric_limits<double>::infinity();
      worst = std::max(worst, relative_error(baseline[i], variant[i]));
    }
    group_max.push_back(worst);
  }
  return l2_norm(group_max);
}

}  // namespace prose::tuner
