#include "tuner/report.h"

#include <cmath>
#include <map>
#include <sstream>

#include "support/ascii_plot.h"
#include "support/strings.h"
#include "support/table.h"

namespace prose::tuner {

std::string variants_csv(const SearchResult& search) {
  CsvWriter csv;
  csv.add_row({"id", "outcome", "speedup", "rel_error", "fraction32", "wrappers",
               "cast_cycles", "hotspot_cycles", "whole_cycles"});
  for (const auto& r : search.records) {
    csv.add_row({std::to_string(r.id), to_string(r.eval.outcome),
                 format_double(r.eval.speedup, 4), format_sci(r.eval.error, 4),
                 format_double(r.eval.fraction32, 4), std::to_string(r.eval.wrappers),
                 format_double(r.eval.cast_cycles, 0),
                 format_double(r.eval.hotspot_cycles, 0),
                 format_double(r.eval.whole_cycles, 0)});
  }
  return csv.str();
}

std::string figure6_csv(const std::vector<ProcedureVariantPoint>& points) {
  CsvWriter csv;
  csv.add_row({"procedure", "scope_key", "speedup", "fraction32"});
  for (const auto& p : points) {
    csv.add_row({p.proc, p.scope_key, format_double(p.speedup, 4),
                 format_double(p.fraction32, 4)});
  }
  return csv.str();
}

std::string variants_scatter(const std::string& title, const SearchResult& search,
                             double error_threshold, bool log_error_axis) {
  AsciiScatter plot(title, "relative error", "speedup (Eq. 1)");
  plot.set_log_x(log_error_axis);
  plot.set_size(76, 22);
  plot.add_y_guide(1.0);
  if (!log_error_axis || error_threshold > 0) plot.add_x_guide(error_threshold);
  for (const auto& r : search.records) {
    if (r.eval.outcome != Outcome::kPass && r.eval.outcome != Outcome::kFail) continue;
    char glyph = r.eval.outcome == Outcome::kPass ? '+' : 'x';
    double err = r.eval.error;
    if (log_error_axis && err <= 0.0) err = 1e-17;  // exact matches still plot
    plot.add_point(err, r.eval.speedup, glyph);
  }
  std::ostringstream os;
  os << plot.render();
  std::size_t timeouts = 0, errors = 0;
  for (const auto& r : search.records) {
    if (r.eval.outcome == Outcome::kTimeout) ++timeouts;
    if (r.eval.outcome == Outcome::kRuntimeError ||
        r.eval.outcome == Outcome::kCompileError) {
      ++errors;
    }
  }
  os << "legend: '+' pass  'x' fail   (" << timeouts << " timeouts and " << errors
     << " runtime errors not plotted; ':' error threshold, '.' speedup 1x)\n";
  return os.str();
}

std::string figure6_scatter(const std::string& title,
                            const std::vector<ProcedureVariantPoint>& points) {
  // Group by procedure; x = procedure index + jitter by variant order,
  // y = speedup (log). Mirrors the paper's per-procedure columns.
  std::map<std::string, std::vector<const ProcedureVariantPoint*>> by_proc;
  for (const auto& p : points) by_proc[p.proc].push_back(&p);

  AsciiScatter plot(title, "procedure (column index)", "per-call speedup");
  plot.set_log_y(true);
  plot.set_size(76, 22);
  plot.add_y_guide(1.0);
  std::ostringstream legend;
  double x = 1.0;
  char glyph = 'a';
  for (const auto& [proc, pts] : by_proc) {
    legend << "  " << glyph << " = " << proc << " (" << pts.size() << " variants)\n";
    double jitter = 0.0;
    for (const auto* p : pts) {
      plot.add_point(x + jitter, std::max(p->speedup, 1e-4), glyph);
      jitter += 0.6 / std::max<std::size_t>(1, pts.size());
    }
    x += 1.0;
    ++glyph;
  }
  return plot.render() + legend.str();
}

std::vector<std::string> table2_row(const CampaignSummary& s) {
  return {s.model,
          std::to_string(s.total),
          format_percent(s.pass_pct / 100.0),
          format_percent(s.fail_pct / 100.0),
          format_percent(s.timeout_pct / 100.0),
          format_percent(s.error_pct / 100.0),
          format_double(s.best_speedup, 2) + "x"};
}

std::string final_variant_report(const CampaignResult& result) {
  std::ostringstream os;
  std::size_t high = 0;
  std::vector<std::string> high_names;
  for (const auto& [name, kind] : result.final_kinds) {
    if (kind == 8) {
      ++high;
      if (high_names.size() < 50) high_names.push_back(name);
    }
  }
  os << "final variant: " << high << "/" << result.final_kinds.size()
     << " variables remain in 64-bit";
  if (result.search.one_minimal) os << " (1-minimal)";
  os << '\n';
  for (const auto& name : high_names) os << "  real(kind=8) :: " << name << '\n';
  if (high > high_names.size()) {
    os << "  ... and " << (high - high_names.size()) << " more\n";
  }
  return os.str();
}

}  // namespace prose::tuner
