#include "tuner/report.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "support/ascii_plot.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/trace.h"

namespace prose::tuner {

std::string variants_csv(const SearchResult& search) {
  CsvWriter csv;
  csv.add_row({"id", "outcome", "speedup", "rel_error", "fraction32", "wrappers",
               "cast_cycles", "hotspot_cycles", "whole_cycles"});
  for (const auto& r : search.records) {
    csv.add_row({std::to_string(r.id), to_string(r.eval.outcome),
                 format_double(r.eval.speedup, 4), format_sci(r.eval.error, 4),
                 format_double(r.eval.fraction32, 4), std::to_string(r.eval.wrappers),
                 format_double(r.eval.cast_cycles, 0),
                 format_double(r.eval.hotspot_cycles, 0),
                 format_double(r.eval.whole_cycles, 0)});
  }
  return csv.str();
}

std::string figure6_csv(const std::vector<ProcedureVariantPoint>& points) {
  CsvWriter csv;
  csv.add_row({"procedure", "scope_key", "speedup", "fraction32"});
  for (const auto& p : points) {
    csv.add_row({p.proc, p.scope_key, format_double(p.speedup, 4),
                 format_double(p.fraction32, 4)});
  }
  return csv.str();
}

std::string variants_scatter(const std::string& title, const SearchResult& search,
                             double error_threshold, bool log_error_axis) {
  AsciiScatter plot(title, "relative error", "speedup (Eq. 1)");
  plot.set_log_x(log_error_axis);
  plot.set_size(76, 22);
  plot.add_y_guide(1.0);
  if (!log_error_axis || error_threshold > 0) plot.add_x_guide(error_threshold);
  for (const auto& r : search.records) {
    if (r.eval.outcome != Outcome::kPass && r.eval.outcome != Outcome::kFail) continue;
    char glyph = r.eval.outcome == Outcome::kPass ? '+' : 'x';
    double err = r.eval.error;
    if (log_error_axis && err <= 0.0) err = 1e-17;  // exact matches still plot
    plot.add_point(err, r.eval.speedup, glyph);
  }
  std::ostringstream os;
  os << plot.render();
  std::size_t timeouts = 0, errors = 0;
  for (const auto& r : search.records) {
    if (r.eval.outcome == Outcome::kTimeout) ++timeouts;
    if (r.eval.outcome == Outcome::kRuntimeError ||
        r.eval.outcome == Outcome::kCompileError) {
      ++errors;
    }
  }
  os << "legend: '+' pass  'x' fail   (" << timeouts << " timeouts and " << errors
     << " runtime errors not plotted; ':' error threshold, '.' speedup 1x)\n";
  return os.str();
}

std::string figure6_scatter(const std::string& title,
                            const std::vector<ProcedureVariantPoint>& points) {
  // Group by procedure; x = procedure index + jitter by variant order,
  // y = speedup (log). Mirrors the paper's per-procedure columns.
  std::map<std::string, std::vector<const ProcedureVariantPoint*>> by_proc;
  for (const auto& p : points) by_proc[p.proc].push_back(&p);

  AsciiScatter plot(title, "procedure (column index)", "per-call speedup");
  plot.set_log_y(true);
  plot.set_size(76, 22);
  plot.add_y_guide(1.0);
  std::ostringstream legend;
  double x = 1.0;
  char glyph = 'a';
  for (const auto& [proc, pts] : by_proc) {
    legend << "  " << glyph << " = " << proc << " (" << pts.size() << " variants)\n";
    double jitter = 0.0;
    for (const auto* p : pts) {
      plot.add_point(x + jitter, std::max(p->speedup, 1e-4), glyph);
      jitter += 0.6 / std::max<std::size_t>(1, pts.size());
    }
    x += 1.0;
    ++glyph;
  }
  return plot.render() + legend.str();
}

std::vector<std::string> table2_row(const CampaignSummary& s) {
  return {s.model,
          std::to_string(s.total),
          format_percent(s.pass_pct / 100.0),
          format_percent(s.fail_pct / 100.0),
          format_percent(s.timeout_pct / 100.0),
          format_percent(s.error_pct / 100.0),
          format_double(s.best_speedup, 2) + "x"};
}

std::string final_variant_report(const CampaignResult& result) {
  std::ostringstream os;
  std::size_t high = 0;
  std::vector<std::string> high_names;
  for (const auto& [name, kind] : result.final_kinds) {
    if (kind == 8) {
      ++high;
      if (high_names.size() < 50) high_names.push_back(name);
    }
  }
  os << "final variant: " << high << "/" << result.final_kinds.size()
     << " variables remain in 64-bit";
  if (result.search.one_minimal) os << " (1-minimal)";
  os << '\n';
  for (const auto& name : high_names) os << "  real(kind=8) :: " << name << '\n';
  if (high > high_names.size()) {
    os << "  ... and " << (high - high_names.size()) << " more\n";
  }
  return os.str();
}

std::string diagnosis_report(const CampaignResult& result) {
  const CampaignDiagnosis& d = result.diagnosis;
  std::ostringstream os;
  if (!d.enabled) return "diagnosis: not requested\n";
  os << "root-cause diagnosis (" << result.summary.model << "): " << d.rejected
     << " distinct rejected variants, " << d.diagnosed
     << " shadow-diagnosed\n";

  const auto div_str = [](double v) {
    return std::isfinite(v) ? format_sci(v, 2) : std::string("inf");
  };

  os << "\nvariable criticality (score = 0.45*fail-assoc + 0.25*min(1,div) + "
        "0.20*pivotal + 0.10*kept-64):\n";
  std::size_t rank = 0;
  for (const auto& a : d.atoms) {
    if (++rank > 10) {
      os << "  ... and " << (d.atoms.size() - 10) << " more\n";
      break;
    }
    char line[160];
    std::snprintf(line, sizeof line, "  %5.3f  assoc %5.3f  div %-8s  %zu/%zu",
                  a.score, a.fail_association, div_str(a.max_rel_div).c_str(),
                  a.demoted_rejected, a.demoted_total);
    os << line;
    if (a.pivotal > 0) os << "  [pivotal x" << a.pivotal << ']';
    os << (a.final64 ? "  [kept 64-bit]  " : "  ") << a.qualified << '\n';
  }

  os << "\nprocedure blame (share of per-variant blame):\n";
  rank = 0;
  for (const auto& p : d.procedures) {
    if (++rank > 10) {
      os << "  ... and " << (d.procedures.size() - 10) << " more\n";
      break;
    }
    char line[160];
    std::snprintf(line, sizeof line,
                  "  %6.3f  cancel %llu  ctrl-div %llu  faults %llu",
                  p.blame_share,
                  static_cast<unsigned long long>(p.cancellations),
                  static_cast<unsigned long long>(p.control_divergences),
                  static_cast<unsigned long long>(p.faults));
    os << line << "  " << p.qualified << '\n';
  }

  std::size_t shown = 0;
  for (const auto& r : d.reports) {
    if (!r.has_first_divergence && r.fault_proc.empty()) continue;
    if (++shown == 1) os << "\nfirst divergence / fault sites:\n";
    if (shown > 8) {
      os << "  ...\n";
      break;
    }
    os << "  variant " << r.key << ": ";
    if (r.has_first_divergence) {
      os << "diverges in " << r.first_divergence_proc << " at +"
         << r.first_divergence_instr << " (max " << div_str(r.max_rel_div)
         << ")";
    }
    if (!r.fault_proc.empty()) {
      os << (r.has_first_divergence ? "; " : "") << "faults in "
         << r.fault_proc;
    }
    os << '\n';
  }
  return os.str();
}

namespace {

/// JSON double with the journal's non-finite policy (Infinity/-Infinity/NaN).
std::string json_num(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0.0 ? "Infinity" : "-Infinity";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_str(const std::string& s) {
  return '"' + trace::json_escape(s) + '"';
}

}  // namespace

std::string diagnosis_json(const std::string& model,
                           const CampaignDiagnosis& d) {
  std::ostringstream os;
  os << "{\"model\":" << json_str(model) << ",\"rejected\":" << d.rejected
     << ",\"diagnosed\":" << d.diagnosed << ",\"atoms\":[";
  bool first = true;
  for (const auto& a : d.atoms) {
    if (!first) os << ',';
    first = false;
    os << "{\"qualified\":" << json_str(a.qualified)
       << ",\"score\":" << json_num(a.score)
       << ",\"fail_association\":" << json_num(a.fail_association)
       << ",\"max_rel_div\":" << json_num(a.max_rel_div)
       << ",\"demoted_rejected\":" << a.demoted_rejected
       << ",\"demoted_total\":" << a.demoted_total
       << ",\"pivotal\":" << a.pivotal
       << ",\"final64\":" << (a.final64 ? "true" : "false") << '}';
  }
  os << "],\"procedures\":[";
  first = true;
  for (const auto& p : d.procedures) {
    if (!first) os << ',';
    first = false;
    os << "{\"qualified\":" << json_str(p.qualified)
       << ",\"blame_share\":" << json_num(p.blame_share)
       << ",\"max_rel_div\":" << json_num(p.max_rel_div)
       << ",\"cancellations\":" << p.cancellations
       << ",\"control_divergences\":" << p.control_divergences
       << ",\"faults\":" << p.faults
       << ",\"cast_cycles\":" << json_num(p.cast_cycles) << '}';
  }
  os << "],\"variants\":[";
  first = true;
  for (const auto& r : d.reports) {
    if (!first) os << ',';
    first = false;
    os << "{\"key\":" << json_str(r.key)
       << ",\"outcome\":" << json_str(to_string(r.outcome))
       << ",\"max_rel_div\":" << json_num(r.max_rel_div)
       << ",\"cancellations\":" << r.cancellations
       << ",\"control_divergences\":" << r.control_divergences;
    if (r.has_first_divergence) {
      os << ",\"first_divergence_proc\":" << json_str(r.first_divergence_proc)
         << ",\"first_divergence_instr\":" << r.first_divergence_instr;
    }
    if (!r.fault_proc.empty()) {
      os << ",\"fault_proc\":" << json_str(r.fault_proc);
    }
    os << ",\"variables\":[";
    bool vfirst = true;
    for (const auto& v : r.variables) {
      if (!vfirst) os << ',';
      vfirst = false;
      os << "{\"qualified\":" << json_str(v.qualified)
         << ",\"demoted\":" << (v.demoted ? "true" : "false")
         << ",\"max_rel_div\":" << json_num(v.max_rel_div)
         << ",\"writes\":" << v.writes << '}';
    }
    os << "],\"procedures\":[";
    vfirst = true;
    for (const auto& p : r.procedures) {
      if (!vfirst) os << ',';
      vfirst = false;
      os << "{\"qualified\":" << json_str(p.qualified)
         << ",\"blame\":" << json_num(p.blame)
         << ",\"introduced_sum\":" << json_num(p.introduced_sum)
         << ",\"max_rel_div\":" << json_num(p.max_rel_div)
         << ",\"cancellations\":" << p.cancellations
         << ",\"control_divergences\":" << p.control_divergences
         << ",\"cast_cycles\":" << json_num(p.cast_cycles)
         << ",\"faulted\":" << (p.faulted ? "true" : "false") << '}';
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace prose::tuner
