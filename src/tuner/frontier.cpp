#include "tuner/frontier.h"

#include <algorithm>
#include <cmath>

namespace prose::tuner {

std::vector<FrontierPoint> optimal_frontier(const std::vector<VariantRecord>& records) {
  std::vector<FrontierPoint> pts;
  for (const auto& r : records) {
    if (r.eval.outcome != Outcome::kPass && r.eval.outcome != Outcome::kFail) continue;
    if (!std::isfinite(r.eval.error) || !std::isfinite(r.eval.speedup)) continue;
    pts.push_back({r.id, r.eval.speedup, r.eval.error});
  }
  // Sort by error ascending, speedup descending; sweep keeping strictly
  // increasing speedup.
  std::sort(pts.begin(), pts.end(), [](const FrontierPoint& a, const FrontierPoint& b) {
    if (a.error != b.error) return a.error < b.error;
    return a.speedup > b.speedup;
  });
  std::vector<FrontierPoint> frontier;
  double best_speedup = -1.0;
  for (const auto& p : pts) {
    if (p.speedup > best_speedup) {
      frontier.push_back(p);
      best_speedup = p.speedup;
    }
  }
  return frontier;
}

int select_within_threshold(const std::vector<FrontierPoint>& frontier,
                            double error_threshold) {
  int best = -1;
  double best_speedup = -1.0;
  for (const auto& p : frontier) {
    if (p.error <= error_threshold && p.speedup > best_speedup) {
      best = p.variant_id;
      best_speedup = p.speedup;
    }
  }
  return best;
}

}  // namespace prose::tuner
