// Tuning-target specification: everything the FPPT cycle (paper Fig. 1)
// needs to know about one program — the source, the representative workload,
// the targeted hotspot, the correctness metric, and the noise/timing profile.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "sim/vm.h"
#include "support/status.h"

namespace prose::tuner {

struct TargetSpec {
  std::string name;                 // "MPAS-A", "ADCIRC", "MOM6", "funarc"
  std::string source;               // Fortran-subset model source
  std::string entry;                // "module::proc" running the workload once

  /// Scopes whose real declarations are the search atoms (§III-A):
  /// module names or "module::proc".
  std::vector<std::string> atom_scopes;
  std::set<std::string> exclude_atoms;

  /// Hotspot boundary procedures, instrumented with GPTL; hotspot CPU time is
  /// the summed inclusive time of these regions (§III-E).
  std::vector<std::string> hotspot_procs;

  /// Procedures reported individually in Figure 6.
  std::vector<std::string> figure6_procs;

  /// Prepares module inputs before a run (initial conditions). May be null.
  std::function<Status(sim::Vm&)> setup;

  /// Computes the scalar correctness metric from module outputs after a
  /// successful run (§III-D). Mutually exclusive with series_fn.
  std::function<StatusOr<double>(const sim::Vm&)> metric;

  /// Alternative field metric: extracts a diagnostic series from the run
  /// (e.g. per-timestep-per-cell kinetic energy, flattened with groups of
  /// `series_group_size` contiguous entries per timestep). The variant error
  /// is then the L2-norm across groups of the per-group maximum relative
  /// error vs. the baseline series — the exact construction of the paper's
  /// MPAS-A metric; with group size 1 it degenerates to the ADCIRC/MOM6
  /// L2-of-relative-errors form.
  std::function<StatusOr<std::vector<double>>(const sim::Vm&)> series_fn;
  std::size_t series_group_size = 1;

  /// Relative-error threshold on the metric (§IV-A).
  double error_threshold = 0.1;

  /// Observed run-to-run relative standard deviation (noise model input) and
  /// the paper's matching Eq. (1) n.
  double noise_rsd = 0.01;

  /// Measure whole-model wall time instead of hotspot CPU time (§IV-C).
  bool measure_whole_model = false;

  /// Wall-clock seconds of one baseline run on the paper's testbed; fixes
  /// the simulated-cycles → seconds scale used by the campaign scheduler.
  double baseline_wall_seconds = 90.0;

  /// Simulated seconds to transform + compile one variant on a node (the
  /// paper parallelizes this per variant); part of the campaign time model.
  double variant_build_seconds = 60.0;

  /// Run the §III-C taint-based program reduction as a one-time
  /// preprocessing step (the artifact's T0): computes the minimal
  /// transformable subset for the search atoms and records its statistics.
  /// Our in-process pipeline does not require it (no ROSE to work around),
  /// so it is off by default; enabling it exercises the paper-faithful path.
  bool run_reduction_preprocessing = false;

  sim::MachineModel machine;
};

}  // namespace prose::tuner
