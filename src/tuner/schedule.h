// Cluster scheduler simulation for tuning campaigns (paper §IV-A).
//
// Each experiment in the paper ran on 20 dedicated Derecho nodes under a
// 12-hour job limit; variant transformation, compilation, and execution were
// parallelized one-variant-per-node. This simulation reproduces the
// campaign-level consequences: batches of variants are placed onto nodes,
// wall clock advances with the slowest node, and a search is cut off
// mid-flight when the budget expires (the MOM6 outcome in Table II).
#pragma once

#include <cstddef>
#include <vector>

namespace prose::tuner {

struct ClusterOptions {
  std::size_t nodes = 20;
  double wall_budget_seconds = 12.0 * 3600.0;
};

class ClusterSim {
 public:
  explicit ClusterSim(ClusterOptions options = {});

  /// Schedules a batch of independent tasks (per-variant node-seconds) and
  /// advances the wall clock to the batch's completion (list scheduling onto
  /// the least-loaded node). Returns false if the budget expired before the
  /// batch completed — the campaign must stop.
  bool run_batch(const std::vector<double>& task_seconds);

  [[nodiscard]] double elapsed_seconds() const { return elapsed_; }
  [[nodiscard]] double remaining_seconds() const;
  [[nodiscard]] bool exhausted() const { return exhausted_; }
  [[nodiscard]] std::size_t batches() const { return batches_; }
  /// Node-seconds actually consumed (for utilization reporting).
  [[nodiscard]] double busy_node_seconds() const { return busy_; }

 private:
  ClusterOptions options_;
  double elapsed_ = 0.0;
  double busy_ = 0.0;
  std::size_t batches_ = 0;
  bool exhausted_ = false;
};

}  // namespace prose::tuner
