// Cluster scheduler simulation for tuning campaigns (paper §IV-A).
//
// Each experiment in the paper ran on 20 dedicated Derecho nodes under a
// 12-hour job limit; variant transformation, compilation, and execution were
// parallelized one-variant-per-node. This simulation reproduces the
// campaign-level consequences: batches of variants are placed onto nodes,
// wall clock advances with the slowest node, and a search is cut off
// mid-flight when the budget expires (the MOM6 outcome in Table II).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/faultinject.h"
#include "support/trace.h"

namespace prose::tuner {

struct ClusterOptions {
  std::size_t nodes = 20;
  double wall_budget_seconds = 12.0 * 3600.0;
};

/// One schedulable unit of work: simulated node-seconds plus an optional
/// label shown in the trace timeline ("v12 pass" etc.).
struct ClusterTask {
  double seconds = 0.0;
  std::string label;
};

class ClusterSim {
 public:
  explicit ClusterSim(ClusterOptions options = {});

  /// Attach a flight recorder (non-owning; may be null). When enabled, each
  /// scheduled task becomes one complete ("X") slice on the Perfetto track of
  /// the node it ran on, in *simulated* time (seconds × 1e6 → µs), so node
  /// occupancy renders against the wall budget. Tracing never changes
  /// scheduling decisions: elapsed/busy stay bit-identical.
  void set_tracer(trace::Tracer* tracer);

  /// Schedules a batch of independent tasks (per-variant node-seconds) and
  /// advances the wall clock to the batch's completion (list scheduling onto
  /// the least-loaded node). Returns false if the budget expired before the
  /// batch completed — the campaign must stop.
  bool run_batch(const std::vector<double>& task_seconds);

  /// Labeled variant of run_batch for traced campaigns; identical scheduling.
  bool run_labeled_batch(const std::vector<ClusterTask>& tasks);

  /// Injects node failures (from the fault plan). A crash fires when the
  /// simulated clock reaches its time: whatever the node was running is lost
  /// (the wasted partial slice is charged to busy time and the task is
  /// rescheduled onto a surviving node, rerun from scratch) and the node is
  /// permanently removed from the pool — the campaign continues on reduced
  /// capacity, exactly like losing a Derecho node mid-job. The dead node's
  /// Perfetto track shows the crash instant and stays silent afterwards.
  /// All nodes dead ⇒ the cluster is exhausted and the campaign stops.
  void set_crashes(std::vector<NodeCrash> crashes);

  [[nodiscard]] double elapsed_seconds() const { return elapsed_; }
  [[nodiscard]] double remaining_seconds() const;
  [[nodiscard]] bool exhausted() const { return exhausted_; }
  [[nodiscard]] std::size_t batches() const { return batches_; }
  /// Node-seconds actually consumed (for utilization reporting); includes
  /// partial work wasted on crashed nodes.
  [[nodiscard]] double busy_node_seconds() const { return busy_; }
  /// Nodes still accepting work.
  [[nodiscard]] std::size_t alive_nodes() const;
  [[nodiscard]] std::size_t nodes() const { return options_.nodes; }

 private:
  /// Marks the node dead and emits the crash instant on its track.
  void fire_crash(std::size_t crash_index);

  ClusterOptions options_;
  double elapsed_ = 0.0;
  double busy_ = 0.0;
  std::size_t batches_ = 0;
  bool exhausted_ = false;
  trace::Tracer* tracer_ = nullptr;  // non-owning; may be null

  std::vector<NodeCrash> crashes_;        // sorted by (time, node)
  std::vector<std::uint8_t> crash_fired_;
  std::vector<std::uint8_t> alive_;       // per-node liveness
  std::vector<double> death_at_;          // sim seconds; valid when !alive_[n]
};

}  // namespace prose::tuner
