#include "tuner/evaluator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <vector>

#include "ftn/parser.h"
#include "ftn/transform.h"
#include "gptl/gptl_trace.h"
#include "sim/compile.h"
#include "sim/decode.h"
#include "tuner/journal.h"

namespace prose::tuner {
namespace {

/// Short stable identifier for a configuration (hex of the key's FNV-1a
/// hash) — compact enough for trace attributes on 300+-atom spaces, and
/// reproducible across platforms and runs (std::hash is neither).
std::string config_hash(const Config& config) {
  const auto h = static_cast<unsigned long long>(fnv1a64(config.key()));
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", h);
  return buf;
}

/// Emits the per-run VM counters (op mix, cast count, vectorized-vs-scalar
/// loop entries) as Chrome counter events on the given track.
void emit_run_counters(trace::Tracer& tr, trace::Track track,
                       const sim::RunResult& run) {
  const double ts = tr.now_us();
  const sim::OpMix& m = run.op_mix;
  tr.counter("vm/instructions", track, ts, static_cast<double>(run.instructions));
  tr.counter("vm/fp32-arith", track, ts, static_cast<double>(m.fp32_arith));
  tr.counter("vm/fp64-arith", track, ts, static_cast<double>(m.fp64_arith));
  tr.counter("vm/casts", track, ts, static_cast<double>(m.casts));
  tr.counter("vm/cast-cycles", track, ts, run.cast_cycles);
  tr.counter("vm/mem-ops", track, ts, static_cast<double>(m.mem));
  tr.counter("vm/calls", track, ts, static_cast<double>(m.calls));
  tr.counter("vm/intrinsics", track, ts, static_cast<double>(m.intrinsics));
  tr.counter("vm/vector-loop-entries", track, ts,
             static_cast<double>(m.vector_loop_entries));
  tr.counter("vm/scalar-loop-entries", track, ts,
             static_cast<double>(m.scalar_loop_entries));
  // Superinstruction dispatch counters. Emitted unconditionally (all-zero
  // under the interpreter and under fuse=false) so a trace's counter set —
  // and therefore its byte stream — does not depend on which decoded engine
  // ran: threaded and switch traces stay bit-identical.
  const sim::FusedStats& f = run.fused;
  tr.counter("vm/fused/pairs", track, ts, static_cast<double>(f.pairs()));
  tr.counter("vm/fused/covered", track, ts, static_cast<double>(f.covered()));
  tr.counter("vm/fused/loop-cond-jmp", track, ts,
             static_cast<double>(f.loop_cond_jmp));
  tr.counter("vm/fused/inc-jmp", track, ts, static_cast<double>(f.inc_jmp));
  tr.counter("vm/fused/cmp-jmp", track, ts, static_cast<double>(f.cmp_jmp));
  tr.counter("vm/fused/cast-mov", track, ts, static_cast<double>(f.cast_mov));
  tr.counter("vm/fused/cast-store", track, ts,
             static_cast<double>(f.cast_store));
  tr.counter("vm/fused/load-arith", track, ts,
             static_cast<double>(f.load_arith));
  tr.counter("vm/fused/arith-store", track, ts,
             static_cast<double>(f.arith_store));
  tr.counter("vm/fused/const-arith", track, ts,
             static_cast<double>(f.const_arith));
  tr.counter("vm/fused/load-const", track, ts,
             static_cast<double>(f.load_const));
}

/// RAII wall-clock timer feeding one latency histogram. Like trace::Span it
/// degrades to a no-op (no clock reads) when the instrument is null, and the
/// observed time never flows into simulated results — only into the metric.
class PhaseTimer {
 public:
  explicit PhaseTimer(obs::Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (hist_ != nullptr) {
      hist_->observe(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count());
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  obs::Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kPass: return "pass";
    case Outcome::kFail: return "fail";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kRuntimeError: return "error";
    case Outcome::kCompileError: return "compile-error";
    case Outcome::kLost: return "lost";
  }
  return "?";
}

bool outcome_from_string(std::string_view s, Outcome* out) {
  for (const Outcome o :
       {Outcome::kPass, Outcome::kFail, Outcome::kTimeout, Outcome::kRuntimeError,
        Outcome::kCompileError, Outcome::kLost}) {
    if (s == to_string(o)) {
      *out = o;
      return true;
    }
  }
  return false;
}

Evaluator::Evaluator(const TargetSpec& spec, std::uint64_t noise_seed)
    : spec_(spec), noise_seed_(noise_seed) {}

StatusOr<std::unique_ptr<Evaluator>> Evaluator::create(const TargetSpec& spec,
                                                       std::uint64_t noise_seed,
                                                       trace::Tracer* tracer,
                                                       sim::VmDispatch dispatch) {
  std::unique_ptr<Evaluator> ev(new Evaluator(spec, noise_seed));
  ev->tracer_ = tracer;  // before init() so the baseline run is traced too
  ev->vm_dispatch_ = dispatch;  // before init() so the baseline uses it too
  if (Status s = ev->init(); !s.is_ok()) return s;
  return ev;
}

Status Evaluator::init() {
  auto rp = ftn::parse_and_resolve(spec_.source, spec_.name);
  if (!rp.is_ok()) return rp.status();
  pristine_ = std::move(rp.value());

  auto space = SearchSpace::build(pristine_, spec_.atom_scopes, spec_.exclude_atoms);
  if (!space.is_ok()) return space.status();
  space_ = std::move(space.value());

  eq1_n_ = choose_eq1_n(spec_.noise_rsd);

  // T0 preprocessing (§III-C): reduce the program to the minimal subset the
  // transformation needs, verify it resolves, and record the statistics. The
  // paper reports this costs ~1% of an experiment.
  if (spec_.run_reduction_preprocessing) {
    std::set<ftn::NodeId> targets;
    for (const auto& atom : space_.atoms()) targets.insert(atom.decl);
    auto reduced = ftn::reduce_for_targets(pristine_, targets);
    if (!reduced.is_ok()) {
      return Status(StatusCode::kInvalidArgument,
                    "T0 reduction failed: " + reduced.status().to_string());
    }
    reduction_stats_ = reduced->stats;
  }

  // Baseline: the untouched program (original declared kinds).
  Evaluation base = run_variant(space_.uniform(8), /*is_baseline=*/true,
                                /*stream_id=*/0, trace::Track::evaluator());
  if (base.outcome != Outcome::kPass) {
    return Status(StatusCode::kInvalidArgument,
                  "baseline evaluation failed (" + std::string(to_string(base.outcome)) +
                      "): " + base.detail);
  }
  baseline_ = base;
  baseline_.speedup = 1.0;
  seconds_per_cycle_ = spec_.baseline_wall_seconds / baseline_.whole_cycles;
  // The paper gives each variant 3× the baseline's runtime before declaring
  // a timeout.
  cycle_budget_ = 3.0 * baseline_.whole_cycles;
  baseline_samples_ =
      sample_noisy_times(baseline_.measured_cycles, spec_.noise_rsd, eq1_n_,
                         noise_seed_, /*stream_id=*/0);
  return Status::ok();
}

void Evaluator::set_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    m_ = EvalMetrics{};
    return;
  }
  const auto lat = [&](const char* name, const char* help) {
    return registry->histogram(name, help, obs::latency_buckets_seconds());
  };
  m_.transform_seconds = lat("prose_eval_transform_seconds",
                             "Variant transform (clone+retype+wrap) latency");
  m_.compile_seconds =
      lat("prose_eval_compile_seconds", "Variant compile latency");
  m_.execute_seconds =
      lat("prose_eval_execute_seconds", "Variant VM execution latency");
  m_.measure_seconds = lat("prose_eval_measure_seconds",
                           "Variant measurement (metric+speedup) latency");
  m_.variant_seconds = lat("prose_eval_variant_seconds",
                           "Whole-variant latency (all attempts + backoff)");
  m_.attempts = registry->counter("prose_eval_attempts_total",
                                  "Evaluation attempts (retries included)");
  m_.cache_lookups =
      registry->counter("prose_eval_cache_lookups_total", "Memo-cache lookups");
  m_.cache_hits =
      registry->counter("prose_eval_cache_hits_total", "Memo-cache hits");
  m_.retries = registry->counter(
      "prose_eval_retries_total", "Attempts retried after injected transient faults");
  m_.quarantined = registry->counter(
      "prose_eval_quarantined_total",
      "Variants quarantined (kLost: retry budget exhausted)");
  m_.faults = registry->counter("prose_eval_faults_total",
                                "Injected faults observed (all kinds)");
  m_.backend_fallbacks = registry->counter(
      "prose_eval_backend_fallback_items_total",
      "Variants computed locally after a remote-backend transport failure");
}

void Evaluator::note_lookup_locked(bool hit) {
  ++cache_lookups_;
  if (hit) ++cache_hits_;
  if (m_.cache_lookups != nullptr) m_.cache_lookups->inc();
  if (hit && m_.cache_hits != nullptr) m_.cache_hits->inc();
  if (tracer_ != nullptr && tracer_->enabled()) {
    const trace::Track track = trace::Track::evaluator();
    const double ts = tracer_->now_us();
    tracer_->counter("cache/lookups", track, ts,
                     static_cast<double>(cache_lookups_));
    tracer_->counter("cache/hits", track, ts, static_cast<double>(cache_hits_));
    tracer_->counter("cache/hit-rate", track, ts,
                     static_cast<double>(cache_hits_) /
                         static_cast<double>(cache_lookups_));
  }
}

void Evaluator::emit_cache_hit_instant(const Config& config, const Evaluation& eval) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  tracer_->instant("variant/cache-hit", trace::Track::evaluator(),
                   tracer_->now_us(),
                   {{"config", config_hash(config)},
                    {"outcome", to_string(eval.outcome)},
                    {"speedup", eval.speedup},
                    {"cache_hit", true}});
}

const Evaluation& Evaluator::evaluate(const Config& config, bool* cache_hit) {
  const std::string key = config.key();
  while (true) {
    CacheEntry* entry = nullptr;
    std::uint64_t stream = 0;
    {
      std::unique_lock lock(cache_mu_);
      auto [it, inserted] = cache_.try_emplace(key);
      entry = &it->second;
      note_lookup_locked(/*hit=*/!inserted);
      if (!inserted) {
        // Single-flight: if another thread is computing this key, wait for it
        // rather than evaluating twice. The computing thread may *throw* (an
        // injected abort, say) and erase the entry — so the predicate
        // re-finds the key, and a vanished entry means "retry from scratch"
        // instead of wedging on a condition that will never come true.
        cache_cv_.wait(lock, [this, &key] {
          const auto f = cache_.find(key);
          return f == cache_.end() || f->second.ready;
        });
        const auto f = cache_.find(key);
        if (f == cache_.end()) continue;  // computing thread aborted; recompute
        if (cache_hit != nullptr) *cache_hit = true;
        entry = &f->second;
        lock.unlock();
        emit_cache_hit_instant(config, entry->eval);
        return entry->eval;
      }
      stream = next_stream_++;
      if (try_replay_locked(key, stream, entry)) {
        // Resume: the journal already has this evaluation. It counts as a
        // cache miss (exactly as in the original run) but costs nothing.
        if (cache_hit != nullptr) *cache_hit = false;
        lock.unlock();
        cache_cv_.notify_all();
        return entry->eval;
      }
    }
    if (cache_hit != nullptr) *cache_hit = false;
    Evaluation eval;
    try {
      eval = compute_variant(config, stream, trace::Track::evaluator());
    } catch (...) {
      // Exception safety: drop the in-flight entry so waiters recompute
      // instead of blocking forever on `ready`.
      {
        std::lock_guard lock(cache_mu_);
        cache_.erase(key);
      }
      cache_cv_.notify_all();
      throw;
    }
    // Write-ahead: the evaluation is durable before the search sees it.
    if (journal_ != nullptr) journal_->append_variant(key, stream, eval);
    {
      std::lock_guard lock(cache_mu_);
      entry->eval = std::move(eval);
      entry->ready = true;
    }
    cache_cv_.notify_all();
    return entry->eval;
  }
}

Evaluation Evaluator::compute_variant(const Config& config, std::uint64_t stream,
                                      trace::Track track) {
  if (backend_ != nullptr) {
    const Config cfgs[1] = {config};
    const std::uint64_t streams[1] = {stream};
    auto items = backend_->evaluate_many(cfgs, streams);
    if (items.size() == 1) {
      if (items[0].ok) return std::move(items[0].eval);
      if (items[0].aborted) throw std::runtime_error(items[0].error);
      warn_backend_fallback(items[0].error);
    } else {
      warn_backend_fallback("reply count mismatch");
    }
    if (m_.backend_fallbacks != nullptr) m_.backend_fallbacks->inc();
  }
  return run_variant(config, /*is_baseline=*/false, stream, track);
}

void Evaluator::warn_backend_fallback(const std::string& why) {
  if (backend_warned_.exchange(true)) return;
  std::fprintf(stderr,
               "prose: evaluation server unavailable (%s) — computing locally\n",
               why.empty() ? "transport failure" : why.c_str());
}

std::vector<Evaluator::BatchItem> Evaluator::evaluate_batch(
    std::span<const Config> configs, ThreadPool* pool) {
  std::vector<BatchItem> out(configs.size());
  if (backend_ == nullptr && (pool == nullptr || pool->size() <= 1)) {
    // Serial fallback — the reference semantics the parallel path must match.
    // (With a backend attached the planned path runs even without a pool:
    // the *server* parallelizes, and the requests pipeline over one socket.)
    for (std::size_t i = 0; i < configs.size(); ++i) {
      bool hit = false;
      out[i].eval = &evaluate(configs[i], &hit);
      out[i].cache_hit = hit;
    }
    return out;
  }

  struct Job {
    Config config;
    std::string key;
    std::uint64_t stream = 0;
    CacheEntry* entry = nullptr;
    Evaluation result;
    bool done = false;   // evaluated (remotely or locally) to completion
    bool aborted = false;  // server forwarded an injected evaluator abort
  };
  std::vector<Job> jobs;
  // Proposal → the job computing its key (misses and in-batch duplicates).
  std::vector<std::ptrdiff_t> job_of(configs.size(), -1);
  // Proposal → an entry some *other* thread is computing (single-flight wait).
  std::vector<std::uint8_t> in_flight(configs.size(), 0);
  bool replayed_any = false;

  // Plan the batch under the cache lock, walking proposals in order: this
  // assigns noise streams to first occurrences of uncached keys in exactly
  // the order the serial path would have, and claims their cache entries so
  // concurrent callers single-flight against this batch.
  {
    std::unique_lock lock(cache_mu_);
    std::unordered_map<std::string, std::size_t, KeyHash> claimed;  // key → job
    for (std::size_t i = 0; i < configs.size(); ++i) {
      std::string key = configs[i].key();
      if (const auto c = claimed.find(key); c != claimed.end()) {
        // Duplicate within the batch: the serial walk would hit the cache
        // here (the first occurrence evaluated it).
        out[i].cache_hit = true;
        job_of[i] = static_cast<std::ptrdiff_t>(c->second);
        note_lookup_locked(/*hit=*/true);
        continue;
      }
      auto [it, inserted] = cache_.try_emplace(key);
      if (!inserted) {
        out[i].cache_hit = true;
        note_lookup_locked(/*hit=*/true);
        if (it->second.ready) {
          out[i].eval = &it->second.eval;
        } else {
          in_flight[i] = 1;
        }
        continue;
      }
      note_lookup_locked(/*hit=*/false);
      const std::uint64_t stream = next_stream_++;
      if (try_replay_locked(key, stream, &it->second)) {
        // Resume: journaled result; a miss in the books, but no work to fan
        // out (and no re-journaling). Later in-batch duplicates hit the
        // ready entry through the !inserted path above.
        out[i].eval = &it->second.eval;
        replayed_any = true;
        continue;
      }
      Job job;
      job.config = configs[i];
      job.key = key;
      job.stream = stream;
      job.entry = &it->second;
      job_of[i] = static_cast<std::ptrdiff_t>(jobs.size());
      claimed.emplace(std::move(key), jobs.size());
      jobs.push_back(std::move(job));
    }
  }
  if (replayed_any) cache_cv_.notify_all();

  // Partial-failure publication, shared by the local-abort and remote-abort
  // paths: journal and publish everything that completed, drop the in-flight
  // entries of the rest so waiters recompute instead of wedging.
  const auto publish_partial = [this, &jobs] {
    if (journal_ != nullptr) {
      for (const Job& job : jobs) {
        if (job.done) journal_->append_variant(job.key, job.stream, job.result);
      }
    }
    {
      std::lock_guard lock(cache_mu_);
      for (Job& job : jobs) {
        if (job.done) {
          job.entry->eval = std::move(job.result);
          job.entry->ready = true;
        } else {
          cache_.erase(job.key);
        }
      }
    }
    cache_cv_.notify_all();
  };

  // Offload the planned misses through the backend first (one pipelined
  // round trip for the whole batch). Per-item transport failures fall
  // through to local computation below; per-item aborts are recorded and
  // rethrown after the rest of the batch completes — exactly the drain
  // semantics ThreadPool gives a locally thrown abort.
  std::ptrdiff_t abort_index = -1;
  std::string abort_message;
  if (backend_ != nullptr && !jobs.empty()) {
    std::vector<Config> cfgs;
    std::vector<std::uint64_t> streams;
    cfgs.reserve(jobs.size());
    streams.reserve(jobs.size());
    for (const Job& job : jobs) {
      cfgs.push_back(job.config);
      streams.push_back(job.stream);
    }
    auto items = backend_->evaluate_many(cfgs, streams);
    if (items.size() != jobs.size()) {
      warn_backend_fallback("reply count mismatch");
      if (m_.backend_fallbacks != nullptr) m_.backend_fallbacks->inc(jobs.size());
    } else {
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (items[j].ok) {
          jobs[j].result = std::move(items[j].eval);
          jobs[j].done = true;
        } else if (items[j].aborted) {
          jobs[j].aborted = true;
          if (abort_index < 0) {
            abort_index = static_cast<std::ptrdiff_t>(j);
            abort_message = items[j].error;
          }
        } else {
          warn_backend_fallback(items[j].error);
          if (m_.backend_fallbacks != nullptr) m_.backend_fallbacks->inc();
        }
      }
    }
  }

  // Fan the remaining misses out to the pool. Each worker traces on its own
  // track so the parallel pipeline renders as per-worker span rows in
  // Perfetto. If any job throws (injected abort), the pool still drains the
  // batch; we then publish the completed jobs, drop the in-flight entries of
  // the rest so waiters recompute, and rethrow.
  std::vector<std::size_t> pending;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (!jobs[j].done && !jobs[j].aborted) pending.push_back(j);
  }
  try {
    if (!pending.empty()) {
      if (pool != nullptr && pool->size() > 1) {
        pool->for_each(pending.size(),
                       [this, &jobs, &pending](std::size_t i, std::size_t worker) {
                         Job& job = jobs[pending[i]];
                         job.result =
                             run_variant(job.config, /*is_baseline=*/false,
                                         job.stream,
                                         trace::Track::worker(static_cast<int>(worker)));
                         job.done = true;
                       });
      } else {
        for (const std::size_t j : pending) {
          jobs[j].result = run_variant(jobs[j].config, /*is_baseline=*/false,
                                       jobs[j].stream, trace::Track::evaluator());
          jobs[j].done = true;
        }
      }
    }
  } catch (...) {
    publish_partial();
    throw;
  }

  if (abort_index >= 0) {
    // A served variant hit an injected abort. The local path would have
    // thrown out of run_variant with the ThreadPool rethrowing the
    // lowest-index exception after draining the batch — mirror that exactly,
    // with the server's exception text.
    publish_partial();
    throw std::runtime_error(abort_message);
  }

  // Write-ahead in proposal order — the same order the serial path journals
  // in, and independent of worker interleaving, so the journal file is
  // byte-identical across worker counts.
  if (journal_ != nullptr) {
    for (const Job& job : jobs) {
      journal_->append_variant(job.key, job.stream, job.result);
    }
  }

  // Publish results; waiters blocked in evaluate() wake here.
  {
    std::lock_guard lock(cache_mu_);
    for (Job& job : jobs) {
      job.entry->eval = std::move(job.result);
      job.entry->ready = true;
    }
  }
  cache_cv_.notify_all();

  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (out[i].eval != nullptr) continue;
    if (job_of[i] >= 0) {
      out[i].eval = &jobs[static_cast<std::size_t>(job_of[i])].entry->eval;
    } else if (in_flight[i] != 0) {
      // Another caller claimed this key before the batch. Wait by *key*, not
      // by entry pointer: if that caller threw and erased the entry, fall
      // back to evaluate(), which recomputes.
      const std::string key = configs[i].key();
      std::unique_lock lock(cache_mu_);
      cache_cv_.wait(lock, [this, &key] {
        const auto f = cache_.find(key);
        return f == cache_.end() || f->second.ready;
      });
      const auto f = cache_.find(key);
      if (f != cache_.end()) {
        out[i].eval = &f->second.eval;
      } else {
        lock.unlock();
        out[i].eval = &evaluate(configs[i]);
      }
    }
  }

  // Cache-hit instants mirror the serial path's per-hit trace events.
  if (tracer_ != nullptr && tracer_->enabled()) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      if (out[i].cache_hit) emit_cache_hit_instant(configs[i], *out[i].eval);
    }
  }
  return out;
}

Evaluation Evaluator::evaluate_remote(const Config& config, std::uint64_t stream,
                                      int worker) {
  return run_variant(config, /*is_baseline=*/false, stream,
                     trace::Track::worker(worker));
}

bool Evaluator::is_cached(const Config& config) const {
  std::lock_guard lock(cache_mu_);
  return cache_.find(config.key()) != cache_.end();
}

std::size_t Evaluator::unique_evaluations() const {
  std::lock_guard lock(cache_mu_);
  return cache_.size();
}

std::uint64_t Evaluator::cache_lookups() const {
  std::lock_guard lock(cache_mu_);
  return cache_lookups_;
}

std::uint64_t Evaluator::cache_hit_count() const {
  std::lock_guard lock(cache_mu_);
  return cache_hits_;
}

void Evaluator::set_journal_replay(const std::vector<JournalVariant>& variants) {
  std::lock_guard lock(cache_mu_);
  replay_.clear();
  for (const JournalVariant& v : variants) {
    replay_[v.key] = ReplayEntry{v.stream, v.eval};
  }
}

std::size_t Evaluator::replayed_from_journal() const {
  std::lock_guard lock(cache_mu_);
  return replayed_;
}

bool Evaluator::try_replay_locked(const std::string& key, std::uint64_t stream,
                                  CacheEntry* entry) {
  const auto it = replay_.find(key);
  if (it == replay_.end()) return false;
  if (it->second.stream != stream) {
    // The journaled stream differs from the one this run just assigned — the
    // search diverged from the journaled campaign (different options, edited
    // journal, ...). Using the entry would break the determinism contract,
    // so drop it and recompute: resume self-heals at the cost of redoing
    // work.
    replay_.erase(it);
    return false;
  }
  entry->eval = std::move(it->second.eval);
  entry->ready = true;
  replay_.erase(it);
  ++replayed_;
  return true;
}

Evaluation Evaluator::run_variant(const Config& config, bool is_baseline,
                                  std::uint64_t stream_id, trace::Track track) {
  PhaseTimer variant_timer(m_.variant_seconds);
  // No fault plan (the overwhelmingly common case), or the baseline run —
  // which is never faulted, since a campaign that cannot evaluate its
  // baseline has nothing to resume — is exactly one attempt.
  if (is_baseline || fault_plan_ == nullptr || fault_plan_->empty()) {
    return run_attempt(config, is_baseline, stream_id, track);
  }

  trace::Tracer* tr =
      (tracer_ != nullptr && tracer_->enabled()) ? tracer_ : nullptr;
  const std::uint64_t hash = fnv1a64(config.key());
  const int max_attempts = retry_.max_attempts < 1 ? 1 : retry_.max_attempts;
  double charged = 0.0;  // node-seconds wasted on faulted attempts + backoff
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    const FaultDecision fault = fault_plan_->decide(hash, attempt);
    if (m_.faults != nullptr &&
        (fault.abort || fault.compile_fail || fault.transient_fail ||
         fault.slow_factor > 1.0)) {
      m_.faults->inc();
    }
    if (fault.abort) {
      // Host-level crash simulation: the evaluator process dies. Thrown out
      // of the single-flight cache — evaluate()/evaluate_batch() must erase
      // the in-flight entry on the way out (regression-tested).
      if (tr != nullptr) {
        tr->instant("fault/abort", track, tr->now_us(),
                    {{"config", config_hash(config)}, {"attempt", attempt}});
      }
      throw std::runtime_error("injected evaluator abort (config " +
                               config_hash(config) + ", attempt " +
                               std::to_string(attempt) + ")");
    }
    if (fault.compile_fail) {
      // Deterministic fault: the same source fails the same way every time,
      // so retrying is pointless — report it and move on (§IV: compile
      // failures are real outcomes, not noise).
      if (tr != nullptr) {
        tr->instant("fault/compile", track, tr->now_us(),
                    {{"config", config_hash(config)}, {"attempt", attempt}});
      }
      Evaluation out;
      out.outcome = Outcome::kCompileError;
      out.detail = "injected compile fault";
      out.fraction32 = config.fraction32();
      out.attempts = attempt;
      out.node_seconds = charged + spec_.variant_build_seconds;
      return out;
    }
    Evaluation eval = run_attempt(config, is_baseline, stream_id, track);
    eval.attempts = attempt;
    if (fault.slow_factor > 1.0) {
      // Straggler: the node ran slow; the result is fine but the cluster
      // paid for a longer occupation.
      if (tr != nullptr) {
        tr->instant("fault/straggler", track, tr->now_us(),
                    {{"config", config_hash(config)},
                     {"attempt", attempt},
                     {"slow_factor", fault.slow_factor}});
      }
      eval.node_seconds *= fault.slow_factor;
    }
    if (!fault.transient_fail) {
      eval.node_seconds += charged;
      return eval;
    }
    // Transient fault (flaky node, cosmic ray): the result cannot be
    // trusted. Charge the wasted attempt, back off, retry.
    if (tr != nullptr) {
      tr->instant("fault/transient", track, tr->now_us(),
                  {{"config", config_hash(config)},
                   {"attempt", attempt},
                   {"of", max_attempts}});
    }
    charged += eval.node_seconds;
    if (attempt < max_attempts) {
      charged += retry_.backoff_seconds;
      if (m_.retries != nullptr) m_.retries->inc();
    }
  }

  // Retry budget exhausted → quarantine. kLost carries *no information*:
  // metrics are cleared so nothing downstream can mistake it for a
  // measurement; only the cluster time it burned is kept.
  if (m_.quarantined != nullptr) m_.quarantined->inc();
  Evaluation out;
  out.outcome = Outcome::kLost;
  out.detail = "injected transient faults exhausted the retry budget (" +
               std::to_string(max_attempts) + " attempts)";
  out.fraction32 = config.fraction32();
  out.attempts = max_attempts;
  out.node_seconds = charged;
  return out;
}

Evaluation Evaluator::run_attempt(const Config& config, bool is_baseline,
                                  std::uint64_t stream_id, trace::Track track) {
  if (m_.attempts != nullptr) m_.attempts->inc();
  // Zero-cost path: no tracer (or sinks disabled) means no attribute
  // formatting, no clock reads — run_variant_impl is called bare.
  trace::Tracer* tr =
      (tracer_ != nullptr && tracer_->enabled()) ? tracer_ : nullptr;
  if (tr == nullptr) {
    return run_variant_impl(config, is_baseline, stream_id, track, nullptr);
  }

  tr->begin(is_baseline ? "variant/baseline" : "variant", track, tr->now_us(),
            {{"config", config_hash(config)},
             {"fraction32", config.fraction32()},
             {"atoms32", config.count32()}});
  Evaluation out = run_variant_impl(config, is_baseline, stream_id, track, tr);
  tr->end(is_baseline ? "variant/baseline" : "variant", track, tr->now_us(),
          {{"outcome", to_string(out.outcome)},
           {"cycles", out.whole_cycles},
           {"measured_cycles", out.measured_cycles},
           {"speedup", out.speedup},
           {"error", out.error},
           {"node_seconds", out.node_seconds},
           {"wrappers", out.wrappers},
           {"cache_hit", false}});
  return out;
}

Evaluation Evaluator::run_variant_impl(const Config& config, bool is_baseline,
                                       std::uint64_t stream_id, trace::Track track,
                                       trace::Tracer* tr) {
  Evaluation out;
  out.fraction32 = config.fraction32();

  // Transform: clone + retype + wrap (§III-C).
  ftn::WrapperReport wreport;
  StatusOr<ftn::ResolvedProgram> variant = Status(StatusCode::kUnimplemented, "unset");
  {
    trace::Span stage(tr, track, "transform");
    PhaseTimer timer(m_.transform_seconds);
    variant = ftn::make_variant(pristine_.program, space_.to_assignment(config),
                                &wreport);
    if (tr != nullptr) {
      stage.annotate({{"ok", variant.is_ok()},
                      {"wrappers", wreport.wrappers_generated}});
    }
  }
  if (!variant.is_ok()) {
    out.outcome = Outcome::kCompileError;
    out.detail = variant.status().to_string();
    out.node_seconds = spec_.variant_build_seconds;
    return out;
  }
  out.wrappers = wreport.wrappers_generated;

  // Compile with hotspot instrumentation.
  sim::CompileOptions copts;
  for (const auto& proc : spec_.hotspot_procs) copts.instrument.insert(proc);
  StatusOr<sim::CompiledProgram> compiled = Status(StatusCode::kUnimplemented, "unset");
  {
    trace::Span stage(tr, track, "compile");
    PhaseTimer timer(m_.compile_seconds);
    compiled = sim::compile(variant.value(), spec_.machine, copts);
    if (tr != nullptr) stage.annotate({{"ok", compiled.is_ok()}});
  }
  if (!compiled.is_ok()) {
    out.outcome = Outcome::kCompileError;
    out.detail = compiled.status().to_string();
    out.node_seconds = spec_.variant_build_seconds;
    return out;
  }

  // Execute the representative workload.
  sim::VmOptions vopts;
  if (!is_baseline && cycle_budget_ > 0.0) vopts.cycle_budget = cycle_budget_;
  vopts.dispatch = vm_dispatch_;
  if (vm_dispatch_ != sim::VmDispatch::kInterpret) {
    // Decoded engines: reuse the pre-decoded stream across attempts of the
    // same variant (decode-once amortization; compile is deterministic).
    vopts.decoded = decoded_for(config.key(), compiled.value());
  }
  sim::Vm vm(&compiled.value(), vopts);
  if (spec_.setup) {
    if (Status s = spec_.setup(vm); !s.is_ok()) {
      out.outcome = Outcome::kCompileError;
      out.detail = "setup failed: " + s.to_string();
      return out;
    }
  }
  sim::RunResult run;
  {
    trace::Span stage(tr, track, "execute");
    PhaseTimer timer(m_.execute_seconds);
    run = vm.call(spec_.entry);
    if (tr != nullptr) {
      stage.annotate({{"ok", run.status.is_ok()},
                      {"cycles", run.cycles},
                      {"instructions", run.instructions}});
    }
  }
  if (tr != nullptr) {
    emit_run_counters(*tr, track, run);
    // GPTL → trace bridge: hotspot region stats as counter tracks.
    gptl::export_region_counters(*tr, vm.timers(), track, tr->now_us());
  }
  {
    std::lock_guard<std::mutex> lock(vm_stats_mu_);
    vm_stats_.runs += 1;
    vm_stats_.instructions += run.instructions;
    vm_stats_.fused_pairs += run.fused.pairs();
    vm_stats_.fused_covered += run.fused.covered();
  }
  out.whole_cycles = run.cycles;
  out.cast_cycles = run.cast_cycles;
  const double build = spec_.variant_build_seconds;

  if (!run.status.is_ok()) {
    out.outcome = run.status.code() == StatusCode::kTimeout ? Outcome::kTimeout
                                                            : Outcome::kRuntimeError;
    out.detail = run.status.to_string();
    out.node_seconds =
        build + static_cast<double>(eq1_n_) * run.cycles * seconds_per_cycle_;
    return out;
  }

  // Measure: hotspot attribution, correctness metric, Eq. (1) speedup.
  trace::Span measure_stage(tr, track, "measure");
  PhaseTimer measure_timer(m_.measure_seconds);

  // Hotspot CPU time from the instrumented regions.
  double hotspot = 0.0;
  for (const auto& proc : spec_.hotspot_procs) {
    auto stats = vm.timers().stats(proc);
    if (stats.is_ok()) hotspot += stats->inclusive_cycles;
  }
  out.hotspot_cycles = hotspot;
  out.measured_cycles = spec_.measure_whole_model ? run.cycles : hotspot;

  for (const auto& proc : spec_.figure6_procs) {
    const sim::ProcRunStats* stats = vm.proc_stats(proc);
    if (stats != nullptr && stats->calls > 0) {
      out.proc_mean_cycles[proc] = stats->mean_call_cycles();
      out.proc_calls[proc] = stats->calls;
    }
  }

  // Correctness metric (§III-D): scalar metric or diagnostic field series.
  std::vector<double> series;
  if (spec_.series_fn) {
    auto s = spec_.series_fn(vm);
    if (!s.is_ok()) {
      out.outcome = Outcome::kRuntimeError;
      out.detail = "series metric failed: " + s.status().to_string();
      out.node_seconds = build + run.cycles * seconds_per_cycle_;
      return out;
    }
    series = std::move(s.value());
    out.metric = series.empty() ? 0.0 : series.back();
  } else {
    auto metric = spec_.metric ? spec_.metric(vm) : StatusOr<double>(0.0);
    if (!metric.is_ok()) {
      out.outcome = Outcome::kRuntimeError;
      out.detail = "metric failed: " + metric.status().to_string();
      out.node_seconds = build + run.cycles * seconds_per_cycle_;
      return out;
    }
    out.metric = metric.value();
  }

  if (is_baseline) {
    baseline_series_ = std::move(series);
    out.outcome = Outcome::kPass;
    out.error = 0.0;
    out.node_seconds = build + run.cycles * 0.0;  // scale not yet calibrated
    return out;
  }

  out.error = spec_.series_fn
                  ? series_error(baseline_series_, series, spec_.series_group_size)
                  : output_relative_error(baseline_.metric, out.metric);
  out.outcome = out.error <= spec_.error_threshold ? Outcome::kPass : Outcome::kFail;

  // Eq. (1) speedup with injected run-to-run noise (§III-E). The stream was
  // preassigned in proposal order (serial: at the cache miss; batch: during
  // planning), so the draw is independent of evaluation order and worker
  // interleaving.
  const auto samples = sample_noisy_times(out.measured_cycles, spec_.noise_rsd,
                                          eq1_n_, noise_seed_, stream_id);
  out.speedup = eq1_speedup(baseline_samples_, samples);
  out.node_seconds =
      build + static_cast<double>(eq1_n_) * run.cycles * seconds_per_cycle_;
  return out;
}

std::shared_ptr<const sim::DecodedProgram> Evaluator::decoded_for(
    const std::string& key, const sim::CompiledProgram& compiled) {
  {
    std::lock_guard<std::mutex> lock(decoded_mu_);
    if (const auto it = decoded_cache_.find(key); it != decoded_cache_.end()) {
      return it->second;
    }
  }
  // Decode outside the lock: streams for distinct keys can be built
  // concurrently, and a duplicate race just does redundant work (the decoded
  // stream is deterministic, so either copy is valid).
  auto decoded = sim::decode(compiled);
  if (!decoded.is_ok()) return nullptr;  // Vm re-decodes and surfaces the error
  std::lock_guard<std::mutex> lock(decoded_mu_);
  // Bounded: a campaign sweep revisits keys heavily, but cap the footprint
  // the same blunt way a full cache wipe beats LRU bookkeeping here.
  if (decoded_cache_.size() >= 512) decoded_cache_.clear();
  auto [it, inserted] = decoded_cache_.emplace(key, std::move(decoded).value());
  return it->second;
}

Evaluator::VmExecStats Evaluator::vm_exec_stats() const {
  std::lock_guard<std::mutex> lock(vm_stats_mu_);
  return vm_stats_;
}

StatusOr<BlameReport> Evaluator::diagnose(const Config& config) {
  BlameReport report;
  report.key = config.key();

  // Same transform → compile pipeline as run_variant_impl, but the execution
  // carries binary64 shadow values. Nothing here touches the memo cache, the
  // proposal-order noise streams, or the journal: diagnosis is a pure
  // observer and cannot perturb the campaign it explains.
  ftn::WrapperReport wreport;
  auto variant =
      ftn::make_variant(pristine_.program, space_.to_assignment(config), &wreport);
  if (!variant.is_ok()) return variant.status();

  sim::CompileOptions copts;
  for (const auto& proc : spec_.hotspot_procs) copts.instrument.insert(proc);
  auto compiled = sim::compile(variant.value(), spec_.machine, copts);
  if (!compiled.is_ok()) return compiled.status();

  sim::VmOptions vopts;
  vopts.shadow = true;
  if (cycle_budget_ > 0.0) vopts.cycle_budget = cycle_budget_;
  sim::Vm vm(&compiled.value(), vopts);
  if (spec_.setup) {
    if (Status s = spec_.setup(vm); !s.is_ok()) return s;
  }
  const sim::RunResult run = vm.call(spec_.entry);
  report.outcome = run.status.is_ok()
                       ? Outcome::kPass
                       : (run.status.code() == StatusCode::kTimeout
                              ? Outcome::kTimeout
                              : Outcome::kRuntimeError);

  const sim::ShadowReport shadow = vm.shadow_report();
  report.max_rel_div = shadow.max_rel_div;
  report.cancellations = shadow.cancellations;
  report.control_divergences = shadow.control_divergences;
  report.has_first_divergence = shadow.has_first_divergence;
  report.first_divergence_proc = shadow.first_divergence_proc;
  report.first_divergence_instr = shadow.first_divergence_instr;
  report.fault_proc = shadow.fault_proc;

  // Variables: every demoted atom that was written, plus any other variable
  // that diverged. Demoted variables lead — they are the candidate causes.
  for (const auto& [name, stats] : shadow.vars) {
    const std::ptrdiff_t idx = space_.index_of(name);
    const bool demoted =
        idx >= 0 && config.kinds[static_cast<std::size_t>(idx)] == 4;
    if (!demoted && stats.max_rel_div <= 0.0) continue;
    report.variables.push_back(
        VariableBlame{name, demoted, stats.max_rel_div, stats.writes});
  }
  std::sort(report.variables.begin(), report.variables.end(),
            [](const VariableBlame& a, const VariableBlame& b) {
              if (a.demoted != b.demoted) return a.demoted;
              if (a.max_rel_div != b.max_rel_div) return a.max_rel_div > b.max_rel_div;
              return a.qualified < b.qualified;
            });
  if (report.variables.size() > 64) report.variables.resize(64);

  for (const auto& [name, ps] : shadow.procs) {
    ProcedureBlame pb;
    pb.qualified = name;
    pb.introduced_sum = ps.introduced_sum;
    pb.introduced_max = ps.introduced_max;
    pb.max_rel_div = ps.max_rel_div;
    pb.cancellations = ps.cancellations;
    pb.control_divergences = ps.control_divergences;
    pb.cast_cycles = ps.cast_cycles;
    pb.faulted = ps.faulted;
    pb.blame = ps.introduced_sum +
               0.01 * static_cast<double>(ps.cancellations + ps.control_divergences) +
               (ps.faulted ? 1e6 : 0.0);
    report.procedures.push_back(std::move(pb));
  }
  std::sort(report.procedures.begin(), report.procedures.end(),
            [](const ProcedureBlame& a, const ProcedureBlame& b) {
              if (a.blame != b.blame) return a.blame > b.blame;
              return a.qualified < b.qualified;
            });

  if (tracer_ != nullptr && tracer_->enabled()) {
    const trace::Track track = trace::Track::evaluator();
    const double ts = tracer_->now_us();
    // Counter values must stay finite for the Chrome export; an infinite
    // divergence (overflow/non-finite fault) is clamped to 1e300.
    const auto finite = [](double v) { return std::isfinite(v) ? v : 1e300; };
    tracer_->counter("diag/max-rel-div", track, ts, finite(report.max_rel_div));
    tracer_->counter("diag/cancellations", track, ts,
                     static_cast<double>(report.cancellations));
    tracer_->counter("diag/control-divergences", track, ts,
                     static_cast<double>(report.control_divergences));
    tracer_->counter("diag/blamed-variables", track, ts,
                     static_cast<double>(report.variables.size()));
  }
  return report;
}

}  // namespace prose::tuner
