#include "tuner/evaluator.h"

#include <cmath>
#include <cstdio>
#include <functional>
#include <set>

#include "ftn/parser.h"
#include "ftn/transform.h"
#include "gptl/gptl_trace.h"
#include "sim/compile.h"

namespace prose::tuner {
namespace {

/// Short stable identifier for a configuration (hex of the key's hash) —
/// compact enough for trace attributes on 300+-atom spaces.
std::string config_hash(const Config& config) {
  const auto h = static_cast<unsigned long long>(
      std::hash<std::string>{}(config.key()));
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", h);
  return buf;
}

/// Emits the per-run VM counters (op mix, cast count, vectorized-vs-scalar
/// loop entries) as Chrome counter events on the evaluator track.
void emit_run_counters(trace::Tracer& tr, const sim::RunResult& run) {
  const trace::Track track = trace::Track::evaluator();
  const double ts = tr.now_us();
  const sim::OpMix& m = run.op_mix;
  tr.counter("vm/instructions", track, ts, static_cast<double>(run.instructions));
  tr.counter("vm/fp32-arith", track, ts, static_cast<double>(m.fp32_arith));
  tr.counter("vm/fp64-arith", track, ts, static_cast<double>(m.fp64_arith));
  tr.counter("vm/casts", track, ts, static_cast<double>(m.casts));
  tr.counter("vm/cast-cycles", track, ts, run.cast_cycles);
  tr.counter("vm/mem-ops", track, ts, static_cast<double>(m.mem));
  tr.counter("vm/calls", track, ts, static_cast<double>(m.calls));
  tr.counter("vm/intrinsics", track, ts, static_cast<double>(m.intrinsics));
  tr.counter("vm/vector-loop-entries", track, ts,
             static_cast<double>(m.vector_loop_entries));
  tr.counter("vm/scalar-loop-entries", track, ts,
             static_cast<double>(m.scalar_loop_entries));
}

}  // namespace

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kPass: return "pass";
    case Outcome::kFail: return "fail";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kRuntimeError: return "error";
    case Outcome::kCompileError: return "compile-error";
  }
  return "?";
}

Evaluator::Evaluator(const TargetSpec& spec, std::uint64_t noise_seed)
    : spec_(spec), noise_seed_(noise_seed) {}

StatusOr<std::unique_ptr<Evaluator>> Evaluator::create(const TargetSpec& spec,
                                                       std::uint64_t noise_seed,
                                                       trace::Tracer* tracer) {
  std::unique_ptr<Evaluator> ev(new Evaluator(spec, noise_seed));
  ev->tracer_ = tracer;  // before init() so the baseline run is traced too
  if (Status s = ev->init(); !s.is_ok()) return s;
  return ev;
}

Status Evaluator::init() {
  auto rp = ftn::parse_and_resolve(spec_.source, spec_.name);
  if (!rp.is_ok()) return rp.status();
  pristine_ = std::move(rp.value());

  auto space = SearchSpace::build(pristine_, spec_.atom_scopes, spec_.exclude_atoms);
  if (!space.is_ok()) return space.status();
  space_ = std::move(space.value());

  eq1_n_ = choose_eq1_n(spec_.noise_rsd);

  // T0 preprocessing (§III-C): reduce the program to the minimal subset the
  // transformation needs, verify it resolves, and record the statistics. The
  // paper reports this costs ~1% of an experiment.
  if (spec_.run_reduction_preprocessing) {
    std::set<ftn::NodeId> targets;
    for (const auto& atom : space_.atoms()) targets.insert(atom.decl);
    auto reduced = ftn::reduce_for_targets(pristine_, targets);
    if (!reduced.is_ok()) {
      return Status(StatusCode::kInvalidArgument,
                    "T0 reduction failed: " + reduced.status().to_string());
    }
    reduction_stats_ = reduced->stats;
  }

  // Baseline: the untouched program (original declared kinds).
  Evaluation base = run_variant(space_.uniform(8), /*is_baseline=*/true);
  if (base.outcome != Outcome::kPass) {
    return Status(StatusCode::kInvalidArgument,
                  "baseline evaluation failed (" + std::string(to_string(base.outcome)) +
                      "): " + base.detail);
  }
  baseline_ = base;
  baseline_.speedup = 1.0;
  seconds_per_cycle_ = spec_.baseline_wall_seconds / baseline_.whole_cycles;
  // The paper gives each variant 3× the baseline's runtime before declaring
  // a timeout.
  cycle_budget_ = 3.0 * baseline_.whole_cycles;
  baseline_samples_ =
      sample_noisy_times(baseline_.measured_cycles, spec_.noise_rsd, eq1_n_,
                         noise_seed_, /*stream_id=*/0);
  return Status::ok();
}

const Evaluation& Evaluator::evaluate(const Config& config, bool* cache_hit) {
  const std::string key = config.key();
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    if (cache_hit != nullptr) *cache_hit = true;
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->instant("variant/cache-hit", trace::Track::evaluator(),
                       tracer_->now_us(),
                       {{"config", config_hash(config)},
                        {"outcome", to_string(it->second.outcome)},
                        {"speedup", it->second.speedup},
                        {"cache_hit", true}});
    }
    return it->second;
  }
  if (cache_hit != nullptr) *cache_hit = false;
  Evaluation eval = run_variant(config, /*is_baseline=*/false);
  return cache_.emplace(key, std::move(eval)).first->second;
}

Evaluation Evaluator::run_variant(const Config& config, bool is_baseline) {
  // Zero-cost path: no tracer (or sinks disabled) means no attribute
  // formatting, no clock reads — run_variant_impl is called bare.
  trace::Tracer* tr =
      (tracer_ != nullptr && tracer_->enabled()) ? tracer_ : nullptr;
  if (tr == nullptr) return run_variant_impl(config, is_baseline, nullptr);

  const trace::Track track = trace::Track::evaluator();
  tr->begin(is_baseline ? "variant/baseline" : "variant", track, tr->now_us(),
            {{"config", config_hash(config)},
             {"fraction32", config.fraction32()},
             {"atoms32", config.count32()}});
  Evaluation out = run_variant_impl(config, is_baseline, tr);
  tr->end(is_baseline ? "variant/baseline" : "variant", track, tr->now_us(),
          {{"outcome", to_string(out.outcome)},
           {"cycles", out.whole_cycles},
           {"measured_cycles", out.measured_cycles},
           {"speedup", out.speedup},
           {"error", out.error},
           {"node_seconds", out.node_seconds},
           {"wrappers", out.wrappers},
           {"cache_hit", false}});
  return out;
}

Evaluation Evaluator::run_variant_impl(const Config& config, bool is_baseline,
                                       trace::Tracer* tr) {
  const trace::Track track = trace::Track::evaluator();
  Evaluation out;
  out.fraction32 = config.fraction32();

  // Transform: clone + retype + wrap (§III-C).
  ftn::WrapperReport wreport;
  StatusOr<ftn::ResolvedProgram> variant = Status(StatusCode::kUnimplemented, "unset");
  {
    trace::Span stage(tr, track, "transform");
    variant = ftn::make_variant(pristine_.program, space_.to_assignment(config),
                                &wreport);
    if (tr != nullptr) {
      stage.annotate({{"ok", variant.is_ok()},
                      {"wrappers", wreport.wrappers_generated}});
    }
  }
  if (!variant.is_ok()) {
    out.outcome = Outcome::kCompileError;
    out.detail = variant.status().to_string();
    out.node_seconds = spec_.variant_build_seconds;
    return out;
  }
  out.wrappers = wreport.wrappers_generated;

  // Compile with hotspot instrumentation.
  sim::CompileOptions copts;
  for (const auto& proc : spec_.hotspot_procs) copts.instrument.insert(proc);
  StatusOr<sim::CompiledProgram> compiled = Status(StatusCode::kUnimplemented, "unset");
  {
    trace::Span stage(tr, track, "compile");
    compiled = sim::compile(variant.value(), spec_.machine, copts);
    if (tr != nullptr) stage.annotate({{"ok", compiled.is_ok()}});
  }
  if (!compiled.is_ok()) {
    out.outcome = Outcome::kCompileError;
    out.detail = compiled.status().to_string();
    out.node_seconds = spec_.variant_build_seconds;
    return out;
  }

  // Execute the representative workload.
  sim::VmOptions vopts;
  if (!is_baseline && cycle_budget_ > 0.0) vopts.cycle_budget = cycle_budget_;
  sim::Vm vm(&compiled.value(), vopts);
  if (spec_.setup) {
    if (Status s = spec_.setup(vm); !s.is_ok()) {
      out.outcome = Outcome::kCompileError;
      out.detail = "setup failed: " + s.to_string();
      return out;
    }
  }
  sim::RunResult run;
  {
    trace::Span stage(tr, track, "execute");
    run = vm.call(spec_.entry);
    if (tr != nullptr) {
      stage.annotate({{"ok", run.status.is_ok()},
                      {"cycles", run.cycles},
                      {"instructions", run.instructions}});
    }
  }
  if (tr != nullptr) {
    emit_run_counters(*tr, run);
    // GPTL → trace bridge: hotspot region stats as counter tracks.
    gptl::export_region_counters(*tr, vm.timers(), track, tr->now_us());
  }
  out.whole_cycles = run.cycles;
  out.cast_cycles = run.cast_cycles;
  const double build = spec_.variant_build_seconds;

  if (!run.status.is_ok()) {
    out.outcome = run.status.code() == StatusCode::kTimeout ? Outcome::kTimeout
                                                            : Outcome::kRuntimeError;
    out.detail = run.status.to_string();
    out.node_seconds =
        build + static_cast<double>(eq1_n_) * run.cycles * seconds_per_cycle_;
    return out;
  }

  // Measure: hotspot attribution, correctness metric, Eq. (1) speedup.
  trace::Span measure_stage(tr, track, "measure");

  // Hotspot CPU time from the instrumented regions.
  double hotspot = 0.0;
  for (const auto& proc : spec_.hotspot_procs) {
    auto stats = vm.timers().stats(proc);
    if (stats.is_ok()) hotspot += stats->inclusive_cycles;
  }
  out.hotspot_cycles = hotspot;
  out.measured_cycles = spec_.measure_whole_model ? run.cycles : hotspot;

  for (const auto& proc : spec_.figure6_procs) {
    const sim::ProcRunStats* stats = vm.proc_stats(proc);
    if (stats != nullptr && stats->calls > 0) {
      out.proc_mean_cycles[proc] = stats->mean_call_cycles();
      out.proc_calls[proc] = stats->calls;
    }
  }

  // Correctness metric (§III-D): scalar metric or diagnostic field series.
  std::vector<double> series;
  if (spec_.series_fn) {
    auto s = spec_.series_fn(vm);
    if (!s.is_ok()) {
      out.outcome = Outcome::kRuntimeError;
      out.detail = "series metric failed: " + s.status().to_string();
      out.node_seconds = build + run.cycles * seconds_per_cycle_;
      return out;
    }
    series = std::move(s.value());
    out.metric = series.empty() ? 0.0 : series.back();
  } else {
    auto metric = spec_.metric ? spec_.metric(vm) : StatusOr<double>(0.0);
    if (!metric.is_ok()) {
      out.outcome = Outcome::kRuntimeError;
      out.detail = "metric failed: " + metric.status().to_string();
      out.node_seconds = build + run.cycles * seconds_per_cycle_;
      return out;
    }
    out.metric = metric.value();
  }

  if (is_baseline) {
    baseline_series_ = std::move(series);
    out.outcome = Outcome::kPass;
    out.error = 0.0;
    out.node_seconds = build + run.cycles * 0.0;  // scale not yet calibrated
    return out;
  }

  out.error = spec_.series_fn
                  ? series_error(baseline_series_, series, spec_.series_group_size)
                  : output_relative_error(baseline_.metric, out.metric);
  out.outcome = out.error <= spec_.error_threshold ? Outcome::kPass : Outcome::kFail;

  // Eq. (1) speedup with injected run-to-run noise (§III-E).
  const auto samples = sample_noisy_times(out.measured_cycles, spec_.noise_rsd,
                                          eq1_n_, noise_seed_, next_stream_++);
  out.speedup = eq1_speedup(baseline_samples_, samples);
  out.node_seconds =
      build + static_cast<double>(eq1_n_) * run.cycles * seconds_per_cycle_;
  return out;
}

}  // namespace prose::tuner
