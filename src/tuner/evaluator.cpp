#include "tuner/evaluator.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "ftn/parser.h"
#include "ftn/transform.h"
#include "gptl/gptl_trace.h"
#include "sim/compile.h"

namespace prose::tuner {
namespace {

/// Short stable identifier for a configuration (hex of the key's FNV-1a
/// hash) — compact enough for trace attributes on 300+-atom spaces, and
/// reproducible across platforms and runs (std::hash is neither).
std::string config_hash(const Config& config) {
  const auto h = static_cast<unsigned long long>(fnv1a64(config.key()));
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", h);
  return buf;
}

/// Emits the per-run VM counters (op mix, cast count, vectorized-vs-scalar
/// loop entries) as Chrome counter events on the given track.
void emit_run_counters(trace::Tracer& tr, trace::Track track,
                       const sim::RunResult& run) {
  const double ts = tr.now_us();
  const sim::OpMix& m = run.op_mix;
  tr.counter("vm/instructions", track, ts, static_cast<double>(run.instructions));
  tr.counter("vm/fp32-arith", track, ts, static_cast<double>(m.fp32_arith));
  tr.counter("vm/fp64-arith", track, ts, static_cast<double>(m.fp64_arith));
  tr.counter("vm/casts", track, ts, static_cast<double>(m.casts));
  tr.counter("vm/cast-cycles", track, ts, run.cast_cycles);
  tr.counter("vm/mem-ops", track, ts, static_cast<double>(m.mem));
  tr.counter("vm/calls", track, ts, static_cast<double>(m.calls));
  tr.counter("vm/intrinsics", track, ts, static_cast<double>(m.intrinsics));
  tr.counter("vm/vector-loop-entries", track, ts,
             static_cast<double>(m.vector_loop_entries));
  tr.counter("vm/scalar-loop-entries", track, ts,
             static_cast<double>(m.scalar_loop_entries));
}

}  // namespace

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kPass: return "pass";
    case Outcome::kFail: return "fail";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kRuntimeError: return "error";
    case Outcome::kCompileError: return "compile-error";
  }
  return "?";
}

Evaluator::Evaluator(const TargetSpec& spec, std::uint64_t noise_seed)
    : spec_(spec), noise_seed_(noise_seed) {}

StatusOr<std::unique_ptr<Evaluator>> Evaluator::create(const TargetSpec& spec,
                                                       std::uint64_t noise_seed,
                                                       trace::Tracer* tracer) {
  std::unique_ptr<Evaluator> ev(new Evaluator(spec, noise_seed));
  ev->tracer_ = tracer;  // before init() so the baseline run is traced too
  if (Status s = ev->init(); !s.is_ok()) return s;
  return ev;
}

Status Evaluator::init() {
  auto rp = ftn::parse_and_resolve(spec_.source, spec_.name);
  if (!rp.is_ok()) return rp.status();
  pristine_ = std::move(rp.value());

  auto space = SearchSpace::build(pristine_, spec_.atom_scopes, spec_.exclude_atoms);
  if (!space.is_ok()) return space.status();
  space_ = std::move(space.value());

  eq1_n_ = choose_eq1_n(spec_.noise_rsd);

  // T0 preprocessing (§III-C): reduce the program to the minimal subset the
  // transformation needs, verify it resolves, and record the statistics. The
  // paper reports this costs ~1% of an experiment.
  if (spec_.run_reduction_preprocessing) {
    std::set<ftn::NodeId> targets;
    for (const auto& atom : space_.atoms()) targets.insert(atom.decl);
    auto reduced = ftn::reduce_for_targets(pristine_, targets);
    if (!reduced.is_ok()) {
      return Status(StatusCode::kInvalidArgument,
                    "T0 reduction failed: " + reduced.status().to_string());
    }
    reduction_stats_ = reduced->stats;
  }

  // Baseline: the untouched program (original declared kinds).
  Evaluation base = run_variant(space_.uniform(8), /*is_baseline=*/true,
                                /*stream_id=*/0, trace::Track::evaluator());
  if (base.outcome != Outcome::kPass) {
    return Status(StatusCode::kInvalidArgument,
                  "baseline evaluation failed (" + std::string(to_string(base.outcome)) +
                      "): " + base.detail);
  }
  baseline_ = base;
  baseline_.speedup = 1.0;
  seconds_per_cycle_ = spec_.baseline_wall_seconds / baseline_.whole_cycles;
  // The paper gives each variant 3× the baseline's runtime before declaring
  // a timeout.
  cycle_budget_ = 3.0 * baseline_.whole_cycles;
  baseline_samples_ =
      sample_noisy_times(baseline_.measured_cycles, spec_.noise_rsd, eq1_n_,
                         noise_seed_, /*stream_id=*/0);
  return Status::ok();
}

void Evaluator::note_lookup_locked(bool hit) {
  ++cache_lookups_;
  if (hit) ++cache_hits_;
  if (tracer_ != nullptr && tracer_->enabled()) {
    const trace::Track track = trace::Track::evaluator();
    const double ts = tracer_->now_us();
    tracer_->counter("cache/lookups", track, ts,
                     static_cast<double>(cache_lookups_));
    tracer_->counter("cache/hits", track, ts, static_cast<double>(cache_hits_));
    tracer_->counter("cache/hit-rate", track, ts,
                     static_cast<double>(cache_hits_) /
                         static_cast<double>(cache_lookups_));
  }
}

void Evaluator::emit_cache_hit_instant(const Config& config, const Evaluation& eval) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  tracer_->instant("variant/cache-hit", trace::Track::evaluator(),
                   tracer_->now_us(),
                   {{"config", config_hash(config)},
                    {"outcome", to_string(eval.outcome)},
                    {"speedup", eval.speedup},
                    {"cache_hit", true}});
}

const Evaluation& Evaluator::evaluate(const Config& config, bool* cache_hit) {
  const std::string key = config.key();
  CacheEntry* entry = nullptr;
  std::uint64_t stream = 0;
  {
    std::unique_lock lock(cache_mu_);
    auto [it, inserted] = cache_.try_emplace(key);
    entry = &it->second;
    note_lookup_locked(/*hit=*/!inserted);
    if (!inserted) {
      // Single-flight: if another thread is computing this key, wait for it
      // rather than evaluating twice.
      cache_cv_.wait(lock, [entry] { return entry->ready; });
      if (cache_hit != nullptr) *cache_hit = true;
      lock.unlock();
      emit_cache_hit_instant(config, entry->eval);
      return entry->eval;
    }
    stream = next_stream_++;
  }
  if (cache_hit != nullptr) *cache_hit = false;
  Evaluation eval =
      run_variant(config, /*is_baseline=*/false, stream, trace::Track::evaluator());
  {
    std::lock_guard lock(cache_mu_);
    entry->eval = std::move(eval);
    entry->ready = true;
  }
  cache_cv_.notify_all();
  return entry->eval;
}

std::vector<Evaluator::BatchItem> Evaluator::evaluate_batch(
    std::span<const Config> configs, ThreadPool* pool) {
  std::vector<BatchItem> out(configs.size());
  if (pool == nullptr || pool->size() <= 1) {
    // Serial fallback — the reference semantics the parallel path must match.
    for (std::size_t i = 0; i < configs.size(); ++i) {
      bool hit = false;
      out[i].eval = &evaluate(configs[i], &hit);
      out[i].cache_hit = hit;
    }
    return out;
  }

  struct Job {
    Config config;
    std::uint64_t stream = 0;
    CacheEntry* entry = nullptr;
    Evaluation result;
  };
  std::vector<Job> jobs;
  // Proposal → the job computing its key (misses and in-batch duplicates).
  std::vector<std::ptrdiff_t> job_of(configs.size(), -1);
  // Proposal → an entry some *other* thread is computing (single-flight wait).
  std::vector<CacheEntry*> in_flight(configs.size(), nullptr);

  // Plan the batch under the cache lock, walking proposals in order: this
  // assigns noise streams to first occurrences of uncached keys in exactly
  // the order the serial path would have, and claims their cache entries so
  // concurrent callers single-flight against this batch.
  {
    std::unique_lock lock(cache_mu_);
    std::unordered_map<std::string, std::size_t, KeyHash> claimed;  // key → job
    for (std::size_t i = 0; i < configs.size(); ++i) {
      std::string key = configs[i].key();
      if (const auto c = claimed.find(key); c != claimed.end()) {
        // Duplicate within the batch: the serial walk would hit the cache
        // here (the first occurrence evaluated it).
        out[i].cache_hit = true;
        job_of[i] = static_cast<std::ptrdiff_t>(c->second);
        note_lookup_locked(/*hit=*/true);
        continue;
      }
      auto [it, inserted] = cache_.try_emplace(key);
      if (!inserted) {
        out[i].cache_hit = true;
        note_lookup_locked(/*hit=*/true);
        if (it->second.ready) {
          out[i].eval = &it->second.eval;
        } else {
          in_flight[i] = &it->second;
        }
        continue;
      }
      note_lookup_locked(/*hit=*/false);
      Job job;
      job.config = configs[i];
      job.stream = next_stream_++;
      job.entry = &it->second;
      job_of[i] = static_cast<std::ptrdiff_t>(jobs.size());
      claimed.emplace(std::move(key), jobs.size());
      jobs.push_back(std::move(job));
    }
  }

  // Fan the misses out to the pool. Each worker traces on its own track so
  // the parallel pipeline renders as per-worker span rows in Perfetto.
  pool->for_each(jobs.size(), [this, &jobs](std::size_t j, std::size_t worker) {
    Job& job = jobs[j];
    job.result = run_variant(job.config, /*is_baseline=*/false, job.stream,
                             trace::Track::worker(static_cast<int>(worker)));
  });

  // Publish results; waiters blocked in evaluate() wake here.
  {
    std::lock_guard lock(cache_mu_);
    for (Job& job : jobs) {
      job.entry->eval = std::move(job.result);
      job.entry->ready = true;
    }
  }
  cache_cv_.notify_all();

  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (out[i].eval != nullptr) continue;
    if (job_of[i] >= 0) {
      out[i].eval = &jobs[static_cast<std::size_t>(job_of[i])].entry->eval;
    } else if (in_flight[i] != nullptr) {
      CacheEntry* entry = in_flight[i];
      std::unique_lock lock(cache_mu_);
      cache_cv_.wait(lock, [entry] { return entry->ready; });
      out[i].eval = &entry->eval;
    }
  }

  // Cache-hit instants mirror the serial path's per-hit trace events.
  if (tracer_ != nullptr && tracer_->enabled()) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      if (out[i].cache_hit) emit_cache_hit_instant(configs[i], *out[i].eval);
    }
  }
  return out;
}

bool Evaluator::is_cached(const Config& config) const {
  std::lock_guard lock(cache_mu_);
  return cache_.find(config.key()) != cache_.end();
}

std::size_t Evaluator::unique_evaluations() const {
  std::lock_guard lock(cache_mu_);
  return cache_.size();
}

std::uint64_t Evaluator::cache_lookups() const {
  std::lock_guard lock(cache_mu_);
  return cache_lookups_;
}

std::uint64_t Evaluator::cache_hit_count() const {
  std::lock_guard lock(cache_mu_);
  return cache_hits_;
}

Evaluation Evaluator::run_variant(const Config& config, bool is_baseline,
                                  std::uint64_t stream_id, trace::Track track) {
  // Zero-cost path: no tracer (or sinks disabled) means no attribute
  // formatting, no clock reads — run_variant_impl is called bare.
  trace::Tracer* tr =
      (tracer_ != nullptr && tracer_->enabled()) ? tracer_ : nullptr;
  if (tr == nullptr) {
    return run_variant_impl(config, is_baseline, stream_id, track, nullptr);
  }

  tr->begin(is_baseline ? "variant/baseline" : "variant", track, tr->now_us(),
            {{"config", config_hash(config)},
             {"fraction32", config.fraction32()},
             {"atoms32", config.count32()}});
  Evaluation out = run_variant_impl(config, is_baseline, stream_id, track, tr);
  tr->end(is_baseline ? "variant/baseline" : "variant", track, tr->now_us(),
          {{"outcome", to_string(out.outcome)},
           {"cycles", out.whole_cycles},
           {"measured_cycles", out.measured_cycles},
           {"speedup", out.speedup},
           {"error", out.error},
           {"node_seconds", out.node_seconds},
           {"wrappers", out.wrappers},
           {"cache_hit", false}});
  return out;
}

Evaluation Evaluator::run_variant_impl(const Config& config, bool is_baseline,
                                       std::uint64_t stream_id, trace::Track track,
                                       trace::Tracer* tr) {
  Evaluation out;
  out.fraction32 = config.fraction32();

  // Transform: clone + retype + wrap (§III-C).
  ftn::WrapperReport wreport;
  StatusOr<ftn::ResolvedProgram> variant = Status(StatusCode::kUnimplemented, "unset");
  {
    trace::Span stage(tr, track, "transform");
    variant = ftn::make_variant(pristine_.program, space_.to_assignment(config),
                                &wreport);
    if (tr != nullptr) {
      stage.annotate({{"ok", variant.is_ok()},
                      {"wrappers", wreport.wrappers_generated}});
    }
  }
  if (!variant.is_ok()) {
    out.outcome = Outcome::kCompileError;
    out.detail = variant.status().to_string();
    out.node_seconds = spec_.variant_build_seconds;
    return out;
  }
  out.wrappers = wreport.wrappers_generated;

  // Compile with hotspot instrumentation.
  sim::CompileOptions copts;
  for (const auto& proc : spec_.hotspot_procs) copts.instrument.insert(proc);
  StatusOr<sim::CompiledProgram> compiled = Status(StatusCode::kUnimplemented, "unset");
  {
    trace::Span stage(tr, track, "compile");
    compiled = sim::compile(variant.value(), spec_.machine, copts);
    if (tr != nullptr) stage.annotate({{"ok", compiled.is_ok()}});
  }
  if (!compiled.is_ok()) {
    out.outcome = Outcome::kCompileError;
    out.detail = compiled.status().to_string();
    out.node_seconds = spec_.variant_build_seconds;
    return out;
  }

  // Execute the representative workload.
  sim::VmOptions vopts;
  if (!is_baseline && cycle_budget_ > 0.0) vopts.cycle_budget = cycle_budget_;
  sim::Vm vm(&compiled.value(), vopts);
  if (spec_.setup) {
    if (Status s = spec_.setup(vm); !s.is_ok()) {
      out.outcome = Outcome::kCompileError;
      out.detail = "setup failed: " + s.to_string();
      return out;
    }
  }
  sim::RunResult run;
  {
    trace::Span stage(tr, track, "execute");
    run = vm.call(spec_.entry);
    if (tr != nullptr) {
      stage.annotate({{"ok", run.status.is_ok()},
                      {"cycles", run.cycles},
                      {"instructions", run.instructions}});
    }
  }
  if (tr != nullptr) {
    emit_run_counters(*tr, track, run);
    // GPTL → trace bridge: hotspot region stats as counter tracks.
    gptl::export_region_counters(*tr, vm.timers(), track, tr->now_us());
  }
  out.whole_cycles = run.cycles;
  out.cast_cycles = run.cast_cycles;
  const double build = spec_.variant_build_seconds;

  if (!run.status.is_ok()) {
    out.outcome = run.status.code() == StatusCode::kTimeout ? Outcome::kTimeout
                                                            : Outcome::kRuntimeError;
    out.detail = run.status.to_string();
    out.node_seconds =
        build + static_cast<double>(eq1_n_) * run.cycles * seconds_per_cycle_;
    return out;
  }

  // Measure: hotspot attribution, correctness metric, Eq. (1) speedup.
  trace::Span measure_stage(tr, track, "measure");

  // Hotspot CPU time from the instrumented regions.
  double hotspot = 0.0;
  for (const auto& proc : spec_.hotspot_procs) {
    auto stats = vm.timers().stats(proc);
    if (stats.is_ok()) hotspot += stats->inclusive_cycles;
  }
  out.hotspot_cycles = hotspot;
  out.measured_cycles = spec_.measure_whole_model ? run.cycles : hotspot;

  for (const auto& proc : spec_.figure6_procs) {
    const sim::ProcRunStats* stats = vm.proc_stats(proc);
    if (stats != nullptr && stats->calls > 0) {
      out.proc_mean_cycles[proc] = stats->mean_call_cycles();
      out.proc_calls[proc] = stats->calls;
    }
  }

  // Correctness metric (§III-D): scalar metric or diagnostic field series.
  std::vector<double> series;
  if (spec_.series_fn) {
    auto s = spec_.series_fn(vm);
    if (!s.is_ok()) {
      out.outcome = Outcome::kRuntimeError;
      out.detail = "series metric failed: " + s.status().to_string();
      out.node_seconds = build + run.cycles * seconds_per_cycle_;
      return out;
    }
    series = std::move(s.value());
    out.metric = series.empty() ? 0.0 : series.back();
  } else {
    auto metric = spec_.metric ? spec_.metric(vm) : StatusOr<double>(0.0);
    if (!metric.is_ok()) {
      out.outcome = Outcome::kRuntimeError;
      out.detail = "metric failed: " + metric.status().to_string();
      out.node_seconds = build + run.cycles * seconds_per_cycle_;
      return out;
    }
    out.metric = metric.value();
  }

  if (is_baseline) {
    baseline_series_ = std::move(series);
    out.outcome = Outcome::kPass;
    out.error = 0.0;
    out.node_seconds = build + run.cycles * 0.0;  // scale not yet calibrated
    return out;
  }

  out.error = spec_.series_fn
                  ? series_error(baseline_series_, series, spec_.series_group_size)
                  : output_relative_error(baseline_.metric, out.metric);
  out.outcome = out.error <= spec_.error_threshold ? Outcome::kPass : Outcome::kFail;

  // Eq. (1) speedup with injected run-to-run noise (§III-E). The stream was
  // preassigned in proposal order (serial: at the cache miss; batch: during
  // planning), so the draw is independent of evaluation order and worker
  // interleaving.
  const auto samples = sample_noisy_times(out.measured_cycles, spec_.noise_rsd,
                                          eq1_n_, noise_seed_, stream_id);
  out.speedup = eq1_speedup(baseline_samples_, samples);
  out.node_seconds =
      build + static_cast<double>(eq1_n_) * run.cycles * seconds_per_cycle_;
  return out;
}

}  // namespace prose::tuner
