#include "gptl/gptl_trace.h"

namespace prose::gptl {

void export_region_counters(trace::Tracer& tracer, const Timers& timers,
                            trace::Track track, double ts_us,
                            std::string_view prefix) {
  if (!tracer.enabled()) return;
  for (const RegionStats& r : timers.all_stats()) {
    const std::string base = std::string(prefix) + r.name;
    tracer.counter(base + "/cycles", track, ts_us, r.inclusive_cycles);
    tracer.counter(base + "/calls", track, ts_us, static_cast<double>(r.calls));
    tracer.counter(base + "/mean-call-cycles", track, ts_us, r.mean_call_cycles());
  }
}

}  // namespace prose::gptl
