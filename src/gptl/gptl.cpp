#include "gptl/gptl.h"

#include <algorithm>
#include <sstream>

#include "support/strings.h"

namespace prose::gptl {

Timers::Timers(SimClock* clock, TimerOptions options)
    : clock_(clock), options_(options) {
  PROSE_CHECK(clock_ != nullptr);
}

std::size_t Timers::intern(const std::string& name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const std::size_t idx = regions_.size();
  regions_.push_back(RegionStats{.name = name});
  index_.emplace(name, idx);
  return idx;
}

Status Timers::start(const std::string& name) {
  if (name.empty()) {
    return Status(StatusCode::kInvalidArgument, "empty region name");
  }
  const std::size_t idx = intern(name);
  // Instrumentation overhead: half charged at start, half at stop.
  const double oh = options_.overhead_cycles_per_pair / 2.0;
  clock_->advance(oh);
  regions_[idx].overhead_cycles += oh;
  stack_.push_back(Frame{.region_index = idx, .entry_time = clock_->now()});
  return Status::ok();
}

Status Timers::stop(const std::string& name) {
  if (stack_.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "stop('" + name + "') with no open region");
  }
  Frame frame = stack_.back();
  RegionStats& region = regions_[frame.region_index];
  if (options_.strict_nesting && region.name != name) {
    return Status(StatusCode::kInvalidArgument,
                  "stop('" + name + "') but innermost open region is '" +
                      region.name + "'");
  }
  stack_.pop_back();

  const double oh = options_.overhead_cycles_per_pair / 2.0;
  clock_->advance(oh);
  region.overhead_cycles += oh;

  const double inclusive = clock_->now() - frame.entry_time;
  region.calls += 1;
  region.inclusive_cycles += inclusive;
  region.exclusive_cycles += inclusive - frame.child_cycles;
  // min_call_cycles is zero-initialized in RegionStats; a naive min() update
  // would pin it at 0 forever. The first *completed* call (calls just became
  // 1) must seed both extrema instead of folding into them.
  if (region.calls == 1) {
    region.min_call_cycles = region.max_call_cycles = inclusive;
  } else {
    region.min_call_cycles = std::min(region.min_call_cycles, inclusive);
    region.max_call_cycles = std::max(region.max_call_cycles, inclusive);
  }
  if (!stack_.empty()) stack_.back().child_cycles += inclusive;
  return Status::ok();
}

void Timers::charge(double cycles) {
  clock_->advance(cycles);
  // Exclusive attribution happens implicitly: cycles not inside a child
  // region's [entry, exit) window count toward the innermost open region's
  // exclusive time at stop().
}

StatusOr<RegionStats> Timers::stats(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return Status(StatusCode::kNotFound, "no region named '" + name + "'");
  }
  return regions_[it->second];
}

std::vector<RegionStats> Timers::all_stats() const {
  std::vector<RegionStats> out = regions_;
  std::sort(out.begin(), out.end(), [](const RegionStats& a, const RegionStats& b) {
    return a.inclusive_cycles > b.inclusive_cycles;
  });
  return out;
}

double Timers::total_overhead() const {
  double total = 0.0;
  for (const auto& r : regions_) total += r.overhead_cycles;
  return total;
}

double Timers::overhead_fraction(const std::string& name) const {
  const auto s = stats(name);
  if (!s.is_ok() || s->inclusive_cycles <= 0.0) return 0.0;
  return s->overhead_cycles / s->inclusive_cycles;
}

std::string Timers::report() const {
  std::ostringstream os;
  os << pad_right("region", 44) << pad_left("calls", 10)
     << pad_left("incl cycles", 16) << pad_left("excl cycles", 16)
     << pad_left("mean/call", 14) << '\n';
  for (const auto& r : all_stats()) {
    os << pad_right(r.name, 44) << pad_left(std::to_string(r.calls), 10)
       << pad_left(format_double(r.inclusive_cycles, 0), 16)
       << pad_left(format_double(r.exclusive_cycles, 0), 16)
       << pad_left(format_double(r.mean_call_cycles(), 1), 14) << '\n';
  }
  return os.str();
}

void Timers::reset() {
  regions_.clear();
  index_.clear();
  stack_.clear();
}

}  // namespace prose::gptl
