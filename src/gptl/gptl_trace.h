// GPTL → flight-recorder bridge: exports a Timers registry's RegionStats as
// Chrome counter events (ph:"C"), one counter track per region, so per-region
// hotspot CPU time shows up alongside the pipeline spans in Perfetto.
#pragma once

#include <string_view>

#include "gptl/gptl.h"
#include "support/trace.h"

namespace prose::gptl {

/// Emits, for every region in `timers`, counter samples at `ts_us` on
/// `track`: "<prefix><region>/cycles" (inclusive), "<prefix><region>/calls",
/// and "<prefix><region>/mean-call-cycles". No-op when tracing is disabled.
void export_region_counters(trace::Tracer& tracer, const Timers& timers,
                            trace::Track track, double ts_us,
                            std::string_view prefix = "gptl/");

}  // namespace prose::gptl
