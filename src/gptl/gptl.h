// A reimplementation of the General Purpose Timing Library (GPTL) surface the
// paper uses to collect hotspot CPU time (§III-E).
//
// The paper instruments Fortran hotspots with gptl_start/gptl_stop region
// pairs and reports per-region CPU time; Figure 6 is built from the average
// CPU time *per call* of each procedure. We reproduce that API over a
// simulated cycle clock: the VM advances the clock as it executes and charges
// cycles to the innermost open region, so attribution works exactly like a
// sampling-free instrumented build.
//
// Timing overhead: the paper reports 1–7% instrumentation overhead. Each
// start/stop pair here charges a configurable number of cycles to the region
// (and transitively to its ancestors), so high-frequency regions show higher
// relative overhead — the same mechanism that produces the paper's range.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/status.h"

namespace prose::gptl {

/// Monotone simulated clock measured in machine cycles (doubles, since the
/// cost model produces fractional amortized costs for vectorized ops).
class SimClock {
 public:
  void advance(double cycles) {
    PROSE_CHECK(cycles >= 0.0);
    now_ += cycles;
  }
  /// Monotone absolute update. Lets an execution engine accumulate cycles in
  /// a register-resident local and publish the exact sum it computed (an
  /// advance(target - now()) round-trip would not be bit-exact).
  void set_now(double cycles) {
    PROSE_CHECK(cycles >= now_);
    now_ = cycles;
  }
  [[nodiscard]] double now() const { return now_; }
  void reset() { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

/// Accumulated statistics for one named region.
struct RegionStats {
  std::string name;
  std::uint64_t calls = 0;
  double inclusive_cycles = 0.0;  // time with children included
  double exclusive_cycles = 0.0;  // time with children excluded
  double min_call_cycles = 0.0;   // fastest single call (inclusive); seeded by
                                  // the first completed call, 0 only when calls == 0
  double max_call_cycles = 0.0;   // slowest single call (inclusive)
  double overhead_cycles = 0.0;   // instrumentation cost charged here

  [[nodiscard]] double mean_call_cycles() const {
    return calls == 0 ? 0.0 : inclusive_cycles / static_cast<double>(calls);
  }
};

struct TimerOptions {
  /// Cycles charged per start/stop pair (instrumentation overhead).
  double overhead_cycles_per_pair = 40.0;
  /// Reject stop() of a region that is not the innermost open one.
  bool strict_nesting = true;
};

/// The timer registry. One instance per simulated process/run.
class Timers {
 public:
  explicit Timers(SimClock* clock, TimerOptions options = {});

  /// Opens a region. Regions may nest and recurse; recursive re-entry is
  /// counted once per entry with inner time attributed to the same region.
  Status start(const std::string& name);

  /// Closes the innermost region; `name` must match under strict nesting.
  Status stop(const std::string& name);

  /// Charges cycles to the clock and to the innermost open region's
  /// *exclusive* time. This is the hook the VM uses for cost attribution.
  void charge(double cycles);

  [[nodiscard]] bool any_open() const { return !stack_.empty(); }
  [[nodiscard]] std::size_t depth() const { return stack_.size(); }

  /// Stats for one region; NotFound if the region was never started.
  [[nodiscard]] StatusOr<RegionStats> stats(const std::string& name) const;

  /// All regions, sorted by descending inclusive time.
  [[nodiscard]] std::vector<RegionStats> all_stats() const;

  /// Total instrumentation overhead across all regions.
  [[nodiscard]] double total_overhead() const;

  /// Fraction of the named region's inclusive time that is instrumentation
  /// overhead (the paper's "1%-7%" figure).
  [[nodiscard]] double overhead_fraction(const std::string& name) const;

  /// GPTL-style report listing regions with calls / mean / total columns.
  [[nodiscard]] std::string report() const;

  void reset();

 private:
  struct Frame {
    std::size_t region_index;
    double entry_time;
    double child_cycles = 0.0;  // cycles attributed to nested regions
  };

  std::size_t intern(const std::string& name);

  SimClock* clock_;  // non-owning; outlives this registry
  TimerOptions options_;
  std::vector<RegionStats> regions_;
  std::map<std::string, std::size_t> index_;
  std::vector<Frame> stack_;
};

/// RAII region guard for C++-side instrumentation of harness phases.
class ScopedRegion {
 public:
  ScopedRegion(Timers& timers, std::string name)
      : timers_(timers), name_(std::move(name)) {
    PROSE_CHECK(timers_.start(name_).is_ok());
  }
  ~ScopedRegion() { (void)timers_.stop(name_); }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  Timers& timers_;
  std::string name_;
};

}  // namespace prose::gptl
