// Call graph over a resolved program.
//
// Used by the taint reducer (which procedures to keep), the wrapper generator
// (call-site enumeration), and the §V static cost model (estimated call
// volumes from loop nesting).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ftn/ast.h"
#include "ftn/sema.h"

namespace prose::ftn {

/// One static call site (a `call` statement or function-call expression).
struct CallSite {
  NodeId node = kInvalidNode;          // Stmt id (call stmt) or Expr id (call expr)
  SymbolId caller = kInvalidSymbol;    // enclosing procedure
  SymbolId callee = kInvalidSymbol;    // target procedure
  bool is_function_call = false;
  int loop_depth = 0;                  // static nesting depth at the site
  /// Product of constant-foldable trip counts of enclosing loops; loops with
  /// unknown trips contribute `kDefaultTrip` each. A static proxy for call
  /// volume.
  double estimated_calls = 1.0;
  SourceLoc loc;
};

class CallGraph {
 public:
  static constexpr double kDefaultTrip = 16.0;

  /// Builds the graph; the program must be resolved.
  static CallGraph build(const ResolvedProgram& rp);

  [[nodiscard]] const std::vector<CallSite>& sites() const { return sites_; }

  /// Call sites with the given caller / callee.
  [[nodiscard]] std::vector<const CallSite*> sites_from(SymbolId caller) const;
  [[nodiscard]] std::vector<const CallSite*> sites_to(SymbolId callee) const;

  /// Direct callees of a procedure (unique, sorted).
  [[nodiscard]] std::vector<SymbolId> callees_of(SymbolId caller) const;

  /// All procedures reachable from `roots` (inclusive), following call edges.
  [[nodiscard]] std::vector<SymbolId> reachable_from(const std::vector<SymbolId>& roots) const;

  /// True if the graph has a cycle (recursion). The VM supports recursion,
  /// but the inliner refuses to inline recursive procedures.
  [[nodiscard]] bool is_recursive(SymbolId proc) const;

 private:
  std::vector<CallSite> sites_;
  std::map<SymbolId, std::vector<std::size_t>> by_caller_;
  std::map<SymbolId, std::vector<std::size_t>> by_callee_;
};

}  // namespace prose::ftn
