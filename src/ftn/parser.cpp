#include "ftn/parser.h"

#include <utility>

#include "ftn/lexer.h"

namespace prose::ftn {
namespace {

class Parser {
 public:
  explicit Parser(const TokenStream& stream) : tokens_(stream.tokens) {}

  StatusOr<Program> run() {
    Program prog;
    skip_newlines();
    while (!at(Tok::kEof)) {
      auto mod = parse_module(prog);
      if (!mod.is_ok()) return mod.status();
      prog.modules.push_back(std::move(mod.value()));
      skip_newlines();
    }
    if (prog.modules.empty()) {
      return err("source contains no modules");
    }
    return prog;
  }

 private:
  // ---- token plumbing -----------------------------------------------------

  [[nodiscard]] const Token& peek(std::size_t off = 0) const {
    const std::size_t i = pos_ + off;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool at(Tok t) const { return peek().kind == t; }
  const Token& advance() {
    const Token& t = peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  bool accept(Tok t) {
    if (at(t)) {
      advance();
      return true;
    }
    return false;
  }

  /// Context-sensitive word: an identifier with a specific spelling
  /// (`kind`, `result`, `only`, ... are not reserved in Fortran).
  [[nodiscard]] bool at_word(const char* w, std::size_t off = 0) const {
    return peek(off).kind == Tok::kIdent && peek(off).text == w;
  }
  bool accept_word(const char* w) {
    if (at_word(w)) {
      advance();
      return true;
    }
    return false;
  }

  Status expect(Tok t, const char* context) {
    if (accept(t)) return Status::ok();
    return err(std::string("expected ") + token_name(t) + " " + context +
               ", found " + token_name(peek().kind) +
               (peek().text.empty() ? "" : " '" + peek().text + "'"));
  }

  [[nodiscard]] Status err(std::string message) const {
    return Status(StatusCode::kParseError, std::move(message), peek().loc);
  }

  void skip_newlines() {
    while (accept(Tok::kNewline)) {
    }
  }

  Status end_of_stmt() {
    if (at(Tok::kEof)) return Status::ok();
    return expect(Tok::kNewline, "at end of statement");
  }

  // ---- structure ----------------------------------------------------------

  StatusOr<Module> parse_module(Program& prog) {
    Module mod;
    mod.loc = peek().loc;
    mod.id = prog.ids.next();
    if (Status s = expect(Tok::kKwModule, "to begin a module"); !s.is_ok()) return s;
    if (!at(Tok::kIdent)) return err("expected module name");
    mod.name = advance().text;
    if (Status s = end_of_stmt(); !s.is_ok()) return s;
    skip_newlines();

    // use statements.
    while (at(Tok::kKwUse)) {
      auto use = parse_use();
      if (!use.is_ok()) return use.status();
      mod.uses.push_back(std::move(use.value()));
      skip_newlines();
    }
    // optional `implicit none`.
    if (accept(Tok::kKwImplicit)) {
      if (!accept_word("none")) return err("expected 'none' after 'implicit'");
      if (Status s = end_of_stmt(); !s.is_ok()) return s;
      skip_newlines();
    }
    // module-level declarations.
    while (at_type_keyword()) {
      if (is_function_header()) break;  // e.g. `real(kind=8) function ...`
      if (Status s = parse_decl_line(prog, mod.decls); !s.is_ok()) return s;
      skip_newlines();
    }
    // contains + procedures.
    if (accept(Tok::kKwContains)) {
      if (Status s = end_of_stmt(); !s.is_ok()) return s;
      skip_newlines();
      while (!at(Tok::kKwEnd) && !at(Tok::kEof)) {
        auto proc = parse_procedure(prog);
        if (!proc.is_ok()) return proc.status();
        mod.procedures.push_back(std::move(proc.value()));
        skip_newlines();
      }
    }
    if (Status s = expect(Tok::kKwEnd, "to close module"); !s.is_ok()) return s;
    accept(Tok::kKwModule);
    if (at(Tok::kIdent)) {
      if (advance().text != mod.name) {
        return err("end-module name does not match 'module " + mod.name + "'");
      }
    }
    if (Status s = end_of_stmt(); !s.is_ok()) return s;
    return mod;
  }

  StatusOr<UseStmt> parse_use() {
    UseStmt use;
    use.loc = peek().loc;
    advance();  // 'use'
    if (!at(Tok::kIdent)) return err("expected module name after 'use'");
    use.module_name = advance().text;
    if (accept(Tok::kComma)) {
      if (!accept_word("only")) return err("expected 'only' after ',' in use statement");
      if (Status s = expect(Tok::kColon, "after 'only'"); !s.is_ok()) return s;
      do {
        if (!at(Tok::kIdent)) return err("expected name in only-list");
        use.only.push_back(advance().text);
      } while (accept(Tok::kComma));
    }
    if (Status s = end_of_stmt(); !s.is_ok()) return s;
    return use;
  }

  [[nodiscard]] bool at_type_keyword() const {
    switch (peek().kind) {
      case Tok::kKwReal:
      case Tok::kKwDoublePrecision:
      case Tok::kKwInteger:
      case Tok::kKwLogical:
        return true;
      default:
        return false;
    }
  }

  /// Looks ahead for `type-spec function name(...)`.
  [[nodiscard]] bool is_function_header() const {
    std::size_t i = pos_;
    const auto tok = [&](std::size_t j) -> const Token& {
      return j < tokens_.size() ? tokens_[j] : tokens_.back();
    };
    // Skip over the type spec, including a parenthesized kind.
    ++i;
    if (tok(i).kind == Tok::kLParen) {
      int depth = 1;
      ++i;
      while (depth > 0 && tok(i).kind != Tok::kEof && tok(i).kind != Tok::kNewline) {
        if (tok(i).kind == Tok::kLParen) ++depth;
        if (tok(i).kind == Tok::kRParen) --depth;
        ++i;
      }
    }
    return tok(i).kind == Tok::kKwFunction;
  }

  StatusOr<ScalarType> parse_type_spec() {
    ScalarType type;
    if (accept(Tok::kKwInteger)) {
      type.base = BaseType::kInteger;
      type.kind = 4;
      // Allow `integer(kind=4)` / `integer(4)`.
      if (accept(Tok::kLParen)) {
        if (at_word("kind") && peek(1).kind == Tok::kAssign) {
          advance();
          advance();
        }
        if (!at(Tok::kIntLit)) return err("expected integer kind");
        advance();
        if (Status s = expect(Tok::kRParen, "after kind"); !s.is_ok()) return s;
      }
      return type;
    }
    if (accept(Tok::kKwLogical)) {
      type.base = BaseType::kLogical;
      type.kind = 4;
      return type;
    }
    if (accept(Tok::kKwDoublePrecision)) {
      type.base = BaseType::kReal;
      type.kind = 8;
      return type;
    }
    if (accept(Tok::kKwReal)) {
      type.base = BaseType::kReal;
      type.kind = 4;  // default real
      if (accept(Tok::kLParen)) {
        if (at_word("kind") && peek(1).kind == Tok::kAssign) {
          advance();
          advance();
        }
        if (!at(Tok::kIntLit)) return err("expected kind value (4 or 8)");
        const std::int64_t k = advance().int_value;
        if (k != 4 && k != 8) return err("unsupported real kind (use 4 or 8)");
        type.kind = static_cast<int>(k);
        if (Status s = expect(Tok::kRParen, "after kind"); !s.is_ok()) return s;
      }
      return type;
    }
    return err("expected type specifier");
  }

  Status parse_decl_line(Program& prog, std::vector<DeclEntity>& out) {
    auto type = parse_type_spec();
    if (!type.is_ok()) return type.status();

    bool is_parameter = false;
    Intent intent = Intent::kNone;
    std::vector<DimSpec> shared_dims;
    while (accept(Tok::kComma)) {
      if (accept(Tok::kKwParameter)) {
        is_parameter = true;
      } else if (accept_word("save")) {
        // `save` is the default for module variables in the subset; accepted
        // and ignored so real-model-style declarations parse.
      } else if (accept(Tok::kKwDimension)) {
        if (Status s = expect(Tok::kLParen, "after 'dimension'"); !s.is_ok()) return s;
        auto dims = parse_dims(prog.ids);
        if (!dims.is_ok()) return dims.status();
        shared_dims = std::move(dims.value());
      } else if (accept(Tok::kKwIntent)) {
        if (Status s = expect(Tok::kLParen, "after 'intent'"); !s.is_ok()) return s;
        if (accept_word("inout")) {
          intent = Intent::kInOut;
        } else if (accept_word("in")) {
          intent = accept_word("out") ? Intent::kInOut : Intent::kIn;
        } else if (accept_word("out")) {
          intent = Intent::kOut;
        } else {
          return err("expected in/out/inout");
        }
        if (Status s = expect(Tok::kRParen, "after intent"); !s.is_ok()) return s;
      } else {
        return err("unknown declaration attribute");
      }
    }
    if (Status s = expect(Tok::kDoubleColon, "before declared names"); !s.is_ok()) return s;

    do {
      DeclEntity ent;
      ent.loc = peek().loc;
      ent.id = prog.ids.next();
      ent.type = type.value();
      ent.is_parameter = is_parameter;
      ent.intent = intent;
      if (!at(Tok::kIdent)) return err("expected declared name");
      ent.name = advance().text;
      if (accept(Tok::kLParen)) {
        auto dims = parse_dims(prog.ids);
        if (!dims.is_ok()) return dims.status();
        ent.dims = std::move(dims.value());
      } else {
        for (const auto& d : shared_dims) {
          DimSpec nd;
          nd.extent = d.extent ? d.extent->clone() : nullptr;
          ent.dims.push_back(std::move(nd));
        }
      }
      if (accept(Tok::kAssign)) {
        auto init = parse_expr(prog);
        if (!init.is_ok()) return init.status();
        ent.init = std::move(init.value());
      } else if (is_parameter) {
        return err("parameter '" + ent.name + "' requires an initializer");
      }
      out.push_back(std::move(ent));
    } while (accept(Tok::kComma));
    return end_of_stmt();
  }

  StatusOr<std::vector<DimSpec>> parse_dims(NodeIdGen& ids) {
    std::vector<DimSpec> dims;
    do {
      DimSpec d;
      if (accept(Tok::kColon)) {
        // assumed shape
      } else {
        auto e = parse_expr(ids);
        if (!e.is_ok()) return e.status();
        d.extent = std::move(e.value());
      }
      dims.push_back(std::move(d));
      if (dims.size() > 3) return err("arrays of rank > 3 are not supported");
    } while (accept(Tok::kComma));
    if (Status s = expect(Tok::kRParen, "after dimensions"); !s.is_ok()) return s;
    return dims;
  }

  StatusOr<Procedure> parse_procedure(Program& prog) {
    Procedure proc;
    proc.loc = peek().loc;
    proc.id = prog.ids.next();

    // Optional pure/elemental prefixes (accepted, not enforced).
    while ((at_word("pure") || at_word("elemental")) &&
           peek(1).kind != Tok::kAssign && peek(1).kind != Tok::kLParen) {
      advance();
    }

    std::optional<ScalarType> result_type;
    if (at_type_keyword()) {
      auto t = parse_type_spec();
      if (!t.is_ok()) return t.status();
      result_type = t.value();
    }

    if (accept(Tok::kKwSubroutine)) {
      if (result_type.has_value()) return err("subroutines cannot have a result type");
      proc.kind = ProcKind::kSubroutine;
    } else if (accept(Tok::kKwFunction)) {
      proc.kind = ProcKind::kFunction;
    } else {
      return err("expected 'subroutine' or 'function'");
    }

    if (!at(Tok::kIdent)) return err("expected procedure name");
    proc.name = advance().text;

    if (accept(Tok::kLParen)) {
      if (!accept(Tok::kRParen)) {
        do {
          if (!at(Tok::kIdent)) return err("expected dummy argument name");
          proc.param_names.push_back(advance().text);
        } while (accept(Tok::kComma));
        if (Status s = expect(Tok::kRParen, "after dummy arguments"); !s.is_ok()) return s;
      }
    }

    if (proc.kind == ProcKind::kFunction) {
      if (at_word("result") && peek(1).kind == Tok::kLParen) {
        advance();
        if (Status s = expect(Tok::kLParen, "after 'result'"); !s.is_ok()) return s;
        if (!at(Tok::kIdent)) return err("expected result name");
        proc.result_name = advance().text;
        if (Status s = expect(Tok::kRParen, "after result name"); !s.is_ok()) return s;
      } else {
        proc.result_name = proc.name;
      }
    }
    if (Status s = end_of_stmt(); !s.is_ok()) return s;
    skip_newlines();

    // Optional `implicit none` inside the procedure.
    if (accept(Tok::kKwImplicit)) {
      if (Status s = expect(Tok::kKwNone, "after 'implicit'"); !s.is_ok()) return s;
      if (Status s = end_of_stmt(); !s.is_ok()) return s;
      skip_newlines();
    }

    // Declarations.
    while (at_type_keyword()) {
      if (Status s = parse_decl_line(prog, proc.decls); !s.is_ok()) return s;
      skip_newlines();
    }

    // Result declared via the type prefix form.
    if (result_type.has_value() && proc.find_decl(proc.result_name) == nullptr) {
      DeclEntity ent;
      ent.id = prog.ids.next();
      ent.name = proc.result_name;
      ent.type = *result_type;
      ent.loc = proc.loc;
      proc.decls.push_back(std::move(ent));
    }

    // Body.
    auto body = parse_stmt_list(prog);
    if (!body.is_ok()) return body.status();
    proc.body = std::move(body.value());

    if (Status s = expect(Tok::kKwEnd, "to close procedure"); !s.is_ok()) return s;
    accept(Tok::kKwSubroutine) || accept(Tok::kKwFunction);
    if (at(Tok::kIdent)) {
      if (advance().text != proc.name) {
        return err("end-procedure name does not match '" + proc.name + "'");
      }
    }
    if (Status s = end_of_stmt(); !s.is_ok()) return s;
    return proc;
  }

  // ---- statements ----------------------------------------------------------

  /// Parses statements until a block terminator (end/else/elseif/endif/enddo).
  StatusOr<std::vector<StmtPtr>> parse_stmt_list(Program& prog) {
    std::vector<StmtPtr> out;
    skip_newlines();
    while (!at_block_end()) {
      auto s = parse_stmt(prog);
      if (!s.is_ok()) return s.status();
      out.push_back(std::move(s.value()));
      skip_newlines();
    }
    return out;
  }

  [[nodiscard]] bool at_block_end() const {
    switch (peek().kind) {
      case Tok::kKwEnd:
      case Tok::kKwElse:
      case Tok::kKwElseIf:
      case Tok::kKwEndIf:
      case Tok::kKwEndDo:
      case Tok::kEof:
      case Tok::kKwContains:
        return true;
      default:
        return false;
    }
  }

  StatusOr<StmtPtr> parse_stmt(Program& prog) {
    switch (peek().kind) {
      case Tok::kKwIf: return parse_if(prog);
      case Tok::kKwDo: return parse_do(prog);
      case Tok::kKwCall: return parse_call(prog);
      case Tok::kKwExit:
      case Tok::kKwCycle:
      case Tok::kKwReturn: return parse_simple_keyword(prog);
      case Tok::kKwPrint: return parse_print(prog);
      case Tok::kIdent: return parse_assignment(prog);
      default:
        return err(std::string("unexpected ") + token_name(peek().kind) +
                   " at start of statement");
    }
  }

  /// A statement allowed after a one-line `if (...) stmt`.
  StatusOr<StmtPtr> parse_inline_stmt(Program& prog) {
    switch (peek().kind) {
      case Tok::kKwCall: return parse_call(prog, /*consume_newline=*/false);
      case Tok::kKwExit:
      case Tok::kKwCycle:
      case Tok::kKwReturn:
        return parse_simple_keyword(prog, /*consume_newline=*/false);
      case Tok::kKwPrint: return parse_print(prog, /*consume_newline=*/false);
      case Tok::kIdent: return parse_assignment(prog, /*consume_newline=*/false);
      default:
        return err("statement not allowed in one-line if");
    }
  }

  StatusOr<StmtPtr> parse_if(Program& prog) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kIf;
    stmt->loc = peek().loc;
    stmt->id = prog.ids.next();
    advance();  // 'if'
    if (Status s = expect(Tok::kLParen, "after 'if'"); !s.is_ok()) return s;
    auto cond = parse_expr(prog);
    if (!cond.is_ok()) return cond.status();
    if (Status s = expect(Tok::kRParen, "after if condition"); !s.is_ok()) return s;

    if (!accept(Tok::kKwThen)) {
      // One-line if.
      IfBranch branch;
      branch.cond = std::move(cond.value());
      auto inner = parse_inline_stmt(prog);
      if (!inner.is_ok()) return inner.status();
      branch.body.push_back(std::move(inner.value()));
      stmt->branches.push_back(std::move(branch));
      if (Status s = end_of_stmt(); !s.is_ok()) return s;
      return StmtPtr(std::move(stmt));
    }

    if (Status s = end_of_stmt(); !s.is_ok()) return s;
    IfBranch first;
    first.cond = std::move(cond.value());
    auto body = parse_stmt_list(prog);
    if (!body.is_ok()) return body.status();
    first.body = std::move(body.value());
    stmt->branches.push_back(std::move(first));

    while (at(Tok::kKwElseIf)) {
      advance();
      if (Status s = expect(Tok::kLParen, "after 'else if'"); !s.is_ok()) return s;
      auto c = parse_expr(prog);
      if (!c.is_ok()) return c.status();
      if (Status s = expect(Tok::kRParen, "after condition"); !s.is_ok()) return s;
      if (Status s = expect(Tok::kKwThen, "after 'else if (...)'"); !s.is_ok()) return s;
      if (Status s = end_of_stmt(); !s.is_ok()) return s;
      IfBranch branch;
      branch.cond = std::move(c.value());
      auto b = parse_stmt_list(prog);
      if (!b.is_ok()) return b.status();
      branch.body = std::move(b.value());
      stmt->branches.push_back(std::move(branch));
    }
    if (accept(Tok::kKwElse)) {
      if (Status s = end_of_stmt(); !s.is_ok()) return s;
      IfBranch branch;  // cond == null
      auto b = parse_stmt_list(prog);
      if (!b.is_ok()) return b.status();
      branch.body = std::move(b.value());
      stmt->branches.push_back(std::move(branch));
    }
    if (accept(Tok::kKwEndIf)) {
      // ok
    } else if (accept(Tok::kKwEnd)) {
      if (Status s = expect(Tok::kKwIf, "after 'end' closing if"); !s.is_ok()) return s;
    } else {
      return err("expected 'end if'");
    }
    if (Status s = end_of_stmt(); !s.is_ok()) return s;
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> parse_do(Program& prog) {
    auto stmt = std::make_unique<Stmt>();
    stmt->loc = peek().loc;
    stmt->id = prog.ids.next();
    advance();  // 'do'

    if (at_word("while") && peek(1).kind == Tok::kLParen) {
      advance();
      stmt->kind = StmtKind::kDoWhile;
      if (Status s = expect(Tok::kLParen, "after 'do while'"); !s.is_ok()) return s;
      auto cond = parse_expr(prog);
      if (!cond.is_ok()) return cond.status();
      stmt->cond = std::move(cond.value());
      if (Status s = expect(Tok::kRParen, "after condition"); !s.is_ok()) return s;
    } else {
      stmt->kind = StmtKind::kDo;
      if (!at(Tok::kIdent)) return err("expected loop variable after 'do'");
      stmt->do_var = advance().text;
      if (Status s = expect(Tok::kAssign, "after loop variable"); !s.is_ok()) return s;
      auto lo = parse_expr(prog);
      if (!lo.is_ok()) return lo.status();
      stmt->lo = std::move(lo.value());
      if (Status s = expect(Tok::kComma, "after loop lower bound"); !s.is_ok()) return s;
      auto hi = parse_expr(prog);
      if (!hi.is_ok()) return hi.status();
      stmt->hi = std::move(hi.value());
      if (accept(Tok::kComma)) {
        auto step = parse_expr(prog);
        if (!step.is_ok()) return step.status();
        stmt->step = std::move(step.value());
      }
    }
    if (Status s = end_of_stmt(); !s.is_ok()) return s;

    auto body = parse_stmt_list(prog);
    if (!body.is_ok()) return body.status();
    stmt->body = std::move(body.value());

    if (accept(Tok::kKwEndDo)) {
      // ok
    } else if (accept(Tok::kKwEnd)) {
      if (Status s = expect(Tok::kKwDo, "after 'end' closing do"); !s.is_ok()) return s;
    } else {
      return err("expected 'end do'");
    }
    if (Status s = end_of_stmt(); !s.is_ok()) return s;
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> parse_call(Program& prog, bool consume_newline = true) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kCall;
    stmt->loc = peek().loc;
    stmt->id = prog.ids.next();
    advance();  // 'call'
    if (!at(Tok::kIdent)) return err("expected procedure name after 'call'");
    stmt->callee = advance().text;
    if (accept(Tok::kLParen)) {
      if (!accept(Tok::kRParen)) {
        do {
          auto a = parse_expr(prog);
          if (!a.is_ok()) return a.status();
          stmt->args.push_back(std::move(a.value()));
        } while (accept(Tok::kComma));
        if (Status s = expect(Tok::kRParen, "after call arguments"); !s.is_ok()) return s;
      }
    }
    if (consume_newline) {
      if (Status s = end_of_stmt(); !s.is_ok()) return s;
    }
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> parse_simple_keyword(Program& prog, bool consume_newline = true) {
    auto stmt = std::make_unique<Stmt>();
    stmt->loc = peek().loc;
    stmt->id = prog.ids.next();
    switch (advance().kind) {
      case Tok::kKwExit: stmt->kind = StmtKind::kExit; break;
      case Tok::kKwCycle: stmt->kind = StmtKind::kCycle; break;
      case Tok::kKwReturn: stmt->kind = StmtKind::kReturn; break;
      default: return err("internal: not a simple keyword");
    }
    if (consume_newline) {
      if (Status s = end_of_stmt(); !s.is_ok()) return s;
    }
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> parse_print(Program& prog, bool consume_newline = true) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kPrint;
    stmt->loc = peek().loc;
    stmt->id = prog.ids.next();
    advance();  // 'print'
    if (Status s = expect(Tok::kStar, "after 'print'"); !s.is_ok()) return s;
    while (accept(Tok::kComma)) {
      if (at(Tok::kStringLit)) {
        stmt->print_text = advance().text;
        continue;
      }
      auto e = parse_expr(prog);
      if (!e.is_ok()) return e.status();
      stmt->print_args.push_back(std::move(e.value()));
    }
    if (consume_newline) {
      if (Status s = end_of_stmt(); !s.is_ok()) return s;
    }
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> parse_assignment(Program& prog, bool consume_newline = true) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kAssign;
    stmt->loc = peek().loc;
    stmt->id = prog.ids.next();
    auto lhs = parse_designator(prog);
    if (!lhs.is_ok()) return lhs.status();
    stmt->lhs = std::move(lhs.value());
    if (Status s = expect(Tok::kAssign, "in assignment"); !s.is_ok()) return s;
    auto rhs = parse_expr(prog);
    if (!rhs.is_ok()) return rhs.status();
    stmt->rhs = std::move(rhs.value());
    if (consume_newline) {
      if (Status s = end_of_stmt(); !s.is_ok()) return s;
    }
    return StmtPtr(std::move(stmt));
  }

  /// Variable or array element on the left-hand side.
  StatusOr<ExprPtr> parse_designator(Program& prog) {
    if (!at(Tok::kIdent)) return err("expected variable name");
    auto e = std::make_unique<Expr>();
    e->loc = peek().loc;
    e->id = prog.ids.next();
    e->name = advance().text;
    if (accept(Tok::kLParen)) {
      e->kind = ExprKind::kIndex;
      do {
        auto idx = parse_expr(prog);
        if (!idx.is_ok()) return idx.status();
        e->args.push_back(std::move(idx.value()));
      } while (accept(Tok::kComma));
      if (Status s = expect(Tok::kRParen, "after subscripts"); !s.is_ok()) return s;
    } else {
      e->kind = ExprKind::kVarRef;
    }
    return ExprPtr(std::move(e));
  }

  // ---- expressions ----------------------------------------------------------
  //
  // Precedence (loosest to tightest):
  //   .eqv./.neqv. < .or. < .and. < .not. < comparisons < +,- < *,/ <
  //   unary +,- < ** (right-assoc) < primary

  StatusOr<ExprPtr> parse_expr(Program& prog) { return parse_expr(prog.ids); }

  StatusOr<ExprPtr> parse_expr(NodeIdGen& ids) { return parse_equiv(ids); }

  StatusOr<ExprPtr> parse_equiv(NodeIdGen& ids) {
    auto lhs = parse_or(ids);
    if (!lhs.is_ok()) return lhs;
    while (at(Tok::kEqv) || at(Tok::kNeqv)) {
      const BinaryOp op = at(Tok::kEqv) ? BinaryOp::kEqv : BinaryOp::kNeqv;
      const SourceLoc loc = advance().loc;
      auto rhs = parse_or(ids);
      if (!rhs.is_ok()) return rhs;
      lhs = combine(ids, op, std::move(lhs.value()), std::move(rhs.value()), loc);
    }
    return lhs;
  }

  StatusOr<ExprPtr> parse_or(NodeIdGen& ids) {
    auto lhs = parse_and(ids);
    if (!lhs.is_ok()) return lhs;
    while (at(Tok::kOr)) {
      const SourceLoc loc = advance().loc;
      auto rhs = parse_and(ids);
      if (!rhs.is_ok()) return rhs;
      lhs = combine(ids, BinaryOp::kOr, std::move(lhs.value()), std::move(rhs.value()), loc);
    }
    return lhs;
  }

  StatusOr<ExprPtr> parse_and(NodeIdGen& ids) {
    auto lhs = parse_not(ids);
    if (!lhs.is_ok()) return lhs;
    while (at(Tok::kAnd)) {
      const SourceLoc loc = advance().loc;
      auto rhs = parse_not(ids);
      if (!rhs.is_ok()) return rhs;
      lhs = combine(ids, BinaryOp::kAnd, std::move(lhs.value()), std::move(rhs.value()), loc);
    }
    return lhs;
  }

  StatusOr<ExprPtr> parse_not(NodeIdGen& ids) {
    if (at(Tok::kNot)) {
      const SourceLoc loc = advance().loc;
      auto operand = parse_not(ids);
      if (!operand.is_ok()) return operand;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_op = UnaryOp::kNot;
      e->lhs = std::move(operand.value());
      e->loc = loc;
      e->id = ids.next();
      return ExprPtr(std::move(e));
    }
    return parse_comparison(ids);
  }

  StatusOr<ExprPtr> parse_comparison(NodeIdGen& ids) {
    auto lhs = parse_additive(ids);
    if (!lhs.is_ok()) return lhs;
    BinaryOp op;
    switch (peek().kind) {
      case Tok::kEq: op = BinaryOp::kEq; break;
      case Tok::kNe: op = BinaryOp::kNe; break;
      case Tok::kLt: op = BinaryOp::kLt; break;
      case Tok::kLe: op = BinaryOp::kLe; break;
      case Tok::kGt: op = BinaryOp::kGt; break;
      case Tok::kGe: op = BinaryOp::kGe; break;
      default: return lhs;
    }
    const SourceLoc loc = advance().loc;
    auto rhs = parse_additive(ids);
    if (!rhs.is_ok()) return rhs;
    return combine(ids, op, std::move(lhs.value()), std::move(rhs.value()), loc);
  }

  StatusOr<ExprPtr> parse_additive(NodeIdGen& ids) {
    auto lhs = parse_multiplicative(ids);
    if (!lhs.is_ok()) return lhs;
    while (at(Tok::kPlus) || at(Tok::kMinus)) {
      const BinaryOp op = at(Tok::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
      const SourceLoc loc = advance().loc;
      auto rhs = parse_multiplicative(ids);
      if (!rhs.is_ok()) return rhs;
      lhs = combine(ids, op, std::move(lhs.value()), std::move(rhs.value()), loc);
    }
    return lhs;
  }

  StatusOr<ExprPtr> parse_multiplicative(NodeIdGen& ids) {
    auto lhs = parse_unary(ids);
    if (!lhs.is_ok()) return lhs;
    while (at(Tok::kStar) || at(Tok::kSlash)) {
      const BinaryOp op = at(Tok::kStar) ? BinaryOp::kMul : BinaryOp::kDiv;
      const SourceLoc loc = advance().loc;
      auto rhs = parse_unary(ids);
      if (!rhs.is_ok()) return rhs;
      lhs = combine(ids, op, std::move(lhs.value()), std::move(rhs.value()), loc);
    }
    return lhs;
  }

  StatusOr<ExprPtr> parse_unary(NodeIdGen& ids) {
    if (at(Tok::kMinus) || at(Tok::kPlus)) {
      const UnaryOp op = at(Tok::kMinus) ? UnaryOp::kNeg : UnaryOp::kPlus;
      const SourceLoc loc = advance().loc;
      auto operand = parse_unary(ids);
      if (!operand.is_ok()) return operand;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_op = op;
      e->lhs = std::move(operand.value());
      e->loc = loc;
      e->id = ids.next();
      return ExprPtr(std::move(e));
    }
    return parse_power(ids);
  }

  StatusOr<ExprPtr> parse_power(NodeIdGen& ids) {
    auto lhs = parse_primary(ids);
    if (!lhs.is_ok()) return lhs;
    if (at(Tok::kPower)) {
      const SourceLoc loc = advance().loc;
      // Right-associative; exponent may itself carry unary minus.
      auto rhs = parse_unary(ids);
      if (!rhs.is_ok()) return rhs;
      return combine(ids, BinaryOp::kPow, std::move(lhs.value()), std::move(rhs.value()), loc);
    }
    return lhs;
  }

  StatusOr<ExprPtr> parse_primary(NodeIdGen& ids) {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::kIntLit: {
        advance();
        auto e = make_int_lit(t.int_value, t.loc);
        e->id = ids.next();
        return e;
      }
      case Tok::kRealLit: {
        advance();
        auto e = make_real_lit(t.real_value, t.real_kind, t.loc);
        e->id = ids.next();
        return e;
      }
      case Tok::kLogicalLit: {
        advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kLogicalLit;
        e->logical_value = t.logical_value;
        e->loc = t.loc;
        e->id = ids.next();
        return ExprPtr(std::move(e));
      }
      case Tok::kLParen: {
        advance();
        auto inner = parse_expr(ids);
        if (!inner.is_ok()) return inner;
        if (Status s = expect(Tok::kRParen, "after parenthesized expression"); !s.is_ok()) {
          return s;
        }
        return inner;
      }
      // `real(x, 8)` is a conversion intrinsic; the keyword doubles as the
      // call name in expression position.
      case Tok::kKwReal: {
        advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIndex;  // sema reclassifies as intrinsic call
        e->name = "real";
        e->loc = t.loc;
        e->id = ids.next();
        if (Status s = expect(Tok::kLParen, "after 'real' intrinsic"); !s.is_ok()) return s;
        do {
          auto a = parse_expr(ids);
          if (!a.is_ok()) return a;
          e->args.push_back(std::move(a.value()));
        } while (accept(Tok::kComma));
        if (Status s = expect(Tok::kRParen, "after arguments"); !s.is_ok()) return s;
        return ExprPtr(std::move(e));
      }
      case Tok::kIdent: {
        advance();
        auto e = std::make_unique<Expr>();
        e->name = t.text;
        e->loc = t.loc;
        e->id = ids.next();
        if (accept(Tok::kLParen)) {
          e->kind = ExprKind::kIndex;  // array ref or call; sema decides
          if (!accept(Tok::kRParen)) {
            do {
              auto a = parse_expr(ids);
              if (!a.is_ok()) return a;
              e->args.push_back(std::move(a.value()));
            } while (accept(Tok::kComma));
            if (Status s = expect(Tok::kRParen, "after arguments/subscripts"); !s.is_ok()) {
              return s;
            }
          }
        } else {
          e->kind = ExprKind::kVarRef;
        }
        return ExprPtr(std::move(e));
      }
      default:
        return err(std::string("unexpected ") + token_name(t.kind) + " in expression");
    }
  }

  StatusOr<ExprPtr> combine(NodeIdGen& ids, BinaryOp op, ExprPtr lhs, ExprPtr rhs,
                            SourceLoc loc) {
    auto e = make_binary(op, std::move(lhs), std::move(rhs));
    e->loc = loc;
    e->id = ids.next();
    return ExprPtr(std::move(e));
  }

  const std::vector<Token>& tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<Program> parse(const TokenStream& tokens) {
  if (tokens.tokens.empty()) {
    return Status(StatusCode::kParseError, "empty token stream");
  }
  return Parser(tokens).run();
}

StatusOr<Program> parse_source(std::string_view source, std::string file_name) {
  auto toks = lex(source, std::move(file_name));
  if (!toks.is_ok()) return toks.status();
  return parse(toks.value());
}

}  // namespace prose::ftn
