// Taint-based program reduction (§III-C).
//
// The paper's key insight for coping with ROSE's partial Fortran support:
// the transformation only needs the subset of the program containing
//   (1) the statements declaring target variables,
//   (2) the statements passing target variables as arguments to calls,
//   (3) statements defining symbols referenced in (1), (2), recursively (3),
//   (4) the imports required to make those symbols visible, and
//   (5) the enclosing program structures (modules, procedures).
// Applying taint propagation until a fixed point yields a reduced program
// that still parses, resolves, and can be transformed; the kind edits and
// wrapper insertions computed on it replay onto the full program by NodeId.
//
// Our pipeline does not *need* reduction (the whole frontend is ours), but we
// implement it faithfully: it is part of the paper's tool contribution, it is
// exercised end-to-end in tests, and the campaign driver can run with it
// enabled to mirror the paper's T0 preprocessing step.
#pragma once

#include <set>
#include <vector>

#include "ftn/ast.h"
#include "ftn/sema.h"

namespace prose::ftn {

struct ReductionStats {
  std::size_t total_statements = 0;
  std::size_t kept_statements = 0;
  std::size_t total_procedures = 0;
  std::size_t kept_procedures = 0;
  std::size_t total_decls = 0;
  std::size_t kept_decls = 0;
  std::size_t taint_iterations = 0;

  [[nodiscard]] double statement_fraction() const {
    return total_statements == 0
               ? 0.0
               : static_cast<double>(kept_statements) / static_cast<double>(total_statements);
  }
};

struct ReducedProgram {
  Program program;       // the reduced clone (NodeIds preserved)
  ReductionStats stats;
};

/// Reduces `rp.program` to the subset needed to transform the declarations in
/// `targets` (DeclEntity NodeIds of real variables). The result is guaranteed
/// to re-resolve; resolve failure indicates a reducer bug and is returned as
/// an internal error.
StatusOr<ReducedProgram> reduce_for_targets(const ResolvedProgram& rp,
                                            const std::set<NodeId>& targets);

}  // namespace prose::ftn
