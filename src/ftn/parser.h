// Recursive-descent parser for the Fortran subset.
//
// Produces an unresolved Program AST (names only); run sema::resolve() to
// bind symbols, fold parameter constants, and type-check before analysis,
// transformation, or compilation.
#pragma once

#include <string_view>

#include "ftn/ast.h"
#include "ftn/token.h"
#include "support/status.h"

namespace prose::ftn {

/// Parses one or more modules from a token stream.
StatusOr<Program> parse(const TokenStream& tokens);

/// Convenience: lex + parse.
StatusOr<Program> parse_source(std::string_view source,
                               std::string file_name = "<memory>");

}  // namespace prose::ftn
