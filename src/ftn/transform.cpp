#include "ftn/transform.h"

#include <algorithm>
#include <set>

#include "ftn/callgraph.h"
#include "ftn/paramflow.h"

namespace prose::ftn {
namespace {

Status transform_err(std::string message) {
  return Status(StatusCode::kTransformError, std::move(message));
}

/// Walks every DeclEntity in the program.
template <typename Fn>
void for_each_decl(Program& prog, Fn&& fn) {
  for (auto& mod : prog.modules) {
    for (auto& d : mod.decls) fn(d);
    for (auto& proc : mod.procedures) {
      for (auto& d : proc.decls) fn(d);
    }
  }
}

/// Mutable lookup of a call stmt/expr by NodeId, returning pointers to the
/// name/symbol fields that must be retargeted.
struct CallRef {
  std::string* name = nullptr;
  SymbolId* symbol = nullptr;
};

void find_call_in_expr(Expr& e, NodeId node, CallRef& out) {
  if (out.name != nullptr) return;
  if (e.id == node && e.kind == ExprKind::kCall) {
    out.name = &e.name;
    out.symbol = &e.symbol;
    return;
  }
  for (auto& a : e.args) {
    if (a) find_call_in_expr(*a, node, out);
  }
  if (e.lhs) find_call_in_expr(*e.lhs, node, out);
  if (e.rhs) find_call_in_expr(*e.rhs, node, out);
}

void find_call_in_stmt(Stmt& s, NodeId node, CallRef& out) {
  if (out.name != nullptr) return;
  if (s.id == node && s.kind == StmtKind::kCall) {
    out.name = &s.callee;
    out.symbol = &s.callee_symbol;
    return;
  }
  for (ExprPtr* e : {&s.lhs, &s.rhs, &s.lo, &s.hi, &s.step, &s.cond}) {
    if (*e) find_call_in_expr(**e, node, out);
  }
  for (auto& a : s.args) find_call_in_expr(*a, node, out);
  for (auto& a : s.print_args) find_call_in_expr(*a, node, out);
  for (auto& b : s.branches) {
    if (b.cond) find_call_in_expr(*b.cond, node, out);
    for (auto& inner : b.body) find_call_in_stmt(*inner, node, out);
  }
  for (auto& inner : s.body) find_call_in_stmt(*inner, node, out);
}

CallRef find_call(Program& prog, SymbolId caller, NodeId node, const SymbolTable& symbols) {
  CallRef out;
  const Symbol& caller_sym = symbols.get(caller);
  Module* mod = prog.find_module(caller_sym.module_name);
  PROSE_CHECK(mod != nullptr);
  Procedure* proc = mod->find_procedure(caller_sym.name);
  PROSE_CHECK(proc != nullptr);
  for (auto& s : proc->body) {
    find_call_in_stmt(*s, node, out);
    if (out.name != nullptr) break;
  }
  return out;
}

/// The wrapper's signature pattern: one char per argument — '4'/'8' for the
/// actual real kind, 'x' for non-real arguments.
std::string signature_pattern(const SymbolTable& symbols, const Symbol& callee,
                              const std::vector<int>& actual_kinds) {
  std::string pattern;
  for (std::size_t i = 0; i < callee.params.size(); ++i) {
    const Symbol& dummy = symbols.get(callee.params[i]);
    if (!dummy.type.is_real()) {
      pattern += 'x';
    } else {
      pattern += actual_kinds[i] == 4 ? '4' : '8';
    }
  }
  return pattern;
}

/// Builds `size(<array>, dim)` (or `size(<array>)` for rank 1).
ExprPtr make_size_expr(Program& prog, const std::string& array_name, int rank, int dim) {
  auto call = std::make_unique<Expr>();
  call->kind = ExprKind::kIndex;  // sema reclassifies to intrinsic call
  call->name = "size";
  call->id = prog.ids.next();
  call->args.push_back(make_var_ref(array_name));
  call->args.back()->id = prog.ids.next();
  if (rank > 1) {
    call->args.push_back(make_int_lit(dim));
    call->args.back()->id = prog.ids.next();
  }
  return call;
}

StmtPtr make_assign(Program& prog, const std::string& lhs, const std::string& rhs) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kAssign;
  s->id = prog.ids.next();
  s->lhs = make_var_ref(lhs);
  s->lhs->id = prog.ids.next();
  s->rhs = make_var_ref(rhs);
  s->rhs->id = prog.ids.next();
  return s;
}

/// Synthesizes the wrapper procedure for `callee` with the given actual-kind
/// pattern and appends it to the callee's module.
StatusOr<std::string> synthesize_wrapper(Program& prog, const SymbolTable& symbols,
                                         SymbolId callee_id,
                                         const std::vector<int>& actual_kinds,
                                         WrapperReport* report) {
  const Symbol& callee = symbols.get(callee_id);
  const std::string pattern = signature_pattern(symbols, callee, actual_kinds);
  std::string wrapper_name = callee.name + "_wrap_" + pattern;

  Module* mod = prog.find_module(callee.module_name);
  PROSE_CHECK(mod != nullptr);
  // Reuse an existing wrapper only if its dummy kinds still realize the
  // required pattern — a previously generated wrapper may itself have been
  // retyped (its declarations are ordinary declarations), in which case the
  // name no longer guarantees the signature and a fresh name is needed.
  for (int attempt = 0; attempt < 16; ++attempt) {
    const Procedure* existing = mod->find_procedure(wrapper_name);
    if (existing == nullptr) break;
    bool signature_matches = existing->param_names.size() == callee.params.size();
    if (signature_matches) {
      for (std::size_t i = 0; i < existing->param_names.size(); ++i) {
        const DeclEntity* d = existing->find_decl(existing->param_names[i]);
        if (d == nullptr) {
          signature_matches = false;
          break;
        }
        if (d->type.is_real() && d->type.kind != actual_kinds[i]) {
          signature_matches = false;
          break;
        }
      }
    }
    if (signature_matches) return wrapper_name;
    wrapper_name += "x";  // uniquify and retry
  }
  if (mod->find_procedure(wrapper_name) != nullptr) {
    return Status(StatusCode::kTransformError,
                  "could not find a fresh wrapper name for " + callee.qualified());
  }
  const Procedure* original = mod->find_procedure(callee.name);
  PROSE_CHECK(original != nullptr);

  Procedure w;
  w.id = prog.ids.next();
  w.name = wrapper_name;
  w.kind = callee.proc_kind;
  w.generated = true;
  w.loc = original->loc;

  std::vector<StmtPtr> copy_in;
  std::vector<StmtPtr> copy_out;
  std::vector<ExprPtr> inner_args;

  for (std::size_t i = 0; i < callee.params.size(); ++i) {
    const Symbol& dummy = symbols.get(callee.params[i]);
    const std::string arg_name = "a" + std::to_string(i + 1);
    w.param_names.push_back(arg_name);

    // The wrapper's dummy: same shape/intent as the original dummy, but with
    // the *actual* kind so the call site binds without conversion.
    DeclEntity arg_decl;
    arg_decl.id = prog.ids.next();
    arg_decl.name = arg_name;
    arg_decl.type = dummy.type;
    if (dummy.type.is_real()) arg_decl.type.kind = actual_kinds[i];
    arg_decl.intent = dummy.intent;
    for (int r = 0; r < dummy.rank(); ++r) {
      arg_decl.dims.push_back(DimSpec{});  // assumed shape
    }
    arg_decl.loc = original->loc;
    w.decls.push_back(std::move(arg_decl));

    const bool mismatch = dummy.type.is_real() && actual_kinds[i] != dummy.type.kind;
    if (!mismatch) {
      auto ref = make_var_ref(arg_name);
      ref->id = prog.ids.next();
      inner_args.push_back(std::move(ref));
      continue;
    }

    // Mismatched argument: temporary with the original dummy's kind.
    const std::string tmp_name = arg_name + "_tmp";
    DeclEntity tmp_decl;
    tmp_decl.id = prog.ids.next();
    tmp_decl.name = tmp_name;
    tmp_decl.type = dummy.type;
    for (int r = 0; r < dummy.rank(); ++r) {
      DimSpec dim;
      dim.extent = make_size_expr(prog, arg_name, dummy.rank(), r + 1);
      tmp_decl.dims.push_back(std::move(dim));
    }
    tmp_decl.loc = original->loc;
    w.decls.push_back(std::move(tmp_decl));

    if (report != nullptr) {
      if (dummy.is_array()) {
        ++report->array_args_wrapped;
      } else {
        ++report->scalar_args_wrapped;
      }
    }

    // Copy-in unless the callee never reads the argument.
    if (dummy.intent != Intent::kOut) {
      copy_in.push_back(make_assign(prog, tmp_name, arg_name));
    }
    // Copy-out unless the callee never writes the argument.
    if (dummy.intent != Intent::kIn) {
      copy_out.push_back(make_assign(prog, arg_name, tmp_name));
    }
    auto ref = make_var_ref(tmp_name);
    ref->id = prog.ids.next();
    inner_args.push_back(std::move(ref));
  }

  // Result handling for function wrappers.
  StmtPtr inner_call;
  if (callee.proc_kind == ProcKind::kFunction) {
    const Symbol& result = symbols.get(callee.result);
    w.result_name = "wres";
    DeclEntity res_decl;
    res_decl.id = prog.ids.next();
    res_decl.name = "wres";
    res_decl.type = result.type;
    res_decl.loc = original->loc;
    w.decls.push_back(std::move(res_decl));

    auto call_expr = std::make_unique<Expr>();
    call_expr->kind = ExprKind::kIndex;  // resolves to the callee function
    call_expr->name = callee.name;
    call_expr->id = prog.ids.next();
    call_expr->args = std::move(inner_args);

    auto assign = std::make_unique<Stmt>();
    assign->kind = StmtKind::kAssign;
    assign->id = prog.ids.next();
    assign->lhs = make_var_ref("wres");
    assign->lhs->id = prog.ids.next();
    assign->rhs = std::move(call_expr);
    inner_call = std::move(assign);
  } else {
    auto call = std::make_unique<Stmt>();
    call->kind = StmtKind::kCall;
    call->id = prog.ids.next();
    call->callee = callee.name;
    call->args = std::move(inner_args);
    inner_call = std::move(call);
  }

  for (auto& s : copy_in) w.body.push_back(std::move(s));
  w.body.push_back(std::move(inner_call));
  for (auto& s : copy_out) w.body.push_back(std::move(s));

  mod->procedures.push_back(std::move(w));

  // Make the wrapper visible wherever the callee was imported via an
  // only-list.
  for (auto& m : prog.modules) {
    for (auto& use : m.uses) {
      if (use.module_name != callee.module_name || use.only.empty()) continue;
      if (std::find(use.only.begin(), use.only.end(), callee.name) != use.only.end() &&
          std::find(use.only.begin(), use.only.end(), wrapper_name) == use.only.end()) {
        use.only.push_back(wrapper_name);
      }
    }
  }

  if (report != nullptr) {
    ++report->wrappers_generated;
    report->wrapper_names.push_back(callee.module_name + "::" + wrapper_name);
  }
  return wrapper_name;
}

}  // namespace

Status apply_assignment(Program& prog, const PrecisionAssignment& assignment) {
  std::map<NodeId, int> pending = assignment.kinds;
  Status failure = Status::ok();
  for_each_decl(prog, [&](DeclEntity& d) {
    const auto it = pending.find(d.id);
    if (it == pending.end()) return;
    if (!d.type.is_real()) {
      if (failure.is_ok()) {
        failure = transform_err("assignment targets non-real declaration '" + d.name + "'");
      }
      return;
    }
    if (it->second != 4 && it->second != 8) {
      if (failure.is_ok()) {
        failure = transform_err("unsupported kind for '" + d.name + "'");
      }
      return;
    }
    d.type.kind = it->second;
    pending.erase(it);
  });
  if (!failure.is_ok()) return failure;
  if (!pending.empty()) {
    return transform_err("assignment references " + std::to_string(pending.size()) +
                         " unknown declaration node(s)");
  }
  return Status::ok();
}

StatusOr<ResolvedProgram> generate_wrappers(Program prog, WrapperReport* report) {
  auto resolved = resolve(std::move(prog));
  if (!resolved.is_ok()) {
    return Status(StatusCode::kTransformError,
                  "variant does not resolve before wrapping: " +
                      resolved.status().to_string());
  }
  const CallGraph cg = CallGraph::build(resolved.value());
  const ParamFlowGraph pf = build_param_flow(resolved.value(), cg);

  // Group mismatched bindings by call site.
  std::map<NodeId, std::vector<const FlowEdge*>> by_site;
  for (const FlowEdge* e : pf.mismatched()) by_site[e->call_node].push_back(e);
  if (by_site.empty()) return resolved;  // invariant already holds

  Program edited = std::move(resolved.value().program);
  const SymbolTable& symbols = resolved.value().symbols;

  for (const auto& [node, edges] : by_site) {
    const SymbolId callee_id = edges.front()->callee;
    const Symbol& callee = symbols.get(callee_id);
    // Actual kinds for every parameter (matched ones keep the dummy kind).
    std::vector<int> actual_kinds(callee.params.size());
    for (std::size_t i = 0; i < callee.params.size(); ++i) {
      actual_kinds[i] = symbols.get(callee.params[i]).type.kind;
    }
    for (const FlowEdge* e : edges) actual_kinds[e->arg_index] = e->actual_kind;

    auto wrapper_name =
        synthesize_wrapper(edited, symbols, callee_id, actual_kinds, report);
    if (!wrapper_name.is_ok()) return wrapper_name.status();

    CallRef ref = find_call(edited, edges.front()->caller, node, symbols);
    if (ref.name == nullptr) {
      return transform_err("call site for wrapper retargeting not found");
    }
    *ref.name = wrapper_name.value();
    *ref.symbol = kInvalidSymbol;  // re-resolution will bind it
    if (report != nullptr) ++report->callsites_retargeted;
  }

  auto rewrapped = resolve(std::move(edited));
  if (!rewrapped.is_ok()) {
    return Status(StatusCode::kTransformError,
                  "wrapped variant does not resolve: " + rewrapped.status().to_string());
  }
  if (Status s = verify_call_kind_invariant(rewrapped.value()); !s.is_ok()) return s;
  return rewrapped;
}

StatusOr<ResolvedProgram> make_variant(const Program& pristine,
                                       const PrecisionAssignment& assignment,
                                       WrapperReport* report) {
  Program variant = pristine.clone();
  if (Status s = apply_assignment(variant, assignment); !s.is_ok()) return s;
  return generate_wrappers(std::move(variant), report);
}

Status verify_call_kind_invariant(const ResolvedProgram& rp) {
  const CallGraph cg = CallGraph::build(rp);
  const ParamFlowGraph pf = build_param_flow(rp, cg);
  for (const FlowEdge* e : pf.mismatched()) {
    const Symbol& callee = rp.symbols.get(e->callee);
    return transform_err("mismatched real kinds at call to '" + callee.qualified() +
                         "' argument " + std::to_string(e->arg_index + 1) + " (actual kind " +
                         std::to_string(e->actual_kind) + ", dummy kind " +
                         std::to_string(e->dummy_kind) + ")");
  }
  return Status::ok();
}

}  // namespace prose::ftn
