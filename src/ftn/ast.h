// Typed AST for the Fortran subset.
//
// Design notes:
//   * Every declaration entity, statement, and call expression carries a
//     stable NodeId. Precision-tuning transformations are expressed as *edit
//     plans* keyed by NodeId (see transform.h), so a plan computed on a
//     taint-reduced copy of the program can be replayed onto the full
//     program — this mirrors the paper's reduce → transform (via ROSE) →
//     reinsert pipeline (§III-C).
//   * NodeIds are preserved by clone(), which is how variant generation works
//     without mutating the pristine parse.
//   * Names are stored canonically lower-cased; resolution (sema.h) annotates
//     references with SymbolIds.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/source_location.h"
#include "support/status.h"

namespace prose::ftn {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0;

using SymbolId = std::uint32_t;
inline constexpr SymbolId kInvalidSymbol = 0;

/// Allocates NodeIds for one Program. Cloned trees share the counter's
/// past allocations (ids are preserved), new nodes get fresh ids.
class NodeIdGen {
 public:
  NodeId next() { return ++last_; }
  [[nodiscard]] NodeId last() const { return last_; }
  void ensure_above(NodeId id) {
    if (id > last_) last_ = id;
  }

 private:
  NodeId last_ = kInvalidNode;
};

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

enum class BaseType : std::uint8_t { kReal, kInteger, kLogical };

/// Scalar type with Fortran `kind`. Reals are kind 4 or 8; integers and
/// logicals are always kind 4 in the subset.
struct ScalarType {
  BaseType base = BaseType::kReal;
  int kind = 8;

  [[nodiscard]] bool is_real() const { return base == BaseType::kReal; }
  [[nodiscard]] bool is_fp32() const { return is_real() && kind == 4; }
  [[nodiscard]] bool is_fp64() const { return is_real() && kind == 8; }
  friend bool operator==(const ScalarType&, const ScalarType&) = default;
};

std::string to_string(const ScalarType& t);

/// One array dimension: either an explicit extent expression (constant after
/// resolution) or assumed shape `:` for dummy arguments.
struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct DimSpec {
  ExprPtr extent;            // null => assumed shape (":")
  std::int64_t resolved = -1;  // filled by sema for explicit shapes

  [[nodiscard]] bool assumed() const { return extent == nullptr; }
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  kIntLit,
  kRealLit,
  kLogicalLit,
  kVarRef,    // scalar variable or whole-array reference
  kIndex,     // a(i) / a(i,j) — also the syntax of a call; sema disambiguates
  kCall,      // f(args) once sema has established f is a procedure/intrinsic
  kUnary,
  kBinary,
};

enum class UnaryOp : std::uint8_t { kNeg, kPlus, kNot };
enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kPow,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kEqv, kNeqv,
};

const char* to_string(BinaryOp op);
const char* to_string(UnaryOp op);
[[nodiscard]] bool is_comparison(BinaryOp op);
[[nodiscard]] bool is_logical(BinaryOp op);

struct Expr {
  ExprKind kind;
  NodeId id = kInvalidNode;
  SourceLoc loc;

  // Literals.
  std::int64_t int_value = 0;
  double real_value = 0.0;
  int real_kind = 4;
  bool logical_value = false;

  // VarRef / Index / Call.
  std::string name;               // canonical lower case
  SymbolId symbol = kInvalidSymbol;  // resolved variable or procedure
  std::vector<ExprPtr> args;      // index expressions or call arguments

  // Unary / Binary.
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  ExprPtr lhs;  // also the sole operand of unary
  ExprPtr rhs;

  // Filled by sema: result type of this expression (scalar subset: array
  // refs are elemental through indexing; whole-array exprs only appear as
  // intrinsic args).
  ScalarType type;
  /// True for whole-array value positions (e.g. the argument of sum()).
  bool is_array_value = false;

  [[nodiscard]] ExprPtr clone() const;
};

ExprPtr make_int_lit(std::int64_t v, SourceLoc loc = {});
ExprPtr make_real_lit(double v, int kind, SourceLoc loc = {});
ExprPtr make_var_ref(std::string name, SourceLoc loc = {});
ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  kAssign,
  kIf,
  kDo,
  kDoWhile,
  kCall,
  kExit,
  kCycle,
  kReturn,
  kPrint,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct IfBranch {
  ExprPtr cond;  // null for the final `else`
  std::vector<StmtPtr> body;
};

struct Stmt {
  StmtKind kind;
  NodeId id = kInvalidNode;
  SourceLoc loc;

  // kAssign: lhs is a VarRef or Index expression.
  ExprPtr lhs;
  ExprPtr rhs;

  // kIf.
  std::vector<IfBranch> branches;

  // kDo: `do var = lo, hi [, step]`.
  std::string do_var;
  SymbolId do_symbol = kInvalidSymbol;
  ExprPtr lo;
  ExprPtr hi;
  ExprPtr step;  // null => 1
  std::vector<StmtPtr> body;

  // kDoWhile.
  ExprPtr cond;

  // kCall.
  std::string callee;             // canonical lower case
  SymbolId callee_symbol = kInvalidSymbol;
  std::vector<ExprPtr> args;

  // kPrint.
  std::vector<ExprPtr> print_args;
  std::string print_text;  // leading string literal, if any

  [[nodiscard]] StmtPtr clone() const;
};

// ---------------------------------------------------------------------------
// Declarations and program structure
// ---------------------------------------------------------------------------

enum class Intent : std::uint8_t { kNone, kIn, kOut, kInOut };

/// One declared entity, e.g. the `t1(10)` in `real(kind=8) :: s, t1(10)`.
/// This is the paper's search atom when the type is real (§III-A).
struct DeclEntity {
  NodeId id = kInvalidNode;
  std::string name;
  ScalarType type;
  std::vector<DimSpec> dims;  // empty => scalar
  Intent intent = Intent::kNone;
  bool is_parameter = false;
  ExprPtr init;  // parameter value or variable initializer
  SourceLoc loc;
  SymbolId symbol = kInvalidSymbol;

  [[nodiscard]] bool is_array() const { return !dims.empty(); }
  [[nodiscard]] DeclEntity clone() const;
};

enum class ProcKind : std::uint8_t { kSubroutine, kFunction };

struct Procedure {
  NodeId id = kInvalidNode;
  std::string name;
  ProcKind kind = ProcKind::kSubroutine;
  std::vector<std::string> param_names;  // dummy argument order
  std::string result_name;               // functions only
  std::vector<DeclEntity> decls;         // params, result, and locals
  std::vector<StmtPtr> body;
  SourceLoc loc;
  SymbolId symbol = kInvalidSymbol;
  bool generated = false;  // true for tool-generated wrappers

  [[nodiscard]] const DeclEntity* find_decl(const std::string& name) const;
  [[nodiscard]] DeclEntity* find_decl(const std::string& name);
  [[nodiscard]] Procedure clone() const;
};

struct UseStmt {
  std::string module_name;
  std::vector<std::string> only;  // empty => import all public names
  SourceLoc loc;
};

struct Module {
  NodeId id = kInvalidNode;
  std::string name;
  std::vector<UseStmt> uses;
  std::vector<DeclEntity> decls;  // module variables and parameters
  std::vector<Procedure> procedures;
  SourceLoc loc;

  [[nodiscard]] const Procedure* find_procedure(const std::string& name) const;
  [[nodiscard]] Procedure* find_procedure(const std::string& name);
  [[nodiscard]] Module clone() const;
};

/// A whole translation unit: one or more modules. (The subset has no
/// standalone `program` block; harness drivers call an entry procedure.)
struct Program {
  std::vector<Module> modules;
  NodeIdGen ids;

  [[nodiscard]] const Module* find_module(const std::string& name) const;
  [[nodiscard]] Module* find_module(const std::string& name);

  /// Deep copy preserving all NodeIds (the clone can then be edited).
  [[nodiscard]] Program clone() const;
};

/// Fully-qualified atom name "module::procedure::var" or "module::var".
std::string qualified_name(const Module& m, const Procedure* p, const DeclEntity& d);

}  // namespace prose::ftn
