#include "ftn/reduce.h"

#include <functional>
#include <map>

namespace prose::ftn {
namespace {

/// Collects every SymbolId referenced by an expression (variables, called
/// procedures; intrinsics have no symbol).
void collect_expr_symbols(const Expr& e, std::set<SymbolId>& out) {
  if (e.symbol != kInvalidSymbol) out.insert(e.symbol);
  for (const auto& a : e.args) {
    if (a) collect_expr_symbols(*a, out);
  }
  if (e.lhs) collect_expr_symbols(*e.lhs, out);
  if (e.rhs) collect_expr_symbols(*e.rhs, out);
}

/// Symbols referenced directly by a statement, excluding nested statements
/// (children are handled by their own entries).
std::set<SymbolId> stmt_own_symbols(const Stmt& s) {
  std::set<SymbolId> out;
  if (s.lhs) collect_expr_symbols(*s.lhs, out);
  if (s.rhs) collect_expr_symbols(*s.rhs, out);
  if (s.lo) collect_expr_symbols(*s.lo, out);
  if (s.hi) collect_expr_symbols(*s.hi, out);
  if (s.step) collect_expr_symbols(*s.step, out);
  if (s.cond) collect_expr_symbols(*s.cond, out);
  if (s.do_symbol != kInvalidSymbol) out.insert(s.do_symbol);
  if (s.callee_symbol != kInvalidSymbol) out.insert(s.callee_symbol);
  for (const auto& a : s.args) collect_expr_symbols(*a, out);
  for (const auto& a : s.print_args) collect_expr_symbols(*a, out);
  for (const auto& b : s.branches) {
    if (b.cond) collect_expr_symbols(*b.cond, out);
  }
  return out;
}

struct StmtInfo {
  const Stmt* stmt = nullptr;
  const Stmt* parent = nullptr;
  SymbolId proc = kInvalidSymbol;          // enclosing procedure
  std::set<SymbolId> refs;                 // symbols referenced (own, not children)
  std::set<SymbolId> defs;                 // symbols this statement may define
};

class Reducer {
 public:
  Reducer(const ResolvedProgram& rp, const std::set<NodeId>& targets)
      : rp_(rp), targets_(targets) {}

  StatusOr<ReducedProgram> run() {
    index_program();
    seed_taint();
    propagate();
    return build_reduced();
  }

 private:
  void index_stmt(const Stmt& s, const Stmt* parent, SymbolId proc) {
    StmtInfo info;
    info.stmt = &s;
    info.parent = parent;
    info.proc = proc;
    info.refs = stmt_own_symbols(s);
    // Definitions: assignment lhs; call args bound to writable dummies;
    // do-loop induction variable.
    if (s.kind == StmtKind::kAssign && s.lhs->symbol != kInvalidSymbol) {
      info.defs.insert(s.lhs->symbol);
    }
    if (s.kind == StmtKind::kDo && s.do_symbol != kInvalidSymbol) {
      info.defs.insert(s.do_symbol);
    }
    if (s.kind == StmtKind::kCall && s.callee_symbol != kInvalidSymbol) {
      const Symbol& callee = rp_.symbols.get(s.callee_symbol);
      for (std::size_t i = 0; i < s.args.size() && i < callee.params.size(); ++i) {
        const Symbol& dummy = rp_.symbols.get(callee.params[i]);
        if (dummy.intent != Intent::kIn && s.args[i]->symbol != kInvalidSymbol) {
          info.defs.insert(s.args[i]->symbol);
        }
      }
    }
    // Function calls with writable dummies also define their designator args.
    std::function<void(const Expr&)> scan_fn_calls = [&](const Expr& e) {
      if (e.kind == ExprKind::kCall && e.symbol != kInvalidSymbol) {
        const Symbol& callee = rp_.symbols.get(e.symbol);
        for (std::size_t i = 0; i < e.args.size() && i < callee.params.size(); ++i) {
          const Symbol& dummy = rp_.symbols.get(callee.params[i]);
          if (dummy.intent != Intent::kIn && e.args[i]->symbol != kInvalidSymbol) {
            info.defs.insert(e.args[i]->symbol);
          }
        }
      }
      for (const auto& a : e.args) {
        if (a) scan_fn_calls(*a);
      }
      if (e.lhs) scan_fn_calls(*e.lhs);
      if (e.rhs) scan_fn_calls(*e.rhs);
    };
    for (const ExprPtr* e : {&s.lhs, &s.rhs, &s.lo, &s.hi, &s.step, &s.cond}) {
      if (*e) scan_fn_calls(**e);
    }
    for (const auto& a : s.args) scan_fn_calls(*a);
    for (const auto& b : s.branches) {
      if (b.cond) scan_fn_calls(*b.cond);
    }

    stmts_[s.id] = std::move(info);
    for (const auto& b : s.branches) {
      for (const auto& inner : b.body) index_stmt(*inner, &s, proc);
    }
    for (const auto& inner : s.body) index_stmt(*inner, &s, proc);
  }

  void index_program() {
    for (const auto& mod : rp_.program.modules) {
      for (const auto& proc : mod.procedures) {
        for (const auto& s : proc.body) index_stmt(*s, nullptr, proc.symbol);
      }
    }
    // Map decl NodeId → SymbolId for target seeding, and SymbolId → decl.
    for (const auto& mod : rp_.program.modules) {
      for (const auto& d : mod.decls) decl_symbol_[d.id] = d.symbol;
      for (const auto& proc : mod.procedures) {
        for (const auto& d : proc.decls) decl_symbol_[d.id] = d.symbol;
      }
    }
  }

  void seed_taint() {
    for (const NodeId t : targets_) {
      const auto it = decl_symbol_.find(t);
      if (it != decl_symbol_.end()) referenced_.insert(it->second);
    }
    // Rule 2: statements passing target variables as call arguments.
    std::set<SymbolId> target_syms = referenced_;
    for (auto& [id, info] : stmts_) {
      const Stmt& s = *info.stmt;
      const auto arg_mentions_target = [&](const std::vector<ExprPtr>& args) {
        for (const auto& a : args) {
          std::set<SymbolId> syms;
          collect_expr_symbols(*a, syms);
          for (const SymbolId t : target_syms) {
            if (syms.contains(t)) return true;
          }
        }
        return false;
      };
      bool passes = false;
      if (s.kind == StmtKind::kCall) passes = arg_mentions_target(s.args);
      // Function calls inside any expression of the statement.
      std::function<void(const Expr&)> scan = [&](const Expr& e) {
        if (passes) return;
        if (e.kind == ExprKind::kCall && e.symbol != kInvalidSymbol) {
          if (arg_mentions_target(e.args)) passes = true;
        }
        for (const auto& a : e.args) {
          if (a) scan(*a);
        }
        if (e.lhs) scan(*e.lhs);
        if (e.rhs) scan(*e.rhs);
      };
      for (const ExprPtr* e : {&s.lhs, &s.rhs, &s.lo, &s.hi, &s.step, &s.cond}) {
        if (*e && !passes) scan(**e);
      }
      for (const auto& b : s.branches) {
        if (b.cond && !passes) scan(*b.cond);
      }
      if (passes) keep_stmt(id);
      // Statements *assigning to* targets are definitions of referenced
      // symbols and will be pulled in by rule 3 during propagation.
    }
  }

  void keep_stmt(NodeId id) {
    if (!kept_.insert(id).second) return;
    const StmtInfo& info = stmts_.at(id);
    dirty_ = true;
    for (const SymbolId sym : info.refs) reference_symbol(sym);
    // Enclosing control flow must be kept for the statement to remain valid.
    if (info.parent != nullptr) keep_stmt(info.parent->id);
    kept_procs_.insert(info.proc);
  }

  void reference_symbol(SymbolId id) {
    if (!referenced_.insert(id).second) return;
    dirty_ = true;
    const Symbol& sym = rp_.symbols.get(id);
    if (sym.kind == SymbolKind::kProcedure) {
      // Rule 3 applied to a procedure symbol: its definition is the whole
      // procedure, so keep its body.
      keep_whole_procedure(id);
    }
  }

  void keep_whole_procedure(SymbolId proc) {
    if (!kept_procs_.insert(proc).second) return;
    dirty_ = true;
    for (auto& [id, info] : stmts_) {
      if (info.proc == proc) keep_stmt(id);
    }
    // The procedure's own declarations (dummies, result, locals) are kept by
    // the decl-retention rule in build_reduced via referenced symbols; make
    // sure dummies/result are referenced so their decls survive.
    const Symbol& p = rp_.symbols.get(proc);
    for (const SymbolId d : p.params) reference_symbol(d);
    if (p.result != kInvalidSymbol) reference_symbol(p.result);
  }

  void propagate() {
    // Rule 3: keep statements defining referenced symbols; iterate to fixed
    // point (keeping a statement references more symbols, whose definitions
    // must then be kept, ...).
    stats_.taint_iterations = 0;
    do {
      dirty_ = false;
      ++stats_.taint_iterations;
      for (auto& [id, info] : stmts_) {
        if (kept_.contains(id)) continue;
        for (const SymbolId d : info.defs) {
          if (referenced_.contains(d)) {
            keep_stmt(id);
            break;
          }
        }
      }
    } while (dirty_);
  }

  /// Symbols needed by a kept declaration (extent and initializer exprs).
  void reference_decl_dependencies(const DeclEntity& d) {
    std::set<SymbolId> syms;
    for (const auto& dim : d.dims) {
      if (dim.extent) collect_expr_symbols(*dim.extent, syms);
    }
    if (d.init) collect_expr_symbols(*d.init, syms);
    for (const SymbolId s : syms) reference_symbol(s);
  }

  StatusOr<ReducedProgram> build_reduced() {
    // Declarations of referenced symbols must be kept; their extent
    // expressions may reference parameters, which must then be kept too.
    bool decl_dirty = true;
    while (decl_dirty) {
      decl_dirty = false;
      for (const auto& mod : rp_.program.modules) {
        for (const auto& d : mod.decls) {
          if (d.symbol != kInvalidSymbol && referenced_.contains(d.symbol) &&
              !decl_processed_.contains(d.id)) {
            decl_processed_.insert(d.id);
            reference_decl_dependencies(d);
            decl_dirty = true;
          }
        }
        for (const auto& proc : mod.procedures) {
          for (const auto& d : proc.decls) {
            if (d.symbol != kInvalidSymbol && referenced_.contains(d.symbol) &&
                !decl_processed_.contains(d.id)) {
              decl_processed_.insert(d.id);
              reference_decl_dependencies(d);
              decl_dirty = true;
            }
          }
        }
      }
      // Newly referenced symbols may require another taint round.
      propagate();
    }

    ReducedProgram out;
    Program& reduced = out.program;
    reduced.ids.ensure_above(rp_.program.ids.last());

    for (const auto& mod : rp_.program.modules) {
      Module rm;
      rm.id = mod.id;
      rm.name = mod.name;
      rm.loc = mod.loc;
      bool module_needed = false;

      for (const auto& d : mod.decls) {
        ++stats_.total_decls;
        if (d.symbol != kInvalidSymbol && referenced_.contains(d.symbol)) {
          rm.decls.push_back(d.clone());
          ++stats_.kept_decls;
          module_needed = true;
        }
      }
      for (const auto& proc : mod.procedures) {
        ++stats_.total_procedures;
        count_statements(proc);
        if (!kept_procs_.contains(proc.symbol)) continue;
        Procedure rp2;
        rp2.id = proc.id;
        rp2.name = proc.name;
        rp2.kind = proc.kind;
        rp2.param_names = proc.param_names;
        rp2.result_name = proc.result_name;
        rp2.loc = proc.loc;
        rp2.generated = proc.generated;
        for (const auto& d : proc.decls) {
          ++stats_.total_decls;
          // Dummies and results always survive (signature integrity); locals
          // survive if referenced.
          const bool is_signature =
              std::find(proc.param_names.begin(), proc.param_names.end(), d.name) !=
                  proc.param_names.end() ||
              (proc.kind == ProcKind::kFunction && d.name == proc.result_name);
          if (is_signature ||
              (d.symbol != kInvalidSymbol && referenced_.contains(d.symbol))) {
            rp2.decls.push_back(d.clone());
            ++stats_.kept_decls;
          }
        }
        for (const auto& s : proc.body) {
          if (StmtPtr kept = filter_stmt(*s)) rp2.body.push_back(std::move(kept));
        }
        rm.procedures.push_back(std::move(rp2));
        ++stats_.kept_procedures;
        module_needed = true;
      }

      if (!module_needed) continue;
      // Rule 4: keep the imports that supply referenced symbols.
      for (const auto& use : mod.uses) {
        UseStmt ru;
        ru.module_name = use.module_name;
        ru.loc = use.loc;
        if (use.only.empty()) {
          rm.uses.push_back(ru);
          continue;
        }
        for (const auto& name : use.only) {
          const auto sym = lookup_exported(use.module_name, name);
          if (sym.has_value() && referenced_.contains(*sym)) ru.only.push_back(name);
        }
        if (!ru.only.empty()) rm.uses.push_back(ru);
      }
      reduced.modules.push_back(std::move(rm));
    }

    out.stats = stats_;
    out.stats.kept_statements = kept_.size();

    // The reduced program must resolve — anything else is a reducer bug.
    auto check = resolve(reduced.clone());
    if (!check.is_ok()) {
      return Status(StatusCode::kTransformError,
                    "internal: reduced program does not resolve: " +
                        check.status().to_string());
    }
    return out;
  }

  std::optional<SymbolId> lookup_exported(const std::string& module_name,
                                          const std::string& name) const {
    // Direct member of the module (transitive re-export resolution is not
    // needed for only-lists in the subset's models).
    return rp_.symbols.find_qualified(module_name + "::" + name);
  }

  void count_statements(const Procedure& proc) {
    std::function<void(const Stmt&)> walk = [&](const Stmt& s) {
      ++stats_.total_statements;
      for (const auto& b : s.branches) {
        for (const auto& inner : b.body) walk(*inner);
      }
      for (const auto& inner : s.body) walk(*inner);
    };
    for (const auto& s : proc.body) walk(*s);
  }

  /// Clones a statement keeping only kept children; returns null for dropped
  /// statements.
  StmtPtr filter_stmt(const Stmt& s) {
    if (!kept_.contains(s.id)) return nullptr;
    StmtPtr out = s.clone();
    if (out->kind == StmtKind::kIf) {
      for (auto& b : out->branches) {
        std::vector<StmtPtr> body;
        for (auto& inner : b.body) {
          if (kept_.contains(inner->id)) {
            if (StmtPtr f = filter_stmt(*inner)) body.push_back(std::move(f));
          }
        }
        b.body = std::move(body);
      }
    }
    if (!out->body.empty()) {
      std::vector<StmtPtr> body;
      for (auto& inner : out->body) {
        if (kept_.contains(inner->id)) {
          if (StmtPtr f = filter_stmt(*inner)) body.push_back(std::move(f));
        }
      }
      out->body = std::move(body);
    }
    return out;
  }

  const ResolvedProgram& rp_;
  const std::set<NodeId>& targets_;
  std::map<NodeId, StmtInfo> stmts_;
  std::map<NodeId, SymbolId> decl_symbol_;
  std::set<NodeId> kept_;
  std::set<SymbolId> referenced_;
  std::set<SymbolId> kept_procs_;
  std::set<NodeId> decl_processed_;
  bool dirty_ = false;
  ReductionStats stats_;
};

}  // namespace

StatusOr<ReducedProgram> reduce_for_targets(const ResolvedProgram& rp,
                                            const std::set<NodeId>& targets) {
  return Reducer(rp, targets).run();
}

}  // namespace prose::ftn
