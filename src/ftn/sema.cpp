#include "ftn/sema.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "ftn/parser.h"

namespace prose::ftn {
namespace {

class Resolver {
 public:
  explicit Resolver(Program program) : prog_(std::move(program)) {}

  StatusOr<ResolvedProgram> run() {
    // Pass 1: module scopes — module variables/parameters and procedure
    // signatures (so forward calls within and across modules resolve).
    for (auto& mod : prog_.modules) {
      if (module_scopes_.contains(mod.name)) {
        return err(mod.loc, "duplicate module '" + mod.name + "'");
      }
      Scope scope;
      // Imports first so local declarations are checked against them.
      for (const auto& use : mod.uses) {
        if (Status s = import_module(use, scope); !s.is_ok()) return s;
      }
      for (auto& decl : mod.decls) {
        if (Status s = declare_data(mod.name, /*proc=*/"", SymbolKind::kModuleVar,
                                    decl, scope);
            !s.is_ok()) {
          return s;
        }
      }
      // Register all procedure symbols before processing any declarations so
      // procedures can call siblings defined later in the module.
      for (auto& proc : mod.procedures) {
        if (Status s = register_procedure(mod, proc, scope); !s.is_ok()) return s;
      }
      for (auto& proc : mod.procedures) {
        if (Status s = declare_procedure_decls(mod, proc, scope); !s.is_ok()) return s;
      }
      module_scopes_.emplace(mod.name, std::move(scope));
    }
    // Pass 2: procedure bodies.
    for (auto& mod : prog_.modules) {
      for (auto& proc : mod.procedures) {
        if (Status s = resolve_procedure(mod, proc); !s.is_ok()) return s;
      }
    }
    return ResolvedProgram{std::move(prog_), std::move(symbols_)};
  }

 private:
  struct Scope {
    std::map<std::string, SymbolId> names;

    [[nodiscard]] std::optional<SymbolId> find(const std::string& name) const {
      const auto it = names.find(name);
      if (it == names.end()) return std::nullopt;
      return it->second;
    }
  };

  static Status err(SourceLoc loc, std::string message) {
    return Status(StatusCode::kSemanticError, std::move(message), loc);
  }

  Status import_module(const UseStmt& use, Scope& into) {
    const auto it = module_scopes_.find(use.module_name);
    if (it == module_scopes_.end()) {
      return err(use.loc, "use of unknown (or not-yet-defined) module '" +
                              use.module_name + "'");
    }
    const Scope& exporter = it->second;
    if (use.only.empty()) {
      for (const auto& [name, id] : exporter.names) {
        // Re-exported imports propagate, matching Fortran's default access.
        into.names.emplace(name, id);
      }
      return Status::ok();
    }
    for (const auto& name : use.only) {
      const auto sym = exporter.find(name);
      if (!sym.has_value()) {
        return err(use.loc, "'" + name + "' is not exported by module '" +
                                use.module_name + "'");
      }
      into.names.emplace(name, *sym);
    }
    return Status::ok();
  }

  /// Folds a constant expression (parameter initializers, dim extents).
  StatusOr<ConstValue> fold_const(const Expr& e, const Scope& scope) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return ConstValue{.is_real = false, .int_value = e.int_value};
      case ExprKind::kRealLit: {
        ConstValue v;
        v.is_real = true;
        v.real_value =
            e.real_kind == 4 ? static_cast<double>(static_cast<float>(e.real_value))
                             : e.real_value;
        return v;
      }
      case ExprKind::kVarRef: {
        const auto sym = scope.find(e.name);
        if (!sym.has_value()) {
          return err(e.loc, "unknown name '" + e.name + "' in constant expression");
        }
        const Symbol& s = symbols_.get(*sym);
        if (!s.const_value.has_value()) {
          return err(e.loc, "'" + e.name + "' is not a constant parameter");
        }
        return *s.const_value;
      }
      case ExprKind::kUnary: {
        auto v = fold_const(*e.lhs, scope);
        if (!v.is_ok()) return v.status();
        ConstValue out = v.value();
        if (e.unary_op == UnaryOp::kNeg) {
          out.int_value = -out.int_value;
          out.real_value = -out.real_value;
        } else if (e.unary_op == UnaryOp::kNot) {
          return err(e.loc, "logical constants are not supported here");
        }
        return out;
      }
      case ExprKind::kBinary: {
        auto a = fold_const(*e.lhs, scope);
        if (!a.is_ok()) return a.status();
        auto b = fold_const(*e.rhs, scope);
        if (!b.is_ok()) return b.status();
        const ConstValue& x = a.value();
        const ConstValue& y = b.value();
        ConstValue out;
        out.is_real = x.is_real || y.is_real;
        if (out.is_real) {
          const double u = x.as_real();
          const double w = y.as_real();
          switch (e.binary_op) {
            case BinaryOp::kAdd: out.real_value = u + w; break;
            case BinaryOp::kSub: out.real_value = u - w; break;
            case BinaryOp::kMul: out.real_value = u * w; break;
            case BinaryOp::kDiv: out.real_value = u / w; break;
            case BinaryOp::kPow: out.real_value = std::pow(u, w); break;
            default:
              return err(e.loc, "operator not allowed in constant expression");
          }
        } else {
          const std::int64_t u = x.int_value;
          const std::int64_t w = y.int_value;
          switch (e.binary_op) {
            case BinaryOp::kAdd: out.int_value = u + w; break;
            case BinaryOp::kSub: out.int_value = u - w; break;
            case BinaryOp::kMul: out.int_value = u * w; break;
            case BinaryOp::kDiv:
              if (w == 0) return err(e.loc, "division by zero in constant");
              out.int_value = u / w;
              break;
            case BinaryOp::kPow: {
              std::int64_t r = 1;
              for (std::int64_t i = 0; i < w; ++i) r *= u;
              out.int_value = r;
              break;
            }
            default:
              return err(e.loc, "operator not allowed in constant expression");
          }
        }
        return out;
      }
      case ExprKind::kIndex:
      case ExprKind::kCall: {
        // Allow min/max in constant context (used for workload sizing).
        const auto intr = find_intrinsic(e.name);
        if (intr == Intrinsic::kMin || intr == Intrinsic::kMax) {
          if (e.args.size() < 2) return err(e.loc, "min/max need two arguments");
          auto acc = fold_const(*e.args[0], scope);
          if (!acc.is_ok()) return acc.status();
          ConstValue out = acc.value();
          for (std::size_t i = 1; i < e.args.size(); ++i) {
            auto v = fold_const(*e.args[i], scope);
            if (!v.is_ok()) return v.status();
            const bool take_new = intr == Intrinsic::kMax
                                      ? v->as_real() > out.as_real()
                                      : v->as_real() < out.as_real();
            if (take_new) out = v.value();
          }
          return out;
        }
        return err(e.loc, "call not allowed in constant expression");
      }
      default:
        return err(e.loc, "expression not allowed in constant context");
    }
  }

  Status declare_data(const std::string& module_name, const std::string& proc_name,
                      SymbolKind kind, DeclEntity& decl, Scope& scope) {
    // Redeclaration of a local over an import is shadowing (allowed);
    // duplicate at the same level is an error if it maps to same qualified name.
    Symbol sym;
    sym.name = decl.name;
    sym.module_name = module_name;
    sym.proc_name = proc_name;
    sym.kind = decl.is_parameter ? SymbolKind::kParameterConst : kind;
    sym.type = decl.type;
    sym.intent = decl.intent;
    sym.decl_node = decl.id;

    if (const auto existing = symbols_.find_qualified(sym.qualified());
        existing.has_value()) {
      return err(decl.loc, "duplicate declaration of '" + decl.name + "'");
    }

    for (auto& dim : decl.dims) {
      if (dim.assumed()) {
        if (kind != SymbolKind::kDummyArg) {
          return err(decl.loc,
                     "assumed-shape array '" + decl.name + "' must be a dummy argument");
        }
        sym.extents.push_back(-1);
        dim.resolved = -1;
        continue;
      }
      auto v = fold_const(*dim.extent, scope);
      if (v.is_ok()) {
        if (v->is_real || v->int_value <= 0) {
          return err(decl.loc, "array extent of '" + decl.name +
                                   "' must be a positive integer constant");
        }
        sym.extents.push_back(v->int_value);
        dim.resolved = v->int_value;
        continue;
      }
      // Automatic array: a procedure-local array whose extent is a runtime
      // integer expression (e.g. `size(a)` inside a generated wrapper). The
      // extent expression is resolved now and evaluated at procedure entry.
      if (kind != SymbolKind::kLocalVar && kind != SymbolKind::kResultVar) {
        return v.status();
      }
      if (Status s = resolve_expr(*dim.extent, scope); !s.is_ok()) return s;
      if (dim.extent->type.base != BaseType::kInteger) {
        return err(decl.loc,
                   "automatic extent of '" + decl.name + "' must be an integer");
      }
      sym.extents.push_back(-2);
      dim.resolved = -2;
    }

    if (decl.is_parameter) {
      if (decl.is_array()) {
        return err(decl.loc, "array parameters are not supported");
      }
      auto v = fold_const(*decl.init, scope);
      if (!v.is_ok()) return v.status();
      ConstValue cv = v.value();
      if (decl.type.base == BaseType::kInteger && cv.is_real) {
        return err(decl.loc, "real initializer for integer parameter '" + decl.name + "'");
      }
      if (decl.type.is_real()) {
        cv.is_real = true;
        cv.real_value = cv.as_real();
        if (decl.type.kind == 4) {
          cv.real_value = static_cast<double>(static_cast<float>(cv.real_value));
        }
      }
      sym.const_value = cv;
    }

    const SymbolId id = symbols_.add(std::move(sym));
    decl.symbol = id;
    scope.names[decl.name] = id;  // locals shadow imports
    return Status::ok();
  }

  Status register_procedure(Module& mod, Procedure& proc, Scope& module_scope) {
    if (symbols_.find_qualified(mod.name + "::" + proc.name).has_value()) {
      return err(proc.loc, "duplicate name '" + proc.name + "' in module '" +
                               mod.name + "'");
    }
    Symbol proc_sym;
    proc_sym.name = proc.name;
    proc_sym.module_name = mod.name;
    proc_sym.kind = SymbolKind::kProcedure;
    proc_sym.proc_kind = proc.kind;
    proc_sym.decl_node = proc.id;
    proc_sym.generated = proc.generated;
    const SymbolId proc_id = symbols_.add(std::move(proc_sym));
    proc.symbol = proc_id;
    module_scope.names[proc.name] = proc_id;
    return Status::ok();
  }

  Status declare_procedure_decls(Module& mod, Procedure& proc, Scope& module_scope) {
    // Build the procedure's local scope for its *declarations* so that dummy
    // types and extents can reference module parameters.
    Scope local = module_scope;  // copy: locals shadow
    const SymbolId proc_id = proc.symbol;

    // Declare all entities in declaration order.
    for (auto& decl : proc.decls) {
      SymbolKind kind = SymbolKind::kLocalVar;
      const bool is_param =
          std::find(proc.param_names.begin(), proc.param_names.end(), decl.name) !=
          proc.param_names.end();
      if (is_param) {
        kind = SymbolKind::kDummyArg;
      } else if (proc.kind == ProcKind::kFunction && decl.name == proc.result_name) {
        kind = SymbolKind::kResultVar;
      }
      if (Status s = declare_data(mod.name, proc.name, kind, decl, local); !s.is_ok()) {
        return s;
      }
    }

    // Wire up the signature.
    Symbol& ps = symbols_.get(proc_id);
    for (const auto& pname : proc.param_names) {
      const DeclEntity* d = proc.find_decl(pname);
      if (d == nullptr || d->symbol == kInvalidSymbol) {
        return err(proc.loc,
                   "dummy argument '" + pname + "' of '" + proc.name + "' is not declared");
      }
      ps.params.push_back(d->symbol);
    }
    if (proc.kind == ProcKind::kFunction) {
      const DeclEntity* r = proc.find_decl(proc.result_name);
      if (r == nullptr || r->symbol == kInvalidSymbol) {
        return err(proc.loc, "result '" + proc.result_name + "' of function '" +
                                 proc.name + "' is not declared");
      }
      if (symbols_.get(r->symbol).is_array()) {
        return err(proc.loc, "array-valued functions are not supported");
      }
      ps.result = r->symbol;
    }
    proc_scopes_[mod.name + "::" + proc.name] = std::move(local);
    return Status::ok();
  }

  Status resolve_procedure(Module& mod, Procedure& proc) {
    Scope& scope = proc_scopes_.at(mod.name + "::" + proc.name);
    for (auto& stmt : proc.body) {
      if (Status s = resolve_stmt(*stmt, scope, /*loop_depth=*/0); !s.is_ok()) return s;
    }
    return Status::ok();
  }

  Status resolve_stmt(Stmt& stmt, Scope& scope, int loop_depth) {
    switch (stmt.kind) {
      case StmtKind::kAssign: return resolve_assign(stmt, scope);
      case StmtKind::kIf: {
        for (auto& branch : stmt.branches) {
          if (branch.cond != nullptr) {
            if (Status s = resolve_expr(*branch.cond, scope); !s.is_ok()) return s;
            if (branch.cond->type.base != BaseType::kLogical) {
              return err(branch.cond->loc, "if condition must be logical");
            }
          }
          for (auto& s2 : branch.body) {
            if (Status s = resolve_stmt(*s2, scope, loop_depth); !s.is_ok()) return s;
          }
        }
        return Status::ok();
      }
      case StmtKind::kDo: {
        const auto sym = scope.find(stmt.do_var);
        if (!sym.has_value()) {
          return err(stmt.loc, "undeclared loop variable '" + stmt.do_var + "'");
        }
        const Symbol& s = symbols_.get(*sym);
        if (!s.is_variable() || s.type.base != BaseType::kInteger || s.is_array()) {
          return err(stmt.loc, "loop variable '" + stmt.do_var + "' must be an integer scalar");
        }
        stmt.do_symbol = *sym;
        for (ExprPtr* bound : {&stmt.lo, &stmt.hi, &stmt.step}) {
          if (*bound == nullptr) continue;
          if (Status st = resolve_expr(**bound, scope); !st.is_ok()) return st;
          if ((*bound)->type.base != BaseType::kInteger) {
            return err((*bound)->loc, "loop bounds must be integers");
          }
        }
        for (auto& s2 : stmt.body) {
          if (Status st = resolve_stmt(*s2, scope, loop_depth + 1); !st.is_ok()) return st;
        }
        return Status::ok();
      }
      case StmtKind::kDoWhile: {
        if (Status s = resolve_expr(*stmt.cond, scope); !s.is_ok()) return s;
        if (stmt.cond->type.base != BaseType::kLogical) {
          return err(stmt.cond->loc, "do-while condition must be logical");
        }
        for (auto& s2 : stmt.body) {
          if (Status st = resolve_stmt(*s2, scope, loop_depth + 1); !st.is_ok()) return st;
        }
        return Status::ok();
      }
      case StmtKind::kCall: return resolve_call_stmt(stmt, scope);
      case StmtKind::kExit:
      case StmtKind::kCycle:
        if (loop_depth == 0) {
          return err(stmt.loc, "exit/cycle outside of a loop");
        }
        return Status::ok();
      case StmtKind::kReturn:
        return Status::ok();
      case StmtKind::kPrint:
        for (auto& a : stmt.print_args) {
          if (Status s = resolve_expr(*a, scope); !s.is_ok()) return s;
        }
        return Status::ok();
    }
    return err(stmt.loc, "internal: unknown statement kind");
  }

  Status resolve_assign(Stmt& stmt, Scope& scope) {
    // LHS: variable or array element; whole-array LHS allowed for broadcast /
    // copy assignment.
    Expr& lhs = *stmt.lhs;
    const auto sym = scope.find(lhs.name);
    if (!sym.has_value()) {
      return err(lhs.loc, "assignment to undeclared name '" + lhs.name + "'");
    }
    const Symbol& s = symbols_.get(*sym);
    if (!s.is_variable()) {
      return err(lhs.loc, "cannot assign to '" + lhs.name + "'");
    }
    if (s.kind == SymbolKind::kParameterConst) {
      return err(lhs.loc, "cannot assign to parameter '" + lhs.name + "'");
    }
    lhs.symbol = *sym;
    lhs.type = s.type;

    if (lhs.kind == ExprKind::kIndex) {
      if (!s.is_array()) {
        return err(lhs.loc, "'" + lhs.name + "' is not an array");
      }
      if (static_cast<int>(lhs.args.size()) != s.rank()) {
        return err(lhs.loc, "wrong number of subscripts for '" + lhs.name + "'");
      }
      for (auto& idx : lhs.args) {
        if (Status st = resolve_expr(*idx, scope); !st.is_ok()) return st;
        if (idx->type.base != BaseType::kInteger) {
          return err(idx->loc, "subscripts must be integers");
        }
      }
    } else if (s.is_array()) {
      lhs.is_array_value = true;  // whole-array assignment
    }

    if (Status st = resolve_expr(*stmt.rhs, scope); !st.is_ok()) return st;

    const Expr& rhs = *stmt.rhs;
    if (lhs.is_array_value) {
      // Broadcast (scalar rhs) or copy (array rhs of identical shape).
      if (rhs.is_array_value) {
        const Symbol& rs = symbols_.get(rhs.symbol);
        if (rs.rank() != s.rank()) {
          return err(rhs.loc, "array shape mismatch in whole-array assignment");
        }
        for (int d = 0; d < s.rank(); ++d) {
          if (s.extents[static_cast<std::size_t>(d)] > 0 &&
              rs.extents[static_cast<std::size_t>(d)] > 0 &&
              s.extents[static_cast<std::size_t>(d)] !=
                  rs.extents[static_cast<std::size_t>(d)]) {
            return err(rhs.loc, "array extent mismatch in whole-array assignment");
          }
        }
      }
      if (rhs.type.base == BaseType::kLogical || s.type.base == BaseType::kLogical) {
        if (rhs.type.base != s.type.base) {
          return err(rhs.loc, "type mismatch in array assignment");
        }
      }
      return Status::ok();
    }
    // Scalar assignment: implicit conversion between numeric types is the
    // Fortran assignment rule (the only implicit conversion in the language).
    if ((lhs.type.base == BaseType::kLogical) != (rhs.type.base == BaseType::kLogical)) {
      return err(rhs.loc, "cannot assign between logical and numeric");
    }
    if (rhs.is_array_value) {
      return err(rhs.loc, "cannot assign whole array to scalar");
    }
    return Status::ok();
  }

  Status resolve_call_stmt(Stmt& stmt, Scope& scope) {
    const auto sym = scope.find(stmt.callee);
    if (!sym.has_value()) {
      return err(stmt.loc, "call to unknown procedure '" + stmt.callee + "'");
    }
    const Symbol& s = symbols_.get(*sym);
    if (s.kind != SymbolKind::kProcedure || s.proc_kind != ProcKind::kSubroutine) {
      return err(stmt.loc, "'" + stmt.callee + "' is not a subroutine");
    }
    stmt.callee_symbol = *sym;
    return check_call_args(stmt.loc, s, stmt.args, scope);
  }

  Status check_call_args(SourceLoc loc, const Symbol& proc, std::vector<ExprPtr>& args,
                         Scope& scope) {
    if (args.size() != proc.params.size()) {
      return err(loc, "wrong number of arguments for '" + proc.name + "' (expected " +
                          std::to_string(proc.params.size()) + ", got " +
                          std::to_string(args.size()) + ")");
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
      Expr& a = *args[i];
      if (Status s = resolve_expr(a, scope); !s.is_ok()) return s;
      const Symbol& dummy = symbols_.get(proc.params[i]);
      const int actual_rank = a.is_array_value
                                  ? symbols_.get(a.symbol).rank()
                                  : 0;
      if (actual_rank != dummy.rank()) {
        return err(a.loc, "rank mismatch for argument " + std::to_string(i + 1) +
                              " of '" + proc.name + "'");
      }
      if ((a.type.base == BaseType::kLogical) != (dummy.type.base == BaseType::kLogical)) {
        return err(a.loc, "type mismatch for argument " + std::to_string(i + 1) +
                              " of '" + proc.name + "'");
      }
      // Integer actual to real dummy (and vice versa) is rejected; real-kind
      // mismatches are left for the wrapper generator.
      if (a.type.base == BaseType::kInteger && dummy.type.is_real()) {
        return err(a.loc, "integer actual for real dummy argument " +
                              std::to_string(i + 1) + " of '" + proc.name + "'");
      }
      if (a.type.is_real() && dummy.type.base == BaseType::kInteger) {
        return err(a.loc, "real actual for integer dummy argument " +
                              std::to_string(i + 1) + " of '" + proc.name + "'");
      }
      // Writable dummies need writable actuals (variable designators).
      if (dummy.intent == Intent::kOut || dummy.intent == Intent::kInOut) {
        const bool designator =
            (a.kind == ExprKind::kVarRef || a.kind == ExprKind::kIndex) &&
            a.symbol != kInvalidSymbol &&
            symbols_.get(a.symbol).kind != SymbolKind::kParameterConst;
        if (!designator) {
          return err(a.loc, "argument " + std::to_string(i + 1) + " of '" + proc.name +
                                "' must be a variable (intent out/inout)");
        }
      }
    }
    return Status::ok();
  }

  Status resolve_expr(Expr& e, Scope& scope) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        e.type = {BaseType::kInteger, 4};
        return Status::ok();
      case ExprKind::kRealLit:
        e.type = {BaseType::kReal, e.real_kind};
        return Status::ok();
      case ExprKind::kLogicalLit:
        e.type = {BaseType::kLogical, 4};
        return Status::ok();
      case ExprKind::kVarRef: {
        const auto sym = scope.find(e.name);
        if (!sym.has_value()) {
          return err(e.loc, "unknown name '" + e.name + "'");
        }
        const Symbol& s = symbols_.get(*sym);
        if (s.kind == SymbolKind::kProcedure) {
          return err(e.loc, "procedure '" + e.name + "' used as a value");
        }
        e.symbol = *sym;
        e.type = s.type;
        e.is_array_value = s.is_array();
        return Status::ok();
      }
      case ExprKind::kIndex:
      case ExprKind::kCall:
        return resolve_index_or_call(e, scope);
      case ExprKind::kUnary: {
        if (Status s = resolve_expr(*e.lhs, scope); !s.is_ok()) return s;
        if (e.lhs->is_array_value) {
          return err(e.loc, "whole arrays are not allowed in expressions");
        }
        if (e.unary_op == UnaryOp::kNot) {
          if (e.lhs->type.base != BaseType::kLogical) {
            return err(e.loc, ".not. requires a logical operand");
          }
        } else if (e.lhs->type.base == BaseType::kLogical) {
          return err(e.loc, "numeric unary operator on logical operand");
        }
        e.type = e.lhs->type;
        return Status::ok();
      }
      case ExprKind::kBinary: {
        if (Status s = resolve_expr(*e.lhs, scope); !s.is_ok()) return s;
        if (Status s = resolve_expr(*e.rhs, scope); !s.is_ok()) return s;
        if (e.lhs->is_array_value || e.rhs->is_array_value) {
          return err(e.loc, "whole arrays are not allowed in expressions");
        }
        const ScalarType& a = e.lhs->type;
        const ScalarType& b = e.rhs->type;
        if (is_logical(e.binary_op)) {
          if (a.base != BaseType::kLogical || b.base != BaseType::kLogical) {
            return err(e.loc, "logical operator on non-logical operands");
          }
          e.type = {BaseType::kLogical, 4};
          return Status::ok();
        }
        if (a.base == BaseType::kLogical || b.base == BaseType::kLogical) {
          return err(e.loc, "numeric operator on logical operand");
        }
        if (is_comparison(e.binary_op)) {
          e.type = {BaseType::kLogical, 4};
          return Status::ok();
        }
        e.type = promote(a, b);
        return Status::ok();
      }
    }
    return err(e.loc, "internal: unknown expression kind");
  }

  /// Fortran numeric promotion: real(8) > real(4) > integer.
  static ScalarType promote(const ScalarType& a, const ScalarType& b) {
    if (a.is_real() || b.is_real()) {
      const int kind = std::max(a.is_real() ? a.kind : 0, b.is_real() ? b.kind : 0);
      return {BaseType::kReal, kind};
    }
    return {BaseType::kInteger, 4};
  }

  Status resolve_index_or_call(Expr& e, Scope& scope) {
    // Precedence: visible variable (array indexing) > procedure > intrinsic.
    const auto sym = scope.find(e.name);
    if (sym.has_value() && symbols_.get(*sym).is_variable()) {
      const Symbol& s = symbols_.get(*sym);
      if (!s.is_array()) {
        return err(e.loc, "'" + e.name + "' is a scalar and cannot be subscripted");
      }
      if (static_cast<int>(e.args.size()) != s.rank()) {
        return err(e.loc, "wrong number of subscripts for '" + e.name + "'");
      }
      e.kind = ExprKind::kIndex;
      e.symbol = *sym;
      e.type = s.type;
      for (auto& idx : e.args) {
        if (Status st = resolve_expr(*idx, scope); !st.is_ok()) return st;
        if (idx->type.base != BaseType::kInteger) {
          return err(idx->loc, "subscripts must be integers");
        }
      }
      return Status::ok();
    }
    if (sym.has_value() && symbols_.get(*sym).kind == SymbolKind::kProcedure) {
      const Symbol& s = symbols_.get(*sym);
      if (s.proc_kind != ProcKind::kFunction) {
        return err(e.loc, "subroutine '" + e.name + "' called as a function");
      }
      e.kind = ExprKind::kCall;
      e.symbol = *sym;
      e.type = symbols_.get(s.result).type;
      return check_call_args(e.loc, s, e.args, scope);
    }
    const auto intr = find_intrinsic(e.name);
    if (intr.has_value()) {
      e.kind = ExprKind::kCall;
      e.symbol = kInvalidSymbol;  // intrinsic: identified by name
      return resolve_intrinsic(e, *intr, scope);
    }
    return err(e.loc, "unknown function or array '" + e.name + "'");
  }

  Status resolve_intrinsic(Expr& e, Intrinsic intr, Scope& scope) {
    for (auto& a : e.args) {
      if (Status s = resolve_expr(*a, scope); !s.is_ok()) return s;
    }
    const auto nargs = e.args.size();
    const auto arg_type = [&](std::size_t i) { return e.args[i]->type; };
    const auto require_args = [&](std::size_t lo, std::size_t hi) -> Status {
      if (nargs < lo || nargs > hi) {
        return err(e.loc, std::string("wrong number of arguments for '") +
                              intrinsic_name(intr) + "'");
      }
      return Status::ok();
    };
    const auto require_scalar_numeric = [&](std::size_t i) -> Status {
      if (e.args[i]->is_array_value || arg_type(i).base == BaseType::kLogical) {
        return err(e.args[i]->loc, "argument must be a numeric scalar");
      }
      return Status::ok();
    };

    switch (intr) {
      case Intrinsic::kSum:
      case Intrinsic::kMinval:
      case Intrinsic::kMaxval: {
        if (Status s = require_args(1, 1); !s.is_ok()) return s;
        if (!e.args[0]->is_array_value) {
          return err(e.args[0]->loc,
                     std::string(intrinsic_name(intr)) + " requires a whole-array argument");
        }
        e.type = arg_type(0);
        return Status::ok();
      }
      case Intrinsic::kReal: {
        if (Status s = require_args(1, 2); !s.is_ok()) return s;
        if (Status s = require_scalar_numeric(0); !s.is_ok()) return s;
        int kind = 4;
        if (nargs == 2) {
          if (e.args[1]->kind != ExprKind::kIntLit ||
              (e.args[1]->int_value != 4 && e.args[1]->int_value != 8)) {
            return err(e.args[1]->loc, "kind argument of real() must be literal 4 or 8");
          }
          kind = static_cast<int>(e.args[1]->int_value);
        }
        e.type = {BaseType::kReal, kind};
        return Status::ok();
      }
      case Intrinsic::kDble: {
        if (Status s = require_args(1, 1); !s.is_ok()) return s;
        if (Status s = require_scalar_numeric(0); !s.is_ok()) return s;
        e.type = {BaseType::kReal, 8};
        return Status::ok();
      }
      case Intrinsic::kInt:
      case Intrinsic::kFloor:
      case Intrinsic::kNint: {
        if (Status s = require_args(1, 1); !s.is_ok()) return s;
        if (Status s = require_scalar_numeric(0); !s.is_ok()) return s;
        e.type = {BaseType::kInteger, 4};
        return Status::ok();
      }
      case Intrinsic::kEpsilon:
      case Intrinsic::kHuge:
      case Intrinsic::kTiny: {
        if (Status s = require_args(1, 1); !s.is_ok()) return s;
        if (!arg_type(0).is_real()) {
          return err(e.loc, "epsilon/huge/tiny require a real argument");
        }
        e.type = arg_type(0);
        return Status::ok();
      }
      case Intrinsic::kMin:
      case Intrinsic::kMax: {
        if (Status s = require_args(2, 8); !s.is_ok()) return s;
        ScalarType t = arg_type(0);
        for (std::size_t i = 0; i < nargs; ++i) {
          if (Status s = require_scalar_numeric(i); !s.is_ok()) return s;
          t = promote(t, arg_type(i));
        }
        e.type = t;
        return Status::ok();
      }
      case Intrinsic::kMod:
      case Intrinsic::kSign:
      case Intrinsic::kAtan2: {
        if (Status s = require_args(2, 2); !s.is_ok()) return s;
        if (Status s = require_scalar_numeric(0); !s.is_ok()) return s;
        if (Status s = require_scalar_numeric(1); !s.is_ok()) return s;
        e.type = promote(arg_type(0), arg_type(1));
        return Status::ok();
      }
      case Intrinsic::kSize: {
        if (Status s = require_args(1, 2); !s.is_ok()) return s;
        if (!e.args[0]->is_array_value) {
          return err(e.args[0]->loc, "size() requires a whole-array argument");
        }
        if (nargs == 2) {
          const Symbol& arr = symbols_.get(e.args[0]->symbol);
          if (e.args[1]->kind != ExprKind::kIntLit || e.args[1]->int_value < 1 ||
              e.args[1]->int_value > arr.rank()) {
            return err(e.args[1]->loc, "dim argument of size() must be a literal in 1..rank");
          }
        }
        e.type = {BaseType::kInteger, 4};
        return Status::ok();
      }
      case Intrinsic::kMpiAllreduceSum:
      case Intrinsic::kMpiAllreduceMax:
      case Intrinsic::kMpiAllreduceMin: {
        if (Status s = require_args(1, 1); !s.is_ok()) return s;
        if (Status s = require_scalar_numeric(0); !s.is_ok()) return s;
        e.type = arg_type(0);
        return Status::ok();
      }
      default: {
        // Elemental single-argument math.
        if (Status s = require_args(1, 1); !s.is_ok()) return s;
        if (Status s = require_scalar_numeric(0); !s.is_ok()) return s;
        // abs() keeps integer type; transcendentals force real.
        if (intr == Intrinsic::kAbs) {
          e.type = arg_type(0);
        } else {
          e.type = arg_type(0).is_real() ? arg_type(0) : ScalarType{BaseType::kReal, 4};
        }
        return Status::ok();
      }
    }
  }

  Program prog_;
  SymbolTable symbols_;
  std::map<std::string, Scope> module_scopes_;
  std::map<std::string, Scope> proc_scopes_;
};

}  // namespace

StatusOr<ResolvedProgram> resolve(Program program) {
  return Resolver(std::move(program)).run();
}

StatusOr<ResolvedProgram> parse_and_resolve(std::string_view source,
                                            std::string file_name) {
  auto prog = parse_source(source, std::move(file_name));
  if (!prog.is_ok()) return prog.status();
  return resolve(std::move(prog.value()));
}

}  // namespace prose::ftn
