// Source-to-source transformation: precision assignment + wrapper generation.
//
// This is the paper's bespoke tool (§III-C). A variant is produced by
//   1. cloning the pristine program (NodeIds preserved),
//   2. rewriting the `kind` of the targeted real declarations,
//   3. re-resolving and generating wrappers for every call whose real-typed
//      actual/dummy kinds now disagree — Fortran performs implicit conversion
//      only through assignment, so each wrapper routes mismatched arguments
//      through assignments to correctly-kinded temporaries (paper Fig. 4),
//   4. re-resolving and verifying the matching-kind invariant.
//
// Wrappers for array arguments copy whole arrays through automatic
// temporaries sized with size() — the per-element casting traffic this
// creates is exactly the MOM6 failure mode the paper analyzes (§IV-B).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ftn/ast.h"
#include "ftn/sema.h"

namespace prose::ftn {

/// A precision assignment: DeclEntity NodeId → new real kind (4 or 8).
/// Entries for declarations that already have the requested kind are no-ops.
struct PrecisionAssignment {
  std::map<NodeId, int> kinds;

  [[nodiscard]] std::size_t count_kind(int kind) const {
    std::size_t n = 0;
    for (const auto& [id, k] : kinds) {
      if (k == kind) ++n;
    }
    return n;
  }
};

struct WrapperReport {
  int wrappers_generated = 0;
  int callsites_retargeted = 0;
  int scalar_args_wrapped = 0;
  int array_args_wrapped = 0;
  std::vector<std::string> wrapper_names;
};

/// Rewrites declaration kinds in place. Fails if a NodeId does not name a
/// real-typed declaration entity in `prog`.
Status apply_assignment(Program& prog, const PrecisionAssignment& assignment);

/// Resolves `prog`, generates wrappers for all mismatched real-kind argument
/// bindings, retargets the affected call sites, and returns the re-resolved
/// program. Idempotent on programs that already satisfy the invariant.
StatusOr<ResolvedProgram> generate_wrappers(Program prog, WrapperReport* report = nullptr);

/// Full variant pipeline: clone + apply + wrap + verify.
StatusOr<ResolvedProgram> make_variant(const Program& pristine,
                                       const PrecisionAssignment& assignment,
                                       WrapperReport* report = nullptr);

/// Checks the wrapper invariant: every real-typed argument binding has
/// matching actual/dummy kinds. Returns TransformError listing the first
/// violation otherwise.
Status verify_call_kind_invariant(const ResolvedProgram& rp);

}  // namespace prose::ftn
