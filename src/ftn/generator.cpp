#include "ftn/generator.h"

#include <sstream>
#include <vector>

#include "support/status.h"

namespace prose::ftn {
namespace {

struct Var {
  std::string name;
  bool is_array = false;
  int kind = 8;
};

struct Proc {
  std::string name;
  bool is_function = false;
  std::vector<Var> dummies;        // scalar in, scalar inout, array inout mix
  std::vector<std::string> intents;  // parallel to dummies
};

class Generator {
 public:
  Generator(std::uint64_t seed, const GeneratorOptions& options)
      : rng_(seed), options_(options) {}

  GeneratedProgram run() {
    GeneratedProgram out;
    plan();
    // Auxiliary modules first; the entry module (0) last, `use`ing them all
    // — modules must be defined before use.
    for (int m = 1; m < options_.modules; ++m) emit_module(m);
    emit_module(0);
    out.source = src_.str();
    out.entry = module_name(0) + "::entry";
    out.output_var = module_name(0) + "::gen_out";
    return out;
  }

 private:
  // ---- planning -----------------------------------------------------------

  static std::string module_name(int m) { return "gen_mod" + std::to_string(m); }

  void plan() {
    module_vars_.resize(static_cast<std::size_t>(options_.modules));
    procs_.resize(static_cast<std::size_t>(options_.modules));
    for (int m = 0; m < options_.modules; ++m) {
      for (int v = 0; v < options_.module_vars; ++v) {
        Var var;
        var.name = "g" + std::to_string(m) + "_v" + std::to_string(v);
        var.is_array = rng_.chance(options_.array_probability);
        var.kind = rng_.chance(options_.f32_probability) ? 4 : 8;
        module_vars_[static_cast<std::size_t>(m)].push_back(var);
      }
      for (int p = 0; p < options_.procs_per_module; ++p) {
        Proc proc;
        proc.name = "p" + std::to_string(m) + "_" + std::to_string(p);
        proc.is_function = rng_.chance(0.4);
        const int ndummies = proc.is_function ? 1 + static_cast<int>(rng_.uniform_index(2))
                                              : 1 + static_cast<int>(rng_.uniform_index(3));
        for (int d = 0; d < ndummies; ++d) {
          Var dummy;
          dummy.name = "d" + std::to_string(d);
          dummy.kind = rng_.chance(options_.f32_probability) ? 4 : 8;
          if (!proc.is_function && rng_.chance(options_.array_probability)) {
            dummy.is_array = true;
            proc.dummies.push_back(dummy);
            proc.intents.push_back("inout");
          } else {
            proc.dummies.push_back(dummy);
            proc.intents.push_back(proc.is_function || d == 0 ? "in" : "inout");
          }
        }
        procs_[static_cast<std::size_t>(m)].push_back(std::move(proc));
      }
    }
  }

  // ---- expressions --------------------------------------------------------

  std::string real_const() {
    const double v = rng_.uniform(-0.9, 0.9);
    char buf[48];
    if (rng_.chance(0.5)) {
      std::snprintf(buf, sizeof buf, "%.4fd0", v);
    } else {
      std::snprintf(buf, sizeof buf, "%.4f", v);
    }
    return buf;
  }

  /// A readable scalar value in the current context.
  std::string scalar_ref(const std::vector<Var>& scope_vars,
                         const std::string& loop_var) {
    std::vector<std::string> options;
    for (const auto& v : scope_vars) {
      if (v.is_array) {
        if (!loop_var.empty()) {
          options.push_back(v.name + "(" + loop_var + ")");
        } else {
          options.push_back(v.name + "(" +
                            std::to_string(1 + rng_.uniform_index(
                                                   static_cast<std::uint64_t>(
                                                       options_.array_extent))) +
                            ")");
        }
      } else {
        options.push_back(v.name);
      }
    }
    if (options.empty()) return real_const();
    return options[rng_.uniform_index(options.size())];
  }

  /// A bounded expression (|value| stays O(1) when inputs are O(1)).
  std::string expr(const std::vector<Var>& scope_vars, const std::string& loop_var,
                   int depth) {
    if (depth <= 0 || rng_.chance(0.35)) {
      return rng_.chance(0.4) ? real_const() : scalar_ref(scope_vars, loop_var);
    }
    switch (rng_.uniform_index(6)) {
      case 0:
        return "(" + expr(scope_vars, loop_var, depth - 1) + " + " +
               expr(scope_vars, loop_var, depth - 1) + ") * 0.5";
      case 1:
        return expr(scope_vars, loop_var, depth - 1) + " * " + real_const();
      case 2:
        return "sin(" + expr(scope_vars, loop_var, depth - 1) + ")";
      case 3:
        return "sqrt(abs(" + expr(scope_vars, loop_var, depth - 1) + ") + 0.25)";
      case 4:
        // Guarded division: denominator bounded away from zero.
        return expr(scope_vars, loop_var, depth - 1) + " / (1.5 + abs(" +
               expr(scope_vars, loop_var, depth - 1) + "))";
      default:
        return "min(max(" + expr(scope_vars, loop_var, depth - 1) + ", -2.0), 2.0)";
    }
  }

  // ---- statements ---------------------------------------------------------

  void line(int indent, const std::string& text) {
    src_ << std::string(static_cast<std::size_t>(indent) * 2, ' ') << text << "\n";
  }

  /// One statement writing to an in-scope variable; keeps values contracted.
  void emit_assignment(int indent, const std::vector<Var>& writable,
                       const std::vector<Var>& readable, const std::string& loop_var) {
    PROSE_CHECK(!writable.empty());
    const Var& target = writable[rng_.uniform_index(writable.size())];
    std::string lhs = target.name;
    if (target.is_array) {
      if (!loop_var.empty()) {
        lhs += "(" + loop_var + ")";
      } else {
        lhs += "(" + std::to_string(1 + rng_.uniform_index(static_cast<std::uint64_t>(
                                            options_.array_extent))) + ")";
      }
    }
    line(indent, lhs + " = 0.5 * " + lhs + " + 0.4 * (" +
                     expr(readable, loop_var, 2) + ")");
  }

  void emit_stmt(int m, int indent, const std::vector<Var>& writable,
                 const std::vector<Var>& readable, const std::string& loop_var,
                 int loop_depth, int proc_index) {
    const auto choice = rng_.uniform_index(10);
    if (choice < 4) {
      emit_assignment(indent, writable, readable, loop_var);
      return;
    }
    if (choice < 6 && loop_depth < options_.max_loop_depth) {
      // A counted loop over the array extent with a fresh induction variable.
      const std::string var = loop_depth == 0 ? "i" : "j";
      line(indent, "do " + var + " = 1, " + std::to_string(options_.array_extent));
      const int body = 1 + static_cast<int>(rng_.uniform_index(2));
      for (int s = 0; s < body; ++s) {
        emit_stmt(m, indent + 1, writable, readable, var, loop_depth + 1, proc_index);
      }
      if (loop_depth == 0 && rng_.chance(0.2)) {
        line(indent + 1, "if (" + scalar_ref(readable, var) + " > 1.9) exit");
      }
      line(indent, "end do");
      return;
    }
    if (choice < 8) {
      line(indent, "if (" + expr(readable, loop_var, 1) + " > 0.2) then");
      emit_assignment(indent + 1, writable, readable, loop_var);
      line(indent, "else");
      emit_assignment(indent + 1, writable, readable, loop_var);
      line(indent, "end if");
      return;
    }
    if (options_.allow_calls && loop_var.empty()) {
      // Call a later procedure of the same module (acyclic by construction).
      const auto& procs = procs_[static_cast<std::size_t>(m)];
      std::vector<std::size_t> later;
      for (std::size_t p = static_cast<std::size_t>(proc_index) + 1; p < procs.size();
           ++p) {
        later.push_back(p);
      }
      if (!later.empty()) {
        const Proc& callee = procs[later[rng_.uniform_index(later.size())]];
        if (emit_call(m, indent, callee, writable, readable)) return;
      }
    }
    emit_assignment(indent, writable, readable, loop_var);
  }

  /// Emits a call/function-use of `callee` with compatible arguments;
  /// returns false when no compatible actual exists.
  bool emit_call(int /*m*/, int indent, const Proc& callee,
                 const std::vector<Var>& writable, const std::vector<Var>& readable) {
    std::vector<std::string> args;
    for (std::size_t d = 0; d < callee.dummies.size(); ++d) {
      const Var& dummy = callee.dummies[d];
      if (dummy.is_array) {
        // Need a whole array of matching kind in scope.
        const Var* found = nullptr;
        for (const auto& v : writable) {
          if (v.is_array && v.kind == dummy.kind) found = &v;
        }
        if (found == nullptr) return false;
        args.push_back(found->name);
      } else if (callee.intents[d] == "in") {
        args.push_back("(" + expr(readable, "", 1) + ")");
      } else {
        // Writable scalar designator of any kind (sema allows kind mismatch;
        // the wrapper pass fixes it — but the *generated baseline* must be
        // kind-clean, so match kinds).
        const Var* found = nullptr;
        for (const auto& v : writable) {
          if (!v.is_array && v.kind == dummy.kind) found = &v;
        }
        if (found == nullptr) return false;
        args.push_back(found->name);
      }
    }
    std::string arglist;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i) arglist += ", ";
      arglist += args[i];
    }
    if (callee.is_function) {
      const Var& target = writable[rng_.uniform_index(writable.size())];
      if (target.is_array) return false;
      line(indent, target.name + " = 0.5 * " + target.name + " + 0.3 * " +
                       callee.name + "(" + arglist + ")");
    } else {
      line(indent, "call " + callee.name + "(" + arglist + ")");
    }
    return true;
  }

  // Kind-clean argument binding requires expression args to match the dummy
  // kind; the subset promotes expressions, so literals/mixed exprs bind to
  // kind-8 dummies only. Keep it simple: intent(in) scalar dummies are
  // always kind 8 in generated procs.
  void sanitize_proc_kinds() {
    for (auto& procs : procs_) {
      for (auto& proc : procs) {
        for (std::size_t d = 0; d < proc.dummies.size(); ++d) {
          if (!proc.dummies[d].is_array && proc.intents[d] == "in") {
            proc.dummies[d].kind = 8;
          }
        }
      }
    }
  }

  // ---- structure ----------------------------------------------------------

  void emit_decl(int indent, const Var& v, const std::string& intent = "") {
    std::string decl = "real(kind=" + std::to_string(v.kind) + ")";
    if (!intent.empty()) decl += ", intent(" + intent + ")";
    if (v.is_array && !intent.empty()) decl += ", dimension(:)";
    decl += " :: " + v.name;
    if (v.is_array && intent.empty()) {
      decl += "(" + std::to_string(options_.array_extent) + ")";
    }
    line(indent, decl);
  }

  void emit_proc(int m, int proc_index) {
    const Proc& proc = procs_[static_cast<std::size_t>(m)][static_cast<std::size_t>(proc_index)];
    std::string args;
    for (std::size_t d = 0; d < proc.dummies.size(); ++d) {
      if (d) args += ", ";
      args += proc.dummies[d].name;
    }
    const char* kw = proc.is_function ? "function" : "subroutine";
    line(1, std::string(kw) + " " + proc.name + "(" + args + ")" +
                (proc.is_function ? " result(res)" : ""));
    for (std::size_t d = 0; d < proc.dummies.size(); ++d) {
      emit_decl(2, proc.dummies[d], proc.intents[d]);
    }
    if (proc.is_function) line(2, "real(kind=8) :: res");

    std::vector<Var> locals;
    for (int l = 0; l < options_.locals_per_proc; ++l) {
      Var v;
      v.name = "t" + std::to_string(l);
      v.kind = rng_.chance(options_.f32_probability) ? 4 : 8;
      locals.push_back(v);
      emit_decl(2, v);
    }
    line(2, "integer :: i");
    line(2, "integer :: j");

    // Scope: dummies + locals + this module's variables (+ module 0's).
    std::vector<Var> readable = locals;
    std::vector<Var> writable = locals;
    for (const auto& d : proc.dummies) readable.push_back(d);
    for (std::size_t d = 0; d < proc.dummies.size(); ++d) {
      if (proc.intents[d] != "in") writable.push_back(proc.dummies[d]);
    }
    for (const auto& v : module_vars_[static_cast<std::size_t>(m)]) {
      readable.push_back(v);
      writable.push_back(v);
    }

    // Locals are zero-initialized by the VM, but be explicit for realism.
    for (const auto& l : locals) line(2, l.name + " = 0.1");

    const int stmts = 1 + options_.stmts_per_proc / 2;
    for (int s = 0; s < stmts; ++s) {
      emit_stmt(m, 2, writable, readable, "", 0, proc_index);
    }
    if (proc.is_function) {
      line(2, "res = min(max(" + expr(readable, "", 2) + ", -2.0), 2.0)");
    }
    line(1, std::string("end ") + kw + " " + proc.name);
    src_ << "\n";
  }

  void emit_entry(int m) {
    line(1, "subroutine entry()");
    line(2, "integer :: i");
    line(2, "integer :: j");
    // Deterministic initialization of every module variable (all modules).
    for (int mm = 0; mm < options_.modules; ++mm) {
      int idx = 0;
      for (const auto& v : module_vars_[static_cast<std::size_t>(mm)]) {
        ++idx;
        if (v.is_array) {
          line(2, v.name + " = 0.0");  // whole-array clear
          line(2, "do i = 1, " + std::to_string(options_.array_extent));
          line(3, v.name + "(i) = 0.1 * sin(dble(i) * " +
                      std::to_string(0.1 * idx) + "d0)");
          line(2, "end do");
        } else {
          line(2, v.name + " = " + std::to_string(0.05 * idx) + "d0");
        }
      }
    }
    // Body: statements + calls into this module's procedures.
    std::vector<Var> scope = module_vars_[0];
    const int stmts = options_.stmts_per_proc;
    for (int s = 0; s < stmts; ++s) {
      emit_stmt(m, 2, scope, scope, "", 0, /*proc_index=*/-1);
    }
    // Accumulate a scalar output from everything visible.
    line(2, "gen_out = 0.0d0");
    for (const auto& v : module_vars_[0]) {
      if (v.is_array) {
        line(2, "gen_out = gen_out + sum(" + v.name + ") * 0.01d0");
      } else {
        line(2, "gen_out = gen_out + " + v.name + " * 0.1d0");
      }
    }
    line(1, "end subroutine entry");
    src_ << "\n";
  }

  void emit_module(int m) {
    (void)m;
    sanitize_proc_kinds();
    line(0, "module " + module_name(m));
    if (m == 0) {
      for (int other = 1; other < options_.modules; ++other) {
        line(1, "use " + module_name(other));
      }
    }
    line(1, "implicit none");
    for (const auto& v : module_vars_[static_cast<std::size_t>(m)]) emit_decl(1, v);
    if (m == 0) line(1, "real(kind=8) :: gen_out");
    line(0, "contains");
    src_ << "\n";
    if (m == 0) emit_entry(m);
    for (int p = 0; p < options_.procs_per_module; ++p) emit_proc(m, p);
    line(0, "end module " + module_name(m));
    src_ << "\n";
  }

  Rng rng_;
  GeneratorOptions options_;
  std::ostringstream src_;
  std::vector<std::vector<Var>> module_vars_;
  std::vector<std::vector<Proc>> procs_;
};

}  // namespace

GeneratedProgram generate_program(std::uint64_t seed, const GeneratorOptions& options) {
  return Generator(seed, options).run();
}

}  // namespace prose::ftn
