// Symbol table produced by semantic resolution.
//
// Symbols are the currency of the whole pipeline: search atoms are the
// real-typed variable symbols of the targeted scope, the parameter-passing
// graph's nodes are symbols, and the bytecode compiler allocates storage per
// symbol.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ftn/ast.h"
#include "support/status.h"

namespace prose::ftn {

enum class SymbolKind : std::uint8_t {
  kModuleVar,
  kLocalVar,
  kDummyArg,
  kResultVar,
  kParameterConst,
  kProcedure,
};

/// Folded compile-time constant (parameters and dim extents).
struct ConstValue {
  bool is_real = false;
  std::int64_t int_value = 0;
  double real_value = 0.0;

  [[nodiscard]] double as_real() const {
    return is_real ? real_value : static_cast<double>(int_value);
  }
};

struct Symbol {
  SymbolId id = kInvalidSymbol;
  std::string name;        // bare lower-case name
  std::string module_name; // owning module
  std::string proc_name;   // owning procedure, empty for module scope
  SymbolKind kind = SymbolKind::kLocalVar;

  // Data symbols.
  ScalarType type;
  std::vector<std::int64_t> extents;  // per dimension; -1 for assumed shape
  Intent intent = Intent::kNone;
  std::optional<ConstValue> const_value;  // parameters only
  NodeId decl_node = kInvalidNode;        // DeclEntity id (atoms key off this)

  // Procedure symbols.
  ProcKind proc_kind = ProcKind::kSubroutine;
  std::vector<SymbolId> params;
  SymbolId result = kInvalidSymbol;
  bool generated = false;

  [[nodiscard]] bool is_variable() const {
    return kind == SymbolKind::kModuleVar || kind == SymbolKind::kLocalVar ||
           kind == SymbolKind::kDummyArg || kind == SymbolKind::kResultVar;
  }
  [[nodiscard]] bool is_array() const { return !extents.empty(); }
  [[nodiscard]] int rank() const { return static_cast<int>(extents.size()); }
  [[nodiscard]] std::string qualified() const {
    std::string q = module_name;
    q += "::";
    if (!proc_name.empty()) {
      q += proc_name;
      q += "::";
    }
    q += name;
    return q;
  }
  /// Total elements for explicit constant shapes; 0 if any extent is assumed
  /// (-1) or automatic/runtime (-2).
  [[nodiscard]] std::int64_t element_count() const {
    if (extents.empty()) return 1;
    std::int64_t n = 1;
    for (const auto e : extents) {
      if (e < 0) return 0;
      n *= e;
    }
    return n;
  }
};

class SymbolTable {
 public:
  SymbolId add(Symbol sym);

  [[nodiscard]] const Symbol& get(SymbolId id) const;
  [[nodiscard]] Symbol& get(SymbolId id);
  [[nodiscard]] std::size_t size() const { return symbols_.size(); }

  /// All symbols in creation order (id order).
  [[nodiscard]] const std::vector<Symbol>& all() const { return symbols_; }

  /// Procedure lookup by "module::name".
  [[nodiscard]] std::optional<SymbolId> find_procedure(const std::string& module_name,
                                                       const std::string& name) const;

  /// Variable lookup by qualified name ("mod::proc::var" / "mod::var").
  [[nodiscard]] std::optional<SymbolId> find_qualified(const std::string& qualified) const;

 private:
  std::vector<Symbol> symbols_;
  std::map<std::string, SymbolId> by_qualified_;
};

/// Intrinsic functions known to the subset.
enum class Intrinsic : std::uint8_t {
  kAbs, kSqrt, kExp, kLog, kSin, kCos, kTan, kAtan, kAtan2,
  kMin, kMax, kMod, kSign, kFloor, kInt, kNint, kReal, kDble,
  kSum, kMinval, kMaxval, kEpsilon, kHuge, kTiny, kSize,
  // MPI collectives modeled as value-preserving intrinsics with
  // communication cost (single simulated process owns the global domain).
  kMpiAllreduceSum, kMpiAllreduceMax, kMpiAllreduceMin,
};

/// Looks up an intrinsic by lower-case name.
std::optional<Intrinsic> find_intrinsic(const std::string& name);
const char* intrinsic_name(Intrinsic i);

/// True for sum/minval/maxval — the intrinsics taking whole-array arguments.
bool intrinsic_is_array_reduction(Intrinsic i);

/// True for the MPI collective intrinsics.
bool intrinsic_is_collective(Intrinsic i);

}  // namespace prose::ftn
