#include "ftn/symbols.h"

namespace prose::ftn {

SymbolId SymbolTable::add(Symbol sym) {
  sym.id = static_cast<SymbolId>(symbols_.size() + 1);
  const std::string q = sym.qualified();
  symbols_.push_back(std::move(sym));
  by_qualified_[q] = symbols_.back().id;
  return symbols_.back().id;
}

const Symbol& SymbolTable::get(SymbolId id) const {
  PROSE_CHECK(id != kInvalidSymbol && id <= symbols_.size());
  return symbols_[id - 1];
}

Symbol& SymbolTable::get(SymbolId id) {
  PROSE_CHECK(id != kInvalidSymbol && id <= symbols_.size());
  return symbols_[id - 1];
}

std::optional<SymbolId> SymbolTable::find_procedure(const std::string& module_name,
                                                    const std::string& name) const {
  const auto it = by_qualified_.find(module_name + "::" + name);
  if (it == by_qualified_.end()) return std::nullopt;
  if (get(it->second).kind != SymbolKind::kProcedure) return std::nullopt;
  return it->second;
}

std::optional<SymbolId> SymbolTable::find_qualified(const std::string& qualified) const {
  const auto it = by_qualified_.find(qualified);
  if (it == by_qualified_.end()) return std::nullopt;
  return it->second;
}

namespace {
struct IntrinsicEntry {
  const char* name;
  Intrinsic value;
};
constexpr IntrinsicEntry kIntrinsics[] = {
    {"abs", Intrinsic::kAbs},       {"sqrt", Intrinsic::kSqrt},
    {"exp", Intrinsic::kExp},       {"log", Intrinsic::kLog},
    {"sin", Intrinsic::kSin},       {"cos", Intrinsic::kCos},
    {"tan", Intrinsic::kTan},       {"atan", Intrinsic::kAtan},
    {"atan2", Intrinsic::kAtan2},   {"min", Intrinsic::kMin},
    {"max", Intrinsic::kMax},       {"mod", Intrinsic::kMod},
    {"sign", Intrinsic::kSign},     {"floor", Intrinsic::kFloor},
    {"int", Intrinsic::kInt},       {"nint", Intrinsic::kNint},
    {"real", Intrinsic::kReal},     {"dble", Intrinsic::kDble},
    {"sum", Intrinsic::kSum},       {"minval", Intrinsic::kMinval},
    {"maxval", Intrinsic::kMaxval}, {"epsilon", Intrinsic::kEpsilon},
    {"huge", Intrinsic::kHuge},     {"tiny", Intrinsic::kTiny},
    {"size", Intrinsic::kSize},
    {"mpi_allreduce_sum", Intrinsic::kMpiAllreduceSum},
    {"mpi_allreduce_max", Intrinsic::kMpiAllreduceMax},
    {"mpi_allreduce_min", Intrinsic::kMpiAllreduceMin},
};
}  // namespace

std::optional<Intrinsic> find_intrinsic(const std::string& name) {
  for (const auto& e : kIntrinsics) {
    if (name == e.name) return e.value;
  }
  return std::nullopt;
}

const char* intrinsic_name(Intrinsic i) {
  for (const auto& e : kIntrinsics) {
    if (e.value == i) return e.name;
  }
  return "?";
}

bool intrinsic_is_array_reduction(Intrinsic i) {
  return i == Intrinsic::kSum || i == Intrinsic::kMinval || i == Intrinsic::kMaxval;
}

bool intrinsic_is_collective(Intrinsic i) {
  return i == Intrinsic::kMpiAllreduceSum || i == Intrinsic::kMpiAllreduceMax ||
         i == Intrinsic::kMpiAllreduceMin;
}

}  // namespace prose::ftn
