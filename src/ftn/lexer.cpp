#include "ftn/lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "support/strings.h"

namespace prose::ftn {

const char* token_name(Tok t) {
  switch (t) {
    case Tok::kEof: return "end of file";
    case Tok::kNewline: return "end of statement";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kRealLit: return "real literal";
    case Tok::kLogicalLit: return "logical literal";
    case Tok::kStringLit: return "string literal";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kComma: return "','";
    case Tok::kColon: return "':'";
    case Tok::kDoubleColon: return "'::'";
    case Tok::kAssign: return "'='";
    case Tok::kArrow: return "'=>'";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPower: return "'**'";
    case Tok::kConcat: return "'//'";
    case Tok::kPercent: return "'%'";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'/='";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kAnd: return "'.and.'";
    case Tok::kOr: return "'.or.'";
    case Tok::kNot: return "'.not.'";
    case Tok::kEqv: return "'.eqv.'";
    case Tok::kNeqv: return "'.neqv.'";
    case Tok::kKwModule: return "'module'";
    case Tok::kKwEnd: return "'end'";
    case Tok::kKwContains: return "'contains'";
    case Tok::kKwSubroutine: return "'subroutine'";
    case Tok::kKwFunction: return "'function'";
    case Tok::kKwResult: return "'result'";
    case Tok::kKwUse: return "'use'";
    case Tok::kKwImplicit: return "'implicit'";
    case Tok::kKwNone: return "'none'";
    case Tok::kKwInteger: return "'integer'";
    case Tok::kKwReal: return "'real'";
    case Tok::kKwDoublePrecision: return "'double precision'";
    case Tok::kKwLogical: return "'logical'";
    case Tok::kKwParameter: return "'parameter'";
    case Tok::kKwDimension: return "'dimension'";
    case Tok::kKwIntent: return "'intent'";
    case Tok::kKwIn: return "'in'";
    case Tok::kKwOut: return "'out'";
    case Tok::kKwInOut: return "'inout'";
    case Tok::kKwDo: return "'do'";
    case Tok::kKwWhile: return "'while'";
    case Tok::kKwIf: return "'if'";
    case Tok::kKwThen: return "'then'";
    case Tok::kKwElse: return "'else'";
    case Tok::kKwElseIf: return "'elseif'";
    case Tok::kKwEndIf: return "'endif'";
    case Tok::kKwEndDo: return "'enddo'";
    case Tok::kKwExit: return "'exit'";
    case Tok::kKwCycle: return "'cycle'";
    case Tok::kKwCall: return "'call'";
    case Tok::kKwReturn: return "'return'";
    case Tok::kKwProgram: return "'program'";
    case Tok::kKwPrint: return "'print'";
    case Tok::kKwKind: return "'kind'";
    case Tok::kKwOnly: return "'only'";
    case Tok::kKwSave: return "'save'";
    case Tok::kKwPure: return "'pure'";
    case Tok::kKwElemental: return "'elemental'";
  }
  return "?";
}

namespace {

// Fortran has no reserved words; only the tokens that unambiguously start or
// delimit constructs are lexed as keywords. Context-dependent words (`kind`,
// `result`, `in`, `out`, `only`, `while`, `none`, `save`, ...) stay plain
// identifiers and the parser matches their spelling in the right positions —
// this is what lets model code declare variables named `out` or `result`.
const std::map<std::string, Tok>& keyword_table() {
  static const std::map<std::string, Tok> table = {
      {"module", Tok::kKwModule},
      {"end", Tok::kKwEnd},
      {"contains", Tok::kKwContains},
      {"subroutine", Tok::kKwSubroutine},
      {"function", Tok::kKwFunction},
      {"use", Tok::kKwUse},
      {"implicit", Tok::kKwImplicit},
      {"integer", Tok::kKwInteger},
      {"real", Tok::kKwReal},
      {"logical", Tok::kKwLogical},
      {"parameter", Tok::kKwParameter},
      {"dimension", Tok::kKwDimension},
      {"intent", Tok::kKwIntent},
      {"do", Tok::kKwDo},
      {"if", Tok::kKwIf},
      {"then", Tok::kKwThen},
      {"else", Tok::kKwElse},
      {"elseif", Tok::kKwElseIf},
      {"endif", Tok::kKwEndIf},
      {"enddo", Tok::kKwEndDo},
      {"exit", Tok::kKwExit},
      {"cycle", Tok::kKwCycle},
      {"call", Tok::kKwCall},
      {"return", Tok::kKwReturn},
      {"program", Tok::kKwProgram},
      {"print", Tok::kKwPrint},
  };
  return table;
}

// Dot-operators: ".and." etc. plus legacy relationals.
const std::map<std::string, Tok>& dot_op_table() {
  static const std::map<std::string, Tok> table = {
      {"and", Tok::kAnd}, {"or", Tok::kOr},   {"not", Tok::kNot},
      {"eqv", Tok::kEqv}, {"neqv", Tok::kNeqv}, {"eq", Tok::kEq},
      {"ne", Tok::kNe},   {"lt", Tok::kLt},   {"le", Tok::kLe},
      {"gt", Tok::kGt},   {"ge", Tok::kGe},
  };
  return table;
}

class Lexer {
 public:
  Lexer(std::string_view src, std::string file_name)
      : src_(src), stream_{std::move(file_name), {}} {}

  StatusOr<TokenStream> run() {
    while (true) {
      const Status s = next();
      if (!s.is_ok()) return s;
      if (!stream_.tokens.empty() && stream_.tokens.back().kind == Tok::kEof) break;
    }
    fuse_compound_keywords();
    return std::move(stream_);
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t off = 0) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  [[nodiscard]] SourceLoc here() const { return {0, line_, col_}; }

  void emit(Tok kind, std::string text, SourceLoc loc) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.loc = loc;
    stream_.tokens.push_back(std::move(t));
  }

  void emit_newline(SourceLoc loc) {
    // Collapse consecutive separators.
    if (stream_.tokens.empty() || stream_.tokens.back().kind == Tok::kNewline) return;
    emit(Tok::kNewline, "\n", loc);
  }

  Status next() {
    skip_horizontal_space();
    if (at_end()) {
      emit_newline(here());
      emit(Tok::kEof, "", here());
      return Status::ok();
    }
    const SourceLoc loc = here();
    const char c = peek();

    if (c == '!') {
      while (!at_end() && peek() != '\n') advance();
      return Status::ok();
    }
    if (c == '\n') {
      advance();
      if (pending_continuation_) {
        pending_continuation_ = false;
        // Swallow an optional leading '&' on the continued line.
        skip_horizontal_space();
        if (peek() == '&') advance();
      } else {
        emit_newline(loc);
      }
      return Status::ok();
    }
    if (c == '&') {
      advance();
      pending_continuation_ = true;
      return Status::ok();
    }
    if (c == ';') {
      advance();
      emit_newline(loc);
      return Status::ok();
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      return lex_number(loc);
    }
    if (c == '.') {
      return lex_dot(loc);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return lex_ident(loc);
    }
    if (c == '\'' || c == '"') {
      return lex_string(loc);
    }
    return lex_punct(loc);
  }

  void skip_horizontal_space() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\r')) advance();
  }

  Status lex_number(SourceLoc loc) {
    std::string text;
    bool is_real = false;
    int kind = 4;
    while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
    // Fractional part — but not `1.and.`-style dot-operators.
    if (peek() == '.' && !std::isalpha(static_cast<unsigned char>(peek(1)))) {
      is_real = true;
      text += advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
    }
    // Exponent: e/E keeps default kind; d/D forces kind 8.
    const char e = static_cast<char>(std::tolower(static_cast<unsigned char>(peek())));
    if (e == 'e' || e == 'd') {
      const char sign = peek(1);
      const char digit = (sign == '+' || sign == '-') ? peek(2) : peek(1);
      if (std::isdigit(static_cast<unsigned char>(digit))) {
        is_real = true;
        if (e == 'd') kind = 8;
        text += 'e';
        advance();
        if (peek() == '+' || peek() == '-') text += advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
      }
    }
    // Kind suffix `_4` / `_8`.
    if (peek() == '_' && (peek(1) == '4' || peek(1) == '8')) {
      advance();
      const char k = advance();
      if (is_real) {
        kind = k == '8' ? 8 : 4;
      } else if (k != '4' && k != '8') {
        return Status(StatusCode::kParseError, "unsupported integer kind suffix", loc);
      }
    }
    Token t;
    t.loc = loc;
    t.text = text;
    if (is_real) {
      t.kind = Tok::kRealLit;
      t.real_value = std::strtod(text.c_str(), nullptr);
      t.real_kind = kind;
    } else {
      t.kind = Tok::kIntLit;
      t.int_value = std::strtoll(text.c_str(), nullptr, 10);
    }
    stream_.tokens.push_back(std::move(t));
    return Status::ok();
  }

  Status lex_dot(SourceLoc loc) {
    // `.name.` operator or `.true.` / `.false.`.
    std::size_t j = pos_ + 1;
    std::string name;
    while (j < src_.size() && std::isalpha(static_cast<unsigned char>(src_[j]))) {
      name += static_cast<char>(std::tolower(static_cast<unsigned char>(src_[j])));
      ++j;
    }
    if (j < src_.size() && src_[j] == '.' && !name.empty()) {
      for (std::size_t k = pos_; k <= j; ++k) advance();
      if (name == "true" || name == "false") {
        Token t;
        t.kind = Tok::kLogicalLit;
        t.logical_value = (name == "true");
        t.text = "." + name + ".";
        t.loc = loc;
        stream_.tokens.push_back(std::move(t));
        return Status::ok();
      }
      const auto it = dot_op_table().find(name);
      if (it == dot_op_table().end()) {
        return Status(StatusCode::kParseError, "unknown operator '." + name + ".'", loc);
      }
      emit(it->second, "." + name + ".", loc);
      return Status::ok();
    }
    return Status(StatusCode::kParseError, "unexpected '.'", loc);
  }

  Status lex_ident(SourceLoc loc) {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
      text += static_cast<char>(std::tolower(static_cast<unsigned char>(advance())));
    }
    const auto it = keyword_table().find(text);
    if (it != keyword_table().end()) {
      emit(it->second, text, loc);
    } else {
      emit(Tok::kIdent, text, loc);
    }
    return Status::ok();
  }

  Status lex_string(SourceLoc loc) {
    const char quote = advance();
    std::string text;
    while (!at_end() && peek() != '\n') {
      const char c = advance();
      if (c == quote) {
        if (peek() == quote) {  // doubled quote escape
          text += advance();
          continue;
        }
        Token t;
        t.kind = Tok::kStringLit;
        t.text = text;
        t.loc = loc;
        stream_.tokens.push_back(std::move(t));
        return Status::ok();
      }
      text += c;
    }
    return Status(StatusCode::kParseError, "unterminated string literal", loc);
  }

  Status lex_punct(SourceLoc loc) {
    const char c = advance();
    switch (c) {
      case '(': emit(Tok::kLParen, "(", loc); return Status::ok();
      case ')': emit(Tok::kRParen, ")", loc); return Status::ok();
      case ',': emit(Tok::kComma, ",", loc); return Status::ok();
      case '%': emit(Tok::kPercent, "%", loc); return Status::ok();
      case ':':
        if (peek() == ':') {
          advance();
          emit(Tok::kDoubleColon, "::", loc);
        } else {
          emit(Tok::kColon, ":", loc);
        }
        return Status::ok();
      case '=':
        if (peek() == '=') {
          advance();
          emit(Tok::kEq, "==", loc);
        } else if (peek() == '>') {
          advance();
          emit(Tok::kArrow, "=>", loc);
        } else {
          emit(Tok::kAssign, "=", loc);
        }
        return Status::ok();
      case '+': emit(Tok::kPlus, "+", loc); return Status::ok();
      case '-': emit(Tok::kMinus, "-", loc); return Status::ok();
      case '*':
        if (peek() == '*') {
          advance();
          emit(Tok::kPower, "**", loc);
        } else {
          emit(Tok::kStar, "*", loc);
        }
        return Status::ok();
      case '/':
        if (peek() == '=') {
          advance();
          emit(Tok::kNe, "/=", loc);
        } else if (peek() == '/') {
          advance();
          emit(Tok::kConcat, "//", loc);
        } else {
          emit(Tok::kSlash, "/", loc);
        }
        return Status::ok();
      case '<':
        if (peek() == '=') {
          advance();
          emit(Tok::kLe, "<=", loc);
        } else {
          emit(Tok::kLt, "<", loc);
        }
        return Status::ok();
      case '>':
        if (peek() == '=') {
          advance();
          emit(Tok::kGe, ">=", loc);
        } else {
          emit(Tok::kGt, ">", loc);
        }
        return Status::ok();
      default:
        return Status(StatusCode::kParseError,
                      std::string("unexpected character '") + c + "'", loc);
    }
  }

  // Fortran allows `else if`, `end if`, `end do`, `double precision`,
  // `endif`, `enddo` etc. Fuse multi-token spellings into the single-token
  // forms the parser handles.
  void fuse_compound_keywords() {
    std::vector<Token> out;
    out.reserve(stream_.tokens.size());
    const auto& in = stream_.tokens;
    for (std::size_t i = 0; i < in.size(); ++i) {
      const Token& t = in[i];
      const Token* n = i + 1 < in.size() ? &in[i + 1] : nullptr;
      if (t.kind == Tok::kKwElse && n && n->kind == Tok::kKwIf) {
        Token fused = t;
        fused.kind = Tok::kKwElseIf;
        fused.text = "else if";
        out.push_back(std::move(fused));
        ++i;
        continue;
      }
      if (t.kind == Tok::kIdent && t.text == "double" && n &&
          n->kind == Tok::kIdent && n->text == "precision") {
        Token fused = t;
        fused.kind = Tok::kKwDoublePrecision;
        fused.text = "double precision";
        out.push_back(std::move(fused));
        ++i;
        continue;
      }
      out.push_back(t);
    }
    stream_.tokens = std::move(out);
  }

  std::string_view src_;
  TokenStream stream_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
  bool pending_continuation_ = false;
};

}  // namespace

StatusOr<TokenStream> lex(std::string_view source, std::string file_name) {
  return Lexer(source, std::move(file_name)).run();
}

}  // namespace prose::ftn
