#include "ftn/paramflow.h"

#include <map>

namespace prose::ftn {

std::vector<const FlowEdge*> ParamFlowGraph::mismatched() const {
  std::vector<const FlowEdge*> out;
  for (const auto& e : edges) {
    if (!e.matches()) out.push_back(&e);
  }
  return out;
}

double ParamFlowGraph::mismatch_penalty(double assumed_elements) const {
  double total = 0.0;
  for (const auto& e : edges) {
    if (e.matches()) continue;
    const double elems = e.elements > 0 ? static_cast<double>(e.elements)
                                        : assumed_elements;
    total += e.estimated_calls * elems;
  }
  return total;
}

double ParamFlowGraph::total_flow(double assumed_elements) const {
  double total = 0.0;
  for (const auto& e : edges) {
    const double elems = e.elements > 0 ? static_cast<double>(e.elements)
                                        : assumed_elements;
    total += e.estimated_calls * elems;
  }
  return total;
}

namespace {

/// Finds the argument expressions of the call identified by a CallSite.
const std::vector<ExprPtr>* find_call_args(const Program& prog, const CallSite& site) {
  const std::vector<ExprPtr>* found = nullptr;
  const auto search_expr = [&](const Expr& e, const auto& self) -> void {
    if (found != nullptr) return;
    if (e.id == site.node && e.kind == ExprKind::kCall) {
      found = &e.args;
      return;
    }
    for (const auto& a : e.args) {
      if (a) self(*a, self);
    }
    if (e.lhs) self(*e.lhs, self);
    if (e.rhs) self(*e.rhs, self);
  };
  const auto search_stmt = [&](const Stmt& s, const auto& self) -> void {
    if (found != nullptr) return;
    if (s.id == site.node && s.kind == StmtKind::kCall) {
      found = &s.args;
      return;
    }
    for (const ExprPtr* e : {&s.lhs, &s.rhs, &s.lo, &s.hi, &s.step, &s.cond}) {
      if (*e) search_expr(**e, search_expr);
    }
    for (const auto& a : s.args) search_expr(*a, search_expr);
    for (const auto& a : s.print_args) search_expr(*a, search_expr);
    for (const auto& b : s.branches) {
      if (b.cond) search_expr(*b.cond, search_expr);
      for (const auto& inner : b.body) self(*inner, self);
    }
    for (const auto& inner : s.body) self(*inner, self);
  };
  for (const auto& mod : prog.modules) {
    for (const auto& proc : mod.procedures) {
      if (proc.symbol != site.caller) continue;
      for (const auto& s : proc.body) {
        search_stmt(*s, search_stmt);
        if (found != nullptr) return found;
      }
    }
  }
  return found;
}

}  // namespace

ParamFlowGraph build_param_flow(const ResolvedProgram& rp, const CallGraph& cg) {
  ParamFlowGraph g;
  for (const auto& site : cg.sites()) {
    const Symbol& callee = rp.symbols.get(site.callee);
    const std::vector<ExprPtr>* args = find_call_args(rp.program, site);
    PROSE_CHECK_MSG(args != nullptr, "call site not found in AST");
    PROSE_CHECK(args->size() == callee.params.size());
    for (std::size_t i = 0; i < args->size(); ++i) {
      const Expr& actual = *(*args)[i];
      const Symbol& dummy = rp.symbols.get(callee.params[i]);
      if (!dummy.type.is_real() || !actual.type.is_real()) continue;

      FlowEdge edge;
      edge.call_node = site.node;
      edge.caller = site.caller;
      edge.callee = site.callee;
      edge.arg_index = i;
      edge.dummy = callee.params[i];
      edge.actual_kind = actual.type.kind;
      edge.dummy_kind = dummy.type.kind;
      edge.is_array = dummy.is_array();
      edge.estimated_calls = site.estimated_calls;
      if (actual.kind == ExprKind::kVarRef && actual.symbol != kInvalidSymbol) {
        const Symbol& asym = rp.symbols.get(actual.symbol);
        edge.actual = actual.symbol;
        edge.elements = asym.is_array() ? asym.element_count() : 1;
      } else {
        edge.elements = 1;  // expression/element temporaries are scalar
      }
      g.edges.push_back(edge);
    }
  }
  return g;
}

}  // namespace prose::ftn
