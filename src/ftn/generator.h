// Random Fortran-subset program generator.
//
// Generates well-formed, resolvable, runnable programs for property-based
// testing of the whole pipeline: parser/unparser round trips, wrapper
// invariants under random precision assignments, taint-reduction soundness,
// and VM numerics. Generated programs are numerically tame by construction
// (bounded coefficients, contraction-style updates, guarded divisions) so
// they terminate and stay finite in both binary32 and binary64 — runtime
// faults in a generated program indicate a pipeline bug, not bad luck.
#pragma once

#include <cstdint>
#include <string>

#include "support/rng.h"

namespace prose::ftn {

struct GeneratorOptions {
  /// Number of modules (first is the "state" module, later ones `use` it).
  int modules = 1;
  /// Procedures per module (beyond the entry subroutine in module 0).
  int procs_per_module = 3;
  /// Module-level real variables per module (scalars and arrays).
  int module_vars = 6;
  /// Locals per procedure.
  int locals_per_proc = 3;
  /// Statements per procedure body.
  int stmts_per_proc = 6;
  /// Max do-loop nesting depth.
  int max_loop_depth = 2;
  /// Array extent for generated arrays.
  int array_extent = 16;
  /// Probability a generated declaration is an array.
  double array_probability = 0.35;
  /// Probability a generated declaration starts as kind 4 (mixed programs).
  double f32_probability = 0.15;
  /// Allow call statements / function calls between generated procedures.
  bool allow_calls = true;
};

struct GeneratedProgram {
  std::string source;
  /// Entry procedure, "gen_mod0::entry".
  std::string entry;
  /// A module scalar accumulating outputs, "gen_mod0::gen_out".
  std::string output_var;
};

/// Generates one program from the seed. Deterministic per (seed, options).
GeneratedProgram generate_program(std::uint64_t seed,
                                  const GeneratorOptions& options = {});

}  // namespace prose::ftn
