// Unparser: renders an AST back to Fortran-subset source.
//
// Used for (1) round-trip testing of the frontend, (2) emitting transformed
// mixed-precision variants in a form domain experts can read (a stated goal
// of the paper's source-to-source approach), and (3) the variant diffs shown
// by the tuner's reports (paper Fig. 3).
#pragma once

#include <string>

#include "ftn/ast.h"

namespace prose::ftn {

std::string unparse(const Program& program);
std::string unparse(const Module& module);
std::string unparse(const Procedure& proc, int indent = 0);
std::string unparse_stmt(const Stmt& stmt, int indent = 0);
std::string unparse_expr(const Expr& expr);
std::string unparse_decl(const DeclEntity& decl);

/// Unified-style diff of two programs' unparsed text (context-free: only
/// changed lines, prefixed with -/+). Used for Fig. 3-style variant reports.
std::string source_diff(const Program& before, const Program& after);

}  // namespace prose::ftn
