// Lexer for the Fortran subset.
//
// Free-form source only. Handles:
//   * `!` comments to end of line
//   * `&` line continuations (trailing `&`, with optional leading `&` on the
//     continued line)
//   * `;` as a statement separator
//   * case-insensitive keywords and identifiers (identifiers canonicalized to
//     lower case, per Fortran semantics)
//   * numeric literals with `e`/`d` exponents and `_4`/`_8` kind suffixes —
//     a `d` exponent or `_8` suffix makes the literal kind 8
//   * legacy relational spellings (`.lt.`, `.ge.`, ...) and logical operators
#pragma once

#include <string_view>

#include "ftn/token.h"
#include "support/status.h"

namespace prose::ftn {

/// Tokenizes `source`; `file_name` is used in diagnostics only.
StatusOr<TokenStream> lex(std::string_view source, std::string file_name);

}  // namespace prose::ftn
