#include "ftn/ast.h"

namespace prose::ftn {

std::string to_string(const ScalarType& t) {
  switch (t.base) {
    case BaseType::kReal:
      return t.kind == 8 ? "real(kind=8)" : "real(kind=4)";
    case BaseType::kInteger:
      return "integer";
    case BaseType::kLogical:
      return "logical";
  }
  return "?";
}

const char* to_string(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kPow: return "**";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "/=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return ".and.";
    case BinaryOp::kOr: return ".or.";
    case BinaryOp::kEqv: return ".eqv.";
    case BinaryOp::kNeqv: return ".neqv.";
  }
  return "?";
}

const char* to_string(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kPlus: return "+";
    case UnaryOp::kNot: return ".not.";
  }
  return "?";
}

bool is_comparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool is_logical(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
    case BinaryOp::kEqv:
    case BinaryOp::kNeqv:
      return true;
    default:
      return false;
  }
}

ExprPtr Expr::clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->id = id;
  out->loc = loc;
  out->int_value = int_value;
  out->real_value = real_value;
  out->real_kind = real_kind;
  out->logical_value = logical_value;
  out->name = name;
  out->symbol = symbol;
  out->args.reserve(args.size());
  for (const auto& a : args) out->args.push_back(a ? a->clone() : nullptr);
  out->unary_op = unary_op;
  out->binary_op = binary_op;
  out->lhs = lhs ? lhs->clone() : nullptr;
  out->rhs = rhs ? rhs->clone() : nullptr;
  out->type = type;
  out->is_array_value = is_array_value;
  return out;
}

ExprPtr make_int_lit(std::int64_t v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLit;
  e->int_value = v;
  e->loc = loc;
  return e;
}

ExprPtr make_real_lit(double v, int kind, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kRealLit;
  e->real_value = v;
  e->real_kind = kind;
  e->loc = loc;
  return e;
}

ExprPtr make_var_ref(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kVarRef;
  e->name = std::move(name);
  e->loc = loc;
  return e;
}

ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

StmtPtr Stmt::clone() const {
  auto out = std::make_unique<Stmt>();
  out->kind = kind;
  out->id = id;
  out->loc = loc;
  out->lhs = lhs ? lhs->clone() : nullptr;
  out->rhs = rhs ? rhs->clone() : nullptr;
  out->branches.reserve(branches.size());
  for (const auto& b : branches) {
    IfBranch nb;
    nb.cond = b.cond ? b.cond->clone() : nullptr;
    nb.body.reserve(b.body.size());
    for (const auto& s : b.body) nb.body.push_back(s->clone());
    out->branches.push_back(std::move(nb));
  }
  out->do_var = do_var;
  out->do_symbol = do_symbol;
  out->lo = lo ? lo->clone() : nullptr;
  out->hi = hi ? hi->clone() : nullptr;
  out->step = step ? step->clone() : nullptr;
  out->body.reserve(body.size());
  for (const auto& s : body) out->body.push_back(s->clone());
  out->cond = cond ? cond->clone() : nullptr;
  out->callee = callee;
  out->callee_symbol = callee_symbol;
  out->args.reserve(args.size());
  for (const auto& a : args) out->args.push_back(a ? a->clone() : nullptr);
  out->print_args.reserve(print_args.size());
  for (const auto& a : print_args) out->print_args.push_back(a ? a->clone() : nullptr);
  out->print_text = print_text;
  return out;
}

DeclEntity DeclEntity::clone() const {
  DeclEntity out;
  out.id = id;
  out.name = name;
  out.type = type;
  out.dims.reserve(dims.size());
  for (const auto& d : dims) {
    DimSpec nd;
    nd.extent = d.extent ? d.extent->clone() : nullptr;
    nd.resolved = d.resolved;
    out.dims.push_back(std::move(nd));
  }
  out.intent = intent;
  out.is_parameter = is_parameter;
  out.init = init ? init->clone() : nullptr;
  out.loc = loc;
  out.symbol = symbol;
  return out;
}

const DeclEntity* Procedure::find_decl(const std::string& name) const {
  for (const auto& d : decls) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

DeclEntity* Procedure::find_decl(const std::string& name) {
  for (auto& d : decls) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

Procedure Procedure::clone() const {
  Procedure out;
  out.id = id;
  out.name = name;
  out.kind = kind;
  out.param_names = param_names;
  out.result_name = result_name;
  out.decls.reserve(decls.size());
  for (const auto& d : decls) out.decls.push_back(d.clone());
  out.body.reserve(body.size());
  for (const auto& s : body) out.body.push_back(s->clone());
  out.loc = loc;
  out.symbol = symbol;
  out.generated = generated;
  return out;
}

const Procedure* Module::find_procedure(const std::string& name) const {
  for (const auto& p : procedures) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

Procedure* Module::find_procedure(const std::string& name) {
  for (auto& p : procedures) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

Module Module::clone() const {
  Module out;
  out.id = id;
  out.name = name;
  out.uses = uses;
  out.decls.reserve(decls.size());
  for (const auto& d : decls) out.decls.push_back(d.clone());
  out.procedures.reserve(procedures.size());
  for (const auto& p : procedures) out.procedures.push_back(p.clone());
  out.loc = loc;
  return out;
}

const Module* Program::find_module(const std::string& name) const {
  for (const auto& m : modules) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

Module* Program::find_module(const std::string& name) {
  for (auto& m : modules) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

Program Program::clone() const {
  Program out;
  out.modules.reserve(modules.size());
  for (const auto& m : modules) out.modules.push_back(m.clone());
  out.ids.ensure_above(ids.last());
  return out;
}

std::string qualified_name(const Module& m, const Procedure* p, const DeclEntity& d) {
  std::string out = m.name;
  out += "::";
  if (p != nullptr) {
    out += p->name;
    out += "::";
  }
  out += d.name;
  return out;
}

}  // namespace prose::ftn
