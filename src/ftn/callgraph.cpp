#include "ftn/callgraph.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace prose::ftn {
namespace {

class Builder {
 public:
  Builder(const ResolvedProgram& rp, std::vector<CallSite>& sites)
      : rp_(rp), sites_(sites) {}

  void run() {
    for (const auto& mod : rp_.program.modules) {
      for (const auto& proc : mod.procedures) {
        caller_ = proc.symbol;
        for (const auto& s : proc.body) walk_stmt(*s, 0, 1.0);
      }
    }
  }

 private:
  void add_site(NodeId node, SymbolId callee, bool is_function, SourceLoc loc,
                int depth, double trips) {
    sites_.push_back(CallSite{.node = node,
                              .caller = caller_,
                              .callee = callee,
                              .is_function_call = is_function,
                              .loop_depth = depth,
                              .estimated_calls = trips,
                              .loc = loc});
  }

  /// Constant trip count of a do loop if its bounds folded at sema time;
  /// conservative default otherwise.
  double trip_estimate(const Stmt& s) const {
    if (s.kind == StmtKind::kDoWhile) return CallGraph::kDefaultTrip;
    const auto lit = [](const Expr* e) -> std::optional<std::int64_t> {
      if (e == nullptr) return std::nullopt;
      if (e->kind == ExprKind::kIntLit) return e->int_value;
      // `-5` parses as unary minus around a literal.
      if (e->kind == ExprKind::kUnary && e->unary_op == UnaryOp::kNeg &&
          e->lhs->kind == ExprKind::kIntLit) {
        return -e->lhs->int_value;
      }
      return std::nullopt;
    };
    const auto lo = lit(s.lo.get());
    const auto hi = lit(s.hi.get());
    const auto step = s.step == nullptr ? std::optional<std::int64_t>(1) : lit(s.step.get());
    if (lo && hi && step && *step != 0) {
      const double n = std::floor(static_cast<double>(*hi - *lo + *step) /
                                  static_cast<double>(*step));
      return std::max(0.0, n);
    }
    return CallGraph::kDefaultTrip;
  }

  void walk_expr(const Expr& e, int depth, double trips) {
    if (e.kind == ExprKind::kCall && e.symbol != kInvalidSymbol) {
      add_site(e.id, e.symbol, /*is_function=*/true, e.loc, depth, trips);
    }
    for (const auto& a : e.args) {
      if (a) walk_expr(*a, depth, trips);
    }
    if (e.lhs) walk_expr(*e.lhs, depth, trips);
    if (e.rhs) walk_expr(*e.rhs, depth, trips);
  }

  void walk_stmt(const Stmt& s, int depth, double trips) {
    switch (s.kind) {
      case StmtKind::kAssign:
        walk_expr(*s.lhs, depth, trips);
        walk_expr(*s.rhs, depth, trips);
        return;
      case StmtKind::kIf:
        for (const auto& b : s.branches) {
          if (b.cond) walk_expr(*b.cond, depth, trips);
          for (const auto& inner : b.body) walk_stmt(*inner, depth, trips);
        }
        return;
      case StmtKind::kDo:
      case StmtKind::kDoWhile: {
        const double t = trip_estimate(s);
        if (s.lo) walk_expr(*s.lo, depth, trips);
        if (s.hi) walk_expr(*s.hi, depth, trips);
        if (s.step) walk_expr(*s.step, depth, trips);
        if (s.cond) walk_expr(*s.cond, depth + 1, trips * t);
        for (const auto& inner : s.body) walk_stmt(*inner, depth + 1, trips * t);
        return;
      }
      case StmtKind::kCall:
        add_site(s.id, s.callee_symbol, /*is_function=*/false, s.loc, depth, trips);
        for (const auto& a : s.args) walk_expr(*a, depth, trips);
        return;
      case StmtKind::kPrint:
        for (const auto& a : s.print_args) walk_expr(*a, depth, trips);
        return;
      case StmtKind::kExit:
      case StmtKind::kCycle:
      case StmtKind::kReturn:
        return;
    }
  }

  const ResolvedProgram& rp_;
  std::vector<CallSite>& sites_;
  SymbolId caller_ = kInvalidSymbol;
};

}  // namespace

CallGraph CallGraph::build(const ResolvedProgram& rp) {
  CallGraph g;
  Builder(rp, g.sites_).run();
  for (std::size_t i = 0; i < g.sites_.size(); ++i) {
    g.by_caller_[g.sites_[i].caller].push_back(i);
    g.by_callee_[g.sites_[i].callee].push_back(i);
  }
  return g;
}

std::vector<const CallSite*> CallGraph::sites_from(SymbolId caller) const {
  std::vector<const CallSite*> out;
  const auto it = by_caller_.find(caller);
  if (it == by_caller_.end()) return out;
  out.reserve(it->second.size());
  for (const auto i : it->second) out.push_back(&sites_[i]);
  return out;
}

std::vector<const CallSite*> CallGraph::sites_to(SymbolId callee) const {
  std::vector<const CallSite*> out;
  const auto it = by_callee_.find(callee);
  if (it == by_callee_.end()) return out;
  out.reserve(it->second.size());
  for (const auto i : it->second) out.push_back(&sites_[i]);
  return out;
}

std::vector<SymbolId> CallGraph::callees_of(SymbolId caller) const {
  std::set<SymbolId> unique;
  for (const auto* s : sites_from(caller)) unique.insert(s->callee);
  return {unique.begin(), unique.end()};
}

std::vector<SymbolId> CallGraph::reachable_from(const std::vector<SymbolId>& roots) const {
  std::set<SymbolId> seen(roots.begin(), roots.end());
  std::vector<SymbolId> work(roots.begin(), roots.end());
  while (!work.empty()) {
    const SymbolId p = work.back();
    work.pop_back();
    for (const SymbolId c : callees_of(p)) {
      if (seen.insert(c).second) work.push_back(c);
    }
  }
  return {seen.begin(), seen.end()};
}

bool CallGraph::is_recursive(SymbolId proc) const {
  // proc is recursive iff proc is reachable from its own callees.
  std::set<SymbolId> seen;
  std::vector<SymbolId> work = callees_of(proc);
  while (!work.empty()) {
    const SymbolId p = work.back();
    work.pop_back();
    if (p == proc) return true;
    if (!seen.insert(p).second) continue;
    for (const SymbolId c : callees_of(p)) work.push_back(c);
  }
  return false;
}

}  // namespace prose::ftn
