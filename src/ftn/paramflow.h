// Interprocedural parameter-passing graph for floating-point data (§III-C).
//
// The paper's transformation tool builds "a graph whose nodes are FP
// variables annotated with their precisions and whose edges represent
// instances of parameter-passing"; after applying a precision assignment the
// wrapper generator restores the invariant that adjacent nodes have matching
// annotations. The same graph, weighted by estimated call volume and array
// element counts, drives the §V static cost model penalizing mixed-precision
// interprocedural data flow.
#pragma once

#include <cstdint>
#include <vector>

#include "ftn/callgraph.h"
#include "ftn/sema.h"

namespace prose::ftn {

/// One actual→dummy binding of a real-typed argument at a call site.
struct FlowEdge {
  NodeId call_node = kInvalidNode;   // the call stmt/expr
  SymbolId caller = kInvalidSymbol;
  SymbolId callee = kInvalidSymbol;
  std::size_t arg_index = 0;
  /// Actual argument symbol; kInvalidSymbol when the actual is an expression
  /// or literal (those cast at evaluation, not at binding, and never need a
  /// wrapper under Fortran's by-value temporary rule for expressions).
  SymbolId actual = kInvalidSymbol;
  SymbolId dummy = kInvalidSymbol;
  int actual_kind = 8;               // kind of the actual value
  int dummy_kind = 8;
  bool is_array = false;
  /// Elements moved per call (1 for scalars; 0 if unknown/assumed shape).
  std::int64_t elements = 1;
  double estimated_calls = 1.0;      // from the call graph

  [[nodiscard]] bool matches() const { return actual_kind == dummy_kind; }
};

struct ParamFlowGraph {
  std::vector<FlowEdge> edges;

  /// All edges whose endpoint precisions disagree — the wrapper generator's
  /// work list and the static penalty's input.
  [[nodiscard]] std::vector<const FlowEdge*> mismatched() const;

  /// §V static penalty: Σ over mismatched edges of
  /// estimated_calls × max(elements, 1) (elements==0, i.e. unknown shape,
  /// counts as `assumed_elements`).
  [[nodiscard]] double mismatch_penalty(double assumed_elements = 64.0) const;

  /// Total FP values crossing procedure boundaries per run (matched or not):
  /// the denominator for normalized casting-overhead reports.
  [[nodiscard]] double total_flow(double assumed_elements = 64.0) const;
};

/// Builds the graph from a resolved program. Only real-typed argument
/// bindings produce edges.
ParamFlowGraph build_param_flow(const ResolvedProgram& rp, const CallGraph& cg);

}  // namespace prose::ftn
