// Token definitions for the Fortran-subset frontend.
//
// The subset ("F-mini") covers the constructs the paper's transformation tool
// must handle in real model code: modules with `contains`, subroutines and
// functions, kind-parameterized real declarations, multi-dimensional arrays,
// do/do-while loops, if/else chains, intrinsic calls, and the operators of
// arithmetic/relational/logical expressions (including the legacy `.lt.`
// spellings that pervade legacy model code such as ADCIRC's itpackv).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/source_location.h"

namespace prose::ftn {

enum class Tok : std::uint8_t {
  kEof = 0,
  kNewline,     // statement separator (also ';')
  kIdent,       // canonicalized to lower case
  kIntLit,
  kRealLit,
  kLogicalLit,  // .true. / .false.
  kStringLit,

  // Punctuation / operators.
  kLParen,
  kRParen,
  kComma,
  kColon,
  kDoubleColon,  // ::
  kAssign,       // =
  kArrow,        // =>  (parsed, rejected in sema; appears in real code)
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPower,       // **
  kConcat,      // //
  kPercent,     // %  (derived-type access; parsed for error recovery)
  kEq,          // == or .eq.
  kNe,          // /= or .ne.
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,         // .and.
  kOr,          // .or.
  kNot,         // .not.
  kEqv,         // .eqv.
  kNeqv,        // .neqv.

  // Keywords (recognized case-insensitively from identifiers).
  kKwModule,
  kKwEnd,
  kKwContains,
  kKwSubroutine,
  kKwFunction,
  kKwResult,
  kKwUse,
  kKwImplicit,
  kKwNone,
  kKwInteger,
  kKwReal,
  kKwDoublePrecision,  // "double precision" fused by the lexer
  kKwLogical,
  kKwParameter,
  kKwDimension,
  kKwIntent,
  kKwIn,
  kKwOut,
  kKwInOut,
  kKwDo,
  kKwWhile,
  kKwIf,
  kKwThen,
  kKwElse,
  kKwElseIf,   // "elseif" or "else if" fused
  kKwEndIf,    // "endif" (plain "end if" arrives as kKwEnd kKwIf)
  kKwEndDo,
  kKwExit,
  kKwCycle,
  kKwCall,
  kKwReturn,
  kKwProgram,
  kKwPrint,
  kKwKind,
  kKwOnly,
  kKwSave,
  kKwPure,
  kKwElemental,
};

const char* token_name(Tok t);

struct Token {
  Tok kind = Tok::kEof;
  std::string text;      // canonical spelling (identifiers lower-cased)
  std::int64_t int_value = 0;
  double real_value = 0.0;
  int real_kind = 4;     // kind of a real literal (4 unless d-exponent/_8)
  bool logical_value = false;
  SourceLoc loc;

  [[nodiscard]] bool is(Tok t) const { return kind == t; }
};

/// The full token stream for one source buffer.
struct TokenStream {
  std::string file_name;
  std::vector<Token> tokens;
};

}  // namespace prose::ftn
