#include "ftn/unparse.h"

#include <cstdio>
#include <sstream>

#include "support/strings.h"

namespace prose::ftn {
namespace {

std::string indent_str(int indent) { return std::string(static_cast<std::size_t>(indent) * 2, ' '); }

/// Renders a real literal preserving its kind (d-exponent for kind 8).
std::string real_lit_text(double value, int kind) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  std::string s = buf;
  const bool has_exp = s.find('e') != std::string::npos;
  const bool has_dot = s.find('.') != std::string::npos;
  if (!has_exp && !has_dot) s += ".0";
  if (kind == 8) {
    if (has_exp) {
      s = replace_all(std::move(s), "e", "d");
    } else {
      s += "d0";
    }
  } else if (!has_exp) {
    // kind 4 without exponent: plain decimal is already kind 4.
  }
  return s;
}

int precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEqv:
    case BinaryOp::kNeqv: return 1;
    case BinaryOp::kOr: return 2;
    case BinaryOp::kAnd: return 3;
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: return 5;
    case BinaryOp::kAdd:
    case BinaryOp::kSub: return 6;
    case BinaryOp::kMul:
    case BinaryOp::kDiv: return 7;
    case BinaryOp::kPow: return 9;
  }
  return 0;
}

std::string expr_text(const Expr& e, int parent_prec);

std::string args_text(const std::vector<ExprPtr>& args) {
  std::string out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out += ", ";
    out += expr_text(*args[i], 0);
  }
  return out;
}

std::string expr_text(const Expr& e, int parent_prec) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return std::to_string(e.int_value);
    case ExprKind::kRealLit:
      return real_lit_text(e.real_value, e.real_kind);
    case ExprKind::kLogicalLit:
      return e.logical_value ? ".true." : ".false.";
    case ExprKind::kVarRef:
      return e.name;
    case ExprKind::kIndex:
    case ExprKind::kCall:
      return e.name + "(" + args_text(e.args) + ")";
    case ExprKind::kUnary: {
      const std::string inner = expr_text(*e.lhs, 8);
      const std::string text = std::string(to_string(e.unary_op)) +
                               (e.unary_op == UnaryOp::kNot ? " " : "") + inner;
      // Unary minus binds looser than **; parenthesize under any binary parent.
      return parent_prec > 0 ? "(" + text + ")" : text;
    }
    case ExprKind::kBinary: {
      const int prec = precedence(e.binary_op);
      // Render left operand at this precedence, right operand one tighter
      // (left associativity); ** is right-associative.
      const bool right_assoc = e.binary_op == BinaryOp::kPow;
      const std::string lhs = expr_text(*e.lhs, right_assoc ? prec + 1 : prec);
      const std::string rhs = expr_text(*e.rhs, right_assoc ? prec : prec + 1);
      std::string text = lhs + " " + to_string(e.binary_op) + " " + rhs;
      if (prec < parent_prec) text = "(" + text + ")";
      return text;
    }
  }
  return "?";
}

void stmt_text(const Stmt& s, int indent, std::ostringstream& os);

void body_text(const std::vector<StmtPtr>& body, int indent, std::ostringstream& os) {
  for (const auto& s : body) stmt_text(*s, indent, os);
}

void stmt_text(const Stmt& s, int indent, std::ostringstream& os) {
  const std::string pad = indent_str(indent);
  switch (s.kind) {
    case StmtKind::kAssign:
      os << pad << expr_text(*s.lhs, 0) << " = " << expr_text(*s.rhs, 0) << '\n';
      return;
    case StmtKind::kIf: {
      for (std::size_t i = 0; i < s.branches.size(); ++i) {
        const IfBranch& b = s.branches[i];
        if (i == 0) {
          os << pad << "if (" << expr_text(*b.cond, 0) << ") then\n";
        } else if (b.cond != nullptr) {
          os << pad << "else if (" << expr_text(*b.cond, 0) << ") then\n";
        } else {
          os << pad << "else\n";
        }
        body_text(b.body, indent + 1, os);
      }
      os << pad << "end if\n";
      return;
    }
    case StmtKind::kDo: {
      os << pad << "do " << s.do_var << " = " << expr_text(*s.lo, 0) << ", "
         << expr_text(*s.hi, 0);
      if (s.step != nullptr) os << ", " << expr_text(*s.step, 0);
      os << '\n';
      body_text(s.body, indent + 1, os);
      os << pad << "end do\n";
      return;
    }
    case StmtKind::kDoWhile: {
      os << pad << "do while (" << expr_text(*s.cond, 0) << ")\n";
      body_text(s.body, indent + 1, os);
      os << pad << "end do\n";
      return;
    }
    case StmtKind::kCall:
      os << pad << "call " << s.callee << "(" << args_text(s.args) << ")\n";
      return;
    case StmtKind::kExit:
      os << pad << "exit\n";
      return;
    case StmtKind::kCycle:
      os << pad << "cycle\n";
      return;
    case StmtKind::kReturn:
      os << pad << "return\n";
      return;
    case StmtKind::kPrint: {
      os << pad << "print *";
      if (!s.print_text.empty()) os << ", '" << s.print_text << "'";
      for (const auto& a : s.print_args) os << ", " << expr_text(*a, 0);
      os << '\n';
      return;
    }
  }
}

}  // namespace

std::string unparse_expr(const Expr& expr) { return expr_text(expr, 0); }

std::string unparse_stmt(const Stmt& stmt, int indent) {
  std::ostringstream os;
  stmt_text(stmt, indent, os);
  return os.str();
}

std::string unparse_decl(const DeclEntity& d) {
  std::string out = to_string(d.type);
  if (d.is_parameter) out += ", parameter";
  switch (d.intent) {
    case Intent::kIn: out += ", intent(in)"; break;
    case Intent::kOut: out += ", intent(out)"; break;
    case Intent::kInOut: out += ", intent(inout)"; break;
    case Intent::kNone: break;
  }
  out += " :: ";
  out += d.name;
  if (d.is_array()) {
    out += "(";
    for (std::size_t i = 0; i < d.dims.size(); ++i) {
      if (i) out += ", ";
      if (d.dims[i].assumed()) {
        out += ":";
      } else {
        out += unparse_expr(*d.dims[i].extent);
      }
    }
    out += ")";
  }
  if (d.init != nullptr) {
    out += " = ";
    out += unparse_expr(*d.init);
  }
  return out;
}

std::string unparse(const Procedure& proc, int indent) {
  std::ostringstream os;
  const std::string pad = indent_str(indent);
  const char* keyword = proc.kind == ProcKind::kSubroutine ? "subroutine" : "function";
  os << pad << keyword << ' ' << proc.name << '(';
  for (std::size_t i = 0; i < proc.param_names.size(); ++i) {
    if (i) os << ", ";
    os << proc.param_names[i];
  }
  os << ')';
  if (proc.kind == ProcKind::kFunction && proc.result_name != proc.name) {
    os << " result(" << proc.result_name << ')';
  }
  os << '\n';
  for (const auto& d : proc.decls) {
    os << indent_str(indent + 1) << unparse_decl(d) << '\n';
  }
  body_text(proc.body, indent + 1, os);
  os << pad << "end " << keyword << ' ' << proc.name << '\n';
  return os.str();
}

std::string unparse(const Module& m) {
  std::ostringstream os;
  os << "module " << m.name << '\n';
  for (const auto& use : m.uses) {
    os << "  use " << use.module_name;
    if (!use.only.empty()) {
      os << ", only: ";
      for (std::size_t i = 0; i < use.only.size(); ++i) {
        if (i) os << ", ";
        os << use.only[i];
      }
    }
    os << '\n';
  }
  os << "  implicit none\n";
  for (const auto& d : m.decls) {
    os << "  " << unparse_decl(d) << '\n';
  }
  if (!m.procedures.empty()) {
    os << "contains\n";
    for (const auto& p : m.procedures) {
      os << '\n' << unparse(p, 1);
    }
  }
  os << "end module " << m.name << '\n';
  return os.str();
}

std::string unparse(const Program& program) {
  std::string out;
  for (const auto& m : program.modules) {
    if (!out.empty()) out += '\n';
    out += unparse(m);
  }
  return out;
}

std::string source_diff(const Program& before, const Program& after) {
  const std::vector<std::string> a = split(unparse(before), '\n');
  const std::vector<std::string> b = split(unparse(after), '\n');
  // Simple LCS-free diff: walk both sides, emitting changed lines. Adequate
  // for precision-tuning diffs, which only alter declarations and add
  // wrapper procedures at module tails.
  std::ostringstream os;
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (i < a.size() && j < b.size() && a[i] == b[j]) {
      ++i;
      ++j;
      continue;
    }
    // Look ahead for a resync point on the `after` side (insertions), then
    // on the `before` side (deletions).
    bool resynced = false;
    for (std::size_t look = 1; look <= 40 && !resynced; ++look) {
      if (j + look < b.size() && i < a.size() && a[i] == b[j + look]) {
        for (std::size_t k = 0; k < look; ++k) os << "+ " << b[j + k] << '\n';
        j += look;
        resynced = true;
      } else if (i + look < a.size() && j < b.size() && a[i + look] == b[j]) {
        for (std::size_t k = 0; k < look; ++k) os << "- " << a[i + k] << '\n';
        i += look;
        resynced = true;
      }
    }
    if (resynced) continue;
    if (i < a.size()) os << "- " << a[i++] << '\n';
    if (j < b.size()) os << "+ " << b[j++] << '\n';
  }
  return os.str();
}

}  // namespace prose::ftn
