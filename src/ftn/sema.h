// Semantic resolution for the Fortran subset.
//
// Responsibilities:
//   * build the symbol table (modules, procedures, dummies, results, locals,
//     parameters) and annotate every reference in the AST with its SymbolId
//   * fold parameter constants and explicit array extents
//   * reclassify ambiguous `name(...)` expressions as array indexing,
//     procedure calls, or intrinsic calls (variables shadow intrinsics, as in
//     Fortran)
//   * type-check expressions (Fortran kind-promotion rules), assignments
//     (scalar, broadcast, and whole-array copies), call argument ranks and
//     base types, and loop/if control expressions
//
// Real-kind mismatches at call boundaries are deliberately *accepted* here:
// the paper's wrapper generator (transform.h) is the component responsible
// for removing them, and the bytecode compiler rejects any that remain.
#pragma once

#include "ftn/ast.h"
#include "ftn/symbols.h"
#include "support/status.h"

namespace prose::ftn {

struct ResolvedProgram {
  Program program;
  SymbolTable symbols;
};

/// Resolves and type-checks; takes ownership of the AST and returns it
/// annotated. Modules must appear before the modules that `use` them.
StatusOr<ResolvedProgram> resolve(Program program);

/// Convenience: parse + resolve.
StatusOr<ResolvedProgram> parse_and_resolve(std::string_view source,
                                            std::string file_name = "<memory>");

}  // namespace prose::ftn
