// Decoded-stream execution engines and dispatch-policy plumbing.
//
// vm_engine.inc holds the single shared engine body; it is included twice
// below — once as a portable switch loop, once (when the compiler supports
// labels-as-values) as a direct-threaded computed-goto loop. See decode.h
// for the decoded instruction format and DESIGN.md §13 for the design.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <utility>

#include "ftn/symbols.h"
#include "sim/decode.h"
#include "sim/vm.h"

namespace prose::sim {

using ftn::Intrinsic;

// Build configuration (normally injected by CMake as compile definitions on
// prose_sim; default to the portable configuration when absent).
#ifndef PROSE_HAS_COMPUTED_GOTO
#define PROSE_HAS_COMPUTED_GOTO 0
#endif
#ifndef PROSE_VM_DISPATCH_DEFAULT
#define PROSE_VM_DISPATCH_DEFAULT 0  // 0=auto, 1=switch, 2=threaded
#endif

// ---------------------------------------------------------------------------
// Engine instantiations.


#define VM_USE_CGOTO 0
#define VM_ENGINE_NAME vm_engine_switch
#include "sim/vm_engine.inc"  // NOLINT(bugprone-suspicious-include)
#undef VM_ENGINE_NAME
#undef VM_USE_CGOTO

#if PROSE_HAS_COMPUTED_GOTO

#define VM_USE_CGOTO 1
#define VM_ENGINE_NAME vm_engine_threaded
#include "sim/vm_engine.inc"  // NOLINT(bugprone-suspicious-include)
#undef VM_ENGINE_NAME
#undef VM_USE_CGOTO

#else  // !PROSE_HAS_COMPUTED_GOTO

// No computed goto in this build: the threaded entry point exists (so
// callers link either way) but reports no label table, and execution
// falls through to the switch engine.
Status vm_engine_threaded(Vm* vm, const DecodedProgram* decoded,
                          const void* const** table_out) {
  if (table_out != nullptr) {
    *table_out = nullptr;
    return Status::ok();
  }
  return vm_engine_switch(vm, decoded);
}

#endif  // PROSE_HAS_COMPUTED_GOTO

const void* const* threaded_label_table() {
  static const void* const* const table = [] {
    const void* const* out = nullptr;
    (void)vm_engine_threaded(nullptr, nullptr, &out);
    return out;
  }();
  return table;
}

// ---------------------------------------------------------------------------
// Dispatch policy.

bool Vm::threaded_available() { return threaded_label_table() != nullptr; }

VmDispatch Vm::default_dispatch() {
#if PROSE_VM_DISPATCH_DEFAULT == 1
  return VmDispatch::kSwitch;
#else
  // auto (0) and threaded (2): prefer the threaded engine when it exists.
  return threaded_available() ? VmDispatch::kThreaded : VmDispatch::kSwitch;
#endif
}

VmDispatch Vm::resolved_dispatch() const {
  if (options_.shadow) return VmDispatch::kInterpret;  // shadow needs raw bytecode hooks
  VmDispatch d = options_.dispatch;
  if (d == VmDispatch::kAuto) d = default_dispatch();
  if (d == VmDispatch::kThreaded && !threaded_available()) d = VmDispatch::kSwitch;
  return d;
}

StatusOr<const DecodedProgram*> Vm::ensure_decoded() {
  if (options_.decoded != nullptr) return options_.decoded.get();
  if (!decode_attempted_) {
    decode_attempted_ = true;
    auto d = decode(*program_, DecodeOptions{.fuse = options_.fuse});
    if (d.is_ok()) {
      decoded_local_ = std::move(d).value();
    } else {
      decode_status_ = d.status();
    }
  }
  if (!decode_status_.is_ok()) return decode_status_;
  return decoded_local_.get();
}

}  // namespace prose::sim
