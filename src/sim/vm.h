// Register VM executing compiled programs with genuine IEEE float/double
// semantics and simulated-cycle accounting.
//
// Numerics are real: kind-4 operations are computed in binary32, kind-8 in
// binary64, conversions round exactly as the hardware would. Time is
// simulated: every instruction charges its compile-time cost (scaled for
// inlined callees) to a SimClock, with per-procedure attribution and optional
// GPTL regions for instrumented procedures.
//
// Failure modes map to the paper's variant outcomes:
//   * non-finite arithmetic results  → RuntimeFault ("Error" column)
//   * out-of-bounds subscripts       → RuntimeFault
//   * exceeding the cycle budget     → Timeout (3× baseline in campaigns)
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gptl/gptl.h"
#include "sim/bytecode.h"
#include "support/status.h"

namespace prose::sim {

struct DecodedProgram;  // decode.h

/// Execution engine selection. All engines are bit-identical in outcomes,
/// error metrics, cycle/cast accounting, OpMix, and the print log — the
/// dispatch-equivalence suite enforces it. They differ only in host speed:
///   * kInterpret — the reference switch interpreter over raw bytecode
///     (vm.cpp). Always available; the only engine that supports shadow
///     execution, so VmOptions::shadow forces it.
///   * kSwitch    — pre-decoded stream (decode.h) run by a portable
///     switch-dispatch loop.
///   * kThreaded  — pre-decoded stream run by a direct-threaded
///     computed-goto loop (GCC/Clang). Falls back to kSwitch when the
///     build has no computed-goto support.
///   * kAuto      — the build-configured default (PROSE_VM_DISPATCH).
enum class VmDispatch : std::uint8_t { kAuto, kInterpret, kSwitch, kThreaded };

/// Dynamic superinstruction dispatch counts for one call() — how many fused
/// pairs each family executed. Observability only (the vm/fused/* counters
/// and the bench fusion hit-rate): fused components still count under their
/// original OpMix classes, so OpMix is fusion-neutral by construction.
struct FusedStats {
  std::uint64_t loop_cond_jmp = 0;
  std::uint64_t inc_jmp = 0;
  std::uint64_t cmp_jmp = 0;
  std::uint64_t cast_mov = 0;
  std::uint64_t cast_store = 0;
  std::uint64_t load_arith = 0;
  std::uint64_t arith_store = 0;
  std::uint64_t const_arith = 0;
  std::uint64_t load_const = 0;

  /// Fused pair dispatches; each pair covers two executed instructions.
  [[nodiscard]] std::uint64_t pairs() const {
    return loop_cond_jmp + inc_jmp + cmp_jmp + cast_mov + cast_store +
           load_arith + arith_store + const_arith + load_const;
  }
  [[nodiscard]] std::uint64_t covered() const { return 2 * pairs(); }
};

struct VmOptions {
  bool trap_nonfinite = true;
  /// Simulated-cycle budget for one call(); exceeding it returns Timeout.
  double cycle_budget = std::numeric_limits<double>::infinity();
  /// Hard instruction-count backstop against runaway loops.
  std::uint64_t max_instructions = 4'000'000'000ull;
  std::size_t max_frames = 4096;
  /// Shadow-precision execution: carry a binary64 shadow value for every
  /// scalar slot, module scalar, and array element alongside the
  /// mixed-precision primary values, and record divergence provenance
  /// (see ShadowReport). Hard invariant: shadow bookkeeping never perturbs
  /// simulated cycles, outcomes, or the OpMix — it is pure observability.
  /// Shadow execution always runs on the reference interpreter regardless
  /// of `dispatch`.
  bool shadow = false;
  /// Execution engine (see VmDispatch). kAuto resolves to the build default.
  VmDispatch dispatch = VmDispatch::kAuto;
  /// Superinstruction fusion for the decoded engines. Results are
  /// bit-identical with fusion on or off; off exists for the
  /// fusion-neutrality test and A/B benchmarking.
  bool fuse = true;
  /// Pre-decoded instruction stream to reuse (must come from decode() of
  /// this Vm's exact program — the evaluator's per-variant decoded cache).
  /// Null = decode lazily on the first non-interpreted call().
  std::shared_ptr<const DecodedProgram> decoded;
};

/// Per-procedure execution statistics (collected without instrumentation
/// overhead — this is the data behind Figure 6).
struct ProcRunStats {
  std::uint64_t calls = 0;
  double inclusive_cycles = 0.0;
  double exclusive_cycles = 0.0;

  [[nodiscard]] double mean_call_cycles() const {
    return calls == 0 ? 0.0 : inclusive_cycles / static_cast<double>(calls);
  }
};

/// Executed-instruction mix for one call() — observability data for the
/// flight recorder (op-mix, cast-count, vectorized-vs-scalar counters per
/// run). Pure accounting: nothing here feeds back into the cost model, so a
/// run's simulated cycles are identical whether or not anyone reads this.
struct OpMix {
  std::uint64_t fp32_arith = 0;   // binary32 add/sub/mul/div/pow/neg
  std::uint64_t fp64_arith = 0;   // binary64 add/sub/mul/div/pow/neg
  std::uint64_t int_arith = 0;
  std::uint64_t casts = 0;        // executed kind conversions (f32<->f64)
  std::uint64_t mem = 0;          // element loads/stores, fills, copies, reductions
  std::uint64_t calls = 0;
  std::uint64_t branches = 0;     // jumps, conditional branches, loop conditions
  std::uint64_t intrinsics = 0;
  std::uint64_t other = 0;
  /// kLoopBegin executions, split by the loop's vectorization verdict.
  std::uint64_t vector_loop_entries = 0;
  std::uint64_t scalar_loop_entries = 0;

  [[nodiscard]] std::uint64_t fp_arith() const { return fp32_arith + fp64_arith; }
};

struct RunResult {
  Status status;
  double cycles = 0.0;            // simulated cycles for this call
  std::uint64_t instructions = 0;
  double cast_cycles = 0.0;       // cycles spent on kind conversions
  OpMix op_mix;
  /// Superinstruction dispatches (all-zero under the interpreter and under
  /// fuse=false). Deliberately outside OpMix: fusion must not change the
  /// op-mix a run reports.
  FusedStats fused;
};

/// Divergence record of one named variable under shadow execution. Relative
/// divergence of a value is |primary - shadow| / max(|primary|, |shadow|)
/// (0 when equal, +inf when either side is non-finite), so finite
/// divergences are bounded by 2 and a value flushed to zero scores 1.
struct ShadowVarStats {
  double max_rel_div = 0.0;   // max divergence observed at writes
  std::uint64_t writes = 0;   // writes recorded against this variable
};

/// Per-procedure shadow statistics. "Introduced" divergence is per-op
/// max(0, result_div - max operand_div): error born in this procedure, as
/// opposed to contamination propagated from upstream — the root-cause
/// ranking signal.
struct ShadowProcStats {
  double introduced_sum = 0.0;
  double introduced_max = 0.0;
  double max_rel_div = 0.0;              // max divergence of values written here
  std::uint64_t cancellations = 0;       // catastrophic-cancellation events
  std::uint64_t control_divergences = 0; // branches the shadow run would take differently
  double cast_cycles = 0.0;              // simulated cast cycles spent in this proc
  bool faulted = false;                  // the run faulted/timed out here
};

/// Everything the shadow execution learned about one call().
struct ShadowReport {
  bool enabled = false;
  double max_rel_div = 0.0;
  std::uint64_t cancellations = 0;
  std::uint64_t control_divergences = 0;
  /// First site where a written value's divergence exceeded 1e-6 (well above
  /// a single binary32 rounding at ~6e-8 — the onset of accumulation, not
  /// one benign rounding). Instruction index is relative to the procedure.
  bool has_first_divergence = false;
  std::string first_divergence_proc;
  std::int32_t first_divergence_instr = -1;
  /// Procedure in which the run faulted or timed out; empty if it finished.
  std::string fault_proc;
  std::map<std::string, ShadowVarStats> vars;    // qualified variable name
  std::map<std::string, ShadowProcStats> procs;  // qualified procedure name
};

/// Dense multi-dimensional array storage (column-major, 1-based like Fortran).
class ArrayStorage {
 public:
  ArrayStorage(int kind, int rank, const std::int64_t* extents);

  [[nodiscard]] int kind() const { return kind_; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] std::int64_t extent(int dim) const { return extents_[dim]; }
  [[nodiscard]] std::int64_t total() const { return total_; }

  /// Linear index from 1-based subscripts; negative on out-of-bounds.
  /// Inline: called once per array access in the execution engines' hottest
  /// handlers, where an out-of-line call would dominate the element work.
  [[nodiscard]] std::int64_t linearize(std::int64_t i, std::int64_t j,
                                       std::int64_t k) const {
    if (i < 1 || i > extents_[0]) return -1;
    std::int64_t linear = i - 1;
    if (rank_ >= 2) {
      if (j < 1 || j > extents_[1]) return -1;
      linear += extents_[0] * (j - 1);
    }
    if (rank_ >= 3) {
      if (k < 1 || k > extents_[2]) return -1;
      linear += extents_[0] * extents_[1] * (k - 1);
    }
    return linear;
  }

  [[nodiscard]] double get(std::int64_t linear) const {
    return kind_ == 4 ? static_cast<double>(f32_[static_cast<std::size_t>(linear)])
                      : f64_[static_cast<std::size_t>(linear)];
  }
  void set(std::int64_t linear, double value) {
    if (kind_ == 4) {
      f32_[static_cast<std::size_t>(linear)] = static_cast<float>(value);
    } else {
      f64_[static_cast<std::size_t>(linear)] = value;
    }
  }

  /// Shadow-execution support: an optional binary64 mirror of the payload,
  /// initialized from the current primary values. Never consulted by get/set.
  void enable_shadow();
  [[nodiscard]] bool has_shadow() const { return !shadow_.empty(); }
  [[nodiscard]] double shadow_get(std::int64_t linear) const {
    return shadow_[static_cast<std::size_t>(linear)];
  }
  void shadow_set(std::int64_t linear, double value) {
    shadow_[static_cast<std::size_t>(linear)] = value;
  }

 private:
  int kind_;
  int rank_;
  std::int64_t extents_[3] = {1, 1, 1};
  std::int64_t total_ = 0;
  std::vector<float> f32_;
  std::vector<double> f64_;
  std::vector<double> shadow_;
};

class Vm;

/// Decoded-stream execution engines (vm_dispatch.cpp). Free friend
/// functions rather than members so the threaded engine can export its
/// handler-label table without an instance (vm == nullptr, table_out set).
Status vm_engine_switch(Vm* vm, const DecodedProgram* decoded);
Status vm_engine_threaded(Vm* vm, const DecodedProgram* decoded,
                          const void* const** table_out);

class Vm {
 public:
  explicit Vm(const CompiledProgram* program, VmOptions options = {});

  /// True when this build's threaded (computed-goto) engine exists.
  [[nodiscard]] static bool threaded_available();
  /// What VmDispatch::kAuto resolves to in this build (PROSE_VM_DISPATCH).
  [[nodiscard]] static VmDispatch default_dispatch();
  /// The engine call() will actually use, after resolving kAuto, the
  /// threaded→switch fallback, and the shadow-forces-interpreter rule.
  [[nodiscard]] VmDispatch resolved_dispatch() const;

  /// Re-initializes all module storage (zeros + declared initializers).
  void reset();

  // --- module data access for harness drivers ---
  Status set_scalar(const std::string& qualified, double value);
  StatusOr<double> get_scalar(const std::string& qualified) const;
  Status set_array(const std::string& qualified, std::span<const double> values);
  StatusOr<std::vector<double>> get_array(const std::string& qualified) const;
  /// Element count of a module array.
  StatusOr<std::int64_t> array_size(const std::string& qualified) const;

  /// Runs a no-argument entry procedure ("module::proc") to completion.
  RunResult call(const std::string& qualified_proc);

  [[nodiscard]] const std::vector<ProcRunStats>& proc_stats() const { return proc_stats_; }
  [[nodiscard]] const ProcRunStats* proc_stats(const std::string& qualified) const;

  [[nodiscard]] gptl::Timers& timers() { return timers_; }
  [[nodiscard]] const gptl::Timers& timers() const { return timers_; }
  [[nodiscard]] double now() const { return clock_.now(); }
  [[nodiscard]] const std::string& print_log() const { return print_log_; }
  [[nodiscard]] const CompiledProgram& program() const { return *program_; }

  /// Divergence provenance accumulated since reset() (empty/disabled unless
  /// VmOptions::shadow was set).
  [[nodiscard]] ShadowReport shadow_report() const;

 private:
  struct Frame {
    std::int32_t proc = -1;
    std::size_t slot_base = 0;
    std::int32_t return_pc = -1;
    std::int32_t site = -1;          // CallSiteMeta index (-1 for the entry)
    std::size_t caller_slot_base = 0;
    double scale = 1.0;              // inlined-call cost multiplier
    double entry_cycles = 0.0;
    double child_cycles = 0.0;
    std::vector<ArrayStorage*> arrays;             // bound views
    std::vector<std::unique_ptr<ArrayStorage>> owned;  // locals/automatics
  };

  Status push_frame(std::int32_t proc_index, std::int32_t site_index,
                    std::int32_t return_pc);
  void bind_frame_arrays(Frame& frame, const ProcMeta& meta, const CallSiteMeta* site);
  Status pop_frame(std::int32_t& pc);

  [[nodiscard]] Status fault(const std::string& message) const;
  Status run_loop();

  friend Status vm_engine_switch(Vm* vm, const DecodedProgram* decoded);
  friend Status vm_engine_threaded(Vm* vm, const DecodedProgram* decoded,
                                   const void* const** table_out);

  /// Returns the decoded stream for program_ (options_.decoded if supplied,
  /// else decoded once and cached), or the decode failure.
  StatusOr<const DecodedProgram*> ensure_decoded();

  // --- shadow execution (all no-ops unless options_.shadow) ---
  void init_shadow_tables();
  std::int32_t shadow_var_index(const std::string& name);
  void shadow_step(const Instr& in, const Frame& frame, std::int32_t pc);
  void shadow_branch(const Instr& in, const Frame& frame);
  void note_shadow_div(double div, std::int32_t proc, std::int32_t pc);
  void note_shadow_write(std::int32_t dst, const Frame& frame, std::int32_t pc);
  void note_shadow_var(std::int32_t var, double div);
  void note_shadow_fault(const Status& status);

  double slot(std::size_t index) const { return slots_[index]; }

  const CompiledProgram* program_;
  VmOptions options_;
  gptl::SimClock clock_;
  gptl::Timers timers_;
  std::vector<double> globals_;
  std::vector<ArrayStorage> global_arrays_;
  std::vector<double> slots_;
  std::vector<Frame> frames_;
  std::vector<ProcRunStats> proc_stats_;
  std::string print_log_;
  double run_start_cycles_ = 0.0;
  double cast_cycles_ = 0.0;
  std::uint64_t instructions_ = 0;
  OpMix op_mix_;
  FusedStats fused_;                // per-call, like op_mix_
  std::int32_t fault_pc_ = -1;
  /// Lazily decoded stream (when options_.decoded was not supplied) and the
  /// sticky decode verdict, so a malformed program fails every call the
  /// same way without re-running the verifier.
  std::shared_ptr<const DecodedProgram> decoded_local_;
  Status decode_status_ = Status::ok();
  bool decode_attempted_ = false;

  // --- shadow execution state (allocated only when options_.shadow) ---
  bool shadow_ = false;
  std::vector<double> shadow_slots_;    // parallel to slots_
  std::vector<double> shadow_globals_;  // parallel to globals_
  std::vector<ShadowProcStats> shadow_procs_;       // per proc index
  std::vector<ShadowVarStats> shadow_vars_;         // per tracked variable
  std::vector<std::string> shadow_var_names_;       // parallel to shadow_vars_
  std::map<std::string, std::int32_t> shadow_var_index_;
  std::vector<std::vector<std::int32_t>> slot_var_;   // proc → slot → var (-1)
  std::vector<std::vector<std::int32_t>> array_var_;  // proc → array slot → var
  std::vector<std::int32_t> global_var_;              // global scalar → var
  double shadow_max_div_ = 0.0;
  std::uint64_t shadow_cancellations_ = 0;
  std::uint64_t shadow_control_divs_ = 0;
  std::int32_t first_div_proc_ = -1;
  std::int32_t first_div_instr_ = -1;   // absolute instruction index
  std::int32_t shadow_fault_proc_ = -1;
};

}  // namespace prose::sim
