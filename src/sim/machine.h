// Analytic machine model for the simulated evaluation substrate.
//
// The paper's experiments ran on Derecho nodes (AMD Milan, AVX2-class SIMD,
// 64-bit and 32-bit vector arithmetic at 2× relative throughput). We do not
// claim cycle-accurate fidelity to that hardware; the model captures the
// first-order effects the paper's analysis rests on:
//   * vector lanes: twice as many f32 elements per vector op as f64,
//   * memory traffic: f32 moves half the bytes,
//   * casting overhead: explicit convert instructions at kind boundaries,
//   * call overhead: non-inlined calls pay a fixed cost; wrapper-mediated
//     calls are never inlined,
//   * collectives: latency ∝ log2(ranks), not vectorizable.
//
// All costs are in "cycles" of a simulated clock; speedups are ratios, so
// the absolute scale is immaterial.
#pragma once

#include <cstdint>

namespace prose::sim {

struct MachineModel {
  // --- SIMD ---
  int vector_lanes_f32 = 16;  // AVX-512-class single-precision lanes
  int vector_lanes_f64 = 8;
  /// Fixed cycles charged when entering a vectorized loop (prologue/epilogue
  /// and remainder handling, amortized per entry).
  double vector_loop_overhead = 12.0;

  // --- ALU (scalar cost per operation; vector ops amortize by lane count) ---
  double cost_add = 1.0;
  double cost_mul = 1.0;
  double cost_div = 8.0;
  double cost_pow = 30.0;
  double cost_cmp = 1.0;
  double cost_logical = 0.5;
  double cost_intrin_cheap = 2.0;    // abs, min, max, sign, mod
  double cost_intrin_sqrt = 10.0;
  double cost_intrin_trans = 22.0;   // exp/log/sin/cos/tan/atan
  double cost_int_op = 0.5;
  /// Scalar single-precision division/sqrt/transcendentals are cheaper than
  /// their double counterparts (divss vs divsd, sinf vs sin): multiplier on
  /// those op costs for f32 operands outside vectorized loops. (Inside
  /// vectorized loops the wider lane count already models the advantage.)
  double f32_scalar_math_discount = 0.55;
  /// One kind-conversion instruction (cvtss2sd-class). Inside vectorized
  /// loops casts also force lane splitting/merging; see cast_vector_penalty.
  double cost_cast = 2.0;
  /// Extra factor applied to casts inside vectorized loops (pack/unpack).
  double cast_vector_penalty = 1.2;

  // --- Memory ---
  /// Per-access instruction overhead (address generation, issue); amortizes
  /// under vectorization.
  double mem_access_overhead = 0.8;
  /// Cycles per byte of array traffic (never amortized by vectorization —
  /// bandwidth is bandwidth). 8-byte load = 1 cycle, 4-byte = 0.5.
  double mem_cost_per_byte = 0.125;
  /// Scalar (non-array) variable accesses are register/L1-resident.
  double scalar_access_cost = 0.15;

  // --- Control flow and calls ---
  double cost_branch = 1.5;
  double cost_loop_iter = 1.0;       // induction update + compare + branch
  double call_overhead = 35.0;       // non-inlined call + frame + returns
  double cost_arg = 1.0;             // per scalar argument moved
  double cost_array_arg = 2.0;       // array descriptor passing
  /// Statement-count ceiling for inline eligibility.
  int inline_max_stmts = 8;

  // --- MPI (single simulated process owns the global domain; collectives
  //     charge the latency the decomposed run would observe) ---
  int mpi_ranks = 64;
  double allreduce_alpha = 220.0;    // per-hop latency, × log2(ranks)
  double allreduce_beta = 0.5;       // per-byte

  // --- GPTL instrumentation ---
  double gptl_overhead_cycles = 40.0;

  [[nodiscard]] int lanes_for_kind(int kind) const {
    return kind == 4 ? vector_lanes_f32 : vector_lanes_f64;
  }
  [[nodiscard]] double bytes_for_kind(int kind) const { return kind == 4 ? 4.0 : 8.0; }
};

/// Why a loop failed (or succeeded) vectorization — the analogue of the
/// compiler vectorization report the paper recommends consulting (§V).
enum class VecStatus : std::uint8_t {
  kVectorized,
  kCarriedDependence,   // loop-carried data dependence (e.g. x(i) uses x(i-1))
  kNonInlinableCall,    // calls a procedure the inliner rejected (e.g. wrapper)
  kIrregularControl,    // exit/cycle/return or do-while form
  kCollective,          // MPI collective in the body
  kPrintIo,             // I/O in the body
  kOuterLoop,           // not an innermost loop
  kScalarRecurrence,    // non-reduction scalar recurrence
};

const char* to_string(VecStatus s);

}  // namespace prose::sim
