#include "sim/decode.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "ftn/symbols.h"

namespace prose::sim {

namespace {

using ftn::Intrinsic;

/// Code range owned by one procedure: [first, last). Procedures are emitted
/// contiguously, so sorting by first_instr recovers the ranges.
struct ProcRange {
  std::int32_t proc = -1;
  std::int32_t first = 0;
  std::int32_t last = 0;
};

/// Op-mix class — must agree with vm.cpp's count_op() (the
/// dispatch-equivalence suite compares OpMix field by field).
std::uint8_t mix_class(Op op) {
  switch (op) {
    case Op::kAddF32: case Op::kSubF32: case Op::kMulF32: case Op::kDivF32:
    case Op::kPowF32: case Op::kNegF32:
      return kMixFp32;
    case Op::kAddF64: case Op::kSubF64: case Op::kMulF64: case Op::kDivF64:
    case Op::kPowF64: case Op::kNegF64:
      return kMixFp64;
    case Op::kAddI: case Op::kSubI: case Op::kMulI: case Op::kDivI:
    case Op::kPowI: case Op::kNegI: case Op::kCastInt:
      return kMixInt;
    case Op::kCastF32: case Op::kCastF64:
      return kMixCast;
    case Op::kLoadElem: case Op::kStoreElem: case Op::kArrayFill:
    case Op::kArrayCopy: case Op::kReduce:
      return kMixMem;
    case Op::kCall:
      return kMixCall;
    case Op::kJmp: case Op::kJmpIfFalse: case Op::kLoopCond:
      return kMixBranch;
    case Op::kIntrin1: case Op::kIntrin2:
      return kMixIntrinsic;
    default:
      return kMixOther;
  }
}

/// 1:1 opcode translation (no fusion, no context): everything except the
/// resolved variants, which the caller special-cases.
XOp plain_xop(Op op) {
  switch (op) {
    case Op::kNop: return XOp::kNop;
    case Op::kLoadConst: return XOp::kLoadConst;
    case Op::kMov: return XOp::kMov;
    case Op::kCastF32: return XOp::kCastF32;
    case Op::kCastF64: return XOp::kCastF64;
    case Op::kCastInt: return XOp::kCastInt;
    case Op::kLoadGlobal: return XOp::kLoadGlobal;
    case Op::kStoreGlobal: return XOp::kStoreGlobalF64;  // resolved by caller
    case Op::kAddF32: return XOp::kAddF32;
    case Op::kSubF32: return XOp::kSubF32;
    case Op::kMulF32: return XOp::kMulF32;
    case Op::kDivF32: return XOp::kDivF32;
    case Op::kPowF32: return XOp::kPowF32;
    case Op::kAddF64: return XOp::kAddF64;
    case Op::kSubF64: return XOp::kSubF64;
    case Op::kMulF64: return XOp::kMulF64;
    case Op::kDivF64: return XOp::kDivF64;
    case Op::kPowF64: return XOp::kPowF64;
    case Op::kAddI: return XOp::kAddI;
    case Op::kSubI: return XOp::kSubI;
    case Op::kMulI: return XOp::kMulI;
    case Op::kDivI: return XOp::kDivI;
    case Op::kPowI: return XOp::kPowI;
    case Op::kNegF32: return XOp::kNegF32;
    case Op::kNegF64: return XOp::kNegF64;
    case Op::kNegI: return XOp::kNegI;
    case Op::kCmpEq: return XOp::kCmpEq;
    case Op::kCmpNe: return XOp::kCmpNe;
    case Op::kCmpLt: return XOp::kCmpLt;
    case Op::kCmpLe: return XOp::kCmpLe;
    case Op::kCmpGt: return XOp::kCmpGt;
    case Op::kCmpGe: return XOp::kCmpGe;
    case Op::kAnd: return XOp::kAnd;
    case Op::kOr: return XOp::kOr;
    case Op::kNot: return XOp::kNot;
    case Op::kEqv: return XOp::kEqv;
    case Op::kNeqv: return XOp::kNeqv;
    case Op::kIntrin1: return XOp::kIntrin1;
    case Op::kIntrin2: return XOp::kIntrin2;
    case Op::kLoadElem: return XOp::kLoadElem;
    case Op::kStoreElem: return XOp::kStoreElem;
    case Op::kArrayFill: return XOp::kArrayFill;
    case Op::kArrayCopy: return XOp::kArrayCopy;
    case Op::kReduce: return XOp::kReduce;
    case Op::kArraySize: return XOp::kArraySize;
    case Op::kAllReduce: return XOp::kAllReduce;
    case Op::kJmp: return XOp::kJmp;
    case Op::kJmpIfFalse: return XOp::kJmpIfFalse;
    case Op::kLoopCond: return XOp::kLoopCond;
    case Op::kLoopBegin: return XOp::kLoopBeginScalar;  // resolved by caller
    case Op::kLoopEnd: return XOp::kLoopEnd;
    case Op::kAllocArray: return XOp::kAllocArray;
    case Op::kCall: return XOp::kCall;
    case Op::kRet: return XOp::kRet;
    case Op::kPrint: return XOp::kPrint;
    case Op::kHalt: return XOp::kHalt;
  }
  return XOp::kNop;
}

bool is_cmp(Op op) {
  return op == Op::kCmpEq || op == Op::kCmpNe || op == Op::kCmpLt ||
         op == Op::kCmpLe || op == Op::kCmpGt || op == Op::kCmpGe;
}

/// Fusable arithmetic second/first components: add/sub/mul/div (pow is rare
/// and has a libm call in the body — not worth a superinstruction).
bool fusable_arith(Op op, bool* f32, int* which) {
  switch (op) {
    case Op::kAddF32: *f32 = true; *which = 0; return true;
    case Op::kSubF32: *f32 = true; *which = 1; return true;
    case Op::kMulF32: *f32 = true; *which = 2; return true;
    case Op::kDivF32: *f32 = true; *which = 3; return true;
    case Op::kAddF64: *f32 = false; *which = 0; return true;
    case Op::kSubF64: *f32 = false; *which = 1; return true;
    case Op::kMulF64: *f32 = false; *which = 2; return true;
    case Op::kDivF64: *f32 = false; *which = 3; return true;
    default: return false;
  }
}

/// Fusable integer arithmetic (kDivI is excluded: its divide-by-zero fault
/// path would complicate the fused handler for a rare dynamic op).
bool fusable_int_arith(Op op, int* which) {
  switch (op) {
    case Op::kAddI: *which = 0; return true;
    case Op::kSubI: *which = 1; return true;
    case Op::kMulI: *which = 2; return true;
    default: return false;
  }
}

}  // namespace

const char* fused_family_name(std::uint8_t family) {
  switch (family) {
    case kFuseLoopCondJmp: return "loop-cond-jmp";
    case kFuseIncJmp: return "inc-jmp";
    case kFuseCmpJmp: return "cmp-jmp";
    case kFuseCastMov: return "cast-mov";
    case kFuseCastStore: return "cast-store";
    case kFuseLoadArith: return "load-arith";
    case kFuseArithStore: return "arith-store";
    case kFuseConstArith: return "const-arith";
    case kFuseLoadConst: return "load-const";
    default: return "unknown";
  }
}

StatusOr<std::shared_ptr<const DecodedProgram>> decode(
    const CompiledProgram& program, const DecodeOptions& options) {
  const std::vector<Instr>& code = program.code;
  const auto code_size = static_cast<std::int32_t>(code.size());

  // --- recover per-procedure code ranges -----------------------------------
  std::vector<ProcRange> ranges(program.procs.size());
  for (std::size_t p = 0; p < program.procs.size(); ++p) {
    ranges[p].proc = static_cast<std::int32_t>(p);
    ranges[p].first = program.procs[p].first_instr;
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const ProcRange& x, const ProcRange& y) { return x.first < y.first; });
  for (std::size_t r = 0; r < ranges.size(); ++r) {
    ranges[r].last = r + 1 < ranges.size() ? ranges[r + 1].first : code_size;
  }

  const auto err = [&](std::int32_t pc, const std::string& what) -> Status {
    std::string where = " at instr " + std::to_string(pc);
    for (const ProcRange& r : ranges) {
      if (pc >= r.first && pc < r.last) {
        where += " (" + program.procs[static_cast<std::size_t>(r.proc)].qualified() + ")";
        break;
      }
    }
    return Status(StatusCode::kInvalidArgument, "decode: " + what + where);
  };

  for (const ProcRange& r : ranges) {
    const ProcMeta& meta = program.procs[static_cast<std::size_t>(r.proc)];
    if (r.first < 0 || r.first >= code_size || r.first >= r.last) {
      return Status(StatusCode::kInvalidArgument,
                    "decode: procedure '" + meta.qualified() +
                        "' has an empty or out-of-range code range");
    }
  }

  // --- per-procedure metadata checks ---------------------------------------
  for (std::size_t p = 0; p < program.procs.size(); ++p) {
    const ProcMeta& meta = program.procs[p];
    const auto bad = [&](const std::string& what) -> Status {
      return Status(StatusCode::kInvalidArgument,
                    "decode: " + what + " in procedure '" + meta.qualified() + "'");
    };
    if (meta.num_slots < 0) return bad("negative scalar frame size");
    const auto ok_slot = [&](std::int32_t s) {
      return s >= 0 && s < meta.num_slots;
    };
    for (const std::int32_t s : meta.scalar_param_slots) {
      if (!ok_slot(s)) return bad("scalar parameter slot out of range");
    }
    if (meta.result_slot >= 0 && !ok_slot(meta.result_slot)) {
      return bad("result slot out of range");
    }
    for (const ArraySlotMeta& a : meta.arrays) {
      if (a.rank < 1 || a.rank > 3) return bad("array rank out of range");
      switch (a.binding) {
        case ArrayBinding::kGlobal:
          if (a.global_index < 0 ||
              static_cast<std::size_t>(a.global_index) >= program.global_arrays.size()) {
            return bad("global array index out of range");
          }
          break;
        case ArrayBinding::kLocal:
          for (int d = 0; d < a.rank; ++d) {
            if (a.extents[d] <= 0) return bad("non-positive local array extent");
          }
          break;
        case ArrayBinding::kAutomatic:
          for (int d = 0; d < a.rank; ++d) {
            if (a.extents[d] == -2 && !ok_slot(a.extent_slots[d])) {
              return bad("automatic array extent slot out of range");
            }
          }
          break;
        case ArrayBinding::kDummy:
          if (a.dummy_position < 0) return bad("dummy array without a position");
          break;
      }
    }
  }

  // --- per-instruction verification + lowering -----------------------------
  auto decoded = std::make_shared<DecodedProgram>();
  decoded->code.resize(code.size());

  // Basic-block leaders: positions a jump, call return, or procedure entry
  // can land on. A fused pair's second component must not be a leader — that
  // is what makes skipping it sound.
  std::vector<char> leader(code.size(), 0);
  for (const ProcRange& r : ranges) leader[static_cast<std::size_t>(r.first)] = 1;

  for (const ProcRange& r : ranges) {
    const ProcMeta& meta = program.procs[static_cast<std::size_t>(r.proc)];
    const auto ok_slot = [&](std::int32_t s) { return s >= 0 && s < meta.num_slots; };
    const auto ok_opt_slot = [&](std::int32_t s) { return s < 0 || s < meta.num_slots; };
    const auto ok_array = [&](std::int32_t a) {
      return a >= 0 && static_cast<std::size_t>(a) < meta.arrays.size();
    };

    for (std::int32_t pc = r.first; pc < r.last; ++pc) {
      const Instr& in = code[static_cast<std::size_t>(pc)];
      DecodedInstr& d = decoded->code[static_cast<std::size_t>(pc)];
      d.imm = in.imm;
      d.cost = in.cost;
      d.dst = in.dst;
      d.a = in.a;
      d.b = in.b;
      d.c = in.c;
      d.aux = in.aux;
      d.aux2 = in.aux2;
      d.kind = in.kind;
      d.op = plain_xop(in.op);
      d.mix = mix_class(in.op);

      // The engines accumulate cost*scale into a local clock without the
      // interpreter's per-instruction cost>0 test, which is only sound if
      // every static cost is a finite non-negative number.
      if (!(in.cost >= 0.0) || !std::isfinite(in.cost)) {
        return err(pc, "negative or non-finite cost");
      }

      switch (in.op) {
        case Op::kNop:
        case Op::kLoopEnd:
        case Op::kHalt:
        case Op::kRet:
          break;
        case Op::kLoadConst:
          if (!ok_slot(in.dst)) return err(pc, "bad destination slot");
          break;
        case Op::kMov:
        case Op::kCastF64:
        case Op::kNegF32: case Op::kNegF64: case Op::kNegI:
        case Op::kNot:
        case Op::kAllReduce:
          if (!ok_slot(in.dst) || !ok_slot(in.a)) return err(pc, "bad operand slot");
          break;
        case Op::kCastF32:
          if (!ok_slot(in.dst) || !ok_slot(in.a)) return err(pc, "bad operand slot");
          break;
        case Op::kCastInt:
          if (!ok_slot(in.dst) || !ok_slot(in.a)) return err(pc, "bad operand slot");
          d.sub = in.aux2 == 0 ? 0 : (in.aux2 == 1 ? 1 : 2);
          break;
        case Op::kLoadGlobal:
        case Op::kStoreGlobal: {
          if (in.aux < 0 ||
              static_cast<std::size_t>(in.aux) >= program.global_scalars.size()) {
            return err(pc, "global scalar index out of range");
          }
          const std::int32_t s = in.op == Op::kLoadGlobal ? in.dst : in.a;
          if (!ok_slot(s)) return err(pc, "bad operand slot");
          if (in.op == Op::kStoreGlobal) {
            // Resolve the target's kind once: the f32 variant carries the
            // narrowing overflow trap, the f64 variant is a plain store.
            d.op = program.global_scalars[static_cast<std::size_t>(in.aux)].kind == 4
                       ? XOp::kStoreGlobalF32
                       : XOp::kStoreGlobalF64;
          }
          break;
        }
        case Op::kAddF32: case Op::kSubF32: case Op::kMulF32: case Op::kDivF32:
        case Op::kPowF32:
        case Op::kAddF64: case Op::kSubF64: case Op::kMulF64: case Op::kDivF64:
        case Op::kPowF64:
        case Op::kAddI: case Op::kSubI: case Op::kMulI: case Op::kDivI:
        case Op::kPowI:
        case Op::kCmpEq: case Op::kCmpNe: case Op::kCmpLt: case Op::kCmpLe:
        case Op::kCmpGt: case Op::kCmpGe:
        case Op::kAnd: case Op::kOr: case Op::kEqv: case Op::kNeqv:
          if (!ok_slot(in.dst) || !ok_slot(in.a) || !ok_slot(in.b)) {
            return err(pc, "bad operand slot");
          }
          break;
        case Op::kIntrin1: {
          if (!ok_slot(in.dst) || !ok_slot(in.a)) return err(pc, "bad operand slot");
          const auto intr = static_cast<Intrinsic>(in.aux);
          if (intr != Intrinsic::kAbs && intr != Intrinsic::kSqrt &&
              intr != Intrinsic::kExp && intr != Intrinsic::kLog &&
              intr != Intrinsic::kSin && intr != Intrinsic::kCos &&
              intr != Intrinsic::kTan && intr != Intrinsic::kAtan) {
            return err(pc, "unknown unary intrinsic");
          }
          break;
        }
        case Op::kIntrin2: {
          if (!ok_slot(in.dst) || !ok_slot(in.a) || !ok_slot(in.b)) {
            return err(pc, "bad operand slot");
          }
          const auto intr = static_cast<Intrinsic>(in.aux);
          if (intr != Intrinsic::kMin && intr != Intrinsic::kMax &&
              intr != Intrinsic::kMod && intr != Intrinsic::kSign &&
              intr != Intrinsic::kAtan2) {
            return err(pc, "unknown binary intrinsic");
          }
          break;
        }
        case Op::kLoadElem:
        case Op::kStoreElem:
          if (!ok_array(in.aux)) return err(pc, "array slot out of range");
          if (!ok_slot(in.dst)) return err(pc, "bad operand slot");
          if (!ok_opt_slot(in.a) || !ok_opt_slot(in.b) || !ok_opt_slot(in.c)) {
            return err(pc, "bad subscript slot");
          }
          break;
        case Op::kArrayFill:
          if (!ok_array(in.aux)) return err(pc, "array slot out of range");
          if (!ok_slot(in.a)) return err(pc, "bad operand slot");
          break;
        case Op::kArrayCopy:
          if (!ok_array(in.aux) || !ok_array(in.aux2)) {
            return err(pc, "array slot out of range");
          }
          break;
        case Op::kReduce:
          if (!ok_array(in.aux)) return err(pc, "array slot out of range");
          if (!ok_slot(in.dst)) return err(pc, "bad destination slot");
          break;
        case Op::kArraySize:
          if (!ok_array(in.aux)) return err(pc, "array slot out of range");
          if (!ok_slot(in.dst)) return err(pc, "bad destination slot");
          if (in.aux2 < 0 || in.aux2 > 3) return err(pc, "array dimension out of range");
          break;
        case Op::kJmp:
        case Op::kJmpIfFalse:
          if (in.aux < r.first || in.aux >= r.last) {
            return err(pc, "jump target outside procedure");
          }
          leader[static_cast<std::size_t>(in.aux)] = 1;
          if (in.op == Op::kJmpIfFalse && !ok_slot(in.a)) {
            return err(pc, "bad condition slot");
          }
          break;
        case Op::kLoopCond:
          if (!ok_slot(in.dst) || !ok_slot(in.a) || !ok_slot(in.b) || !ok_slot(in.c)) {
            return err(pc, "bad operand slot");
          }
          break;
        case Op::kLoopBegin:
          // The interpreter treats an out-of-range loop index as scalar;
          // resolve the same verdict statically.
          d.op = (in.aux >= 0 &&
                  static_cast<std::size_t>(in.aux) < program.loops.size() &&
                  program.loops[static_cast<std::size_t>(in.aux)].vectorized)
                     ? XOp::kLoopBeginVec
                     : XOp::kLoopBeginScalar;
          break;
        case Op::kAllocArray: {
          if (!ok_array(in.aux)) return err(pc, "array slot out of range");
          const ArraySlotMeta& a = meta.arrays[static_cast<std::size_t>(in.aux)];
          if (a.binding != ArrayBinding::kAutomatic) {
            return err(pc, "kAllocArray on a non-automatic array");
          }
          break;
        }
        case Op::kCall: {
          if (in.aux < 0 ||
              static_cast<std::size_t>(in.aux) >= program.procs.size()) {
            return err(pc, "callee index out of range");
          }
          if (in.aux2 < 0 ||
              static_cast<std::size_t>(in.aux2) >= program.call_sites.size()) {
            return err(pc, "call-site index out of range");
          }
          const CallSiteMeta& site =
              program.call_sites[static_cast<std::size_t>(in.aux2)];
          const ProcMeta& callee = program.procs[static_cast<std::size_t>(in.aux)];
          if (site.callee != in.aux) return err(pc, "call-site callee mismatch");
          if (site.scalar_args.size() != callee.scalar_param_slots.size()) {
            return err(pc, "call argument count mismatch");
          }
          for (const ScalarArgMeta& arg : site.scalar_args) {
            if (!ok_slot(arg.value_slot)) return err(pc, "bad argument slot");
            switch (arg.writeback) {
              case WritebackKind::kNone:
                break;
              case WritebackKind::kSlot:
                if (!ok_slot(arg.wb_slot)) return err(pc, "bad writeback slot");
                break;
              case WritebackKind::kGlobal:
                if (arg.wb_slot < 0 ||
                    static_cast<std::size_t>(arg.wb_slot) >=
                        program.global_scalars.size()) {
                  return err(pc, "bad writeback global");
                }
                break;
              case WritebackKind::kElement:
                if (!ok_array(arg.wb_array)) return err(pc, "bad writeback array");
                if (!ok_opt_slot(arg.wb_index[0]) || !ok_opt_slot(arg.wb_index[1]) ||
                    !ok_opt_slot(arg.wb_index[2])) {
                  return err(pc, "bad writeback subscript slot");
                }
                break;
            }
          }
          for (const ArrayArgMeta& arg : site.array_args) {
            if (!ok_array(arg.caller_array_slot)) {
              return err(pc, "bad array argument slot");
            }
          }
          for (const ArraySlotMeta& a : callee.arrays) {
            if (a.binding == ArrayBinding::kDummy &&
                (a.dummy_position < 0 ||
                 static_cast<std::size_t>(a.dummy_position) >= site.array_args.size())) {
              return err(pc, "dummy array position out of range");
            }
          }
          if (site.result_slot >= 0 && !ok_slot(site.result_slot)) {
            return err(pc, "bad result slot");
          }
          if (pc + 1 < code_size) leader[static_cast<std::size_t>(pc + 1)] = 1;
          break;
        }
        case Op::kPrint: {
          if (in.aux2 < 0 ||
              static_cast<std::size_t>(in.aux2) >= program.prints.size()) {
            return err(pc, "print meta index out of range");
          }
          const PrintMeta& pm = program.prints[static_cast<std::size_t>(in.aux2)];
          for (const std::int32_t s : pm.arg_slots) {
            if (!ok_slot(s)) return err(pc, "bad print argument slot");
          }
          break;
        }
      }
    }

    // A procedure must not be able to fall off the end of its code range:
    // its last instruction has to transfer control unconditionally.
    const Instr& last = code[static_cast<std::size_t>(r.last - 1)];
    if (last.op != Op::kRet && last.op != Op::kJmp && last.op != Op::kHalt) {
      return err(r.last - 1, "procedure can fall through its code range");
    }
  }

  // --- superinstruction fusion ---------------------------------------------
  if (options.fuse) {
    decoded->fused = true;
    static constexpr XOp kCmpJmp[6] = {XOp::kFusedCmpEqJmp, XOp::kFusedCmpNeJmp,
                                       XOp::kFusedCmpLtJmp, XOp::kFusedCmpLeJmp,
                                       XOp::kFusedCmpGtJmp, XOp::kFusedCmpGeJmp};
    static constexpr XOp kLoadArith[2][4] = {
        {XOp::kFusedLoadAddF32, XOp::kFusedLoadSubF32, XOp::kFusedLoadMulF32,
         XOp::kFusedLoadDivF32},
        {XOp::kFusedLoadAddF64, XOp::kFusedLoadSubF64, XOp::kFusedLoadMulF64,
         XOp::kFusedLoadDivF64}};
    static constexpr XOp kArithStore[2][4] = {
        {XOp::kFusedAddStoreF32, XOp::kFusedSubStoreF32, XOp::kFusedMulStoreF32,
         XOp::kFusedDivStoreF32},
        {XOp::kFusedAddStoreF64, XOp::kFusedSubStoreF64, XOp::kFusedMulStoreF64,
         XOp::kFusedDivStoreF64}};
    static constexpr XOp kConstArith[2][4] = {
        {XOp::kFusedConstAddF32, XOp::kFusedConstSubF32, XOp::kFusedConstMulF32,
         XOp::kFusedConstDivF32},
        {XOp::kFusedConstAddF64, XOp::kFusedConstSubF64, XOp::kFusedConstMulF64,
         XOp::kFusedConstDivF64}};
    static constexpr XOp kConstIntArith[3] = {
        XOp::kFusedConstAddI, XOp::kFusedConstSubI, XOp::kFusedConstMulI};

    for (const ProcRange& r : ranges) {
      for (std::int32_t pc = r.first; pc + 1 < r.last;) {
        if (leader[static_cast<std::size_t>(pc + 1)]) {
          ++pc;
          continue;
        }
        const Op op1 = code[static_cast<std::size_t>(pc)].op;
        const Op op2 = code[static_cast<std::size_t>(pc + 1)].op;
        XOp fusedOp = XOp::kNop;
        std::uint8_t family = kNumFusedFamilies;
        bool f32 = false;
        int which = 0;
        if (op1 == Op::kLoopCond && op2 == Op::kJmpIfFalse) {
          fusedOp = XOp::kFusedLoopCondJmp;
          family = kFuseLoopCondJmp;
        } else if (op1 == Op::kAddI && op2 == Op::kJmp) {
          fusedOp = XOp::kFusedIncJmp;
          family = kFuseIncJmp;
        } else if (is_cmp(op1) && op2 == Op::kJmpIfFalse) {
          fusedOp = kCmpJmp[static_cast<int>(op1) - static_cast<int>(Op::kCmpEq)];
          family = kFuseCmpJmp;
        } else if ((op1 == Op::kCastF32 || op1 == Op::kCastF64) && op2 == Op::kMov) {
          fusedOp = op1 == Op::kCastF32 ? XOp::kFusedCastF32Mov : XOp::kFusedCastF64Mov;
          family = kFuseCastMov;
        } else if ((op1 == Op::kCastF32 || op1 == Op::kCastF64) &&
                   op2 == Op::kStoreElem) {
          fusedOp =
              op1 == Op::kCastF32 ? XOp::kFusedCastF32Store : XOp::kFusedCastF64Store;
          family = kFuseCastStore;
        } else if (op1 == Op::kLoadElem && fusable_arith(op2, &f32, &which)) {
          fusedOp = kLoadArith[f32 ? 0 : 1][which];
          family = kFuseLoadArith;
        } else if (fusable_arith(op1, &f32, &which) && op2 == Op::kStoreElem) {
          fusedOp = kArithStore[f32 ? 0 : 1][which];
          family = kFuseArithStore;
        } else if (op1 == Op::kLoadConst && fusable_arith(op2, &f32, &which)) {
          fusedOp = kConstArith[f32 ? 0 : 1][which];
          family = kFuseConstArith;
        } else if (op1 == Op::kLoadConst && fusable_int_arith(op2, &which)) {
          fusedOp = kConstIntArith[which];
          family = kFuseConstArith;
        } else if ((op1 == Op::kLoadElem || op1 == Op::kLoadGlobal) &&
                   op2 == Op::kLoadConst) {
          fusedOp = op1 == Op::kLoadElem ? XOp::kFusedLoadElemConst
                                         : XOp::kFusedLoadGlobalConst;
          family = kFuseLoadConst;
        } else if (op1 == Op::kLoadConst && op2 == Op::kLoadElem) {
          fusedOp = XOp::kFusedConstLoadElem;
          family = kFuseLoadConst;
        }
        if (family == kNumFusedFamilies) {
          ++pc;
          continue;
        }
        DecodedInstr& d = decoded->code[static_cast<std::size_t>(pc)];
        d.op = fusedOp;
        d.sub = family;
        ++decoded->fused_sites;
        ++decoded->family_sites[family];
        pc += 2;
      }
    }
  }

  // --- threaded-dispatch handler prefill -----------------------------------
  if (const void* const* labels = threaded_label_table(); labels != nullptr) {
    for (DecodedInstr& d : decoded->code) {
      d.target = labels[static_cast<int>(d.op)];
    }
  }

  return std::shared_ptr<const DecodedProgram>(std::move(decoded));
}

}  // namespace prose::sim
