#include "sim/machine.h"

namespace prose::sim {

// to_string(VecStatus) lives in vectorize.cpp alongside the analysis.

}  // namespace prose::sim
