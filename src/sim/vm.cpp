#include "sim/vm.h"

#include <cmath>
#include <cstdio>

namespace prose::sim {

using ftn::Intrinsic;

// ---------------------------------------------------------------------------
// ArrayStorage
// ---------------------------------------------------------------------------

ArrayStorage::ArrayStorage(int kind, int rank, const std::int64_t* extents)
    : kind_(kind), rank_(rank) {
  total_ = 1;
  for (int r = 0; r < rank; ++r) {
    PROSE_CHECK_MSG(extents[r] > 0, "array extent must be positive");
    extents_[r] = extents[r];
    total_ *= extents[r];
  }
  if (kind_ == 4) {
    f32_.assign(static_cast<std::size_t>(total_), 0.0f);
  } else {
    f64_.assign(static_cast<std::size_t>(total_), 0.0);
  }
}

std::int64_t ArrayStorage::linearize(std::int64_t i, std::int64_t j,
                                     std::int64_t k) const {
  if (i < 1 || i > extents_[0]) return -1;
  std::int64_t linear = i - 1;
  if (rank_ >= 2) {
    if (j < 1 || j > extents_[1]) return -1;
    linear += extents_[0] * (j - 1);
  }
  if (rank_ >= 3) {
    if (k < 1 || k > extents_[2]) return -1;
    linear += extents_[0] * extents_[1] * (k - 1);
  }
  return linear;
}

double ArrayStorage::get(std::int64_t linear) const {
  return kind_ == 4 ? static_cast<double>(f32_[static_cast<std::size_t>(linear)])
                    : f64_[static_cast<std::size_t>(linear)];
}

void ArrayStorage::set(std::int64_t linear, double value) {
  if (kind_ == 4) {
    f32_[static_cast<std::size_t>(linear)] = static_cast<float>(value);
  } else {
    f64_[static_cast<std::size_t>(linear)] = value;
  }
}

// ---------------------------------------------------------------------------
// Vm
// ---------------------------------------------------------------------------

namespace {

/// Op-mix accounting for the flight recorder. Observability only — never
/// feeds the cost model. Loop entries are classified at the kLoopBegin case
/// (the vectorization verdict lives in the loop metadata, not the opcode).
void count_op(Op op, OpMix& mix) {
  switch (op) {
    case Op::kAddF32: case Op::kSubF32: case Op::kMulF32: case Op::kDivF32:
    case Op::kPowF32: case Op::kNegF32:
      ++mix.fp32_arith;
      break;
    case Op::kAddF64: case Op::kSubF64: case Op::kMulF64: case Op::kDivF64:
    case Op::kPowF64: case Op::kNegF64:
      ++mix.fp64_arith;
      break;
    case Op::kAddI: case Op::kSubI: case Op::kMulI: case Op::kDivI:
    case Op::kPowI: case Op::kNegI: case Op::kCastInt:
      ++mix.int_arith;
      break;
    case Op::kCastF32: case Op::kCastF64:
      ++mix.casts;
      break;
    case Op::kLoadElem: case Op::kStoreElem: case Op::kArrayFill:
    case Op::kArrayCopy: case Op::kReduce:
      ++mix.mem;
      break;
    case Op::kCall:
      ++mix.calls;
      break;
    case Op::kJmp: case Op::kJmpIfFalse: case Op::kLoopCond:
      ++mix.branches;
      break;
    case Op::kIntrin1: case Op::kIntrin2:
      ++mix.intrinsics;
      break;
    default:
      ++mix.other;
      break;
  }
}

}  // namespace

Vm::Vm(const CompiledProgram* program, VmOptions options)
    : program_(program),
      options_(options),
      timers_(&clock_, gptl::TimerOptions{
                           .overhead_cycles_per_pair = program->machine.gptl_overhead_cycles}) {
  PROSE_CHECK(program_ != nullptr);
  reset();
}

void Vm::reset() {
  globals_.clear();
  globals_.reserve(program_->global_scalars.size());
  for (const auto& g : program_->global_scalars) globals_.push_back(g.init);
  global_arrays_.clear();
  global_arrays_.reserve(program_->global_arrays.size());
  for (const auto& g : program_->global_arrays) {
    global_arrays_.emplace_back(g.kind, g.rank, g.extents);
  }
  slots_.clear();
  frames_.clear();
  proc_stats_.assign(program_->procs.size(), ProcRunStats{});
  print_log_.clear();
  cast_cycles_ = 0.0;
  instructions_ = 0;
  op_mix_ = OpMix{};
}

Status Vm::set_scalar(const std::string& qualified, double value) {
  const auto it = program_->global_scalar_index.find(qualified);
  if (it == program_->global_scalar_index.end()) {
    return Status(StatusCode::kNotFound, "no module scalar '" + qualified + "'");
  }
  if (program_->global_scalars[static_cast<std::size_t>(it->second)].kind == 4) {
    value = static_cast<double>(static_cast<float>(value));
  }
  globals_[static_cast<std::size_t>(it->second)] = value;
  return Status::ok();
}

StatusOr<double> Vm::get_scalar(const std::string& qualified) const {
  const auto it = program_->global_scalar_index.find(qualified);
  if (it == program_->global_scalar_index.end()) {
    return Status(StatusCode::kNotFound, "no module scalar '" + qualified + "'");
  }
  return globals_[static_cast<std::size_t>(it->second)];
}

Status Vm::set_array(const std::string& qualified, std::span<const double> values) {
  const auto it = program_->global_array_index.find(qualified);
  if (it == program_->global_array_index.end()) {
    return Status(StatusCode::kNotFound, "no module array '" + qualified + "'");
  }
  ArrayStorage& arr = global_arrays_[static_cast<std::size_t>(it->second)];
  if (static_cast<std::int64_t>(values.size()) != arr.total()) {
    return Status(StatusCode::kInvalidArgument,
                  "size mismatch for '" + qualified + "': expected " +
                      std::to_string(arr.total()) + ", got " +
                      std::to_string(values.size()));
  }
  for (std::int64_t i = 0; i < arr.total(); ++i) {
    arr.set(i, values[static_cast<std::size_t>(i)]);
  }
  return Status::ok();
}

StatusOr<std::vector<double>> Vm::get_array(const std::string& qualified) const {
  const auto it = program_->global_array_index.find(qualified);
  if (it == program_->global_array_index.end()) {
    return Status(StatusCode::kNotFound, "no module array '" + qualified + "'");
  }
  const ArrayStorage& arr = global_arrays_[static_cast<std::size_t>(it->second)];
  std::vector<double> out(static_cast<std::size_t>(arr.total()));
  for (std::int64_t i = 0; i < arr.total(); ++i) {
    out[static_cast<std::size_t>(i)] = arr.get(i);
  }
  return out;
}

StatusOr<std::int64_t> Vm::array_size(const std::string& qualified) const {
  const auto it = program_->global_array_index.find(qualified);
  if (it == program_->global_array_index.end()) {
    return Status(StatusCode::kNotFound, "no module array '" + qualified + "'");
  }
  return global_arrays_[static_cast<std::size_t>(it->second)].total();
}

const ProcRunStats* Vm::proc_stats(const std::string& qualified) const {
  const auto it = program_->proc_index.find(qualified);
  if (it == program_->proc_index.end()) return nullptr;
  return &proc_stats_[static_cast<std::size_t>(it->second)];
}

Status Vm::fault(const std::string& message) const {
  std::string where;
  if (!frames_.empty()) {
    where = " in " + program_->procs[static_cast<std::size_t>(frames_.back().proc)].qualified();
  }
  return Status(StatusCode::kRuntimeFault, message + where);
}

void Vm::bind_frame_arrays(Frame& frame, const ProcMeta& meta, const CallSiteMeta* site) {
  frame.arrays.resize(meta.arrays.size(), nullptr);
  for (std::size_t i = 0; i < meta.arrays.size(); ++i) {
    const ArraySlotMeta& a = meta.arrays[i];
    switch (a.binding) {
      case ArrayBinding::kGlobal:
        frame.arrays[i] = &global_arrays_[static_cast<std::size_t>(a.global_index)];
        break;
      case ArrayBinding::kLocal: {
        frame.owned.push_back(std::make_unique<ArrayStorage>(a.kind, a.rank, a.extents));
        frame.arrays[i] = frame.owned.back().get();
        break;
      }
      case ArrayBinding::kAutomatic:
        frame.arrays[i] = nullptr;  // allocated by kAllocArray
        break;
      case ArrayBinding::kDummy: {
        PROSE_CHECK(site != nullptr);
        const auto& binding =
            site->array_args[static_cast<std::size_t>(a.dummy_position)];
        // Caller is the frame below the new one.
        const Frame& caller = frames_[frames_.size() - 2];
        frame.arrays[i] =
            caller.arrays[static_cast<std::size_t>(binding.caller_array_slot)];
        break;
      }
    }
  }
}

Status Vm::push_frame(std::int32_t proc_index, std::int32_t site_index,
                      std::int32_t return_pc) {
  if (frames_.size() >= options_.max_frames) {
    return fault("call stack overflow");
  }
  const ProcMeta& meta = program_->procs[static_cast<std::size_t>(proc_index)];
  const CallSiteMeta* site =
      site_index >= 0 ? &program_->call_sites[static_cast<std::size_t>(site_index)] : nullptr;

  Frame frame;
  frame.proc = proc_index;
  frame.slot_base = slots_.size();
  frame.return_pc = return_pc;
  frame.site = site_index;
  frame.caller_slot_base = frames_.empty() ? 0 : frames_.back().slot_base;
  frame.scale = (site != nullptr && site->inlined) ? site->inline_scale : 1.0;
  frame.entry_cycles = clock_.now();
  slots_.resize(slots_.size() + static_cast<std::size_t>(meta.num_slots), 0.0);
  frames_.push_back(std::move(frame));

  Frame& f = frames_.back();
  bind_frame_arrays(f, meta, site);

  // Copy scalar arguments (kinds already match by the wrapper invariant).
  if (site != nullptr) {
    PROSE_CHECK(site->scalar_args.size() == meta.scalar_param_slots.size());
    for (std::size_t i = 0; i < site->scalar_args.size(); ++i) {
      slots_[f.slot_base + static_cast<std::size_t>(meta.scalar_param_slots[i])] =
          slots_[f.caller_slot_base +
                 static_cast<std::size_t>(site->scalar_args[i].value_slot)];
    }
  }
  if (meta.instrument) {
    if (Status s = timers_.start(meta.qualified()); !s.is_ok()) return s;
  }
  return Status::ok();
}

Status Vm::pop_frame(std::int32_t& pc) {
  Frame& f = frames_.back();
  const ProcMeta& meta = program_->procs[static_cast<std::size_t>(f.proc)];
  const double inclusive = clock_.now() - f.entry_cycles;
  ProcRunStats& stats = proc_stats_[static_cast<std::size_t>(f.proc)];
  stats.calls += 1;
  stats.inclusive_cycles += inclusive;
  stats.exclusive_cycles += inclusive - f.child_cycles;

  if (meta.instrument) {
    if (Status s = timers_.stop(meta.qualified()); !s.is_ok()) return s;
  }

  // Writebacks and result copy into the caller.
  if (f.site >= 0) {
    const CallSiteMeta& site = program_->call_sites[static_cast<std::size_t>(f.site)];
    for (std::size_t i = 0; i < site.scalar_args.size(); ++i) {
      const ScalarArgMeta& arg = site.scalar_args[i];
      if (arg.writeback == WritebackKind::kNone) continue;
      const double value =
          slots_[f.slot_base + static_cast<std::size_t>(meta.scalar_param_slots[i])];
      switch (arg.writeback) {
        case WritebackKind::kSlot:
          slots_[f.caller_slot_base + static_cast<std::size_t>(arg.wb_slot)] = value;
          break;
        case WritebackKind::kGlobal: {
          double v = value;
          if (program_->global_scalars[static_cast<std::size_t>(arg.wb_slot)].kind == 4) {
            v = static_cast<double>(static_cast<float>(v));
          }
          globals_[static_cast<std::size_t>(arg.wb_slot)] = v;
          break;
        }
        case WritebackKind::kElement: {
          const Frame& caller = frames_[frames_.size() - 2];
          ArrayStorage* arr =
              caller.arrays[static_cast<std::size_t>(arg.wb_array)];
          const auto idx_value = [&](int r) -> std::int64_t {
            if (arg.wb_index[r] < 0) return 1;
            return static_cast<std::int64_t>(
                slots_[f.caller_slot_base + static_cast<std::size_t>(arg.wb_index[r])]);
          };
          const std::int64_t linear =
              arr->linearize(idx_value(0), idx_value(1), idx_value(2));
          if (linear < 0) return fault("out-of-bounds writeback");
          arr->set(linear, value);
          break;
        }
        case WritebackKind::kNone:
          break;
      }
    }
    if (site.result_slot >= 0 && meta.result_slot >= 0) {
      slots_[f.caller_slot_base + static_cast<std::size_t>(site.result_slot)] =
          slots_[f.slot_base + static_cast<std::size_t>(meta.result_slot)];
    }
  }

  pc = f.return_pc;
  slots_.resize(f.slot_base);
  frames_.pop_back();
  if (!frames_.empty()) frames_.back().child_cycles += inclusive;
  return Status::ok();
}

RunResult Vm::call(const std::string& qualified_proc) {
  RunResult result;
  const auto it = program_->proc_index.find(qualified_proc);
  if (it == program_->proc_index.end()) {
    result.status = Status(StatusCode::kNotFound, "no procedure '" + qualified_proc + "'");
    return result;
  }
  const ProcMeta& meta = program_->procs[static_cast<std::size_t>(it->second)];
  if (!meta.scalar_param_slots.empty() || !meta.arrays.empty()) {
    // Entry procedures may reference module arrays (bound lazily as globals),
    // but must not have dummies.
    for (const auto& a : meta.arrays) {
      if (a.binding == ArrayBinding::kDummy) {
        result.status = Status(StatusCode::kInvalidArgument,
                               "entry procedure must have no arguments");
        return result;
      }
    }
    if (!meta.scalar_param_slots.empty()) {
      result.status = Status(StatusCode::kInvalidArgument,
                             "entry procedure must have no arguments");
      return result;
    }
  }

  run_start_cycles_ = clock_.now();
  const double cast_start = cast_cycles_;
  const std::uint64_t instr_start = instructions_;
  op_mix_ = OpMix{};  // per-call mix (observability; see RunResult::op_mix)

  Status pushed = push_frame(it->second, /*site_index=*/-1, /*return_pc=*/-1);
  if (!pushed.is_ok()) {
    result.status = pushed;
    return result;
  }
  result.status = run_loop();
  // Unwind any remaining frames on fault/timeout so the VM can be reused.
  while (!frames_.empty()) {
    const Frame& f = frames_.back();
    const ProcMeta& m = program_->procs[static_cast<std::size_t>(f.proc)];
    if (m.instrument) (void)timers_.stop(m.qualified());
    slots_.resize(f.slot_base);
    frames_.pop_back();
  }
  result.cycles = clock_.now() - run_start_cycles_;
  result.cast_cycles = cast_cycles_ - cast_start;
  result.instructions = instructions_ - instr_start;
  result.op_mix = op_mix_;
  return result;
}

Status Vm::run_loop() {
  const std::vector<Instr>& code = program_->code;
  std::int32_t pc = program_->procs[static_cast<std::size_t>(frames_.back().proc)].first_instr;
  const bool trap = options_.trap_nonfinite;
  const MachineModel& mach = program_->machine;

  const auto check_finite_f = [&](float v) { return !trap || std::isfinite(v); };
  const auto check_finite_d = [&](double v) { return !trap || std::isfinite(v); };

  std::uint64_t since_budget_check = 0;

  while (true) {
    PROSE_CHECK(pc >= 0 && static_cast<std::size_t>(pc) < code.size());
    const Instr& in = code[static_cast<std::size_t>(pc)];
    Frame& frame = frames_.back();
    const std::size_t base = frame.slot_base;
    if (in.cost > 0.0) clock_.advance(in.cost * frame.scale);
    ++instructions_;
    count_op(in.op, op_mix_);

    if (++since_budget_check >= 256) {
      since_budget_check = 0;
      if (clock_.now() - run_start_cycles_ > options_.cycle_budget) {
        fault_pc_ = pc;
        return Status(StatusCode::kTimeout, "cycle budget exceeded");
      }
      if (instructions_ > options_.max_instructions) {
        fault_pc_ = pc;
        return Status(StatusCode::kRuntimeFault, "instruction limit exceeded");
      }
    }

    const auto S = [&](std::int32_t idx) -> double& {
      return slots_[base + static_cast<std::size_t>(idx)];
    };
    const auto ARR = [&](std::int32_t idx) -> ArrayStorage* {
      return frame.arrays[static_cast<std::size_t>(idx)];
    };

    switch (in.op) {
      case Op::kNop:
      case Op::kLoopEnd:
        break;
      case Op::kLoadConst:
        S(in.dst) = in.imm;
        break;
      case Op::kMov:
        S(in.dst) = S(in.a);
        break;
      case Op::kCastF32: {
        const double x = S(in.a);
        const auto v = static_cast<float>(x);
        // Overflow in the narrowing conversion itself (finite f64 that has no
        // finite f32 counterpart) is a runtime error, as with -ffpe-trap.
        if (trap && std::isfinite(x) && !std::isfinite(v)) {
          fault_pc_ = pc;
          return fault("overflow converting to real(kind=4)");
        }
        S(in.dst) = static_cast<double>(v);
        cast_cycles_ += in.cost * frame.scale;
        break;
      }
      case Op::kCastF64:
        S(in.dst) = S(in.a);
        cast_cycles_ += in.cost * frame.scale;
        break;
      case Op::kCastInt: {
        const double v = S(in.a);
        double r = 0.0;
        if (in.aux2 == 0) {
          r = std::trunc(v);
        } else if (in.aux2 == 1) {
          r = std::floor(v);
        } else {
          r = std::round(v);
        }
        S(in.dst) = r;
        break;
      }
      case Op::kLoadGlobal:
        S(in.dst) = globals_[static_cast<std::size_t>(in.aux)];
        break;
      case Op::kStoreGlobal: {
        double v = S(in.a);
        if (program_->global_scalars[static_cast<std::size_t>(in.aux)].kind == 4) {
          const auto narrowed = static_cast<float>(v);
          if (trap && std::isfinite(v) && !std::isfinite(narrowed)) {
            fault_pc_ = pc;
            return fault("overflow storing to real(kind=4) module variable");
          }
          v = static_cast<double>(narrowed);
        }
        globals_[static_cast<std::size_t>(in.aux)] = v;
        break;
      }

#define PROSE_F32_BINOP(OPNAME, EXPR)                                    \
  case Op::OPNAME: {                                                     \
    const float x = static_cast<float>(S(in.a));                         \
    const float y = static_cast<float>(S(in.b));                         \
    const float r = (EXPR);                                              \
    if (!check_finite_f(r)) {                                            \
      fault_pc_ = pc;                                                    \
      return fault("non-finite f32 result");                             \
    }                                                                    \
    S(in.dst) = static_cast<double>(r);                                  \
    break;                                                               \
  }
#define PROSE_F64_BINOP(OPNAME, EXPR)                                    \
  case Op::OPNAME: {                                                     \
    const double x = S(in.a);                                            \
    const double y = S(in.b);                                            \
    const double r = (EXPR);                                             \
    if (!check_finite_d(r)) {                                            \
      fault_pc_ = pc;                                                    \
      return fault("non-finite f64 result");                             \
    }                                                                    \
    S(in.dst) = r;                                                       \
    break;                                                               \
  }

      PROSE_F32_BINOP(kAddF32, x + y)
      PROSE_F32_BINOP(kSubF32, x - y)
      PROSE_F32_BINOP(kMulF32, x * y)
      PROSE_F32_BINOP(kDivF32, x / y)
      PROSE_F32_BINOP(kPowF32, std::pow(x, y))
      PROSE_F64_BINOP(kAddF64, x + y)
      PROSE_F64_BINOP(kSubF64, x - y)
      PROSE_F64_BINOP(kMulF64, x * y)
      PROSE_F64_BINOP(kDivF64, x / y)
      PROSE_F64_BINOP(kPowF64, std::pow(x, y))
#undef PROSE_F32_BINOP
#undef PROSE_F64_BINOP

      case Op::kAddI: S(in.dst) = S(in.a) + S(in.b); break;
      case Op::kSubI: S(in.dst) = S(in.a) - S(in.b); break;
      case Op::kMulI: S(in.dst) = S(in.a) * S(in.b); break;
      case Op::kDivI: {
        const double b = S(in.b);
        if (b == 0.0) {
          fault_pc_ = pc;
          return fault("integer division by zero");
        }
        S(in.dst) = std::trunc(S(in.a) / b);
        break;
      }
      case Op::kPowI: {
        const double r = std::pow(S(in.a), S(in.b));
        S(in.dst) = std::trunc(r);
        break;
      }
      case Op::kNegF32:
        S(in.dst) = static_cast<double>(-static_cast<float>(S(in.a)));
        break;
      case Op::kNegF64:
        S(in.dst) = -S(in.a);
        break;
      case Op::kNegI:
        S(in.dst) = -S(in.a);
        break;

      case Op::kCmpEq: S(in.dst) = S(in.a) == S(in.b) ? 1.0 : 0.0; break;
      case Op::kCmpNe: S(in.dst) = S(in.a) != S(in.b) ? 1.0 : 0.0; break;
      case Op::kCmpLt: S(in.dst) = S(in.a) < S(in.b) ? 1.0 : 0.0; break;
      case Op::kCmpLe: S(in.dst) = S(in.a) <= S(in.b) ? 1.0 : 0.0; break;
      case Op::kCmpGt: S(in.dst) = S(in.a) > S(in.b) ? 1.0 : 0.0; break;
      case Op::kCmpGe: S(in.dst) = S(in.a) >= S(in.b) ? 1.0 : 0.0; break;

      case Op::kAnd: S(in.dst) = (S(in.a) != 0.0 && S(in.b) != 0.0) ? 1.0 : 0.0; break;
      case Op::kOr: S(in.dst) = (S(in.a) != 0.0 || S(in.b) != 0.0) ? 1.0 : 0.0; break;
      case Op::kNot: S(in.dst) = S(in.a) == 0.0 ? 1.0 : 0.0; break;
      case Op::kEqv: S(in.dst) = ((S(in.a) != 0.0) == (S(in.b) != 0.0)) ? 1.0 : 0.0; break;
      case Op::kNeqv: S(in.dst) = ((S(in.a) != 0.0) != (S(in.b) != 0.0)) ? 1.0 : 0.0; break;

      case Op::kIntrin1: {
        const auto intr = static_cast<Intrinsic>(in.aux);
        const bool f32 = in.kind == 4;
        double r = 0.0;
        const double x = S(in.a);
        switch (intr) {
          case Intrinsic::kAbs: r = std::abs(x); break;
          case Intrinsic::kSqrt:
            r = f32 ? static_cast<double>(std::sqrt(static_cast<float>(x))) : std::sqrt(x);
            break;
          case Intrinsic::kExp:
            r = f32 ? static_cast<double>(std::exp(static_cast<float>(x))) : std::exp(x);
            break;
          case Intrinsic::kLog:
            r = f32 ? static_cast<double>(std::log(static_cast<float>(x))) : std::log(x);
            break;
          case Intrinsic::kSin:
            r = f32 ? static_cast<double>(std::sin(static_cast<float>(x))) : std::sin(x);
            break;
          case Intrinsic::kCos:
            r = f32 ? static_cast<double>(std::cos(static_cast<float>(x))) : std::cos(x);
            break;
          case Intrinsic::kTan:
            r = f32 ? static_cast<double>(std::tan(static_cast<float>(x))) : std::tan(x);
            break;
          case Intrinsic::kAtan:
            r = f32 ? static_cast<double>(std::atan(static_cast<float>(x))) : std::atan(x);
            break;
          default:
            fault_pc_ = pc;
            return fault("unknown unary intrinsic");
        }
        if (!check_finite_d(r)) {
          fault_pc_ = pc;
          return fault("non-finite intrinsic result");
        }
        S(in.dst) = r;
        break;
      }
      case Op::kIntrin2: {
        const auto intr = static_cast<Intrinsic>(in.aux);
        const bool f32 = in.kind == 4;
        const double x = S(in.a);
        const double y = S(in.b);
        double r = 0.0;
        switch (intr) {
          case Intrinsic::kMin: r = std::min(x, y); break;
          case Intrinsic::kMax: r = std::max(x, y); break;
          case Intrinsic::kMod:
            r = f32 ? static_cast<double>(
                          std::fmod(static_cast<float>(x), static_cast<float>(y)))
                    : std::fmod(x, y);
            break;
          case Intrinsic::kSign:
            r = y >= 0.0 ? std::abs(x) : -std::abs(x);
            break;
          case Intrinsic::kAtan2:
            r = f32 ? static_cast<double>(
                          std::atan2(static_cast<float>(x), static_cast<float>(y)))
                    : std::atan2(x, y);
            break;
          default:
            fault_pc_ = pc;
            return fault("unknown binary intrinsic");
        }
        if (!check_finite_d(r)) {
          fault_pc_ = pc;
          return fault("non-finite intrinsic result");
        }
        S(in.dst) = r;
        break;
      }

      case Op::kLoadElem: {
        ArrayStorage* arr = ARR(in.aux);
        const auto idx = [&](std::int32_t s) -> std::int64_t {
          return s < 0 ? 1 : static_cast<std::int64_t>(S(s));
        };
        const std::int64_t linear = arr->linearize(idx(in.a), idx(in.b), idx(in.c));
        if (linear < 0) {
          fault_pc_ = pc;
          return fault("array subscript out of bounds (read)");
        }
        S(in.dst) = arr->get(linear);
        break;
      }
      case Op::kStoreElem: {
        ArrayStorage* arr = ARR(in.aux);
        const auto idx = [&](std::int32_t s) -> std::int64_t {
          return s < 0 ? 1 : static_cast<std::int64_t>(S(s));
        };
        const std::int64_t linear = arr->linearize(idx(in.a), idx(in.b), idx(in.c));
        if (linear < 0) {
          fault_pc_ = pc;
          return fault("array subscript out of bounds (write)");
        }
        const double v = S(in.dst);
        if (!check_finite_d(v)) {
          fault_pc_ = pc;
          return fault("storing non-finite value");
        }
        if (arr->kind() == 4 && trap && !std::isfinite(static_cast<float>(v))) {
          fault_pc_ = pc;
          return fault("overflow storing to real(kind=4) array");
        }
        arr->set(linear, v);
        break;
      }
      case Op::kArrayFill: {
        ArrayStorage* arr = ARR(in.aux);
        const double v = S(in.a);
        for (std::int64_t i = 0; i < arr->total(); ++i) arr->set(i, v);
        const double bytes = mach.bytes_for_kind(arr->kind());
        clock_.advance(static_cast<double>(arr->total()) *
                       (bytes * mach.mem_cost_per_byte + 0.1));
        break;
      }
      case Op::kArrayCopy: {
        ArrayStorage* dst = ARR(in.aux);
        ArrayStorage* src = ARR(in.aux2);
        if (dst->total() != src->total()) {
          fault_pc_ = pc;
          return fault("array shape mismatch in copy");
        }
        const bool narrowing = dst->kind() == 4 && src->kind() == 8;
        for (std::int64_t i = 0; i < src->total(); ++i) {
          const double v = src->get(i);
          if (narrowing && trap && std::isfinite(v) &&
              !std::isfinite(static_cast<float>(v))) {
            fault_pc_ = pc;
            return fault("overflow converting array to real(kind=4)");
          }
          dst->set(i, v);
        }
        const double bytes =
            mach.bytes_for_kind(dst->kind()) + mach.bytes_for_kind(src->kind());
        double per_elem = bytes * mach.mem_cost_per_byte + 0.25;
        double cast_part = 0.0;
        if (dst->kind() != src->kind()) {
          cast_part = 0.5;  // convert per element on top of the traffic
          per_elem += cast_part;
          cast_cycles_ += static_cast<double>(src->total()) *
                          (cast_part + bytes * mach.mem_cost_per_byte * 0.5);
        }
        clock_.advance(static_cast<double>(src->total()) * per_elem);
        break;
      }
      case Op::kReduce: {
        ArrayStorage* arr = ARR(in.aux);
        double r = 0.0;
        if (arr->kind() == 4) {
          float acc = in.aux2 == 0 ? 0.0f
                                   : static_cast<float>(arr->get(0));
          for (std::int64_t i = 0; i < arr->total(); ++i) {
            const auto v = static_cast<float>(arr->get(i));
            if (in.aux2 == 0) {
              acc += v;
            } else if (in.aux2 == 1) {
              acc = std::min(acc, v);
            } else {
              acc = std::max(acc, v);
            }
          }
          r = static_cast<double>(acc);
        } else {
          double acc = in.aux2 == 0 ? 0.0 : arr->get(0);
          for (std::int64_t i = 0; i < arr->total(); ++i) {
            const double v = arr->get(i);
            if (in.aux2 == 0) {
              acc += v;
            } else if (in.aux2 == 1) {
              acc = std::min(acc, v);
            } else {
              acc = std::max(acc, v);
            }
          }
          r = acc;
        }
        if (!check_finite_d(r)) {
          fault_pc_ = pc;
          return fault("non-finite reduction result");
        }
        S(in.dst) = r;
        const double lanes = static_cast<double>(mach.lanes_for_kind(arr->kind()));
        const double bytes = mach.bytes_for_kind(arr->kind());
        clock_.advance(static_cast<double>(arr->total()) *
                       (bytes * mach.mem_cost_per_byte + mach.cost_add / lanes));
        break;
      }
      case Op::kArraySize: {
        const ArrayStorage* arr = ARR(in.aux);
        S(in.dst) = in.aux2 == 0 ? static_cast<double>(arr->total())
                                 : static_cast<double>(arr->extent(in.aux2 - 1));
        break;
      }
      case Op::kAllReduce:
        S(in.dst) = S(in.a);  // single simulated process owns the domain
        break;

      case Op::kJmp:
        pc = in.aux;
        continue;
      case Op::kJmpIfFalse:
        if (S(in.a) == 0.0) {
          pc = in.aux;
          continue;
        }
        break;
      case Op::kLoopCond: {
        const double i = S(in.a);
        const double hi = S(in.b);
        const double step = S(in.c);
        S(in.dst) = (step > 0.0 ? i <= hi : i >= hi) ? 1.0 : 0.0;
        break;
      }
      case Op::kLoopBegin:
        if (in.aux >= 0 &&
            static_cast<std::size_t>(in.aux) < program_->loops.size() &&
            program_->loops[static_cast<std::size_t>(in.aux)].vectorized) {
          ++op_mix_.vector_loop_entries;
        } else {
          ++op_mix_.scalar_loop_entries;
        }
        break;

      case Op::kAllocArray: {
        const ProcMeta& meta = program_->procs[static_cast<std::size_t>(frame.proc)];
        const ArraySlotMeta& a = meta.arrays[static_cast<std::size_t>(in.aux)];
        std::int64_t extents[3] = {1, 1, 1};
        for (int r = 0; r < a.rank; ++r) {
          if (a.extents[r] == -2) {
            extents[r] = static_cast<std::int64_t>(
                S(a.extent_slots[r]));
          } else {
            extents[r] = a.extents[r];
          }
          if (extents[r] <= 0) {
            fault_pc_ = pc;
            return fault("non-positive automatic array extent");
          }
        }
        frame.owned.push_back(std::make_unique<ArrayStorage>(a.kind, a.rank, extents));
        frame.arrays[static_cast<std::size_t>(in.aux)] = frame.owned.back().get();
        break;
      }

      case Op::kCall: {
        if (Status s = push_frame(in.aux, in.aux2, pc + 1); !s.is_ok()) return s;
        pc = program_->procs[static_cast<std::size_t>(in.aux)].first_instr;
        continue;
      }
      case Op::kRet: {
        std::int32_t ret = -1;
        if (Status s = pop_frame(ret); !s.is_ok()) return s;
        if (frames_.empty()) return Status::ok();
        pc = ret;
        continue;
      }
      case Op::kPrint: {
        const PrintMeta& meta = program_->prints[static_cast<std::size_t>(in.aux2)];
        print_log_ += meta.text;
        char buf[40];
        for (const auto s : meta.arg_slots) {
          std::snprintf(buf, sizeof buf, " %.9g", S(s));
          print_log_ += buf;
        }
        print_log_ += '\n';
        break;
      }
      case Op::kHalt:
        return Status::ok();
    }
    ++pc;
  }
}

}  // namespace prose::sim
