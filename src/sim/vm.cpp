#include "sim/vm.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace prose::sim {

using ftn::Intrinsic;

// ---------------------------------------------------------------------------
// ArrayStorage
// ---------------------------------------------------------------------------

ArrayStorage::ArrayStorage(int kind, int rank, const std::int64_t* extents)
    : kind_(kind), rank_(rank) {
  total_ = 1;
  for (int r = 0; r < rank; ++r) {
    PROSE_CHECK_MSG(extents[r] > 0, "array extent must be positive");
    extents_[r] = extents[r];
    total_ *= extents[r];
  }
  if (kind_ == 4) {
    f32_.assign(static_cast<std::size_t>(total_), 0.0f);
  } else {
    f64_.assign(static_cast<std::size_t>(total_), 0.0);
  }
}

void ArrayStorage::enable_shadow() {
  shadow_.resize(static_cast<std::size_t>(total_));
  for (std::int64_t i = 0; i < total_; ++i) {
    shadow_[static_cast<std::size_t>(i)] = get(i);
  }
}

// ---------------------------------------------------------------------------
// Vm
// ---------------------------------------------------------------------------

namespace {

/// Op-mix accounting for the flight recorder. Observability only — never
/// feeds the cost model. Loop entries are classified at the kLoopBegin case
/// (the vectorization verdict lives in the loop metadata, not the opcode).
void count_op(Op op, OpMix& mix) {
  switch (op) {
    case Op::kAddF32: case Op::kSubF32: case Op::kMulF32: case Op::kDivF32:
    case Op::kPowF32: case Op::kNegF32:
      ++mix.fp32_arith;
      break;
    case Op::kAddF64: case Op::kSubF64: case Op::kMulF64: case Op::kDivF64:
    case Op::kPowF64: case Op::kNegF64:
      ++mix.fp64_arith;
      break;
    case Op::kAddI: case Op::kSubI: case Op::kMulI: case Op::kDivI:
    case Op::kPowI: case Op::kNegI: case Op::kCastInt:
      ++mix.int_arith;
      break;
    case Op::kCastF32: case Op::kCastF64:
      ++mix.casts;
      break;
    case Op::kLoadElem: case Op::kStoreElem: case Op::kArrayFill:
    case Op::kArrayCopy: case Op::kReduce:
      ++mix.mem;
      break;
    case Op::kCall:
      ++mix.calls;
      break;
    case Op::kJmp: case Op::kJmpIfFalse: case Op::kLoopCond:
      ++mix.branches;
      break;
    case Op::kIntrin1: case Op::kIntrin2:
      ++mix.intrinsics;
      break;
    default:
      ++mix.other;
      break;
  }
}

/// Relative divergence of a primary value from its binary64 shadow. Bounded
/// by 2 for finite pairs (a value flushed to zero scores exactly 1); +inf
/// when either side is non-finite. Symmetric, so downstream scoring needs no
/// clamping.
double rel_div(double primary, double shadow) {
  if (primary == shadow) return 0.0;
  const double diff = std::abs(primary - shadow);
  const double scale = std::max(std::abs(primary), std::abs(shadow));
  if (!std::isfinite(diff)) return std::numeric_limits<double>::infinity();
  return diff / scale;
}

/// First-divergence threshold: well above one binary32 rounding (~6e-8), so
/// the recorded site marks the onset of accumulated error, not the first
/// benign rounding.
constexpr double kFirstDivergence = 1e-6;

/// Catastrophic-cancellation detector thresholds: an effective subtraction
/// whose primary result drops this many binade exponents below the larger
/// operand has lost most of the mantissa (binary32 carries 24 bits,
/// binary64 carries 53).
constexpr int kCancelBitsF32 = 20;
constexpr int kCancelBitsF64 = 40;

}  // namespace

Vm::Vm(const CompiledProgram* program, VmOptions options)
    : program_(program),
      options_(options),
      timers_(&clock_, gptl::TimerOptions{
                           .overhead_cycles_per_pair = program->machine.gptl_overhead_cycles}) {
  PROSE_CHECK(program_ != nullptr);
  shadow_ = options_.shadow;
  if (shadow_) init_shadow_tables();
  reset();
}

void Vm::reset() {
  globals_.clear();
  globals_.reserve(program_->global_scalars.size());
  for (const auto& g : program_->global_scalars) globals_.push_back(g.init);
  global_arrays_.clear();
  global_arrays_.reserve(program_->global_arrays.size());
  for (const auto& g : program_->global_arrays) {
    global_arrays_.emplace_back(g.kind, g.rank, g.extents);
  }
  slots_.clear();
  frames_.clear();
  proc_stats_.assign(program_->procs.size(), ProcRunStats{});
  print_log_.clear();
  cast_cycles_ = 0.0;
  instructions_ = 0;
  op_mix_ = OpMix{};
  fused_ = FusedStats{};
  if (shadow_) {
    shadow_globals_ = globals_;
    for (auto& arr : global_arrays_) arr.enable_shadow();
    shadow_slots_.clear();
    shadow_procs_.assign(program_->procs.size(), ShadowProcStats{});
    std::fill(shadow_vars_.begin(), shadow_vars_.end(), ShadowVarStats{});
    shadow_max_div_ = 0.0;
    shadow_cancellations_ = 0;
    shadow_control_divs_ = 0;
    first_div_proc_ = -1;
    first_div_instr_ = -1;
    shadow_fault_proc_ = -1;
  }
}

Status Vm::set_scalar(const std::string& qualified, double value) {
  const auto it = program_->global_scalar_index.find(qualified);
  if (it == program_->global_scalar_index.end()) {
    return Status(StatusCode::kNotFound, "no module scalar '" + qualified + "'");
  }
  // The shadow copy keeps the unrounded binary64 input — shadow execution is
  // "what the all-binary64 run would have computed".
  if (shadow_) shadow_globals_[static_cast<std::size_t>(it->second)] = value;
  if (program_->global_scalars[static_cast<std::size_t>(it->second)].kind == 4) {
    value = static_cast<double>(static_cast<float>(value));
  }
  globals_[static_cast<std::size_t>(it->second)] = value;
  return Status::ok();
}

StatusOr<double> Vm::get_scalar(const std::string& qualified) const {
  const auto it = program_->global_scalar_index.find(qualified);
  if (it == program_->global_scalar_index.end()) {
    return Status(StatusCode::kNotFound, "no module scalar '" + qualified + "'");
  }
  return globals_[static_cast<std::size_t>(it->second)];
}

Status Vm::set_array(const std::string& qualified, std::span<const double> values) {
  const auto it = program_->global_array_index.find(qualified);
  if (it == program_->global_array_index.end()) {
    return Status(StatusCode::kNotFound, "no module array '" + qualified + "'");
  }
  ArrayStorage& arr = global_arrays_[static_cast<std::size_t>(it->second)];
  if (static_cast<std::int64_t>(values.size()) != arr.total()) {
    return Status(StatusCode::kInvalidArgument,
                  "size mismatch for '" + qualified + "': expected " +
                      std::to_string(arr.total()) + ", got " +
                      std::to_string(values.size()));
  }
  for (std::int64_t i = 0; i < arr.total(); ++i) {
    arr.set(i, values[static_cast<std::size_t>(i)]);
    if (shadow_) arr.shadow_set(i, values[static_cast<std::size_t>(i)]);
  }
  return Status::ok();
}

StatusOr<std::vector<double>> Vm::get_array(const std::string& qualified) const {
  const auto it = program_->global_array_index.find(qualified);
  if (it == program_->global_array_index.end()) {
    return Status(StatusCode::kNotFound, "no module array '" + qualified + "'");
  }
  const ArrayStorage& arr = global_arrays_[static_cast<std::size_t>(it->second)];
  std::vector<double> out(static_cast<std::size_t>(arr.total()));
  for (std::int64_t i = 0; i < arr.total(); ++i) {
    out[static_cast<std::size_t>(i)] = arr.get(i);
  }
  return out;
}

StatusOr<std::int64_t> Vm::array_size(const std::string& qualified) const {
  const auto it = program_->global_array_index.find(qualified);
  if (it == program_->global_array_index.end()) {
    return Status(StatusCode::kNotFound, "no module array '" + qualified + "'");
  }
  return global_arrays_[static_cast<std::size_t>(it->second)].total();
}

const ProcRunStats* Vm::proc_stats(const std::string& qualified) const {
  const auto it = program_->proc_index.find(qualified);
  if (it == program_->proc_index.end()) return nullptr;
  return &proc_stats_[static_cast<std::size_t>(it->second)];
}

Status Vm::fault(const std::string& message) const {
  std::string where;
  if (!frames_.empty()) {
    where = " in " + program_->procs[static_cast<std::size_t>(frames_.back().proc)].qualified();
  }
  return Status(StatusCode::kRuntimeFault, message + where);
}

void Vm::bind_frame_arrays(Frame& frame, const ProcMeta& meta, const CallSiteMeta* site) {
  frame.arrays.resize(meta.arrays.size(), nullptr);
  for (std::size_t i = 0; i < meta.arrays.size(); ++i) {
    const ArraySlotMeta& a = meta.arrays[i];
    switch (a.binding) {
      case ArrayBinding::kGlobal:
        frame.arrays[i] = &global_arrays_[static_cast<std::size_t>(a.global_index)];
        break;
      case ArrayBinding::kLocal: {
        frame.owned.push_back(std::make_unique<ArrayStorage>(a.kind, a.rank, a.extents));
        frame.arrays[i] = frame.owned.back().get();
        break;
      }
      case ArrayBinding::kAutomatic:
        frame.arrays[i] = nullptr;  // allocated by kAllocArray
        break;
      case ArrayBinding::kDummy: {
        PROSE_CHECK(site != nullptr);
        const auto& binding =
            site->array_args[static_cast<std::size_t>(a.dummy_position)];
        // Caller is the frame below the new one.
        const Frame& caller = frames_[frames_.size() - 2];
        frame.arrays[i] =
            caller.arrays[static_cast<std::size_t>(binding.caller_array_slot)];
        break;
      }
    }
  }
}

Status Vm::push_frame(std::int32_t proc_index, std::int32_t site_index,
                      std::int32_t return_pc) {
  if (frames_.size() >= options_.max_frames) {
    return fault("call stack overflow");
  }
  const ProcMeta& meta = program_->procs[static_cast<std::size_t>(proc_index)];
  const CallSiteMeta* site =
      site_index >= 0 ? &program_->call_sites[static_cast<std::size_t>(site_index)] : nullptr;

  Frame frame;
  frame.proc = proc_index;
  frame.slot_base = slots_.size();
  frame.return_pc = return_pc;
  frame.site = site_index;
  frame.caller_slot_base = frames_.empty() ? 0 : frames_.back().slot_base;
  frame.scale = (site != nullptr && site->inlined) ? site->inline_scale : 1.0;
  frame.entry_cycles = clock_.now();
  slots_.resize(slots_.size() + static_cast<std::size_t>(meta.num_slots), 0.0);
  if (shadow_) shadow_slots_.resize(slots_.size(), 0.0);
  frames_.push_back(std::move(frame));

  Frame& f = frames_.back();
  bind_frame_arrays(f, meta, site);
  if (shadow_) {
    for (auto& owned : f.owned) {
      if (!owned->has_shadow()) owned->enable_shadow();
    }
  }

  // Copy scalar arguments (kinds already match by the wrapper invariant).
  if (site != nullptr) {
    PROSE_CHECK(site->scalar_args.size() == meta.scalar_param_slots.size());
    for (std::size_t i = 0; i < site->scalar_args.size(); ++i) {
      const std::size_t to =
          f.slot_base + static_cast<std::size_t>(meta.scalar_param_slots[i]);
      const std::size_t from =
          f.caller_slot_base +
          static_cast<std::size_t>(site->scalar_args[i].value_slot);
      slots_[to] = slots_[from];
      if (shadow_) shadow_slots_[to] = shadow_slots_[from];
    }
  }
  if (meta.instrument) {
    if (Status s = timers_.start(meta.qualified()); !s.is_ok()) return s;
  }
  return Status::ok();
}

Status Vm::pop_frame(std::int32_t& pc) {
  Frame& f = frames_.back();
  const ProcMeta& meta = program_->procs[static_cast<std::size_t>(f.proc)];
  const double inclusive = clock_.now() - f.entry_cycles;
  ProcRunStats& stats = proc_stats_[static_cast<std::size_t>(f.proc)];
  stats.calls += 1;
  stats.inclusive_cycles += inclusive;
  stats.exclusive_cycles += inclusive - f.child_cycles;

  if (meta.instrument) {
    if (Status s = timers_.stop(meta.qualified()); !s.is_ok()) return s;
  }

  // Writebacks and result copy into the caller. Shadow values ride along
  // unrounded; element indices always come from the primary slots.
  if (f.site >= 0) {
    const CallSiteMeta& site = program_->call_sites[static_cast<std::size_t>(f.site)];
    for (std::size_t i = 0; i < site.scalar_args.size(); ++i) {
      const ScalarArgMeta& arg = site.scalar_args[i];
      if (arg.writeback == WritebackKind::kNone) continue;
      const std::size_t from =
          f.slot_base + static_cast<std::size_t>(meta.scalar_param_slots[i]);
      const double value = slots_[from];
      const double shadow_value = shadow_ ? shadow_slots_[from] : 0.0;
      switch (arg.writeback) {
        case WritebackKind::kSlot: {
          const std::size_t to =
              f.caller_slot_base + static_cast<std::size_t>(arg.wb_slot);
          slots_[to] = value;
          if (shadow_) shadow_slots_[to] = shadow_value;
          break;
        }
        case WritebackKind::kGlobal: {
          double v = value;
          if (program_->global_scalars[static_cast<std::size_t>(arg.wb_slot)].kind == 4) {
            v = static_cast<double>(static_cast<float>(v));
          }
          globals_[static_cast<std::size_t>(arg.wb_slot)] = v;
          if (shadow_) {
            shadow_globals_[static_cast<std::size_t>(arg.wb_slot)] = shadow_value;
            if (global_var_[static_cast<std::size_t>(arg.wb_slot)] >= 0) {
              note_shadow_var(global_var_[static_cast<std::size_t>(arg.wb_slot)],
                              rel_div(v, shadow_value));
            }
          }
          break;
        }
        case WritebackKind::kElement: {
          const Frame& caller = frames_[frames_.size() - 2];
          ArrayStorage* arr =
              caller.arrays[static_cast<std::size_t>(arg.wb_array)];
          const auto idx_value = [&](int r) -> std::int64_t {
            if (arg.wb_index[r] < 0) return 1;
            return static_cast<std::int64_t>(
                slots_[f.caller_slot_base + static_cast<std::size_t>(arg.wb_index[r])]);
          };
          const std::int64_t linear =
              arr->linearize(idx_value(0), idx_value(1), idx_value(2));
          if (linear < 0) return fault("out-of-bounds writeback");
          arr->set(linear, value);
          if (shadow_ && arr->has_shadow()) arr->shadow_set(linear, shadow_value);
          break;
        }
        case WritebackKind::kNone:
          break;
      }
    }
    if (site.result_slot >= 0 && meta.result_slot >= 0) {
      const std::size_t to =
          f.caller_slot_base + static_cast<std::size_t>(site.result_slot);
      const std::size_t from =
          f.slot_base + static_cast<std::size_t>(meta.result_slot);
      slots_[to] = slots_[from];
      if (shadow_) shadow_slots_[to] = shadow_slots_[from];
    }
  }

  pc = f.return_pc;
  slots_.resize(f.slot_base);
  if (shadow_) shadow_slots_.resize(f.slot_base);
  frames_.pop_back();
  if (!frames_.empty()) frames_.back().child_cycles += inclusive;
  return Status::ok();
}

RunResult Vm::call(const std::string& qualified_proc) {
  RunResult result;
  const auto it = program_->proc_index.find(qualified_proc);
  if (it == program_->proc_index.end()) {
    result.status = Status(StatusCode::kNotFound, "no procedure '" + qualified_proc + "'");
    return result;
  }
  const ProcMeta& meta = program_->procs[static_cast<std::size_t>(it->second)];
  if (!meta.scalar_param_slots.empty() || !meta.arrays.empty()) {
    // Entry procedures may reference module arrays (bound lazily as globals),
    // but must not have dummies.
    for (const auto& a : meta.arrays) {
      if (a.binding == ArrayBinding::kDummy) {
        result.status = Status(StatusCode::kInvalidArgument,
                               "entry procedure must have no arguments");
        return result;
      }
    }
    if (!meta.scalar_param_slots.empty()) {
      result.status = Status(StatusCode::kInvalidArgument,
                             "entry procedure must have no arguments");
      return result;
    }
  }

  // Resolve the engine up front: a decode failure (malformed program) must
  // surface before any frame is pushed or any cycle is charged.
  const VmDispatch mode = resolved_dispatch();
  const DecodedProgram* decoded = nullptr;
  if (mode != VmDispatch::kInterpret) {
    auto d = ensure_decoded();
    if (!d.is_ok()) {
      result.status = d.status();
      return result;
    }
    decoded = d.value();
  }

  run_start_cycles_ = clock_.now();
  const double cast_start = cast_cycles_;
  const std::uint64_t instr_start = instructions_;
  op_mix_ = OpMix{};  // per-call mix (observability; see RunResult::op_mix)
  fused_ = FusedStats{};

  Status pushed = push_frame(it->second, /*site_index=*/-1, /*return_pc=*/-1);
  if (!pushed.is_ok()) {
    result.status = pushed;
    return result;
  }
  switch (mode) {
    case VmDispatch::kThreaded:
      result.status = vm_engine_threaded(this, decoded, nullptr);
      break;
    case VmDispatch::kSwitch:
      result.status = vm_engine_switch(this, decoded);
      break;
    default:
      result.status = run_loop();
      break;
  }
  if (shadow_ && !result.status.is_ok()) note_shadow_fault(result.status);
  // Unwind any remaining frames on fault/timeout so the VM can be reused.
  while (!frames_.empty()) {
    const Frame& f = frames_.back();
    const ProcMeta& m = program_->procs[static_cast<std::size_t>(f.proc)];
    if (m.instrument) (void)timers_.stop(m.qualified());
    slots_.resize(f.slot_base);
    frames_.pop_back();
  }
  result.cycles = clock_.now() - run_start_cycles_;
  result.cast_cycles = cast_cycles_ - cast_start;
  result.instructions = instructions_ - instr_start;
  result.op_mix = op_mix_;
  result.fused = fused_;
  return result;
}

Status Vm::run_loop() {
  const std::vector<Instr>& code = program_->code;
  std::int32_t pc = program_->procs[static_cast<std::size_t>(frames_.back().proc)].first_instr;
  const bool trap = options_.trap_nonfinite;
  const MachineModel& mach = program_->machine;

  const auto check_finite_f = [&](float v) { return !trap || std::isfinite(v); };
  const auto check_finite_d = [&](double v) { return !trap || std::isfinite(v); };

  std::uint64_t since_budget_check = 0;

  while (true) {
    PROSE_CHECK(pc >= 0 && static_cast<std::size_t>(pc) < code.size());
    const Instr& in = code[static_cast<std::size_t>(pc)];
    Frame& frame = frames_.back();
    const std::size_t base = frame.slot_base;
    if (in.cost > 0.0) clock_.advance(in.cost * frame.scale);
    ++instructions_;
    count_op(in.op, op_mix_);

    if (++since_budget_check >= 256) {
      since_budget_check = 0;
      if (clock_.now() - run_start_cycles_ > options_.cycle_budget) {
        fault_pc_ = pc;
        return Status(StatusCode::kTimeout, "cycle budget exceeded");
      }
      if (instructions_ > options_.max_instructions) {
        fault_pc_ = pc;
        return Status(StatusCode::kRuntimeFault, "instruction limit exceeded");
      }
    }

    const auto S = [&](std::int32_t idx) -> double& {
      return slots_[base + static_cast<std::size_t>(idx)];
    };
    const auto ARR = [&](std::int32_t idx) -> ArrayStorage* {
      return frame.arrays[static_cast<std::size_t>(idx)];
    };

    switch (in.op) {
      case Op::kNop:
      case Op::kLoopEnd:
        break;
      case Op::kLoadConst:
        S(in.dst) = in.imm;
        break;
      case Op::kMov:
        S(in.dst) = S(in.a);
        break;
      case Op::kCastF32: {
        const double x = S(in.a);
        const auto v = static_cast<float>(x);
        // Overflow in the narrowing conversion itself (finite f64 that has no
        // finite f32 counterpart) is a runtime error, as with -ffpe-trap.
        if (trap && std::isfinite(x) && !std::isfinite(v)) {
          fault_pc_ = pc;
          return fault("overflow converting to real(kind=4)");
        }
        S(in.dst) = static_cast<double>(v);
        cast_cycles_ += in.cost * frame.scale;
        break;
      }
      case Op::kCastF64:
        S(in.dst) = S(in.a);
        cast_cycles_ += in.cost * frame.scale;
        break;
      case Op::kCastInt: {
        const double v = S(in.a);
        double r = 0.0;
        if (in.aux2 == 0) {
          r = std::trunc(v);
        } else if (in.aux2 == 1) {
          r = std::floor(v);
        } else {
          r = std::round(v);
        }
        S(in.dst) = r;
        break;
      }
      case Op::kLoadGlobal:
        S(in.dst) = globals_[static_cast<std::size_t>(in.aux)];
        break;
      case Op::kStoreGlobal: {
        double v = S(in.a);
        if (program_->global_scalars[static_cast<std::size_t>(in.aux)].kind == 4) {
          const auto narrowed = static_cast<float>(v);
          if (trap && std::isfinite(v) && !std::isfinite(narrowed)) {
            fault_pc_ = pc;
            return fault("overflow storing to real(kind=4) module variable");
          }
          v = static_cast<double>(narrowed);
        }
        globals_[static_cast<std::size_t>(in.aux)] = v;
        break;
      }

#define PROSE_F32_BINOP(OPNAME, EXPR)                                    \
  case Op::OPNAME: {                                                     \
    const float x = static_cast<float>(S(in.a));                         \
    const float y = static_cast<float>(S(in.b));                         \
    const float r = (EXPR);                                              \
    if (!check_finite_f(r)) {                                            \
      fault_pc_ = pc;                                                    \
      return fault("non-finite f32 result");                             \
    }                                                                    \
    S(in.dst) = static_cast<double>(r);                                  \
    break;                                                               \
  }
#define PROSE_F64_BINOP(OPNAME, EXPR)                                    \
  case Op::OPNAME: {                                                     \
    const double x = S(in.a);                                            \
    const double y = S(in.b);                                            \
    const double r = (EXPR);                                             \
    if (!check_finite_d(r)) {                                            \
      fault_pc_ = pc;                                                    \
      return fault("non-finite f64 result");                             \
    }                                                                    \
    S(in.dst) = r;                                                       \
    break;                                                               \
  }

      PROSE_F32_BINOP(kAddF32, x + y)
      PROSE_F32_BINOP(kSubF32, x - y)
      PROSE_F32_BINOP(kMulF32, x * y)
      PROSE_F32_BINOP(kDivF32, x / y)
      PROSE_F32_BINOP(kPowF32, std::pow(x, y))
      PROSE_F64_BINOP(kAddF64, x + y)
      PROSE_F64_BINOP(kSubF64, x - y)
      PROSE_F64_BINOP(kMulF64, x * y)
      PROSE_F64_BINOP(kDivF64, x / y)
      PROSE_F64_BINOP(kPowF64, std::pow(x, y))
#undef PROSE_F32_BINOP
#undef PROSE_F64_BINOP

      case Op::kAddI: S(in.dst) = S(in.a) + S(in.b); break;
      case Op::kSubI: S(in.dst) = S(in.a) - S(in.b); break;
      case Op::kMulI: S(in.dst) = S(in.a) * S(in.b); break;
      case Op::kDivI: {
        const double b = S(in.b);
        if (b == 0.0) {
          fault_pc_ = pc;
          return fault("integer division by zero");
        }
        S(in.dst) = std::trunc(S(in.a) / b);
        break;
      }
      case Op::kPowI: {
        const double r = std::pow(S(in.a), S(in.b));
        S(in.dst) = std::trunc(r);
        break;
      }
      case Op::kNegF32:
        S(in.dst) = static_cast<double>(-static_cast<float>(S(in.a)));
        break;
      case Op::kNegF64:
        S(in.dst) = -S(in.a);
        break;
      case Op::kNegI:
        S(in.dst) = -S(in.a);
        break;

      case Op::kCmpEq: S(in.dst) = S(in.a) == S(in.b) ? 1.0 : 0.0; break;
      case Op::kCmpNe: S(in.dst) = S(in.a) != S(in.b) ? 1.0 : 0.0; break;
      case Op::kCmpLt: S(in.dst) = S(in.a) < S(in.b) ? 1.0 : 0.0; break;
      case Op::kCmpLe: S(in.dst) = S(in.a) <= S(in.b) ? 1.0 : 0.0; break;
      case Op::kCmpGt: S(in.dst) = S(in.a) > S(in.b) ? 1.0 : 0.0; break;
      case Op::kCmpGe: S(in.dst) = S(in.a) >= S(in.b) ? 1.0 : 0.0; break;

      case Op::kAnd: S(in.dst) = (S(in.a) != 0.0 && S(in.b) != 0.0) ? 1.0 : 0.0; break;
      case Op::kOr: S(in.dst) = (S(in.a) != 0.0 || S(in.b) != 0.0) ? 1.0 : 0.0; break;
      case Op::kNot: S(in.dst) = S(in.a) == 0.0 ? 1.0 : 0.0; break;
      case Op::kEqv: S(in.dst) = ((S(in.a) != 0.0) == (S(in.b) != 0.0)) ? 1.0 : 0.0; break;
      case Op::kNeqv: S(in.dst) = ((S(in.a) != 0.0) != (S(in.b) != 0.0)) ? 1.0 : 0.0; break;

      case Op::kIntrin1: {
        const auto intr = static_cast<Intrinsic>(in.aux);
        const bool f32 = in.kind == 4;
        double r = 0.0;
        const double x = S(in.a);
        switch (intr) {
          case Intrinsic::kAbs: r = std::abs(x); break;
          case Intrinsic::kSqrt:
            r = f32 ? static_cast<double>(std::sqrt(static_cast<float>(x))) : std::sqrt(x);
            break;
          case Intrinsic::kExp:
            r = f32 ? static_cast<double>(std::exp(static_cast<float>(x))) : std::exp(x);
            break;
          case Intrinsic::kLog:
            r = f32 ? static_cast<double>(std::log(static_cast<float>(x))) : std::log(x);
            break;
          case Intrinsic::kSin:
            r = f32 ? static_cast<double>(std::sin(static_cast<float>(x))) : std::sin(x);
            break;
          case Intrinsic::kCos:
            r = f32 ? static_cast<double>(std::cos(static_cast<float>(x))) : std::cos(x);
            break;
          case Intrinsic::kTan:
            r = f32 ? static_cast<double>(std::tan(static_cast<float>(x))) : std::tan(x);
            break;
          case Intrinsic::kAtan:
            r = f32 ? static_cast<double>(std::atan(static_cast<float>(x))) : std::atan(x);
            break;
          default:
            fault_pc_ = pc;
            return fault("unknown unary intrinsic");
        }
        if (!check_finite_d(r)) {
          fault_pc_ = pc;
          return fault("non-finite intrinsic result");
        }
        S(in.dst) = r;
        break;
      }
      case Op::kIntrin2: {
        const auto intr = static_cast<Intrinsic>(in.aux);
        const bool f32 = in.kind == 4;
        const double x = S(in.a);
        const double y = S(in.b);
        double r = 0.0;
        switch (intr) {
          case Intrinsic::kMin: r = std::min(x, y); break;
          case Intrinsic::kMax: r = std::max(x, y); break;
          case Intrinsic::kMod:
            r = f32 ? static_cast<double>(
                          std::fmod(static_cast<float>(x), static_cast<float>(y)))
                    : std::fmod(x, y);
            break;
          case Intrinsic::kSign:
            r = y >= 0.0 ? std::abs(x) : -std::abs(x);
            break;
          case Intrinsic::kAtan2:
            r = f32 ? static_cast<double>(
                          std::atan2(static_cast<float>(x), static_cast<float>(y)))
                    : std::atan2(x, y);
            break;
          default:
            fault_pc_ = pc;
            return fault("unknown binary intrinsic");
        }
        if (!check_finite_d(r)) {
          fault_pc_ = pc;
          return fault("non-finite intrinsic result");
        }
        S(in.dst) = r;
        break;
      }

      case Op::kLoadElem: {
        ArrayStorage* arr = ARR(in.aux);
        const auto idx = [&](std::int32_t s) -> std::int64_t {
          return s < 0 ? 1 : static_cast<std::int64_t>(S(s));
        };
        const std::int64_t linear = arr->linearize(idx(in.a), idx(in.b), idx(in.c));
        if (linear < 0) {
          fault_pc_ = pc;
          return fault("array subscript out of bounds (read)");
        }
        S(in.dst) = arr->get(linear);
        break;
      }
      case Op::kStoreElem: {
        ArrayStorage* arr = ARR(in.aux);
        const auto idx = [&](std::int32_t s) -> std::int64_t {
          return s < 0 ? 1 : static_cast<std::int64_t>(S(s));
        };
        const std::int64_t linear = arr->linearize(idx(in.a), idx(in.b), idx(in.c));
        if (linear < 0) {
          fault_pc_ = pc;
          return fault("array subscript out of bounds (write)");
        }
        const double v = S(in.dst);
        if (!check_finite_d(v)) {
          fault_pc_ = pc;
          return fault("storing non-finite value");
        }
        if (arr->kind() == 4 && trap && !std::isfinite(static_cast<float>(v))) {
          fault_pc_ = pc;
          return fault("overflow storing to real(kind=4) array");
        }
        arr->set(linear, v);
        break;
      }
      case Op::kArrayFill: {
        ArrayStorage* arr = ARR(in.aux);
        const double v = S(in.a);
        for (std::int64_t i = 0; i < arr->total(); ++i) arr->set(i, v);
        const double bytes = mach.bytes_for_kind(arr->kind());
        clock_.advance(static_cast<double>(arr->total()) *
                       (bytes * mach.mem_cost_per_byte + 0.1));
        break;
      }
      case Op::kArrayCopy: {
        ArrayStorage* dst = ARR(in.aux);
        ArrayStorage* src = ARR(in.aux2);
        if (dst->total() != src->total()) {
          fault_pc_ = pc;
          return fault("array shape mismatch in copy");
        }
        const bool narrowing = dst->kind() == 4 && src->kind() == 8;
        for (std::int64_t i = 0; i < src->total(); ++i) {
          const double v = src->get(i);
          if (narrowing && trap && std::isfinite(v) &&
              !std::isfinite(static_cast<float>(v))) {
            fault_pc_ = pc;
            return fault("overflow converting array to real(kind=4)");
          }
          dst->set(i, v);
        }
        const double bytes =
            mach.bytes_for_kind(dst->kind()) + mach.bytes_for_kind(src->kind());
        double per_elem = bytes * mach.mem_cost_per_byte + 0.25;
        double cast_part = 0.0;
        if (dst->kind() != src->kind()) {
          cast_part = 0.5;  // convert per element on top of the traffic
          per_elem += cast_part;
          cast_cycles_ += static_cast<double>(src->total()) *
                          (cast_part + bytes * mach.mem_cost_per_byte * 0.5);
        }
        clock_.advance(static_cast<double>(src->total()) * per_elem);
        break;
      }
      case Op::kReduce: {
        ArrayStorage* arr = ARR(in.aux);
        double r = 0.0;
        if (arr->kind() == 4) {
          float acc = in.aux2 == 0 ? 0.0f
                                   : static_cast<float>(arr->get(0));
          for (std::int64_t i = 0; i < arr->total(); ++i) {
            const auto v = static_cast<float>(arr->get(i));
            if (in.aux2 == 0) {
              acc += v;
            } else if (in.aux2 == 1) {
              acc = std::min(acc, v);
            } else {
              acc = std::max(acc, v);
            }
          }
          r = static_cast<double>(acc);
        } else {
          double acc = in.aux2 == 0 ? 0.0 : arr->get(0);
          for (std::int64_t i = 0; i < arr->total(); ++i) {
            const double v = arr->get(i);
            if (in.aux2 == 0) {
              acc += v;
            } else if (in.aux2 == 1) {
              acc = std::min(acc, v);
            } else {
              acc = std::max(acc, v);
            }
          }
          r = acc;
        }
        if (!check_finite_d(r)) {
          fault_pc_ = pc;
          return fault("non-finite reduction result");
        }
        S(in.dst) = r;
        const double lanes = static_cast<double>(mach.lanes_for_kind(arr->kind()));
        const double bytes = mach.bytes_for_kind(arr->kind());
        clock_.advance(static_cast<double>(arr->total()) *
                       (bytes * mach.mem_cost_per_byte + mach.cost_add / lanes));
        break;
      }
      case Op::kArraySize: {
        const ArrayStorage* arr = ARR(in.aux);
        S(in.dst) = in.aux2 == 0 ? static_cast<double>(arr->total())
                                 : static_cast<double>(arr->extent(in.aux2 - 1));
        break;
      }
      case Op::kAllReduce:
        S(in.dst) = S(in.a);  // single simulated process owns the domain
        break;

      case Op::kJmp:
        pc = in.aux;
        continue;
      case Op::kJmpIfFalse:
        // Control flow always follows the primary values; the shadow hook
        // only counts branches the binary64 run would have taken differently.
        if (shadow_) shadow_branch(in, frame);
        if (S(in.a) == 0.0) {
          pc = in.aux;
          continue;
        }
        break;
      case Op::kLoopCond: {
        const double i = S(in.a);
        const double hi = S(in.b);
        const double step = S(in.c);
        S(in.dst) = (step > 0.0 ? i <= hi : i >= hi) ? 1.0 : 0.0;
        break;
      }
      case Op::kLoopBegin:
        if (in.aux >= 0 &&
            static_cast<std::size_t>(in.aux) < program_->loops.size() &&
            program_->loops[static_cast<std::size_t>(in.aux)].vectorized) {
          ++op_mix_.vector_loop_entries;
        } else {
          ++op_mix_.scalar_loop_entries;
        }
        break;

      case Op::kAllocArray: {
        const ProcMeta& meta = program_->procs[static_cast<std::size_t>(frame.proc)];
        const ArraySlotMeta& a = meta.arrays[static_cast<std::size_t>(in.aux)];
        std::int64_t extents[3] = {1, 1, 1};
        for (int r = 0; r < a.rank; ++r) {
          if (a.extents[r] == -2) {
            extents[r] = static_cast<std::int64_t>(
                S(a.extent_slots[r]));
          } else {
            extents[r] = a.extents[r];
          }
          if (extents[r] <= 0) {
            fault_pc_ = pc;
            return fault("non-positive automatic array extent");
          }
        }
        frame.owned.push_back(std::make_unique<ArrayStorage>(a.kind, a.rank, extents));
        frame.arrays[static_cast<std::size_t>(in.aux)] = frame.owned.back().get();
        break;
      }

      case Op::kCall: {
        if (Status s = push_frame(in.aux, in.aux2, pc + 1); !s.is_ok()) return s;
        pc = program_->procs[static_cast<std::size_t>(in.aux)].first_instr;
        continue;
      }
      case Op::kRet: {
        std::int32_t ret = -1;
        if (Status s = pop_frame(ret); !s.is_ok()) return s;
        if (frames_.empty()) return Status::ok();
        pc = ret;
        continue;
      }
      case Op::kPrint: {
        const PrintMeta& meta = program_->prints[static_cast<std::size_t>(in.aux2)];
        print_log_ += meta.text;
        char buf[40];
        for (const auto s : meta.arg_slots) {
          std::snprintf(buf, sizeof buf, " %.9g", S(s));
          print_log_ += buf;
        }
        print_log_ += '\n';
        break;
      }
      case Op::kHalt:
        return Status::ok();
    }
    if (shadow_) shadow_step(in, frame, pc);
    ++pc;
  }
}

// ---------------------------------------------------------------------------
// Shadow execution
// ---------------------------------------------------------------------------
//
// Every scalar slot, module scalar, and array element carries a binary64
// shadow value — "what the all-binary64 run would have computed" — updated
// in lock-step with the primary mixed-precision execution. The invariants:
//   * control flow, subscripts, and loop bounds come from the primary values
//     (a shadow-divergent branch is *counted*, never taken);
//   * narrowing sites (kCastF32, kind-4 stores, casting array copies) leave
//     the shadow unrounded — that is where primary and shadow part ways;
//   * nothing here touches the clock, the op-mix, the timers, or any primary
//     state, so a shadowed run is bit-identical in cycles and outcomes.

std::int32_t Vm::shadow_var_index(const std::string& name) {
  if (name.empty()) return -1;
  const auto it = shadow_var_index_.find(name);
  if (it != shadow_var_index_.end()) return it->second;
  const auto idx = static_cast<std::int32_t>(shadow_vars_.size());
  shadow_var_index_[name] = idx;
  shadow_vars_.push_back(ShadowVarStats{});
  shadow_var_names_.push_back(name);
  return idx;
}

void Vm::init_shadow_tables() {
  global_var_.resize(program_->global_scalars.size(), -1);
  for (std::size_t g = 0; g < program_->global_scalars.size(); ++g) {
    global_var_[g] = shadow_var_index(program_->global_scalars[g].qualified);
  }
  slot_var_.resize(program_->procs.size());
  array_var_.resize(program_->procs.size());
  for (std::size_t p = 0; p < program_->procs.size(); ++p) {
    const ProcMeta& meta = program_->procs[p];
    slot_var_[p].assign(static_cast<std::size_t>(meta.num_slots), -1);
    for (std::size_t s = 0; s < meta.slot_names.size() &&
                            s < slot_var_[p].size(); ++s) {
      slot_var_[p][s] = shadow_var_index(meta.slot_names[s]);
    }
    array_var_[p].assign(meta.arrays.size(), -1);
    for (std::size_t a = 0; a < meta.arrays.size(); ++a) {
      const ArraySlotMeta& am = meta.arrays[a];
      std::string name = am.name;
      if (name.empty() && am.binding == ArrayBinding::kGlobal) {
        name = program_->global_arrays[static_cast<std::size_t>(am.global_index)]
                   .qualified;
      }
      array_var_[p][a] = shadow_var_index(name);
    }
  }
}

void Vm::note_shadow_var(std::int32_t var, double div) {
  ShadowVarStats& vs = shadow_vars_[static_cast<std::size_t>(var)];
  vs.writes += 1;
  if (div > vs.max_rel_div) vs.max_rel_div = div;
}

void Vm::note_shadow_div(double div, std::int32_t proc, std::int32_t pc) {
  if (div <= 0.0) return;
  if (div > shadow_max_div_) shadow_max_div_ = div;
  ShadowProcStats& ps = shadow_procs_[static_cast<std::size_t>(proc)];
  if (div > ps.max_rel_div) ps.max_rel_div = div;
  if (first_div_proc_ < 0 && div > kFirstDivergence) {
    first_div_proc_ = proc;
    first_div_instr_ = pc;
  }
}

void Vm::note_shadow_write(std::int32_t dst, const Frame& frame, std::int32_t pc) {
  const std::size_t at = frame.slot_base + static_cast<std::size_t>(dst);
  const double div = rel_div(slots_[at], shadow_slots_[at]);
  note_shadow_div(div, frame.proc, pc);
  const auto& vars = slot_var_[static_cast<std::size_t>(frame.proc)];
  if (static_cast<std::size_t>(dst) < vars.size() &&
      vars[static_cast<std::size_t>(dst)] >= 0) {
    note_shadow_var(vars[static_cast<std::size_t>(dst)], div);
  }
}

void Vm::shadow_branch(const Instr& in, const Frame& frame) {
  const std::size_t at = frame.slot_base + static_cast<std::size_t>(in.a);
  const bool primary_taken = slots_[at] != 0.0;
  const bool shadow_taken = shadow_slots_[at] != 0.0;
  if (primary_taken != shadow_taken) {
    ++shadow_control_divs_;
    ++shadow_procs_[static_cast<std::size_t>(frame.proc)].control_divergences;
  }
}

void Vm::note_shadow_fault(const Status& status) {
  if (frames_.empty()) return;
  const Frame& f = frames_.back();
  shadow_fault_proc_ = f.proc;
  shadow_procs_[static_cast<std::size_t>(f.proc)].faulted = true;
  const double inf = std::numeric_limits<double>::infinity();
  note_shadow_div(inf, f.proc, fault_pc_);
  if (status.code() != StatusCode::kRuntimeFault || fault_pc_ < 0) return;
  // Name the overflow/non-finite target when the faulting instruction has
  // one — this is how "demote cond_probe → binary32 overflow" gets pinned to
  // the variable instead of just the procedure.
  const Instr& in = program_->code[static_cast<std::size_t>(fault_pc_)];
  const auto& vars = slot_var_[static_cast<std::size_t>(f.proc)];
  const auto named_slot = [&](std::int32_t s) -> std::int32_t {
    if (s < 0 || static_cast<std::size_t>(s) >= vars.size()) return -1;
    return vars[static_cast<std::size_t>(s)];
  };
  std::int32_t var = -1;
  switch (in.op) {
    case Op::kStoreGlobal:
      var = global_var_[static_cast<std::size_t>(in.aux)];
      break;
    case Op::kStoreElem:
    case Op::kArrayFill:
    case Op::kArrayCopy:
      var = array_var_[static_cast<std::size_t>(f.proc)]
                      [static_cast<std::size_t>(in.aux)];
      break;
    default:
      var = named_slot(in.dst);
      break;
  }
  if (var >= 0) note_shadow_var(var, inf);
}

void Vm::shadow_step(const Instr& in, const Frame& frame, std::int32_t pc) {
  const std::size_t base = frame.slot_base;
  const auto S = [&](std::int32_t idx) -> double {
    return slots_[base + static_cast<std::size_t>(idx)];
  };
  const auto SS = [&](std::int32_t idx) -> double& {
    return shadow_slots_[base + static_cast<std::size_t>(idx)];
  };
  const auto ARR = [&](std::int32_t idx) -> ArrayStorage* {
    return frame.arrays[static_cast<std::size_t>(idx)];
  };
  ShadowProcStats& ps = shadow_procs_[static_cast<std::size_t>(frame.proc)];

  // Per-op "introduced" divergence: how much worse the result diverges than
  // its worst operand — error born at this site, not inherited.
  const auto note_arith = [&](double operand_div) {
    const double result_div = rel_div(S(in.dst), SS(in.dst));
    double introduced = std::max(0.0, result_div - operand_div);
    // rel_div is ≤ 2 for finite pairs; clamp the non-finite-shadow case so
    // one NaN cannot swamp a procedure's finite blame sum.
    if (!std::isfinite(introduced)) introduced = 2.0;
    if (introduced > 0.0) {
      ps.introduced_sum += introduced;
      if (introduced > ps.introduced_max) ps.introduced_max = introduced;
    }
  };
  const auto operand_div1 = [&] { return rel_div(S(in.a), SS(in.a)); };
  const auto operand_div2 = [&] {
    return std::max(rel_div(S(in.a), SS(in.a)), rel_div(S(in.b), SS(in.b)));
  };
  // Catastrophic cancellation: an effective subtraction of nearly equal
  // shadow operands whose primary result drops most of its mantissa's worth
  // of binade exponents (complete cancellation to ±0 always counts).
  const auto note_cancellation = [&](double sx, double sy, bool f32) {
    if (sx == 0.0 || sy == 0.0 || !std::isfinite(sx) || !std::isfinite(sy)) return;
    if ((sx > 0.0) == (sy > 0.0)) return;  // same effective sign: no cancel
    const double big = std::max(std::abs(sx), std::abs(sy));
    const double pr = std::abs(S(in.dst));
    const int drop = pr == 0.0 ? std::numeric_limits<int>::max()
                               : std::ilogb(big) - std::ilogb(pr);
    if (drop >= (f32 ? kCancelBitsF32 : kCancelBitsF64)) {
      ++shadow_cancellations_;
      ++ps.cancellations;
    }
  };

  switch (in.op) {
    case Op::kLoadConst:
      SS(in.dst) = in.imm;
      note_shadow_write(in.dst, frame, pc);
      break;
    case Op::kMov:
      SS(in.dst) = SS(in.a);
      note_shadow_write(in.dst, frame, pc);
      break;
    case Op::kCastF32: {
      // Narrowing never rounds the shadow; the primary rounding shows up as
      // introduced divergence right here.
      const double od = operand_div1();
      SS(in.dst) = SS(in.a);
      note_arith(od);
      ps.cast_cycles += in.cost * frame.scale;
      note_shadow_write(in.dst, frame, pc);
      break;
    }
    case Op::kCastF64:
      SS(in.dst) = SS(in.a);
      ps.cast_cycles += in.cost * frame.scale;
      note_shadow_write(in.dst, frame, pc);
      break;
    // Integer results track the primary exactly — subscripts, loop counters,
    // and iteration counts must be common to both executions.
    case Op::kCastInt:
    case Op::kAddI: case Op::kSubI: case Op::kMulI: case Op::kDivI:
    case Op::kPowI: case Op::kNegI:
    case Op::kArraySize:
      SS(in.dst) = S(in.dst);
      break;
    case Op::kLoadGlobal:
      SS(in.dst) = shadow_globals_[static_cast<std::size_t>(in.aux)];
      note_shadow_write(in.dst, frame, pc);
      break;
    case Op::kStoreGlobal: {
      const double sv = SS(in.a);
      shadow_globals_[static_cast<std::size_t>(in.aux)] = sv;
      const double div =
          rel_div(globals_[static_cast<std::size_t>(in.aux)], sv);
      note_shadow_div(div, frame.proc, pc);
      if (global_var_[static_cast<std::size_t>(in.aux)] >= 0) {
        note_shadow_var(global_var_[static_cast<std::size_t>(in.aux)], div);
      }
      break;
    }

    case Op::kAddF32: case Op::kAddF64: {
      const double od = operand_div2();
      note_cancellation(SS(in.a), SS(in.b), in.op == Op::kAddF32);
      SS(in.dst) = SS(in.a) + SS(in.b);
      note_arith(od);
      note_shadow_write(in.dst, frame, pc);
      break;
    }
    case Op::kSubF32: case Op::kSubF64: {
      const double od = operand_div2();
      note_cancellation(SS(in.a), -SS(in.b), in.op == Op::kSubF32);
      SS(in.dst) = SS(in.a) - SS(in.b);
      note_arith(od);
      note_shadow_write(in.dst, frame, pc);
      break;
    }
    case Op::kMulF32: case Op::kMulF64: {
      const double od = operand_div2();
      SS(in.dst) = SS(in.a) * SS(in.b);
      note_arith(od);
      note_shadow_write(in.dst, frame, pc);
      break;
    }
    case Op::kDivF32: case Op::kDivF64: {
      const double od = operand_div2();
      SS(in.dst) = SS(in.a) / SS(in.b);
      note_arith(od);
      note_shadow_write(in.dst, frame, pc);
      break;
    }
    case Op::kPowF32: case Op::kPowF64: {
      const double od = operand_div2();
      SS(in.dst) = std::pow(SS(in.a), SS(in.b));
      note_arith(od);
      note_shadow_write(in.dst, frame, pc);
      break;
    }
    case Op::kNegF32: case Op::kNegF64:
      SS(in.dst) = -SS(in.a);
      note_shadow_write(in.dst, frame, pc);
      break;

    // Predicates are computed from the shadow values (so kJmpIfFalse can
    // detect control divergence) but never feed arithmetic.
    case Op::kCmpEq: SS(in.dst) = SS(in.a) == SS(in.b) ? 1.0 : 0.0; break;
    case Op::kCmpNe: SS(in.dst) = SS(in.a) != SS(in.b) ? 1.0 : 0.0; break;
    case Op::kCmpLt: SS(in.dst) = SS(in.a) < SS(in.b) ? 1.0 : 0.0; break;
    case Op::kCmpLe: SS(in.dst) = SS(in.a) <= SS(in.b) ? 1.0 : 0.0; break;
    case Op::kCmpGt: SS(in.dst) = SS(in.a) > SS(in.b) ? 1.0 : 0.0; break;
    case Op::kCmpGe: SS(in.dst) = SS(in.a) >= SS(in.b) ? 1.0 : 0.0; break;
    case Op::kAnd:
      SS(in.dst) = (SS(in.a) != 0.0 && SS(in.b) != 0.0) ? 1.0 : 0.0;
      break;
    case Op::kOr:
      SS(in.dst) = (SS(in.a) != 0.0 || SS(in.b) != 0.0) ? 1.0 : 0.0;
      break;
    case Op::kNot: SS(in.dst) = SS(in.a) == 0.0 ? 1.0 : 0.0; break;
    case Op::kEqv:
      SS(in.dst) = ((SS(in.a) != 0.0) == (SS(in.b) != 0.0)) ? 1.0 : 0.0;
      break;
    case Op::kNeqv:
      SS(in.dst) = ((SS(in.a) != 0.0) != (SS(in.b) != 0.0)) ? 1.0 : 0.0;
      break;
    case Op::kLoopCond: {
      const double i = SS(in.a);
      const double hi = SS(in.b);
      const double step = SS(in.c);
      SS(in.dst) = (step > 0.0 ? i <= hi : i >= hi) ? 1.0 : 0.0;
      break;
    }

    case Op::kIntrin1: {
      const auto intr = static_cast<Intrinsic>(in.aux);
      const double od = operand_div1();
      const double x = SS(in.a);
      double r = 0.0;
      switch (intr) {
        case Intrinsic::kAbs: r = std::abs(x); break;
        case Intrinsic::kSqrt: r = std::sqrt(x); break;
        case Intrinsic::kExp: r = std::exp(x); break;
        case Intrinsic::kLog: r = std::log(x); break;
        case Intrinsic::kSin: r = std::sin(x); break;
        case Intrinsic::kCos: r = std::cos(x); break;
        case Intrinsic::kTan: r = std::tan(x); break;
        case Intrinsic::kAtan: r = std::atan(x); break;
        default: r = SS(in.a); break;
      }
      SS(in.dst) = r;
      note_arith(od);
      note_shadow_write(in.dst, frame, pc);
      break;
    }
    case Op::kIntrin2: {
      const auto intr = static_cast<Intrinsic>(in.aux);
      const double od = operand_div2();
      const double x = SS(in.a);
      const double y = SS(in.b);
      double r = 0.0;
      switch (intr) {
        case Intrinsic::kMin: r = std::min(x, y); break;
        case Intrinsic::kMax: r = std::max(x, y); break;
        case Intrinsic::kMod: r = std::fmod(x, y); break;
        case Intrinsic::kSign: r = y >= 0.0 ? std::abs(x) : -std::abs(x); break;
        case Intrinsic::kAtan2: r = std::atan2(x, y); break;
        default: r = x; break;
      }
      SS(in.dst) = r;
      note_arith(od);
      note_shadow_write(in.dst, frame, pc);
      break;
    }

    case Op::kLoadElem: {
      ArrayStorage* arr = ARR(in.aux);
      const auto idx = [&](std::int32_t s) -> std::int64_t {
        return s < 0 ? 1 : static_cast<std::int64_t>(S(s));
      };
      const std::int64_t linear = arr->linearize(idx(in.a), idx(in.b), idx(in.c));
      SS(in.dst) = arr->has_shadow() ? arr->shadow_get(linear) : arr->get(linear);
      note_shadow_write(in.dst, frame, pc);
      break;
    }
    case Op::kStoreElem: {
      ArrayStorage* arr = ARR(in.aux);
      const auto idx = [&](std::int32_t s) -> std::int64_t {
        return s < 0 ? 1 : static_cast<std::int64_t>(S(s));
      };
      const std::int64_t linear = arr->linearize(idx(in.a), idx(in.b), idx(in.c));
      const double sv = SS(in.dst);
      if (arr->has_shadow()) arr->shadow_set(linear, sv);
      const double div = rel_div(arr->get(linear), sv);
      note_shadow_div(div, frame.proc, pc);
      const auto var = array_var_[static_cast<std::size_t>(frame.proc)]
                                 [static_cast<std::size_t>(in.aux)];
      if (var >= 0) note_shadow_var(var, div);
      break;
    }
    case Op::kArrayFill: {
      ArrayStorage* arr = ARR(in.aux);
      if (!arr->has_shadow()) break;
      const double sv = SS(in.a);
      for (std::int64_t i = 0; i < arr->total(); ++i) arr->shadow_set(i, sv);
      break;
    }
    case Op::kArrayCopy: {
      ArrayStorage* dst = ARR(in.aux);
      ArrayStorage* src = ARR(in.aux2);
      if (dst->has_shadow()) {
        double max_div = 0.0;
        for (std::int64_t i = 0; i < src->total(); ++i) {
          const double sv = src->has_shadow() ? src->shadow_get(i) : src->get(i);
          dst->shadow_set(i, sv);
          max_div = std::max(max_div, rel_div(dst->get(i), sv));
        }
        note_shadow_div(max_div, frame.proc, pc);
        const auto var = array_var_[static_cast<std::size_t>(frame.proc)]
                                   [static_cast<std::size_t>(in.aux)];
        if (var >= 0) note_shadow_var(var, max_div);
      }
      if (dst->kind() != src->kind()) {
        // Mirror of the primary cast-cycle charge, attributed to this proc.
        const double bytes = program_->machine.bytes_for_kind(dst->kind()) +
                             program_->machine.bytes_for_kind(src->kind());
        ps.cast_cycles +=
            static_cast<double>(src->total()) *
            (0.5 + bytes * program_->machine.mem_cost_per_byte * 0.5);
      }
      break;
    }
    case Op::kReduce: {
      ArrayStorage* arr = ARR(in.aux);
      const auto sval = [&](std::int64_t i) {
        return arr->has_shadow() ? arr->shadow_get(i) : arr->get(i);
      };
      double acc = in.aux2 == 0 ? 0.0 : sval(0);
      for (std::int64_t i = 0; i < arr->total(); ++i) {
        const double v = sval(i);
        if (in.aux2 == 0) {
          acc += v;
        } else if (in.aux2 == 1) {
          acc = std::min(acc, v);
        } else {
          acc = std::max(acc, v);
        }
      }
      SS(in.dst) = acc;
      note_shadow_write(in.dst, frame, pc);
      break;
    }
    case Op::kAllReduce:
      SS(in.dst) = SS(in.a);
      break;

    case Op::kAllocArray: {
      ArrayStorage* arr = ARR(in.aux);
      if (arr != nullptr && !arr->has_shadow()) arr->enable_shadow();
      break;
    }

    // Control transfers are handled inline (kJmpIfFalse) or inside
    // push_frame/pop_frame (kCall/kRet, which skip this hook entirely);
    // everything else writes no floating-point value.
    default:
      break;
  }
}

ShadowReport Vm::shadow_report() const {
  ShadowReport report;
  report.enabled = shadow_;
  if (!shadow_) return report;
  report.max_rel_div = shadow_max_div_;
  report.cancellations = shadow_cancellations_;
  report.control_divergences = shadow_control_divs_;
  if (first_div_proc_ >= 0) {
    const ProcMeta& meta = program_->procs[static_cast<std::size_t>(first_div_proc_)];
    report.has_first_divergence = true;
    report.first_divergence_proc = meta.qualified();
    report.first_divergence_instr =
        first_div_instr_ >= 0 ? first_div_instr_ - meta.first_instr : -1;
  }
  if (shadow_fault_proc_ >= 0) {
    report.fault_proc =
        program_->procs[static_cast<std::size_t>(shadow_fault_proc_)].qualified();
  }
  for (std::size_t v = 0; v < shadow_vars_.size(); ++v) {
    if (shadow_vars_[v].writes == 0) continue;
    report.vars[shadow_var_names_[v]] = shadow_vars_[v];
  }
  for (std::size_t p = 0; p < shadow_procs_.size(); ++p) {
    const ShadowProcStats& ps = shadow_procs_[p];
    const bool active = ps.introduced_sum > 0.0 || ps.cancellations > 0 ||
                        ps.control_divergences > 0 || ps.cast_cycles > 0.0 ||
                        ps.max_rel_div > 0.0 || ps.faulted;
    if (!active) continue;
    report.procs[program_->procs[p].qualified()] = ps;
  }
  return report;
}

}  // namespace prose::sim
