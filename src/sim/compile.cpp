#include "sim/compile.h"

#include <array>
#include <cmath>
#include <functional>
#include <limits>

#include "ftn/callgraph.h"

namespace prose::sim {

using ftn::BaseType;
using ftn::BinaryOp;
using ftn::DeclEntity;
using ftn::Expr;
using ftn::ExprKind;
using ftn::ExprPtr;
using ftn::Intrinsic;
using ftn::Procedure;
using ftn::ResolvedProgram;
using ftn::ScalarType;
using ftn::Stmt;
using ftn::StmtKind;
using ftn::Symbol;
using ftn::SymbolId;
using ftn::SymbolKind;
using ftn::UnaryOp;

namespace {

Status compile_err(std::string message) {
  return Status(StatusCode::kSemanticError, std::move(message));
}

/// Value kinds used by the compiler's expression layer.
enum class VKind : std::uint8_t { kF32, kF64, kInt, kBool };

VKind vkind_of(const ScalarType& t) {
  switch (t.base) {
    case BaseType::kReal: return t.kind == 4 ? VKind::kF32 : VKind::kF64;
    case BaseType::kInteger: return VKind::kInt;
    case BaseType::kLogical: return VKind::kBool;
  }
  return VKind::kF64;
}

int fortran_kind(VKind k) { return k == VKind::kF32 ? 4 : 8; }

struct Operand {
  std::int32_t slot = -1;
  VKind kind = VKind::kF64;
};

class Compiler {
 public:
  Compiler(const ResolvedProgram& rp, const MachineModel& machine,
           const CompileOptions& options)
      : rp_(rp), machine_(machine), options_(options) {}

  StatusOr<CompiledProgram> run() {
    out_.machine = machine_;
    const ftn::CallGraph cg = ftn::CallGraph::build(rp_);
    out_.vec_report = analyze_vectorization(rp_, cg, machine_);

    collect_globals();
    register_procs();
    for (const auto& mod : rp_.program.modules) {
      for (const auto& proc : mod.procedures) {
        if (Status s = compile_proc(mod.name, proc); !s.is_ok()) return s;
      }
    }
    return std::move(out_);
  }

 private:
  // ---- program-level tables -------------------------------------------------

  void collect_globals() {
    for (const auto& mod : rp_.program.modules) {
      for (const auto& d : mod.decls) {
        if (d.is_parameter) continue;
        const Symbol& sym = rp_.symbols.get(d.symbol);
        const std::string q = sym.qualified();
        if (d.is_array()) {
          GlobalArrayMeta meta;
          meta.qualified = q;
          meta.kind = d.type.is_real() ? d.type.kind : 8;  // int/logical arrays stored wide
          meta.rank = sym.rank();
          for (int r = 0; r < meta.rank; ++r) meta.extents[r] = sym.extents[static_cast<std::size_t>(r)];
          out_.global_array_index[q] = static_cast<std::int32_t>(out_.global_arrays.size());
          global_array_of_symbol_[d.symbol] = out_.global_array_index[q];
          out_.global_arrays.push_back(meta);
        } else {
          GlobalScalarMeta meta;
          meta.qualified = q;
          meta.kind = d.type.is_real() ? d.type.kind : 8;
          if (d.init != nullptr && sym.const_value.has_value()) {
            meta.init = sym.const_value->as_real();
          } else if (d.init != nullptr) {
            // Non-parameter initializers must be constants in the subset;
            // sema folded parameters only, so evaluate literals directly.
            if (d.init->kind == ExprKind::kRealLit) meta.init = d.init->real_value;
            if (d.init->kind == ExprKind::kIntLit) {
              meta.init = static_cast<double>(d.init->int_value);
            }
          }
          if (d.type.is_fp32()) meta.init = static_cast<double>(static_cast<float>(meta.init));
          out_.global_scalar_index[q] = static_cast<std::int32_t>(out_.global_scalars.size());
          global_scalar_of_symbol_[d.symbol] = out_.global_scalar_index[q];
          out_.global_scalars.push_back(meta);
        }
      }
    }
  }

  void register_procs() {
    for (const auto& mod : rp_.program.modules) {
      for (const auto& proc : mod.procedures) {
        ProcMeta meta;
        meta.module_name = mod.name;
        meta.name = proc.name;
        meta.symbol = proc.symbol;
        meta.generated = proc.generated;
        const auto inl = out_.vec_report.inlinable.find(proc.symbol);
        meta.inlinable = options_.enable_inlining && inl != out_.vec_report.inlinable.end() &&
                         inl->second.eligible;
        meta.instrument = options_.instrument.contains(meta.qualified());
        proc_index_of_symbol_[proc.symbol] = static_cast<std::int32_t>(out_.procs.size());
        out_.proc_index[meta.qualified()] = static_cast<std::int32_t>(out_.procs.size());
        out_.procs.push_back(std::move(meta));
      }
    }
  }

  // ---- per-procedure state --------------------------------------------------

  struct ProcCtx {
    ProcMeta* meta = nullptr;
    const Procedure* proc = nullptr;
    std::map<SymbolId, std::int32_t> scalar_slot;   // locals/dummies/result
    std::map<SymbolId, std::int32_t> array_slot;    // all arrays referenced
    std::int32_t next_slot = 0;
    std::int32_t temp_base = 0;
    std::int32_t temp_next = 0;
    std::int32_t max_slots = 0;
    std::vector<double> vec_factor_stack{1.0};      // cost multiplier
    struct LoopLabels {
      std::vector<std::int32_t> breaks;   // patch to loop end
      std::vector<std::int32_t> cycles;   // patch to increment/head
    };
    std::vector<LoopLabels> loop_stack;
  };

  [[nodiscard]] double factor() const { return ctx_.vec_factor_stack.back(); }

  std::int32_t alloc_slot() {
    const std::int32_t s = ctx_.next_slot++;
    ctx_.max_slots = std::max(ctx_.max_slots, ctx_.next_slot);
    return s;
  }

  std::int32_t alloc_temp() {
    const std::int32_t s = ctx_.temp_next++;
    ctx_.max_slots = std::max(ctx_.max_slots, ctx_.temp_next);
    return s;
  }

  void reset_temps() { ctx_.temp_next = ctx_.temp_base; }

  /// A slot that must outlive the current statement (loop bounds, automatic
  /// extents): claim a temp and raise the temp floor past it so later
  /// statements cannot reuse it.
  std::int32_t persist_slot() {
    const std::int32_t s = alloc_temp();
    if (ctx_.temp_base <= s) ctx_.temp_base = s + 1;
    return s;
  }

  std::int32_t emit(Instr instr) {
    out_.code.push_back(instr);
    return static_cast<std::int32_t>(out_.code.size() - 1);
  }

  /// Cost of an ALU-class operation at the current vector factor.
  [[nodiscard]] double alu(double base) const { return base * factor(); }

  /// Expensive-math cost (div/sqrt/pow/transcendental): scalar f32 versions
  /// are cheaper; vectorized ones are covered by the lane count.
  [[nodiscard]] double math_cost(double base, VKind kind) const {
    if (kind == VKind::kF32 && factor() >= 1.0) {
      base *= machine_.f32_scalar_math_discount;
    }
    return base * factor();
  }

  /// Cost of a cast at the current factor (extra pack/unpack inside
  /// vectorized loops).
  [[nodiscard]] double cast_cost() const {
    if (factor() < 1.0) return machine_.cost_cast * machine_.cast_vector_penalty * factor();
    return machine_.cost_cast;
  }

  /// Cost of an array element access: issue overhead amortizes, bytes do not.
  [[nodiscard]] double elem_cost(int kind) const {
    return machine_.mem_access_overhead * factor() +
           machine_.bytes_for_kind(kind) * machine_.mem_cost_per_byte;
  }

  // ---- procedure compilation -------------------------------------------------

  Status compile_proc(const std::string& /*module_name*/, const Procedure& proc) {
    ctx_ = ProcCtx{};
    ctx_.meta = &out_.procs[static_cast<std::size_t>(proc_index_of_symbol_.at(proc.symbol))];
    ctx_.proc = &proc;
    ctx_.meta->first_instr = static_cast<std::int32_t>(out_.code.size());

    // Slot layout: scalar dummies (in order), result, locals.
    int array_dummy_pos = 0;
    for (const auto& pname : proc.param_names) {
      const DeclEntity* d = proc.find_decl(pname);
      PROSE_CHECK(d != nullptr);
      const Symbol& sym = rp_.symbols.get(d->symbol);
      if (sym.is_array()) {
        ArraySlotMeta ameta;
        ameta.binding = ArrayBinding::kDummy;
        ameta.kind = sym.type.is_real() ? sym.type.kind : 8;
        ameta.rank = sym.rank();
        ameta.dummy_position = array_dummy_pos++;
        ameta.name = sym.qualified();
        ctx_.array_slot[d->symbol] = static_cast<std::int32_t>(ctx_.meta->arrays.size());
        ctx_.meta->arrays.push_back(ameta);
      } else {
        const std::int32_t slot = alloc_slot();
        ctx_.scalar_slot[d->symbol] = slot;
        ctx_.meta->scalar_param_slots.push_back(slot);
      }
    }
    if (proc.kind == ftn::ProcKind::kFunction) {
      const DeclEntity* r = proc.find_decl(proc.result_name);
      PROSE_CHECK(r != nullptr);
      const std::int32_t slot = alloc_slot();
      ctx_.scalar_slot[r->symbol] = slot;
      ctx_.meta->result_slot = slot;
    }

    // Locals: scalars get slots; arrays get array slots (constant or
    // automatic extents). Automatic extents are compiled in the prologue.
    std::vector<std::pair<std::int32_t, const DeclEntity*>> automatics;
    for (const auto& d : proc.decls) {
      if (d.is_parameter) continue;
      const Symbol& sym = rp_.symbols.get(d.symbol);
      if (ctx_.scalar_slot.contains(d.symbol) || ctx_.array_slot.contains(d.symbol)) {
        continue;  // dummy or result already placed
      }
      if (!sym.is_array()) {
        ctx_.scalar_slot[d.symbol] = alloc_slot();
        continue;
      }
      ArraySlotMeta ameta;
      ameta.kind = sym.type.is_real() ? sym.type.kind : 8;
      ameta.rank = sym.rank();
      ameta.name = sym.qualified();
      bool automatic = false;
      for (int r = 0; r < sym.rank(); ++r) {
        const std::int64_t e = sym.extents[static_cast<std::size_t>(r)];
        if (e == -2) automatic = true;
        ameta.extents[r] = e;
      }
      ameta.binding = automatic ? ArrayBinding::kAutomatic : ArrayBinding::kLocal;
      const auto aslot = static_cast<std::int32_t>(ctx_.meta->arrays.size());
      ctx_.array_slot[d.symbol] = aslot;
      ctx_.meta->arrays.push_back(ameta);
      if (automatic) automatics.emplace_back(aslot, &d);
    }

    ctx_.temp_base = ctx_.next_slot;
    ctx_.temp_next = ctx_.temp_base;

    // Prologue: evaluate automatic extents and allocate.
    for (const auto& [aslot, decl] : automatics) {
      for (std::size_t r = 0; r < decl->dims.size(); ++r) {
        if (decl->dims[r].resolved != -2) continue;
        auto extent = compile_expr(*decl->dims[r].extent);
        if (!extent.is_ok()) return extent.status();
        // Persist the extent beyond the statement's temp region.
        const std::int32_t keep = persist_slot();
        emit({.op = Op::kMov, .dst = keep, .a = extent->slot, .cost = 0.0});
        ctx_.meta->arrays[static_cast<std::size_t>(aslot)].extent_slots[r] =
            keep;
        reset_temps();
      }
      Instr alloc;
      alloc.op = Op::kAllocArray;
      alloc.aux = aslot;
      alloc.cost = machine_.call_overhead * 0.2;  // allocation bookkeeping
      emit(alloc);
    }

    for (const auto& s : proc.body) {
      if (Status st = compile_stmt(*s); !st.is_ok()) return st;
    }
    emit({.op = Op::kRet, .cost = 0.0});
    ctx_.meta->num_slots = ctx_.max_slots;
    // Slot→name debug metadata for the shadow-execution blame reports: real
    // declared scalars keep their qualified names; temps stay anonymous.
    ctx_.meta->slot_names.assign(static_cast<std::size_t>(ctx_.max_slots),
                                 std::string());
    for (const auto& [symbol, slot] : ctx_.scalar_slot) {
      const Symbol& sym = rp_.symbols.get(symbol);
      if (sym.type.is_real()) {
        ctx_.meta->slot_names[static_cast<std::size_t>(slot)] = sym.qualified();
      }
    }
    return Status::ok();
  }

  // ---- expressions ------------------------------------------------------------

  StatusOr<Operand> compile_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit: {
        const std::int32_t t = alloc_temp();
        emit({.op = Op::kLoadConst, .dst = t, .imm = static_cast<double>(e.int_value)});
        return Operand{t, VKind::kInt};
      }
      case ExprKind::kRealLit: {
        const std::int32_t t = alloc_temp();
        double v = e.real_value;
        if (e.real_kind == 4) v = static_cast<double>(static_cast<float>(v));
        emit({.op = Op::kLoadConst, .dst = t, .imm = v});
        return Operand{t, e.real_kind == 4 ? VKind::kF32 : VKind::kF64};
      }
      case ExprKind::kLogicalLit: {
        const std::int32_t t = alloc_temp();
        emit({.op = Op::kLoadConst, .dst = t, .imm = e.logical_value ? 1.0 : 0.0});
        return Operand{t, VKind::kBool};
      }
      case ExprKind::kVarRef: return compile_var_ref(e);
      case ExprKind::kIndex: return compile_index_load(e);
      case ExprKind::kCall: return compile_call_expr(e);
      case ExprKind::kUnary: return compile_unary(e);
      case ExprKind::kBinary: return compile_binary(e);
    }
    return compile_err("unknown expression kind");
  }

  StatusOr<Operand> compile_var_ref(const Expr& e) {
    const Symbol& sym = rp_.symbols.get(e.symbol);
    if (sym.kind == SymbolKind::kParameterConst) {
      const std::int32_t t = alloc_temp();
      double v = sym.const_value->as_real();
      if (sym.type.is_fp32()) v = static_cast<double>(static_cast<float>(v));
      emit({.op = Op::kLoadConst, .dst = t, .imm = v});
      return Operand{t, vkind_of(sym.type)};
    }
    if (sym.is_array()) {
      return compile_err("whole-array reference in scalar expression position");
    }
    const auto local = ctx_.scalar_slot.find(e.symbol);
    if (local != ctx_.scalar_slot.end()) {
      return Operand{local->second, vkind_of(sym.type)};
    }
    const auto global = global_scalar_of_symbol_.find(e.symbol);
    if (global == global_scalar_of_symbol_.end()) {
      return compile_err("no storage for symbol " + sym.qualified());
    }
    const std::int32_t t = alloc_temp();
    emit({.op = Op::kLoadGlobal,
          .dst = t,
          .aux = global->second,
          .cost = machine_.scalar_access_cost * factor()});
    return Operand{t, vkind_of(sym.type)};
  }

  /// Frame array slot for an array symbol, creating a kGlobal binding on
  /// first reference.
  StatusOr<std::int32_t> array_slot_for(SymbolId symbol) {
    const auto it = ctx_.array_slot.find(symbol);
    if (it != ctx_.array_slot.end()) return it->second;
    const Symbol& sym = rp_.symbols.get(symbol);
    const auto g = global_array_of_symbol_.find(symbol);
    if (g == global_array_of_symbol_.end()) {
      return compile_err("no array storage for " + sym.qualified());
    }
    ArraySlotMeta ameta;
    ameta.binding = ArrayBinding::kGlobal;
    ameta.kind = sym.type.is_real() ? sym.type.kind : 8;
    ameta.rank = sym.rank();
    for (int r = 0; r < sym.rank(); ++r) {
      ameta.extents[r] = sym.extents[static_cast<std::size_t>(r)];
    }
    ameta.global_index = g->second;
    ameta.name = sym.qualified();
    const auto slot = static_cast<std::int32_t>(ctx_.meta->arrays.size());
    ctx_.array_slot[symbol] = slot;
    ctx_.meta->arrays.push_back(ameta);
    return slot;
  }

  /// Compiles subscripts into int temps; returns up to three slots.
  StatusOr<std::array<std::int32_t, 3>> compile_subscripts(const Expr& e) {
    std::array<std::int32_t, 3> idx = {-1, -1, -1};
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      auto v = compile_expr(*e.args[i]);
      if (!v.is_ok()) return v.status();
      idx[i] = v->slot;
    }
    return idx;
  }

  StatusOr<Operand> compile_index_load(const Expr& e) {
    const Symbol& sym = rp_.symbols.get(e.symbol);
    auto aslot = array_slot_for(e.symbol);
    if (!aslot.is_ok()) return aslot.status();
    auto idx = compile_subscripts(e);
    if (!idx.is_ok()) return idx.status();
    const std::int32_t t = alloc_temp();
    const int kind = sym.type.is_real() ? sym.type.kind : 8;
    emit({.op = Op::kLoadElem,
          .dst = t,
          .a = (*idx)[0],
          .b = (*idx)[1],
          .c = (*idx)[2],
          .aux = aslot.value(),
          .cost = elem_cost(kind)});
    return Operand{t, vkind_of(sym.type)};
  }

  /// Converts `src` to the requested kind, emitting a cast when needed.
  Operand ensure_kind(Operand src, VKind want) {
    if (src.kind == want) return src;
    // int -> f64 is free in the double-slot representation.
    if (src.kind == VKind::kInt && want == VKind::kF64) {
      return Operand{src.slot, VKind::kF64};
    }
    // Constant folding: converting a just-loaded constant costs nothing at
    // runtime (any real compiler folds literal conversions). Constants that
    // overflow the narrow type are NOT folded — the runtime cast must trap,
    // as -ffpe-trap would.
    if (!out_.code.empty()) {
      Instr& last = out_.code.back();
      if (last.op == Op::kLoadConst && last.dst == src.slot && want != VKind::kBool) {
        if (want == VKind::kF32) {
          const auto narrowed = static_cast<float>(last.imm);
          if (std::isfinite(last.imm) && !std::isfinite(narrowed)) {
            // fall through to the runtime cast below
          } else {
            last.imm = static_cast<double>(narrowed);
            return Operand{src.slot, want};
          }
        } else if (want == VKind::kInt) {
          last.imm = std::trunc(last.imm);
          return Operand{src.slot, want};
        } else {
          return Operand{src.slot, want};
        }
      }
    }
    if (src.kind == VKind::kBool || want == VKind::kBool) {
      return Operand{src.slot, want};  // logicals are 0/1 doubles
    }
    const std::int32_t t = alloc_temp();
    if (want == VKind::kF32) {
      emit({.op = Op::kCastF32, .dst = t, .a = src.slot, .cost = cast_cost()});
      return Operand{t, VKind::kF32};
    }
    if (want == VKind::kF64) {
      emit({.op = Op::kCastF64, .dst = t, .a = src.slot, .cost = cast_cost()});
      return Operand{t, VKind::kF64};
    }
    // want int
    emit({.op = Op::kCastInt, .dst = t, .a = src.slot, .aux2 = 0, .cost = cast_cost()});
    return Operand{t, VKind::kInt};
  }

  StatusOr<Operand> compile_unary(const Expr& e) {
    auto v = compile_expr(*e.lhs);
    if (!v.is_ok()) return v;
    if (e.unary_op == UnaryOp::kPlus) return v;
    const std::int32_t t = alloc_temp();
    if (e.unary_op == UnaryOp::kNot) {
      emit({.op = Op::kNot, .dst = t, .a = v->slot, .cost = alu(machine_.cost_logical)});
      return Operand{t, VKind::kBool};
    }
    switch (v->kind) {
      case VKind::kF32:
        emit({.op = Op::kNegF32, .dst = t, .a = v->slot, .cost = alu(machine_.cost_add)});
        break;
      case VKind::kF64:
        emit({.op = Op::kNegF64, .dst = t, .a = v->slot, .cost = alu(machine_.cost_add)});
        break;
      default:
        emit({.op = Op::kNegI, .dst = t, .a = v->slot, .cost = alu(machine_.cost_int_op)});
        break;
    }
    return Operand{t, v->kind};
  }

  StatusOr<Operand> compile_binary(const Expr& e) {
    auto lhs = compile_expr(*e.lhs);
    if (!lhs.is_ok()) return lhs;
    auto rhs = compile_expr(*e.rhs);
    if (!rhs.is_ok()) return rhs;

    if (ftn::is_logical(e.binary_op)) {
      const std::int32_t t = alloc_temp();
      Op op = Op::kAnd;
      switch (e.binary_op) {
        case BinaryOp::kAnd: op = Op::kAnd; break;
        case BinaryOp::kOr: op = Op::kOr; break;
        case BinaryOp::kEqv: op = Op::kEqv; break;
        case BinaryOp::kNeqv: op = Op::kNeqv; break;
        default: break;
      }
      emit({.op = op, .dst = t, .a = lhs->slot, .b = rhs->slot,
            .cost = alu(machine_.cost_logical)});
      return Operand{t, VKind::kBool};
    }

    // Promote to the common kind.
    VKind common = VKind::kInt;
    if (lhs->kind == VKind::kF64 || rhs->kind == VKind::kF64) {
      common = VKind::kF64;
    } else if (lhs->kind == VKind::kF32 || rhs->kind == VKind::kF32) {
      common = VKind::kF32;
    }
    const Operand a = ensure_kind(*lhs, common);
    const Operand b = ensure_kind(*rhs, common);

    if (ftn::is_comparison(e.binary_op)) {
      const std::int32_t t = alloc_temp();
      Op op = Op::kCmpEq;
      switch (e.binary_op) {
        case BinaryOp::kEq: op = Op::kCmpEq; break;
        case BinaryOp::kNe: op = Op::kCmpNe; break;
        case BinaryOp::kLt: op = Op::kCmpLt; break;
        case BinaryOp::kLe: op = Op::kCmpLe; break;
        case BinaryOp::kGt: op = Op::kCmpGt; break;
        case BinaryOp::kGe: op = Op::kCmpGe; break;
        default: break;
      }
      emit({.op = op, .dst = t, .a = a.slot, .b = b.slot, .cost = alu(machine_.cost_cmp)});
      return Operand{t, VKind::kBool};
    }

    const std::int32_t t = alloc_temp();
    struct OpCost {
      Op op;
      double cost;
    };
    const auto pick = [&](Op f32, Op f64, Op i, double base_f, double base_i) -> OpCost {
      switch (common) {
        case VKind::kF32: return {f32, alu(base_f)};
        case VKind::kF64: return {f64, alu(base_f)};
        default: return {i, alu(base_i)};
      }
    };
    OpCost oc{Op::kAddF64, 1.0};
    switch (e.binary_op) {
      case BinaryOp::kAdd:
        oc = pick(Op::kAddF32, Op::kAddF64, Op::kAddI, machine_.cost_add, machine_.cost_int_op);
        break;
      case BinaryOp::kSub:
        oc = pick(Op::kSubF32, Op::kSubF64, Op::kSubI, machine_.cost_add, machine_.cost_int_op);
        break;
      case BinaryOp::kMul:
        oc = pick(Op::kMulF32, Op::kMulF64, Op::kMulI, machine_.cost_mul, machine_.cost_int_op);
        break;
      case BinaryOp::kDiv:
        oc = pick(Op::kDivF32, Op::kDivF64, Op::kDivI, machine_.cost_div, machine_.cost_int_op * 8);
        if (common == VKind::kF32) oc.cost = math_cost(machine_.cost_div, common);
        break;
      case BinaryOp::kPow:
        oc = pick(Op::kPowF32, Op::kPowF64, Op::kPowI, machine_.cost_pow, machine_.cost_pow);
        if (common == VKind::kF32) oc.cost = math_cost(machine_.cost_pow, common);
        break;
      default:
        return compile_err("unexpected binary operator");
    }
    emit({.op = oc.op, .dst = t, .a = a.slot, .b = b.slot, .cost = oc.cost});
    return Operand{t, common};
  }

  StatusOr<Operand> compile_call_expr(const Expr& e) {
    if (e.symbol != ftn::kInvalidSymbol) {
      return compile_user_call(e.symbol, e.args, /*want_result=*/true);
    }
    return compile_intrinsic(e);
  }

  StatusOr<Operand> compile_intrinsic(const Expr& e) {
    const auto intr = ftn::find_intrinsic(e.name);
    PROSE_CHECK(intr.has_value());
    switch (*intr) {
      case Intrinsic::kSum:
      case Intrinsic::kMinval:
      case Intrinsic::kMaxval: {
        auto aslot = array_slot_for(e.args[0]->symbol);
        if (!aslot.is_ok()) return aslot.status();
        const std::int32_t t = alloc_temp();
        const int red = *intr == Intrinsic::kSum ? 0 : (*intr == Intrinsic::kMinval ? 1 : 2);
        // Cost computed at runtime (elements known then); cost field holds
        // the per-element rate encoded by kind — the VM multiplies.
        Instr instr{.op = Op::kReduce, .dst = t, .aux = aslot.value(), .aux2 = red};
        instr.kind = static_cast<std::uint8_t>(e.type.kind);
        emit(instr);
        return Operand{t, vkind_of(e.type)};
      }
      case Intrinsic::kSize: {
        auto aslot = array_slot_for(e.args[0]->symbol);
        if (!aslot.is_ok()) return aslot.status();
        const std::int32_t t = alloc_temp();
        const int dim = e.args.size() == 2 ? static_cast<int>(e.args[1]->int_value) : 0;
        emit({.op = Op::kArraySize, .dst = t, .aux = aslot.value(), .aux2 = dim,
              .cost = machine_.cost_int_op});
        return Operand{t, VKind::kInt};
      }
      case Intrinsic::kReal: {
        auto v = compile_expr(*e.args[0]);
        if (!v.is_ok()) return v;
        return ensure_kind(*v, e.type.kind == 4 ? VKind::kF32 : VKind::kF64);
      }
      case Intrinsic::kDble: {
        auto v = compile_expr(*e.args[0]);
        if (!v.is_ok()) return v;
        return ensure_kind(*v, VKind::kF64);
      }
      case Intrinsic::kInt:
      case Intrinsic::kFloor:
      case Intrinsic::kNint: {
        auto v = compile_expr(*e.args[0]);
        if (!v.is_ok()) return v;
        const std::int32_t t = alloc_temp();
        const int mode = *intr == Intrinsic::kInt ? 0 : (*intr == Intrinsic::kFloor ? 1 : 2);
        emit({.op = Op::kCastInt, .dst = t, .a = v->slot, .aux2 = mode, .cost = cast_cost()});
        return Operand{t, VKind::kInt};
      }
      case Intrinsic::kEpsilon:
      case Intrinsic::kHuge:
      case Intrinsic::kTiny: {
        const std::int32_t t = alloc_temp();
        const bool f32 = e.type.kind == 4;
        double v = 0.0;
        if (*intr == Intrinsic::kEpsilon) {
          v = f32 ? static_cast<double>(std::numeric_limits<float>::epsilon())
                  : std::numeric_limits<double>::epsilon();
        } else if (*intr == Intrinsic::kHuge) {
          v = f32 ? static_cast<double>(std::numeric_limits<float>::max())
                  : std::numeric_limits<double>::max();
        } else {
          v = f32 ? static_cast<double>(std::numeric_limits<float>::min())
                  : std::numeric_limits<double>::min();
        }
        emit({.op = Op::kLoadConst, .dst = t, .imm = v});
        return Operand{t, vkind_of(e.type)};
      }
      case Intrinsic::kMpiAllreduceSum:
      case Intrinsic::kMpiAllreduceMax:
      case Intrinsic::kMpiAllreduceMin: {
        auto v = compile_expr(*e.args[0]);
        if (!v.is_ok()) return v;
        const std::int32_t t = alloc_temp();
        const double bytes = machine_.bytes_for_kind(fortran_kind(v->kind));
        const double cost =
            machine_.allreduce_alpha * std::log2(std::max(2, machine_.mpi_ranks)) +
            machine_.allreduce_beta * bytes;
        emit({.op = Op::kAllReduce, .dst = t, .a = v->slot, .cost = cost});
        return Operand{t, v->kind};
      }
      case Intrinsic::kMin:
      case Intrinsic::kMax: {
        // Chained two-operand folds over the promoted kind.
        VKind common = VKind::kInt;
        std::vector<Operand> vals;
        for (const auto& a : e.args) {
          auto v = compile_expr(*a);
          if (!v.is_ok()) return v;
          if (v->kind == VKind::kF64 || common == VKind::kF64) {
            common = VKind::kF64;
          } else if (v->kind == VKind::kF32 || common == VKind::kF32) {
            common = VKind::kF32;
          }
          vals.push_back(*v);
        }
        Operand acc = ensure_kind(vals[0], common);
        for (std::size_t i = 1; i < vals.size(); ++i) {
          const Operand b = ensure_kind(vals[i], common);
          const std::int32_t t = alloc_temp();
          Instr instr{.op = Op::kIntrin2, .dst = t, .a = acc.slot, .b = b.slot,
                      .aux = static_cast<std::int32_t>(*intr),
                      .cost = alu(machine_.cost_intrin_cheap)};
          instr.kind = static_cast<std::uint8_t>(fortran_kind(common));
          emit(instr);
          acc = Operand{t, common};
        }
        return acc;
      }
      case Intrinsic::kMod:
      case Intrinsic::kSign:
      case Intrinsic::kAtan2: {
        auto a = compile_expr(*e.args[0]);
        if (!a.is_ok()) return a;
        auto b = compile_expr(*e.args[1]);
        if (!b.is_ok()) return b;
        const VKind common = vkind_of(e.type);
        const Operand x = ensure_kind(*a, common);
        const Operand y = ensure_kind(*b, common);
        const std::int32_t t = alloc_temp();
        const double base = *intr == Intrinsic::kAtan2 ? machine_.cost_intrin_trans
                                                       : machine_.cost_intrin_cheap;
        Instr instr{.op = Op::kIntrin2, .dst = t, .a = x.slot, .b = y.slot,
                    .aux = static_cast<std::int32_t>(*intr), .cost = alu(base)};
        instr.kind = static_cast<std::uint8_t>(fortran_kind(common));
        emit(instr);
        return Operand{t, common};
      }
      default: {
        // Single-argument elementals.
        auto a = compile_expr(*e.args[0]);
        if (!a.is_ok()) return a;
        const VKind common = vkind_of(e.type);
        const Operand x = ensure_kind(*a, common == VKind::kInt ? a->kind : common);
        const std::int32_t t = alloc_temp();
        double base = machine_.cost_intrin_trans;
        if (*intr == Intrinsic::kAbs) base = machine_.cost_intrin_cheap;
        if (*intr == Intrinsic::kSqrt) base = machine_.cost_intrin_sqrt;
        const double cost = *intr == Intrinsic::kAbs ? alu(base) : math_cost(base, x.kind);
        Instr instr{.op = Op::kIntrin1, .dst = t, .a = x.slot,
                    .aux = static_cast<std::int32_t>(*intr), .cost = cost};
        instr.kind = static_cast<std::uint8_t>(fortran_kind(x.kind));
        emit(instr);
        return Operand{t, x.kind};
      }
    }
  }

  /// Shared call machinery for call statements and function-call expressions.
  StatusOr<Operand> compile_user_call(SymbolId callee_sym,
                                      const std::vector<ExprPtr>& args,
                                      bool want_result) {
    const Symbol& callee = rp_.symbols.get(callee_sym);
    const std::int32_t callee_index = proc_index_of_symbol_.at(callee_sym);
    const ProcMeta& callee_meta = out_.procs[static_cast<std::size_t>(callee_index)];

    CallSiteMeta site;
    site.callee = callee_index;

    int scalar_args = 0;
    int array_args = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
      const Expr& actual = *args[i];
      const Symbol& dummy = rp_.symbols.get(callee.params[i]);
      if (dummy.is_array()) {
        if (actual.kind != ExprKind::kVarRef || actual.symbol == ftn::kInvalidSymbol) {
          return compile_err("array dummy requires a whole-array actual for '" +
                             callee.name + "'");
        }
        const Symbol& asym = rp_.symbols.get(actual.symbol);
        if (asym.type.is_real() && dummy.type.is_real() &&
            asym.type.kind != dummy.type.kind) {
          return compile_err("kind mismatch at array argument of '" + callee.name +
                             "' — wrapper pass not applied?");
        }
        auto aslot = array_slot_for(actual.symbol);
        if (!aslot.is_ok()) return aslot.status();
        site.array_args.push_back(ArrayArgMeta{.caller_array_slot = aslot.value()});
        ++array_args;
        continue;
      }

      ScalarArgMeta arg;
      arg.dummy_kind = dummy.type.is_real() ? dummy.type.kind : 8;

      // Designators with writable intent need persisted writeback targets.
      const bool writable = dummy.intent != ftn::Intent::kIn;
      if (actual.kind == ExprKind::kVarRef && actual.symbol != ftn::kInvalidSymbol &&
          rp_.symbols.get(actual.symbol).kind != SymbolKind::kParameterConst) {
        auto v = compile_var_ref(actual);
        if (!v.is_ok()) return v.status();
        if (dummy.type.is_real() && actual.type.is_real() &&
            actual.type.kind != dummy.type.kind) {
          return compile_err("kind mismatch at argument " + std::to_string(i + 1) +
                             " of '" + callee.name + "' — wrapper pass not applied?");
        }
        // Persist the value in a durable temp.
        const std::int32_t hold = alloc_temp();
        emit({.op = Op::kMov, .dst = hold, .a = v->slot, .cost = 0.0});
        arg.value_slot = hold;
        if (writable) {
          const auto local = ctx_.scalar_slot.find(actual.symbol);
          if (local != ctx_.scalar_slot.end()) {
            arg.writeback = WritebackKind::kSlot;
            arg.wb_slot = local->second;
          } else {
            arg.writeback = WritebackKind::kGlobal;
            arg.wb_slot = global_scalar_of_symbol_.at(actual.symbol);
          }
        }
      } else if (actual.kind == ExprKind::kIndex && actual.symbol != ftn::kInvalidSymbol &&
                 rp_.symbols.get(actual.symbol).is_array()) {
        const Symbol& asym = rp_.symbols.get(actual.symbol);
        if (dummy.type.is_real() && asym.type.is_real() &&
            asym.type.kind != dummy.type.kind) {
          return compile_err("kind mismatch at argument " + std::to_string(i + 1) +
                             " of '" + callee.name + "' — wrapper pass not applied?");
        }
        auto aslot = array_slot_for(actual.symbol);
        if (!aslot.is_ok()) return aslot.status();
        auto idx = compile_subscripts(actual);
        if (!idx.is_ok()) return idx.status();
        // Persist indices in durable temps for the writeback.
        std::array<std::int32_t, 3> held = {-1, -1, -1};
        for (int r = 0; r < 3; ++r) {
          if ((*idx)[r] < 0) continue;
          held[r] = alloc_temp();
          emit({.op = Op::kMov, .dst = held[r], .a = (*idx)[r], .cost = 0.0});
        }
        const std::int32_t value = alloc_temp();
        const int kind = asym.type.is_real() ? asym.type.kind : 8;
        emit({.op = Op::kLoadElem, .dst = value, .a = held[0], .b = held[1],
              .c = held[2], .aux = aslot.value(), .cost = elem_cost(kind)});
        arg.value_slot = value;
        if (writable) {
          arg.writeback = WritebackKind::kElement;
          arg.wb_array = aslot.value();
          for (int r = 0; r < 3; ++r) arg.wb_index[r] = held[r];
        }
      } else {
        // Expression or literal actual: evaluated into a read-only temporary.
        auto v = compile_expr(actual);
        if (!v.is_ok()) return v.status();
        if (dummy.type.is_real() && actual.type.is_real() &&
            actual.type.kind != dummy.type.kind) {
          return compile_err("kind mismatch at expression argument " +
                             std::to_string(i + 1) + " of '" + callee.name +
                             "' — wrapper pass not applied?");
        }
        const std::int32_t hold = alloc_temp();
        emit({.op = Op::kMov, .dst = hold, .a = v->slot, .cost = 0.0});
        arg.value_slot = hold;
      }
      site.scalar_args.push_back(arg);
      ++scalar_args;
    }

    // Inline decision and cost.
    double cost = 0.0;
    site.inlined = callee_meta.inlinable;
    if (site.inlined) {
      site.inline_scale = factor();
    } else {
      // Call overhead never amortizes under vectorization: a call in a loop
      // forces scalar iteration.
      cost = machine_.call_overhead + scalar_args * machine_.cost_arg +
             array_args * machine_.cost_array_arg;
    }

    std::int32_t result = -1;
    if (want_result) {
      PROSE_CHECK(callee.proc_kind == ftn::ProcKind::kFunction);
      result = alloc_temp();
      site.result_slot = result;
    }

    out_.call_sites.push_back(std::move(site));
    Instr call{.op = Op::kCall,
               .aux = callee_index,
               .aux2 = static_cast<std::int32_t>(out_.call_sites.size() - 1),
               .cost = cost};
    emit(call);

    if (want_result) {
      const Symbol& res = rp_.symbols.get(callee.result);
      return Operand{result, vkind_of(res.type)};
    }
    return Operand{-1, VKind::kF64};
  }

  // ---- statements ----------------------------------------------------------

  Status compile_stmt(const Stmt& s) {
    reset_temps();
    switch (s.kind) {
      case StmtKind::kAssign: return compile_assign(s);
      case StmtKind::kIf: return compile_if(s);
      case StmtKind::kDo: return compile_do(s);
      case StmtKind::kDoWhile: return compile_do_while(s);
      case StmtKind::kCall: {
        auto r = compile_user_call(s.callee_symbol, s.args, /*want_result=*/false);
        return r.is_ok() ? Status::ok() : r.status();
      }
      case StmtKind::kExit: {
        if (ctx_.loop_stack.empty()) return compile_err("exit outside loop");
        const std::int32_t j = emit({.op = Op::kJmp, .cost = machine_.cost_branch * factor()});
        ctx_.loop_stack.back().breaks.push_back(j);
        return Status::ok();
      }
      case StmtKind::kCycle: {
        if (ctx_.loop_stack.empty()) return compile_err("cycle outside loop");
        const std::int32_t j = emit({.op = Op::kJmp, .cost = machine_.cost_branch * factor()});
        ctx_.loop_stack.back().cycles.push_back(j);
        return Status::ok();
      }
      case StmtKind::kReturn:
        emit({.op = Op::kRet, .cost = 0.0});
        return Status::ok();
      case StmtKind::kPrint: {
        PrintMeta meta;
        meta.text = s.print_text;
        for (const auto& a : s.print_args) {
          auto v = compile_expr(*a);
          if (!v.is_ok()) return v.status();
          const std::int32_t hold = alloc_temp();
          emit({.op = Op::kMov, .dst = hold, .a = v->slot, .cost = 0.0});
          meta.arg_slots.push_back(hold);
        }
        out_.prints.push_back(std::move(meta));
        emit({.op = Op::kPrint,
              .aux2 = static_cast<std::int32_t>(out_.prints.size() - 1),
              .cost = 1.0});
        return Status::ok();
      }
    }
    return compile_err("unknown statement kind");
  }

  Status compile_assign(const Stmt& s) {
    const Expr& lhs = *s.lhs;
    const Symbol& lsym = rp_.symbols.get(lhs.symbol);

    if (lhs.kind == ExprKind::kIndex) {
      auto aslot = array_slot_for(lhs.symbol);
      if (!aslot.is_ok()) return aslot.status();
      auto idx = compile_subscripts(lhs);
      if (!idx.is_ok()) return idx.status();
      auto v = compile_expr(*s.rhs);
      if (!v.is_ok()) return v.status();
      const Operand cast = ensure_kind(*v, vkind_of(lsym.type));
      const int kind = lsym.type.is_real() ? lsym.type.kind : 8;
      emit({.op = Op::kStoreElem, .dst = cast.slot, .a = (*idx)[0], .b = (*idx)[1],
            .c = (*idx)[2], .aux = aslot.value(), .cost = elem_cost(kind)});
      return Status::ok();
    }
    if (lhs.is_array_value) {
      auto aslot = array_slot_for(lhs.symbol);
      if (!aslot.is_ok()) return aslot.status();
      if (s.rhs->is_array_value) {
        auto src = array_slot_for(s.rhs->symbol);
        if (!src.is_ok()) return src.status();
        emit({.op = Op::kArrayCopy, .aux = aslot.value(), .aux2 = src.value()});
        return Status::ok();
      }
      auto v = compile_expr(*s.rhs);
      if (!v.is_ok()) return v.status();
      const Operand cast = ensure_kind(*v, vkind_of(lsym.type));
      emit({.op = Op::kArrayFill, .a = cast.slot, .aux = aslot.value()});
      return Status::ok();
    }

    // Scalar.
    auto v = compile_expr(*s.rhs);
    if (!v.is_ok()) return v.status();
    const Operand cast = ensure_kind(*v, vkind_of(lsym.type));
    const auto local = ctx_.scalar_slot.find(lhs.symbol);
    if (local != ctx_.scalar_slot.end()) {
      emit({.op = Op::kMov, .dst = local->second, .a = cast.slot,
            .cost = machine_.scalar_access_cost * factor()});
      return Status::ok();
    }
    const auto global = global_scalar_of_symbol_.find(lhs.symbol);
    if (global == global_scalar_of_symbol_.end()) {
      return compile_err("no storage for assignment target " + lsym.qualified());
    }
    emit({.op = Op::kStoreGlobal, .a = cast.slot, .aux = global->second,
          .cost = machine_.scalar_access_cost * factor()});
    return Status::ok();
  }

  Status compile_if(const Stmt& s) {
    std::vector<std::int32_t> end_jumps;
    for (std::size_t i = 0; i < s.branches.size(); ++i) {
      const auto& branch = s.branches[i];
      std::int32_t skip = -1;
      if (branch.cond != nullptr) {
        reset_temps();
        auto cond = compile_expr(*branch.cond);
        if (!cond.is_ok()) return cond.status();
        skip = emit({.op = Op::kJmpIfFalse, .a = cond->slot,
                     .cost = machine_.cost_branch * factor()});
      }
      for (const auto& inner : branch.body) {
        if (Status st = compile_stmt(*inner); !st.is_ok()) return st;
      }
      const bool is_last = i + 1 == s.branches.size();
      if (!is_last) {
        end_jumps.push_back(emit({.op = Op::kJmp, .cost = 0.5 * factor()}));
      }
      if (skip >= 0) out_.code[static_cast<std::size_t>(skip)].aux =
          static_cast<std::int32_t>(out_.code.size());
    }
    for (const std::int32_t j : end_jumps) {
      out_.code[static_cast<std::size_t>(j)].aux = static_cast<std::int32_t>(out_.code.size());
    }
    return Status::ok();
  }

  Status compile_do(const Stmt& s) {
    // Loop metadata from the vectorization report.
    LoopMeta lmeta;
    const auto it = out_.vec_report.loops.find(s.id);
    if (it != out_.vec_report.loops.end()) {
      lmeta.status = it->second.status;
      // Without inlining, any call (even to an inlinable function) blocks
      // vectorization — this is the ablation knob.
      lmeta.vectorized = it->second.status == VecStatus::kVectorized &&
                         (options_.enable_inlining || !it->second.has_calls);
      lmeta.lanes = lmeta.vectorized ? it->second.effective_lanes : 1;
    }
    out_.loops.push_back(lmeta);
    const auto loop_meta_index = static_cast<std::int32_t>(out_.loops.size() - 1);

    const auto i_it = ctx_.scalar_slot.find(s.do_symbol);
    if (i_it == ctx_.scalar_slot.end()) {
      return compile_err("loop variable '" + s.do_var +
                         "' must be declared in the procedure, not at module scope");
    }
    const std::int32_t i_slot = i_it->second;
    reset_temps();
    auto lo = compile_expr(*s.lo);
    if (!lo.is_ok()) return lo.status();
    emit({.op = Op::kMov, .dst = i_slot, .a = lo->slot, .cost = machine_.cost_int_op});
    // Hoist hi/step into durable temps.
    auto hi = compile_expr(*s.hi);
    if (!hi.is_ok()) return hi.status();
    const std::int32_t hi_slot = persist_slot();
    emit({.op = Op::kMov, .dst = hi_slot, .a = hi->slot, .cost = 0.0});
    const std::int32_t step_slot = persist_slot();
    if (s.step != nullptr) {
      auto step = compile_expr(*s.step);
      if (!step.is_ok()) return step.status();
      emit({.op = Op::kMov, .dst = step_slot, .a = step->slot, .cost = 0.0});
    } else {
      emit({.op = Op::kLoadConst, .dst = step_slot, .imm = 1.0});
    }

    emit({.op = Op::kLoopBegin, .aux = loop_meta_index,
          .cost = lmeta.vectorized ? machine_.vector_loop_overhead : 0.0});

    const double body_factor =
        lmeta.vectorized ? 1.0 / static_cast<double>(lmeta.lanes) : 1.0;
    ctx_.vec_factor_stack.push_back(ctx_.vec_factor_stack.back() * body_factor);
    ctx_.loop_stack.emplace_back();

    const auto head = static_cast<std::int32_t>(out_.code.size());
    reset_temps();
    const std::int32_t cond = alloc_temp();
    emit({.op = Op::kLoopCond, .dst = cond, .a = i_slot, .b = hi_slot, .c = step_slot,
          .cost = machine_.cost_loop_iter * factor()});
    const std::int32_t exit_jump = emit({.op = Op::kJmpIfFalse, .a = cond, .cost = 0.0});

    for (const auto& inner : s.body) {
      if (Status st = compile_stmt(*inner); !st.is_ok()) return st;
    }

    const auto incr = static_cast<std::int32_t>(out_.code.size());
    emit({.op = Op::kAddI, .dst = i_slot, .a = i_slot, .b = step_slot,
          .cost = machine_.cost_int_op * factor()});
    emit({.op = Op::kJmp, .aux = head, .cost = 0.0});

    const auto end = static_cast<std::int32_t>(out_.code.size());
    out_.code[static_cast<std::size_t>(exit_jump)].aux = end;
    for (const std::int32_t j : ctx_.loop_stack.back().breaks) {
      out_.code[static_cast<std::size_t>(j)].aux = end;
    }
    for (const std::int32_t j : ctx_.loop_stack.back().cycles) {
      out_.code[static_cast<std::size_t>(j)].aux = incr;
    }
    ctx_.loop_stack.pop_back();
    ctx_.vec_factor_stack.pop_back();
    emit({.op = Op::kLoopEnd, .cost = 0.0});
    return Status::ok();
  }

  Status compile_do_while(const Stmt& s) {
    LoopMeta lmeta;  // never vectorized
    out_.loops.push_back(lmeta);
    emit({.op = Op::kLoopBegin, .aux = static_cast<std::int32_t>(out_.loops.size() - 1),
          .cost = 0.0});
    ctx_.loop_stack.emplace_back();
    const auto head = static_cast<std::int32_t>(out_.code.size());
    reset_temps();
    auto cond = compile_expr(*s.cond);
    if (!cond.is_ok()) return cond.status();
    const std::int32_t exit_jump =
        emit({.op = Op::kJmpIfFalse, .a = cond->slot, .cost = machine_.cost_loop_iter});
    for (const auto& inner : s.body) {
      if (Status st = compile_stmt(*inner); !st.is_ok()) return st;
    }
    emit({.op = Op::kJmp, .aux = head, .cost = 0.0});
    const auto end = static_cast<std::int32_t>(out_.code.size());
    out_.code[static_cast<std::size_t>(exit_jump)].aux = end;
    for (const std::int32_t j : ctx_.loop_stack.back().breaks) {
      out_.code[static_cast<std::size_t>(j)].aux = end;
    }
    for (const std::int32_t j : ctx_.loop_stack.back().cycles) {
      out_.code[static_cast<std::size_t>(j)].aux = head;
    }
    ctx_.loop_stack.pop_back();
    emit({.op = Op::kLoopEnd, .cost = 0.0});
    return Status::ok();
  }

  const ResolvedProgram& rp_;
  const MachineModel& machine_;
  const CompileOptions& options_;
  CompiledProgram out_;
  std::map<SymbolId, std::int32_t> proc_index_of_symbol_;
  std::map<SymbolId, std::int32_t> global_scalar_of_symbol_;
  std::map<SymbolId, std::int32_t> global_array_of_symbol_;
  ProcCtx ctx_;
};

}  // namespace

StatusOr<CompiledProgram> compile(const ftn::ResolvedProgram& rp,
                                  const MachineModel& machine,
                                  const CompileOptions& options) {
  return Compiler(rp, machine, options).run();
}

}  // namespace prose::sim
