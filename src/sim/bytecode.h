// Bytecode for the evaluation substrate's register VM.
//
// The compiler (compile.h) lowers a resolved, wrapper-complete program to
// this form; the VM (vm.h) executes it with genuine IEEE float/double
// arithmetic while accumulating simulated cycles from per-instruction costs
// computed at compile time (vectorization amortization included).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ftn/sema.h"
#include "sim/machine.h"
#include "sim/vectorize.h"

namespace prose::sim {

enum class Op : std::uint8_t {
  kNop = 0,
  kLoadConst,   // dst <- imm (pre-rounded to the slot's kind)
  kMov,         // dst <- slot a (same kind)
  kCastF32,     // dst <- fl(a): round to binary32
  kCastF64,     // dst <- a (widen; value already representable)
  kCastInt,     // dst <- trunc(a) (aux2: 0=trunc, 1=floor, 2=nearest)
  kLoadGlobal,  // dst <- globals[aux]
  kStoreGlobal, // globals[aux] <- a

  kAddF32, kSubF32, kMulF32, kDivF32, kPowF32,
  kAddF64, kSubF64, kMulF64, kDivF64, kPowF64,
  kAddI, kSubI, kMulI, kDivI, kPowI,
  kNegF32, kNegF64, kNegI,

  kCmpEq, kCmpNe, kCmpLt, kCmpLe, kCmpGt, kCmpGe,  // dst <- a OP b (0/1)
  kAnd, kOr, kNot, kEqv, kNeqv,

  kIntrin1,     // dst <- fn(a); aux = Intrinsic, kind field selects rounding
  kIntrin2,     // dst <- fn(a, b)

  kLoadElem,    // dst <- arrays[aux][a, b, c]
  kStoreElem,   // arrays[aux][a, b, c] <- dst (dst doubles as source)
  kArrayFill,   // arrays[aux] <- broadcast(a)
  kArrayCopy,   // arrays[aux] <- arrays[aux2] elementwise (casting as needed)
  kReduce,      // dst <- reduce(arrays[aux]); aux2: 0=sum, 1=min, 2=max
  kArraySize,   // dst <- extent of arrays[aux]; aux2 = dim (0 = total)

  kAllReduce,   // dst <- a; charges collective cost; aux2: ignored op tag

  kJmp,         // pc <- aux
  kJmpIfFalse,  // if a == 0: pc <- aux
  kLoopCond,    // dst <- (step>0 ? i<=hi : i>=hi); a=i, b=hi, c=step
  kLoopBegin,   // charges vector prologue; aux = loop meta index
  kLoopEnd,

  kAllocArray,  // allocate automatic array; aux = frame array slot

  kCall,        // aux = callee proc index, aux2 = call-site meta index
  kRet,
  kPrint,       // appends formatted args to the VM print log; aux2 = meta
  kHalt,
};

struct Instr {
  Op op = Op::kNop;
  std::uint8_t kind = 8;  // operand kind where relevant (4/8)
  std::int32_t dst = -1;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int32_t c = -1;
  std::int32_t aux = -1;
  std::int32_t aux2 = -1;
  double imm = 0.0;
  double cost = 0.0;      // simulated cycles charged when executed
};

/// Where a frame array slot gets its storage.
enum class ArrayBinding : std::uint8_t {
  kGlobal,     // module array: aux = global array index
  kLocal,      // procedure-local with constant shape
  kAutomatic,  // procedure-local with runtime extents
  kDummy,      // bound to the caller's array at call time
};

struct ArraySlotMeta {
  ArrayBinding binding = ArrayBinding::kLocal;
  int kind = 8;
  int rank = 1;
  std::int64_t extents[3] = {0, 0, 0};       // constant extents (kLocal/kGlobal)
  std::int32_t global_index = -1;            // kGlobal
  std::int32_t dummy_position = -1;          // kDummy: index among array params
  /// kAutomatic: slots holding the runtime extents, filled by the procedure
  /// prologue before kAllocLocal (extent exprs are compiled into the
  /// prologue).
  std::int32_t extent_slots[3] = {-1, -1, -1};
  std::string name;                          // for diagnostics
};

/// Scalar-argument writeback target after a call returns.
enum class WritebackKind : std::uint8_t { kNone, kSlot, kGlobal, kElement };

struct ScalarArgMeta {
  std::int32_t value_slot = -1;   // caller slot holding the evaluated argument
  int dummy_kind = 8;             // kind of the callee's dummy (equals actual)
  WritebackKind writeback = WritebackKind::kNone;
  std::int32_t wb_slot = -1;      // kSlot: caller slot; kGlobal: global index
  std::int32_t wb_array = -1;     // kElement: caller array slot
  std::int32_t wb_index[3] = {-1, -1, -1};  // kElement: caller slots with indices
};

struct ArrayArgMeta {
  std::int32_t caller_array_slot = -1;
};

struct CallSiteMeta {
  std::int32_t callee = -1;
  std::vector<ScalarArgMeta> scalar_args;   // in dummy order (scalars only)
  std::vector<ArrayArgMeta> array_args;     // in dummy order (arrays only)
  std::int32_t result_slot = -1;            // caller slot for function results
  bool inlined = false;                     // zero overhead, inherits vec scale
  double inline_scale = 1.0;                // cost multiplier for callee body
};

struct LoopMeta {
  bool vectorized = false;
  int lanes = 1;
  VecStatus status = VecStatus::kVectorized;
};

struct ProcMeta {
  std::string module_name;
  std::string name;
  ftn::SymbolId symbol = ftn::kInvalidSymbol;
  std::int32_t first_instr = 0;
  std::int32_t num_slots = 0;               // scalar frame size
  std::vector<ArraySlotMeta> arrays;        // frame array slots
  std::vector<std::int32_t> scalar_param_slots;  // dummy order (scalars)
  /// Qualified source name per scalar slot (real-typed declared variables
  /// only; empty for temps and non-real slots). Debug metadata for the
  /// shadow-execution blame reports — never consulted by normal execution.
  std::vector<std::string> slot_names;
  std::int32_t result_slot = -1;
  bool instrument = false;                  // open a GPTL region per call
  bool inlinable = false;
  bool generated = false;

  [[nodiscard]] std::string qualified() const { return module_name + "::" + name; }
};

struct GlobalScalarMeta {
  std::string qualified;
  int kind = 8;
  double init = 0.0;
};

struct GlobalArrayMeta {
  std::string qualified;
  int kind = 8;
  int rank = 1;
  std::int64_t extents[3] = {0, 0, 0};
};

struct PrintMeta {
  std::string text;
  std::vector<std::int32_t> arg_slots;
};

struct CompiledProgram {
  std::vector<Instr> code;
  std::vector<ProcMeta> procs;
  std::vector<CallSiteMeta> call_sites;
  std::vector<LoopMeta> loops;
  std::vector<GlobalScalarMeta> global_scalars;
  std::vector<GlobalArrayMeta> global_arrays;
  std::vector<PrintMeta> prints;
  std::map<std::string, std::int32_t> proc_index;           // "mod::proc"
  std::map<std::string, std::int32_t> global_scalar_index;  // "mod::var"
  std::map<std::string, std::int32_t> global_array_index;
  VectorizationReport vec_report;
  MachineModel machine;

  [[nodiscard]] std::size_t code_size() const { return code.size(); }
};

}  // namespace prose::sim
