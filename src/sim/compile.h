// AST → bytecode compiler for the evaluation substrate.
//
// Expects a resolved program satisfying the wrapper invariant (every real
// argument binding kind-matched); rejects programs that violate it — the
// moral equivalent of a Fortran compiler refusing mixed-kind argument
// association.
//
// Cost modeling happens here: every instruction's simulated cycle cost is
// computed at compile time, including vectorization amortization for
// instructions inside vectorizable innermost loops, cast penalties, memory
// traffic by element width, and call overheads (zero for inlined callees,
// which also inherit the calling loop's vector scale).
#pragma once

#include <set>
#include <string>

#include "ftn/sema.h"
#include "sim/bytecode.h"

namespace prose::sim {

struct CompileOptions {
  /// Allow the cost model's inliner (disable for ablation studies).
  bool enable_inlining = true;
  /// Qualified procedure names ("module::proc") to instrument with GPTL
  /// regions (the hotspot boundary). Per-procedure VM statistics are always
  /// collected regardless.
  std::set<std::string> instrument;
};

StatusOr<CompiledProgram> compile(const ftn::ResolvedProgram& rp,
                                  const MachineModel& machine,
                                  const CompileOptions& options = {});

}  // namespace prose::sim
