#include "sim/vectorize.h"

#include <functional>
#include <optional>
#include <sstream>

namespace prose::sim {

using ftn::BinaryOp;
using ftn::Expr;
using ftn::ExprKind;
using ftn::ExprPtr;
using ftn::Intrinsic;
using ftn::Procedure;
using ftn::ResolvedProgram;
using ftn::Stmt;
using ftn::StmtKind;
using ftn::StmtPtr;
using ftn::Symbol;
using ftn::SymbolId;

const char* to_string(VecStatus s) {
  switch (s) {
    case VecStatus::kVectorized: return "vectorized";
    case VecStatus::kCarriedDependence: return "loop-carried dependence";
    case VecStatus::kNonInlinableCall: return "call to non-inlinable procedure";
    case VecStatus::kIrregularControl: return "irregular control flow";
    case VecStatus::kCollective: return "MPI collective in body";
    case VecStatus::kPrintIo: return "I/O in body";
    case VecStatus::kOuterLoop: return "not an innermost loop";
    case VecStatus::kScalarRecurrence: return "scalar recurrence";
  }
  return "?";
}

std::size_t VectorizationReport::vectorized_count() const {
  std::size_t n = 0;
  for (const auto& [id, info] : loops) {
    if (info.status == VecStatus::kVectorized) ++n;
  }
  return n;
}

std::string VectorizationReport::to_string(const ftn::SymbolTable& symbols) const {
  std::ostringstream os;
  for (const auto& [id, info] : loops) {
    const Symbol& proc = symbols.get(info.proc);
    os << proc.qualified() << " loop@" << id << ": " << sim::to_string(info.status);
    if (info.status == VecStatus::kVectorized) {
      os << " (lanes=" << info.effective_lanes;
      if (info.cast_sites > 0) os << ", casts=" << info.cast_sites;
      if (info.has_reduction) os << ", reduction";
      os << ")";
    } else if (!info.detail.empty()) {
      os << " — " << info.detail;
    }
    os << '\n';
  }
  return os.str();
}

namespace {

/// Affine subscript pattern `loopvar + c`, `loopvar - c`, `loopvar`, or a
/// loop-invariant expression.
struct Subscript {
  bool uses_loop_var = false;
  bool affine = false;          // loopvar ± const (or bare loopvar)
  std::int64_t offset = 0;      // only when affine
};

bool expr_mentions(const Expr& e, SymbolId sym) {
  if (e.symbol == sym) return true;
  for (const auto& a : e.args) {
    if (a && expr_mentions(*a, sym)) return true;
  }
  if (e.lhs && expr_mentions(*e.lhs, sym)) return true;
  if (e.rhs && expr_mentions(*e.rhs, sym)) return true;
  return false;
}

Subscript classify_subscript(const Expr& e, SymbolId loop_var) {
  Subscript s;
  s.uses_loop_var = expr_mentions(e, loop_var);
  if (!s.uses_loop_var) {
    s.affine = false;
    return s;
  }
  if (e.kind == ExprKind::kVarRef && e.symbol == loop_var) {
    s.affine = true;
    s.offset = 0;
    return s;
  }
  if (e.kind == ExprKind::kBinary &&
      (e.binary_op == BinaryOp::kAdd || e.binary_op == BinaryOp::kSub)) {
    const Expr* var_side = nullptr;
    const Expr* const_side = nullptr;
    if (e.lhs->kind == ExprKind::kVarRef && e.lhs->symbol == loop_var) {
      var_side = e.lhs.get();
      const_side = e.rhs.get();
    } else if (e.binary_op == BinaryOp::kAdd && e.rhs->kind == ExprKind::kVarRef &&
               e.rhs->symbol == loop_var) {
      var_side = e.rhs.get();
      const_side = e.lhs.get();
    }
    if (var_side != nullptr && const_side->kind == ExprKind::kIntLit) {
      s.affine = true;
      s.offset = e.binary_op == BinaryOp::kAdd ? const_side->int_value
                                               : -const_side->int_value;
      return s;
    }
  }
  s.affine = false;  // uses the loop var in a non-affine way
  return s;
}

struct BodyScan {
  // Per array symbol: write/read subscript signatures in the vectorized dim.
  struct Access {
    std::vector<Subscript> writes;
    std::vector<Subscript> reads;
  };
  std::map<SymbolId, Access> arrays;
  std::vector<SymbolId> scalar_write_order;      // scalars written, in order
  std::set<SymbolId> scalars_written;
  std::set<SymbolId> scalars_read_before_write;  // read while not yet written
  std::set<SymbolId> reduction_scalars;
  bool has_irregular = false;   // exit/cycle/return
  bool has_print = false;
  bool has_collective = false;
  std::vector<SymbolId> called;  // user procedures called in body
  bool has_f32 = false;
  bool has_f64 = false;
  int cast_sites = 0;
  bool non_reduction_recurrence = false;
};

class Analyzer {
 public:
  Analyzer(const ResolvedProgram& rp, const ftn::CallGraph& cg,
           const MachineModel& machine)
      : rp_(rp), cg_(cg), machine_(machine) {}

  VectorizationReport run() {
    compute_inlinability();
    for (const auto& mod : rp_.program.modules) {
      for (const auto& proc : mod.procedures) {
        for (const auto& s : proc.body) walk(*s, proc.symbol);
      }
    }
    return std::move(report_);
  }

 private:
  void compute_inlinability() {
    for (const auto& mod : rp_.program.modules) {
      for (const auto& proc : mod.procedures) {
        report_.inlinable[proc.symbol] = judge(proc);
      }
    }
  }

  InlineInfo judge(const Procedure& proc) {
    InlineInfo info;
    if (proc.generated) {
      info.reason = "generated wrapper (kind conversions at boundary)";
      return info;
    }
    if (proc.kind != ftn::ProcKind::kFunction) {
      info.reason = "subroutine";
      return info;
    }
    if (cg_.is_recursive(proc.symbol)) {
      info.reason = "recursive";
      return info;
    }
    int stmts = 0;
    bool has_loop = false;
    bool has_call = false;
    std::function<void(const Stmt&)> count = [&](const Stmt& s) {
      ++stmts;
      if (s.kind == StmtKind::kDo || s.kind == StmtKind::kDoWhile) has_loop = true;
      if (s.kind == StmtKind::kCall) has_call = true;
      std::function<void(const Expr&)> scan = [&](const Expr& e) {
        if (e.kind == ExprKind::kCall && e.symbol != ftn::kInvalidSymbol) has_call = true;
        for (const auto& a : e.args) {
          if (a) scan(*a);
        }
        if (e.lhs) scan(*e.lhs);
        if (e.rhs) scan(*e.rhs);
      };
      for (const ExprPtr* e : {&s.lhs, &s.rhs, &s.lo, &s.hi, &s.step, &s.cond}) {
        if (*e) scan(**e);
      }
      for (const auto& a : s.args) scan(*a);
      for (const auto& b : s.branches) {
        if (b.cond) scan(*b.cond);
        for (const auto& inner : b.body) count(*inner);
      }
      for (const auto& inner : s.body) count(*inner);
    };
    for (const auto& s : proc.body) count(*s);

    if (has_loop) {
      info.reason = "contains loops";
      return info;
    }
    if (has_call) {
      info.reason = "calls other procedures";
      return info;
    }
    if (stmts > machine_.inline_max_stmts) {
      info.reason = "too large (" + std::to_string(stmts) + " statements)";
      return info;
    }
    for (const auto& d : proc.decls) {
      if (d.is_array()) {
        info.reason = "has array locals/arguments";
        return info;
      }
    }
    info.eligible = true;
    info.reason = "ok";
    return info;
  }

  void walk(const Stmt& s, SymbolId proc) {
    if (s.kind == StmtKind::kDo) {
      const bool innermost = !contains_loop(s.body);
      if (innermost) {
        analyze_loop(s, proc);
      } else {
        LoopInfo info;
        info.loop = s.id;
        info.proc = proc;
        info.status = VecStatus::kOuterLoop;
        report_.loops.emplace(s.id, std::move(info));
      }
    }
    for (const auto& b : s.branches) {
      for (const auto& inner : b.body) walk(*inner, proc);
    }
    for (const auto& inner : s.body) walk(*inner, proc);
    if (s.kind == StmtKind::kDoWhile) {
      // do-while loops are never vectorized; record only innermost ones so
      // the report stays readable.
      if (!contains_loop(s.body)) {
        LoopInfo info;
        info.loop = s.id;
        info.proc = proc;
        info.status = VecStatus::kIrregularControl;
        info.detail = "do-while form";
        report_.loops.emplace(s.id, std::move(info));
      }
    }
  }

  static bool contains_loop(const std::vector<StmtPtr>& body) {
    for (const auto& s : body) {
      if (s->kind == StmtKind::kDo || s->kind == StmtKind::kDoWhile) return true;
      for (const auto& b : s->branches) {
        if (contains_loop(b.body)) return true;
      }
      if (contains_loop(s->body)) return true;
    }
    return false;
  }

  void scan_expr(const Expr& e, SymbolId loop_var, BodyScan& scan, bool /*lvalue*/,
                 int expected_kind) {
    switch (e.kind) {
      case ExprKind::kIndex: {
        const Symbol& arr = rp_.symbols.get(e.symbol);
        // Dependence testing uses the subscript that varies with the loop.
        Subscript sig;
        bool any_loop_dim = false;
        for (const auto& idx : e.args) {
          const Subscript s2 = classify_subscript(*idx, loop_var);
          if (s2.uses_loop_var) {
            any_loop_dim = true;
            sig = s2;
          }
          scan_expr(*idx, loop_var, scan, false, 4);
        }
        if (!any_loop_dim) {
          sig.uses_loop_var = false;
          sig.affine = false;
        }
        scan.arrays[arr.id].reads.push_back(sig);
        note_kind(e.type, scan, expected_kind);
        return;
      }
      case ExprKind::kCall: {
        if (e.symbol != ftn::kInvalidSymbol) {
          scan.called.push_back(e.symbol);
          // The inlined callee's body kinds matter for width selection.
          note_callee_kinds(e.symbol, scan);
        } else {
          const auto intr = ftn::find_intrinsic(e.name);
          if (intr.has_value() && ftn::intrinsic_is_collective(*intr)) {
            scan.has_collective = true;
          }
        }
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          scan_expr(*e.args[i], loop_var, scan, false, e.type.kind);
        }
        note_kind(e.type, scan, expected_kind);
        return;
      }
      case ExprKind::kVarRef: {
        if (e.symbol != ftn::kInvalidSymbol) {
          const Symbol& sym = rp_.symbols.get(e.symbol);
          if (sym.is_variable() && !sym.is_array() && sym.type.is_real() &&
              sym.kind != ftn::SymbolKind::kParameterConst) {
            if (!scan.scalars_written.contains(e.symbol)) {
              scan.scalars_read_before_write.insert(e.symbol);
            }
          }
        }
        note_kind(e.type, scan, expected_kind);
        return;
      }
      case ExprKind::kBinary: {
        // A cast site occurs when operand kinds differ.
        if (e.lhs->type.is_real() && e.rhs->type.is_real() &&
            e.lhs->type.kind != e.rhs->type.kind) {
          ++scan.cast_sites;
        }
        scan_expr(*e.lhs, loop_var, scan, false, e.type.kind);
        scan_expr(*e.rhs, loop_var, scan, false, e.type.kind);
        note_kind(e.type, scan, expected_kind);
        return;
      }
      case ExprKind::kUnary:
        scan_expr(*e.lhs, loop_var, scan, false, e.type.kind);
        return;
      default:
        note_kind(e.type, scan, expected_kind);
        return;
    }
  }

  void note_kind(const ftn::ScalarType& t, BodyScan& scan, int expected_kind) {
    if (!t.is_real()) return;
    if (t.kind == 4) scan.has_f32 = true;
    if (t.kind == 8) scan.has_f64 = true;
    if (expected_kind != 0 && expected_kind != t.kind) ++scan.cast_sites;
  }

  void note_callee_kinds(SymbolId callee, BodyScan& scan) {
    for (const auto& sym : rp_.symbols.all()) {
      if (sym.kind == ftn::SymbolKind::kProcedure) continue;
      if (!sym.type.is_real()) continue;
      // Symbols owned by the callee procedure.
      const Symbol& c = rp_.symbols.get(callee);
      if (sym.module_name == c.module_name && sym.proc_name == c.name) {
        if (sym.type.kind == 4) scan.has_f32 = true;
        if (sym.type.kind == 8) scan.has_f64 = true;
      }
    }
  }

  void scan_stmt(const Stmt& s, SymbolId loop_var, BodyScan& scan) {
    switch (s.kind) {
      case StmtKind::kAssign: {
        const Expr& lhs = *s.lhs;
        // RHS first: read-before-write ordering for scalars.
        // Reduction detection: lhs scalar appears in rhs as the spine of an
        // add/sub/min/max.
        scan_expr(*s.rhs, loop_var, scan, false, lhs.type.kind);
        if (lhs.kind == ExprKind::kIndex) {
          const Symbol& arr = rp_.symbols.get(lhs.symbol);
          Subscript sig;
          bool any_loop_dim = false;
          for (const auto& idx : lhs.args) {
            const Subscript s2 = classify_subscript(*idx, loop_var);
            if (s2.uses_loop_var) {
              any_loop_dim = true;
              sig = s2;
            }
            scan_expr(*idx, loop_var, scan, false, 4);
          }
          if (!any_loop_dim) {
            sig.uses_loop_var = false;
            sig.affine = false;
          }
          scan.arrays[arr.id].writes.push_back(sig);
          note_kind(lhs.type, scan, s.rhs->type.is_real() ? s.rhs->type.kind : 0);
        } else if (lhs.symbol != ftn::kInvalidSymbol) {
          const Symbol& sym = rp_.symbols.get(lhs.symbol);
          if (sym.is_variable() && !sym.is_array()) {
            if (is_reduction_assign(s, lhs.symbol)) {
              scan.reduction_scalars.insert(lhs.symbol);
            } else if (expr_mentions(*s.rhs, lhs.symbol) ||
                       scan.scalars_read_before_write.contains(lhs.symbol)) {
              if (sym.type.is_real()) scan.non_reduction_recurrence = true;
            }
            scan.scalars_written.insert(lhs.symbol);
            scan.scalar_write_order.push_back(lhs.symbol);
          }
          note_kind(lhs.type, scan, s.rhs->type.is_real() ? s.rhs->type.kind : 0);
        }
        return;
      }
      case StmtKind::kIf:
        for (const auto& b : s.branches) {
          if (b.cond) scan_expr(*b.cond, loop_var, scan, false, 0);
          for (const auto& inner : b.body) scan_stmt(*inner, loop_var, scan);
        }
        return;
      case StmtKind::kCall:
        scan.called.push_back(s.callee_symbol);
        note_callee_kinds(s.callee_symbol, scan);
        for (const auto& a : s.args) scan_expr(*a, loop_var, scan, false, 0);
        return;
      case StmtKind::kExit:
      case StmtKind::kCycle:
      case StmtKind::kReturn:
        scan.has_irregular = true;
        return;
      case StmtKind::kPrint:
        scan.has_print = true;
        return;
      case StmtKind::kDo:
      case StmtKind::kDoWhile:
        // Unreachable for innermost loops.
        return;
    }
  }

  /// `s` is `x = x + e`, `x = e + x`, `x = x - e`, `x = min/max(x, e)`.
  static bool is_reduction_assign(const Stmt& s, SymbolId x) {
    const Expr& rhs = *s.rhs;
    const auto is_x = [&](const ExprPtr& e) {
      return e && e->kind == ExprKind::kVarRef && e->symbol == x;
    };
    if (rhs.kind == ExprKind::kBinary) {
      if (rhs.binary_op == BinaryOp::kAdd &&
          ((is_x(rhs.lhs) && !expr_mentions(*rhs.rhs, x)) ||
           (is_x(rhs.rhs) && !expr_mentions(*rhs.lhs, x)))) {
        return true;
      }
      if (rhs.binary_op == BinaryOp::kSub && is_x(rhs.lhs) &&
          !expr_mentions(*rhs.rhs, x)) {
        return true;
      }
    }
    if (rhs.kind == ExprKind::kCall && rhs.symbol == ftn::kInvalidSymbol) {
      const auto intr = ftn::find_intrinsic(rhs.name);
      if ((intr == Intrinsic::kMin || intr == Intrinsic::kMax) && rhs.args.size() == 2) {
        if ((is_x(rhs.args[0]) && !expr_mentions(*rhs.args[1], x)) ||
            (is_x(rhs.args[1]) && !expr_mentions(*rhs.args[0], x))) {
          return true;
        }
      }
    }
    return false;
  }

  void analyze_loop(const Stmt& loop, SymbolId proc) {
    LoopInfo info;
    info.loop = loop.id;
    info.proc = proc;

    BodyScan scan;
    for (const auto& s : loop.body) scan_stmt(*s, loop.do_symbol, scan);

    info.body_has_f32 = scan.has_f32;
    info.body_has_f64 = scan.has_f64;
    info.cast_sites = scan.cast_sites;
    info.has_reduction = !scan.reduction_scalars.empty();
    info.has_calls = !scan.called.empty();

    const auto fail = [&](VecStatus status, std::string detail) {
      info.status = status;
      info.effective_lanes = 1;
      info.detail = std::move(detail);
      report_.loops.emplace(loop.id, info);
    };

    if (scan.has_print) return fail(VecStatus::kPrintIo, "");
    if (scan.has_collective) return fail(VecStatus::kCollective, "");
    if (scan.has_irregular) return fail(VecStatus::kIrregularControl, "exit/cycle/return");
    for (const SymbolId callee : scan.called) {
      const auto it = report_.inlinable.find(callee);
      if (it == report_.inlinable.end() || !it->second.eligible) {
        return fail(VecStatus::kNonInlinableCall,
                    rp_.symbols.get(callee).qualified() + ": " +
                        (it == report_.inlinable.end() ? "unknown" : it->second.reason));
      }
    }
    // Non-reduction real scalar recurrences defeat vectorization.
    if (scan.non_reduction_recurrence) {
      return fail(VecStatus::kScalarRecurrence, "");
    }
    // Array dependence test.
    for (const auto& [arr, acc] : scan.arrays) {
      if (acc.writes.empty()) continue;
      for (const auto& w : acc.writes) {
        if (!w.affine) {
          // A write whose varying subscript is not affine (or that does not
          // vary with the loop at all) conflicts with everything.
          return fail(VecStatus::kCarriedDependence,
                      rp_.symbols.get(arr).qualified() + " write subscript not affine");
        }
        for (const auto& r : acc.reads) {
          if (!r.uses_loop_var) continue;  // invariant read of a written array
          if (!r.affine || r.offset != w.offset) {
            return fail(VecStatus::kCarriedDependence,
                        rp_.symbols.get(arr).qualified() + " read/write offsets differ");
          }
        }
        for (const auto& w2 : acc.writes) {
          if (w2.affine && w2.offset != w.offset) {
            return fail(VecStatus::kCarriedDependence,
                        rp_.symbols.get(arr).qualified() + " conflicting writes");
          }
        }
      }
    }

    info.status = VecStatus::kVectorized;
    const bool mixed = scan.has_f32 && scan.has_f64;
    if (mixed || scan.has_f64 || !scan.has_f32) {
      info.effective_lanes = machine_.vector_lanes_f64;
    } else {
      info.effective_lanes = machine_.vector_lanes_f32;
    }
    report_.loops.emplace(loop.id, std::move(info));
  }

  const ResolvedProgram& rp_;
  const ftn::CallGraph& cg_;
  const MachineModel& machine_;
  VectorizationReport report_;
};

}  // namespace

VectorizationReport analyze_vectorization(const ftn::ResolvedProgram& rp,
                                          const ftn::CallGraph& cg,
                                          const MachineModel& machine) {
  return Analyzer(rp, cg, machine).run();
}

}  // namespace prose::sim
