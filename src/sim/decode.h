// One-time lowering of CompiledProgram bytecode into a flat, pre-validated,
// dispatch-ready instruction stream (ROADMAP item 1, tier (a)).
//
// decode() does three things the interpreter otherwise pays for on every
// executed instruction:
//   1. Verify: every operand slot, array slot, global index, jump target,
//      call-site record, and writeback target is checked once, up front. A
//      malformed program is rejected here with a diagnostic instead of
//      crashing (or faulting) mid-run. The execution engines can therefore
//      index everything unchecked.
//   2. Resolve: polymorphic decisions the interpreter re-derives per
//      execution are folded into the opcode or the decoded fields — the
//      kind of a kStoreGlobal target, the vectorization verdict of a
//      kLoopBegin, the op-mix class, the kCastInt rounding mode.
//   3. Fuse: adjacent pairs that dominate the dynamic mix (loop-head
//      cond+branch, compare+branch, increment+back-edge, cast+mov,
//      cast/arith+store, load+arith) are rewritten into superinstructions
//      that execute both components under a single dispatch. Fusion is
//      structural only: the second component stays in place in the stream
//      and both components keep their exact interpreter semantics and
//      accounting, so fused and unfused runs are bit-identical (including
//      OpMix and the simulated clock).
//
// The decoded stream keeps a 1:1 index mapping with the bytecode (decoded
// index == bytecode pc), so branch targets, return addresses, and fault pcs
// need no translation. A fused pair occupies its original two positions; the
// second position is provably unreachable by any jump (fusion requires the
// second instruction not be a basic-block leader).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/bytecode.h"
#include "support/status.h"

namespace prose::sim {

// Decoded opcode space: the bytecode ops, plus resolved variants, plus
// superinstructions. The X-macro is the single source of truth — the
// threaded engine's label table and the switch engine's case list are both
// generated from it, so a missing handler is a compile error.
#define PROSE_VM_FOR_EACH_XOP(X)                                          \
  X(kNop)                                                                 \
  X(kLoadConst)                                                           \
  X(kMov)                                                                 \
  X(kCastF32)                                                             \
  X(kCastF64)                                                             \
  X(kCastInt)                                                             \
  X(kLoadGlobal)                                                          \
  X(kStoreGlobalF32)                                                      \
  X(kStoreGlobalF64)                                                      \
  X(kAddF32)                                                              \
  X(kSubF32)                                                              \
  X(kMulF32)                                                              \
  X(kDivF32)                                                              \
  X(kPowF32)                                                              \
  X(kAddF64)                                                              \
  X(kSubF64)                                                              \
  X(kMulF64)                                                              \
  X(kDivF64)                                                              \
  X(kPowF64)                                                              \
  X(kAddI)                                                                \
  X(kSubI)                                                                \
  X(kMulI)                                                                \
  X(kDivI)                                                                \
  X(kPowI)                                                                \
  X(kNegF32)                                                              \
  X(kNegF64)                                                              \
  X(kNegI)                                                                \
  X(kCmpEq)                                                               \
  X(kCmpNe)                                                               \
  X(kCmpLt)                                                               \
  X(kCmpLe)                                                               \
  X(kCmpGt)                                                               \
  X(kCmpGe)                                                               \
  X(kAnd)                                                                 \
  X(kOr)                                                                  \
  X(kNot)                                                                 \
  X(kEqv)                                                                 \
  X(kNeqv)                                                                \
  X(kIntrin1)                                                             \
  X(kIntrin2)                                                             \
  X(kLoadElem)                                                            \
  X(kStoreElem)                                                           \
  X(kArrayFill)                                                           \
  X(kArrayCopy)                                                           \
  X(kReduce)                                                              \
  X(kArraySize)                                                           \
  X(kAllReduce)                                                           \
  X(kJmp)                                                                 \
  X(kJmpIfFalse)                                                          \
  X(kLoopCond)                                                            \
  X(kLoopBeginVec)                                                        \
  X(kLoopBeginScalar)                                                     \
  X(kLoopEnd)                                                             \
  X(kAllocArray)                                                          \
  X(kCall)                                                                \
  X(kRet)                                                                 \
  X(kPrint)                                                               \
  X(kHalt)                                                                \
  /* --- superinstructions: two bytecode ops, one dispatch --- */         \
  X(kFusedLoopCondJmp)      /* kLoopCond + kJmpIfFalse (loop head) */     \
  X(kFusedIncJmp)           /* kAddI + kJmp (loop back edge) */           \
  X(kFusedCmpEqJmp)                                                       \
  X(kFusedCmpNeJmp)                                                       \
  X(kFusedCmpLtJmp)                                                       \
  X(kFusedCmpLeJmp)                                                       \
  X(kFusedCmpGtJmp)                                                       \
  X(kFusedCmpGeJmp)                                                       \
  X(kFusedCastF32Mov)                                                     \
  X(kFusedCastF64Mov)                                                     \
  X(kFusedCastF32Store)     /* kCastF32 + kStoreElem */                   \
  X(kFusedCastF64Store)                                                   \
  X(kFusedLoadAddF32)       /* kLoadElem + kAddF32 */                     \
  X(kFusedLoadSubF32)                                                     \
  X(kFusedLoadMulF32)                                                     \
  X(kFusedLoadDivF32)                                                     \
  X(kFusedLoadAddF64)                                                     \
  X(kFusedLoadSubF64)                                                     \
  X(kFusedLoadMulF64)                                                     \
  X(kFusedLoadDivF64)                                                     \
  X(kFusedAddStoreF32)      /* kAddF32 + kStoreElem */                    \
  X(kFusedSubStoreF32)                                                    \
  X(kFusedMulStoreF32)                                                    \
  X(kFusedDivStoreF32)                                                    \
  X(kFusedAddStoreF64)                                                    \
  X(kFusedSubStoreF64)                                                    \
  X(kFusedMulStoreF64)                                                    \
  X(kFusedDivStoreF64)                                                    \
  X(kFusedConstAddF32)      /* kLoadConst + kAddF32 (coefficient feeds) */ \
  X(kFusedConstSubF32)                                                    \
  X(kFusedConstMulF32)                                                    \
  X(kFusedConstDivF32)                                                    \
  X(kFusedConstAddF64)                                                    \
  X(kFusedConstSubF64)                                                    \
  X(kFusedConstMulF64)                                                    \
  X(kFusedConstDivF64)                                                    \
  X(kFusedConstAddI)        /* kLoadConst + kAddI (subscript arithmetic) */ \
  X(kFusedConstSubI)                                                      \
  X(kFusedConstMulI)                                                      \
  X(kFusedLoadElemConst)    /* kLoadElem + kLoadConst (stencil preload) */ \
  X(kFusedLoadGlobalConst)  /* kLoadGlobal + kLoadConst */                \
  X(kFusedConstLoadElem)    /* kLoadConst + kLoadElem */

enum class XOp : std::uint8_t {
#define PROSE_VM_XOP_ENUM(name) name,
  PROSE_VM_FOR_EACH_XOP(PROSE_VM_XOP_ENUM)
#undef PROSE_VM_XOP_ENUM
};

inline constexpr std::size_t kNumXOps = []() {
  std::size_t n = 0;
#define PROSE_VM_XOP_COUNT(name) ++n;
  PROSE_VM_FOR_EACH_XOP(PROSE_VM_XOP_COUNT)
#undef PROSE_VM_XOP_COUNT
  return n;
}();

/// Superinstruction families, for the vm/fused/* flight-recorder counters
/// and the bench fusion hit-rate. Purely observability: fused execution
/// never reaches OpMix (both components count under their original class).
enum FusedFamily : std::uint8_t {
  kFuseLoopCondJmp = 0,
  kFuseIncJmp,
  kFuseCmpJmp,
  kFuseCastMov,
  kFuseCastStore,
  kFuseLoadArith,
  kFuseArithStore,
  kFuseConstArith,
  kFuseLoadConst,
  kNumFusedFamilies,
};

[[nodiscard]] const char* fused_family_name(std::uint8_t family);

/// Op-mix class of a decoded instruction, precomputed so the hot loop does
/// an array increment instead of re-classifying the opcode. Must match
/// vm.cpp's count_op() exactly — the dispatch-equivalence suite pins this.
enum MixClass : std::uint8_t {
  kMixFp32 = 0,
  kMixFp64,
  kMixInt,
  kMixCast,
  kMixMem,
  kMixCall,
  kMixBranch,
  kMixIntrinsic,
  kMixOther,
  kNumMixClasses,
};

/// One pre-validated, dispatch-ready instruction. `target` is the threaded
/// engine's handler address (prefilled at decode time when the build has
/// computed goto; null otherwise — the switch engine never reads it).
struct DecodedInstr {
  const void* target = nullptr;
  double imm = 0.0;
  double cost = 0.0;
  std::int32_t dst = -1;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int32_t c = -1;
  std::int32_t aux = -1;
  std::int32_t aux2 = -1;
  XOp op = XOp::kNop;
  std::uint8_t kind = 8;  // operand kind where relevant (4/8)
  std::uint8_t mix = kMixOther;
  std::uint8_t sub = 0;   // kCastInt rounding mode; FusedFamily for fusions
};

struct DecodeOptions {
  /// Run the superinstruction fuser. Off = plain pre-validated stream;
  /// results are bit-identical either way (the fusion-neutrality test pins
  /// this), only dispatch counts differ.
  bool fuse = true;
};

/// The decoded form of one CompiledProgram. Owns no reference to the
/// program, but is only meaningful for the exact program it was decoded
/// from (the engines still read proc/call-site/print metadata from the
/// program). Immutable after decode — safe to share across threads and Vm
/// instances, which is how the evaluator's per-variant cache uses it.
struct DecodedProgram {
  std::vector<DecodedInstr> code;
  bool fused = false;
  /// Static fusion census: how many pairs the fuser rewrote, per family.
  std::uint64_t fused_sites = 0;
  std::array<std::uint64_t, kNumFusedFamilies> family_sites{};
};

/// Verifies and lowers `program`. Returns InvalidArgument with a
/// "decode: ..." diagnostic naming the offending instruction if the
/// program is malformed (bad register/array/global indices, jump targets
/// outside the owning procedure, truncated call argument lists, procedures
/// that can fall off their code range, unknown intrinsics).
StatusOr<std::shared_ptr<const DecodedProgram>> decode(
    const CompiledProgram& program, const DecodeOptions& options = {});

/// Handler-address table of the threaded engine (indexed by XOp), or null
/// when the build has no computed-goto support. Defined in vm_dispatch.cpp.
const void* const* threaded_label_table();

}  // namespace prose::sim
