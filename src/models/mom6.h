// Miniature MOM6 ocean model with the MOM_continuity_PPM hotspot
// (paper §IV-A/§IV-B).
//
// Captures the tuning-relevant structure at reduced scale:
//   * layered (ni × nj × nk) state with a partially *vanished* top layer —
//     the MOM6 numerical hazard: lowering the `h_neglect`-style guards to
//     binary32 flushes them to zero and division at dried cells produces
//     NaN/Inf → the Table II runtime-error class (51.7%);
//   * `zonal_mass_flux` / `meridional_mass_flux` pass whole rank-3 arrays to
//     `ppm_reconstruction`, `*_flux_layer`, and `*_flux_adjust`; lowering
//     subsets of dummies routes those large arrays through casting wrappers
//     on every call — the paper's 40%-of-CPU casting-overhead mechanism;
//   * `zonal_flux_adjust`/`meridional_flux_adjust` iterate Newton updates to
//     a 1e-12 velocity tolerance: binary32 stalls at its rounding floor and
//     runs to the iteration cap, 10–40× more iterations (paper Fig. 6's
//     0.01–0.1× flux_adjust variants);
//   * correctness follows the paper: the per-step maximum CFL number,
//     relative error per step, L2 norm over time, threshold 0.25.
#pragma once

#include "tuner/target.h"

namespace prose::models {

struct Mom6Options {
  int ni = 20;
  int nj = 6;
  int nk = 3;
  int nsteps = 8;
  /// Iteration cap of the flux-adjust Newton loops.
  int max_itts = 40;
  /// Iterations of the per-cell thermodynamics loop (tunes the hotspot's
  /// ~9% CPU share).
  int thermo_iters = 24;
};

std::string mom6_source(const Mom6Options& options = {});
tuner::TargetSpec mom6_target(const Mom6Options& options = {});

}  // namespace prose::models
