// Umbrella header: the paper's four tuning targets.
#pragma once

#include "models/adcirc.h"
#include "models/common.h"
#include "models/funarc.h"
#include "models/mom6.h"
#include "models/mpas.h"
