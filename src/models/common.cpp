#include "models/common.h"

#include <cmath>

namespace prose::models {

StatusOr<double> uniform32_error(const tuner::TargetSpec& spec) {
  auto evaluator = tuner::Evaluator::create(spec);
  if (!evaluator.is_ok()) return evaluator.status();
  const tuner::Evaluation& eval =
      (*evaluator)->evaluate((*evaluator)->space().uniform(4));
  if (eval.outcome != tuner::Outcome::kPass && eval.outcome != tuner::Outcome::kFail) {
    return Status(StatusCode::kInvalidArgument,
                  "uniform 32-bit variant did not complete: " + eval.detail);
  }
  if (!std::isfinite(eval.error)) {
    return Status(StatusCode::kInvalidArgument,
                  "uniform 32-bit variant has non-finite error");
  }
  return eval.error;
}

StatusOr<tuner::TargetSpec> with_uniform32_threshold(tuner::TargetSpec spec,
                                                     double headroom) {
  auto err = uniform32_error(spec);
  if (!err.is_ok()) return err.status();
  spec.error_threshold = *err * headroom;
  return spec;
}

}  // namespace prose::models
