#include "models/mom6.h"

#include "support/strings.h"

namespace prose::models {

std::string mom6_source(const Mom6Options& options) {
  std::string src = R"f(
module mom_grid
  implicit none
  integer, parameter :: ni = @NI@
  integer, parameter :: nj = @NJ@
  integer, parameter :: nk = @NK@
  integer, parameter :: nsteps = @NSTEPS@
  real(kind=8) :: h(ni, nj, nk)
  real(kind=8) :: u(ni, nj, nk)
  real(kind=8) :: v(ni, nj, nk)
  real(kind=8) :: uh(ni, nj, nk)
  real(kind=8) :: vh(ni, nj, nk)
  real(kind=8) :: diag_cfl(nsteps)
  real(kind=8) :: dt
end module mom_grid

module mom_continuity_ppm
  use mom_grid
  implicit none
  ! Numerically delicate constants and surface-mass scalars, declared
  ! together at the head of the module (as the real module groups its
  ! parameters):
  !   * href_big + the ssh scalars: the (href + h) - (href + h')
  !     cancellation loses ~7 digits in binary32 — the Table II Fail class;
  !   * h_neglect / h_neglect_v: representable in binary64, flushed to zero
  !     in binary32 (below its smallest subnormal) — 0/0 at vanished layers,
  !     the runtime-error mechanism;
  !   * density_unit_scale: CGS-flavoured constant that overflows binary32.
  real(kind=8) :: href_big
  real(kind=8) :: h_neglect
  real(kind=8) :: h_neglect_v
  real(kind=8) :: density_unit_scale
  real(kind=8) :: ssh_e
  real(kind=8) :: ssh_w
  ! Work fields of the hotspot (search atoms).
  real(kind=8) :: h_w(ni)
  real(kind=8) :: h_e(ni)
  real(kind=8) :: g_w(nj)
  real(kind=8) :: g_e(nj)
  real(kind=8) :: tol_vel
  real(kind=8) :: relax_newton
  real(kind=8) :: grad_coef
  integer, parameter :: max_itts = @MAXITTS@
contains
  subroutine continuity_setup()
    h_neglect = 1.0d-46
    h_neglect_v = 1.0d-46
    tol_vel = 1.0d-12
    relax_newton = 1.0
    density_unit_scale = 1.0d39
    href_big = 1.0d7
    grad_coef = 0.05
  end subroutine continuity_setup

  ! Hotspot driver (instrumented): zonal sweeps per (j,k) slice, meridional
  ! sweeps per k.
  subroutine continuity_ppm()
    integer :: j
    integer :: k
    do k = 1, nk
      do j = 1, nj
        call zonal_mass_flux(h, u, uh, j, k)
      end do
      call meridional_mass_flux(h, v, vh, k)
    end do
  end subroutine continuity_ppm

  subroutine zonal_mass_flux(h3, u3, uh3, j, k)
    real(kind=8), dimension(:, :, :), intent(in) :: h3
    real(kind=8), dimension(:, :, :), intent(in) :: u3
    real(kind=8), dimension(:, :, :), intent(inout) :: uh3
    integer, intent(in) :: j
    integer, intent(in) :: k
    integer :: i
    call ppm_reconstruction(h3, j, k)
    call zonal_flux_layer(u3, uh3, j, k)
    call zonal_flux_adjust(u3, h3, uh3, j, k)
    ! Barotropic surface-slope correction applied on top of the adjusted
    ! fluxes: the difference of two large column masses. Exact to ~1e-9 in
    ! binary64; in binary32 the absolute rounding of href_big + h is O(1),
    ! polluting the correction (the Table II correctness-Fail class).
    do i = 2, ni - 1
      if (h3(i, j, k) > 0.01) then
        ssh_e = href_big + h_e(i)
        ssh_w = href_big + h_w(i)
        uh3(i, j, k) = uh3(i, j, k) + grad_coef * (ssh_e - ssh_w)
      end if
    end do
  end subroutine zonal_mass_flux

  ! PPM edge-value reconstruction with positivity limiting (vectorizable).
  subroutine ppm_reconstruction(h3, j, k)
    real(kind=8), dimension(:, :, :), intent(in) :: h3
    integer, intent(in) :: j
    integer, intent(in) :: k
    integer :: i
    do i = 2, ni - 1
      h_w(i) = (2.0 * h3(i - 1, j, k) + 5.0 * h3(i, j, k) - h3(i + 1, j, k)) / 6.0
      h_e(i) = (-h3(i - 1, j, k) + 5.0 * h3(i, j, k) + 2.0 * h3(i + 1, j, k)) / 6.0
      h_w(i) = max(h_w(i), 0.0)
      h_e(i) = max(h_e(i), 0.0)
    end do
    h_w(1) = h3(1, j, k)
    h_e(1) = h3(1, j, k)
    h_w(ni) = h3(ni, j, k)
    h_e(ni) = h3(ni, j, k)
  end subroutine ppm_reconstruction

  ! First-guess layer fluxes from upwinded edge values (vectorizable).
  subroutine zonal_flux_layer(u3, uh3, j, k)
    real(kind=8), dimension(:, :, :), intent(in) :: u3
    real(kind=8), dimension(:, :, :), intent(inout) :: uh3
    integer, intent(in) :: j
    integer, intent(in) :: k
    integer :: i
    do i = 2, ni - 1
      if (u3(i, j, k) >= 0.0) then
        uh3(i, j, k) = u3(i, j, k) * h_e(i - 1)
      else
        uh3(i, j, k) = u3(i, j, k) * h_w(i)
      end if
    end do
  end subroutine zonal_flux_layer

  ! Newton refinement of the fluxes toward the target velocity. Binary64
  ! converges below the 1e-12 tolerance in a couple of iterations; binary32
  ! stalls at its rounding floor and runs to the cap (paper Fig. 6's
  ! 0.01-0.1x flux_adjust variants).
  subroutine zonal_flux_adjust(u3, h3, uh3, j, k)
    real(kind=8), dimension(:, :, :), intent(in) :: u3
    real(kind=8), dimension(:, :, :), intent(in) :: h3
    real(kind=8), dimension(:, :, :), intent(inout) :: uh3
    integer, intent(in) :: j
    integer, intent(in) :: k
    real(kind=8) :: uh_guess
    real(kind=8) :: duhdu
    real(kind=8) :: u_implied
    real(kind=8) :: err_u
    integer :: i
    integer :: itt
    do i = 2, ni - 1
      uh_guess = uh3(i, j, k)
      duhdu = 0.5 * (h3(i - 1, j, k) + h3(i, j, k))
      itt = 0
      do while (itt < max_itts)
        u_implied = uh_guess / (duhdu + h_neglect)
        err_u = u_implied - u3(i, j, k)
        if (abs(err_u) < tol_vel) exit
        uh_guess = uh_guess - relax_newton * err_u * (duhdu + h_neglect)
        itt = itt + 1
      end do
      uh3(i, j, k) = uh_guess
    end do
  end subroutine zonal_flux_adjust

  subroutine meridional_mass_flux(h3, v3, vh3, k)
    real(kind=8), dimension(:, :, :), intent(in) :: h3
    real(kind=8), dimension(:, :, :), intent(in) :: v3
    real(kind=8), dimension(:, :, :), intent(inout) :: vh3
    integer, intent(in) :: k
    real(kind=8) :: vh_guess
    real(kind=8) :: dvhdv
    real(kind=8) :: v_implied
    real(kind=8) :: err_v
    integer :: i
    integer :: j
    integer :: itt
    do i = 1, ni
      do j = 2, nj - 1
        g_w(j) = max((2.0 * h3(i, j - 1, k) + 5.0 * h3(i, j, k) - h3(i, j + 1, k)) / 6.0, 0.0)
        g_e(j) = max((-h3(i, j - 1, k) + 5.0 * h3(i, j, k) + 2.0 * h3(i, j + 1, k)) / 6.0, 0.0)
      end do
      do j = 2, nj - 1
        if (v3(i, j, k) >= 0.0) then
          vh3(i, j, k) = v3(i, j, k) * g_e(j - 1)
        else
          vh3(i, j, k) = v3(i, j, k) * g_w(j)
        end if
      end do
      do j = 2, nj - 1
        vh_guess = vh3(i, j, k)
        dvhdv = 0.5 * (h3(i, j - 1, k) + h3(i, j, k))
        itt = 0
        do while (itt < max_itts)
          v_implied = vh_guess / (dvhdv + h_neglect_v)
          err_v = v_implied - v3(i, j, k)
          if (abs(err_v) < tol_vel) exit
          vh_guess = vh_guess - relax_newton * err_v * (dvhdv + h_neglect_v)
          itt = itt + 1
        end do
        vh3(i, j, k) = vh_guess
      end do
    end do
  end subroutine meridional_mass_flux
end module mom_continuity_ppm

module mom_thermo
  use mom_grid
  implicit none
  real(kind=8) :: twork(ni, nj, nk)
contains
  ! Thermodynamics/EOS stand-in: transcendental-heavy, outside the hotspot,
  ! keeping continuity at the paper's ~9% CPU share.
  subroutine thermo_step()
    integer :: i
    integer :: j
    integer :: k
    integer :: m
    do k = 1, nk
      do j = 1, nj
        do i = 1, ni
          do m = 1, @NTHERMO@
            twork(i, j, k) = twork(i, j, k) * 0.97d0 &
                           + exp(-0.05d0 * dble(m)) * log(2.0d0 + h(i, j, k))
          end do
        end do
      end do
    end do
  end subroutine thermo_step
end module mom_thermo

module mom_model
  use mom_grid
  use mom_continuity_ppm
  use mom_thermo
  implicit none
contains
  subroutine setup_ocean()
    integer :: i
    integer :: j
    integer :: k
    dt = 0.02d0
    do k = 1, nk
      do j = 1, nj
        do i = 1, ni
          ! Wind-driven steady velocities; layered thickness with a vanished
          ! (h == 0) band in the top layer — the MOM6 hazard zone.
          u(i, j, k) = 0.5d0 * sin(6.2831853d0 * dble(i) / dble(ni)) &
                     + 0.1d0 * dble(k)
          v(i, j, k) = 0.3d0 * cos(6.2831853d0 * dble(j) / dble(nj))
          h(i, j, k) = 50.0d0 + 10.0d0 * dble(k) &
                     + 5.0d0 * sin(6.2831853d0 * dble(i + j) / dble(ni))
          if (k == nk) then
            if (i > ni / 2) then
              h(i, j, k) = 0.0d0
              u(i, j, k) = 0.0d0
              v(i, j, k) = 0.0d0
            end if
          end if
          ! A thin "strait" column in the top layer: its CFL number
          ! dominates the diagnostic, and its flux is carried almost
          ! entirely by the barotropic correction term.
          if (k == 1) then
            if (i == ni / 4) then
              h(i, j, k) = 0.02d0
              u(i, j, k) = 0.0d0
            end if
          end if
          uh(i, j, k) = 0.0d0
          vh(i, j, k) = 0.0d0
          twork(i, j, k) = 0.0d0
        end do
      end do
    end do
    call continuity_setup()
  end subroutine setup_ocean

  subroutine advance_thickness()
    integer :: i
    integer :: j
    integer :: k
    do k = 1, nk
      do j = 2, nj - 1
        do i = 2, ni - 1
          h(i, j, k) = h(i, j, k) - dt * ((uh(i, j, k) - uh(i - 1, j, k)) &
                     + (vh(i, j, k) - vh(i, j - 1, k)))
          h(i, j, k) = max(h(i, j, k), 0.0d0)
        end do
      end do
    end do
  end subroutine advance_thickness

  ! Per-step maximum CFL number — the regression quantity the paper's
  ! correctness metric is built on (§IV-A).
  subroutine record_cfl(step)
    integer, intent(in) :: step
    integer :: i
    integer :: j
    integer :: k
    real(kind=8) :: cfl
    real(kind=8) :: cfl_max
    cfl_max = 0.0d0
    do k = 1, nk
      do j = 1, nj
        do i = 1, ni
          cfl = abs(uh(i, j, k)) * dt / (h(i, j, k) + 1.0d-10)
          cfl_max = max(cfl_max, cfl)
        end do
      end do
    end do
    diag_cfl(step) = cfl_max + 1.0d-6
  end subroutine record_cfl

  subroutine run_model()
    integer :: step
    call setup_ocean()
    do step = 1, nsteps
      call continuity_ppm()
      call advance_thickness()
      call thermo_step()
      call record_cfl(step)
    end do
  end subroutine run_model
end module mom_model
)f";
  src = replace_all(std::move(src), "@NI@", std::to_string(options.ni));
  src = replace_all(std::move(src), "@NJ@", std::to_string(options.nj));
  src = replace_all(std::move(src), "@NK@", std::to_string(options.nk));
  src = replace_all(std::move(src), "@NSTEPS@", std::to_string(options.nsteps));
  src = replace_all(std::move(src), "@MAXITTS@", std::to_string(options.max_itts));
  src = replace_all(std::move(src), "@NTHERMO@", std::to_string(options.thermo_iters));
  return src;
}

tuner::TargetSpec mom6_target(const Mom6Options& options) {
  tuner::TargetSpec spec;
  spec.name = "MOM6";
  spec.source = mom6_source(options);
  spec.entry = "mom_model::run_model";
  spec.atom_scopes = {"mom_continuity_ppm"};
  spec.hotspot_procs = {"mom_continuity_ppm::continuity_ppm"};
  spec.figure6_procs = {
      "mom_continuity_ppm::zonal_mass_flux",
      "mom_continuity_ppm::ppm_reconstruction",
      "mom_continuity_ppm::zonal_flux_layer",
      "mom_continuity_ppm::zonal_flux_adjust",
      "mom_continuity_ppm::meridional_mass_flux",
  };
  // Correctness (§IV-A): max CFL per step, relative error per step, L2 over
  // time; threshold 0.25 per the domain expert.
  spec.series_fn = [](const sim::Vm& vm) {
    return vm.get_array("mom_grid::diag_cfl");
  };
  spec.series_group_size = 1;
  spec.error_threshold = 0.25;
  spec.noise_rsd = 0.09;  // 9% observed baseline RSD → n = 7 (§IV-A)
  spec.baseline_wall_seconds = 60.0;
  // MOM6 plus its FMS/netCDF dependency stack is notoriously slow to build;
  // each variant pays a full rebuild of the transformed module's dependents.
  spec.variant_build_seconds = 1500.0;
  spec.machine.mpi_ranks = 128;
  return spec;
}

}  // namespace prose::models
