#include "models/mpas.h"

#include "support/strings.h"

namespace prose::models {

std::string mpas_source(const MpasOptions& options) {
  std::string src = R"f(
module atm_state
  implicit none
  integer, parameter :: ncells = @NCELLS@
  integer, parameter :: nsteps = @NSTEPS@
  integer, parameter :: nlevels = @NLEV@
  ! Prognostic and reference state: produced by the double-precision
  ! preprocessing step, deliberately outside the tuned module (§IV-C). The
  ! work routines receive all of these as arguments every call, like the
  ! real model's many 3-D fields. The reference/geometry fields span the
  ! full column (ncells × nlevels) even though this single-level mini-core
  ! computes on level 1 — exactly the "data moved across the hotspot
  ! boundary but barely touched" hazard of §V criterion (3).
  real(kind=8) :: rho(ncells)
  real(kind=8) :: theta(ncells)
  real(kind=8) :: u(ncells)
  real(kind=8) :: w(ncells)
  real(kind=8) :: pres(ncells)
  real(kind=8) :: rho_base(ncells * nlevels)
  real(kind=8) :: theta_base(ncells * nlevels)
  real(kind=8) :: zgrid(ncells * nlevels)
  real(kind=8) :: fzm(ncells * nlevels)
  real(kind=8) :: fzp(ncells * nlevels)
  ! Per-step, per-cell kinetic-energy diagnostic for the correctness metric.
  real(kind=8) :: diag_ke(ncells * nsteps)
end module atm_state

module atm_time_integration
  use atm_state
  implicit none
  ! Work fields of the hotspot (search atoms).
  real(kind=8) :: tend_rho(ncells)
  real(kind=8) :: tend_theta(ncells)
  real(kind=8) :: tend_u(ncells)
  real(kind=8) :: rho_p(ncells)
  real(kind=8) :: u_p(ncells)
  ! Integration coefficients (search atoms).
  real(kind=8) :: dt_large
  real(kind=8) :: dts
  real(kind=8) :: cs2
  real(kind=8) :: epssm
  real(kind=8) :: rdnw
  real(kind=8) :: diff_coef
  real(kind=8) :: relax_base
  integer, parameter :: n_acoustic = @NSUB@
  integer, parameter :: n_rk_stages = 2
contains
  subroutine atm_setup_coefficients()
    dt_large = 0.04d0
    dts = 0.35d0
    cs2 = 0.3d0
    epssm = 0.1d0
    rdnw = 1.0d0
    diff_coef = 0.45d0
    relax_base = 0.01d0
    tend_rho = 0.0d0
    tend_theta = 0.0d0
    tend_u = 0.0d0
    rho_p = 0.0d0
    u_p = 0.0d0
  end subroutine atm_setup_coefficients

  subroutine atm_srk3_step()
    integer :: rk
    integer :: sub
    do rk = 1, n_rk_stages
      call atm_compute_dyn_tend_work(rho, theta, u, rho_base, theta_base, &
                                     tend_rho, tend_theta, tend_u)
      do sub = 1, n_acoustic
        call atm_advance_acoustic_step_work(rho_p, u_p, tend_rho, &
                                            w, pres, rho_base, theta_base, &
                                            zgrid, fzm, fzp)
      end do
    end do
    call atm_recover_large_step_variables_work(rho, theta, u, w, pres, &
                                               rho_p, u_p, &
                                               tend_rho, tend_theta, tend_u)
  end subroutine atm_srk3_step

  ! 4th-order centered transport flux (the paper's hot `flux` functions:
  ! small, pure, inlinable — until a wrapper intervenes).
  function flux4(q_im1, q_i, q_ip1, q_ip2, ua) result(fq)
    real(kind=8), intent(in) :: q_im1
    real(kind=8), intent(in) :: q_i
    real(kind=8), intent(in) :: q_ip1
    real(kind=8), intent(in) :: q_ip2
    real(kind=8), intent(in) :: ua
    real(kind=8) :: fq
    fq = ua * (7.0 * (q_i + q_ip1) - (q_im1 + q_ip2)) / 12.0
  end function flux4

  ! 3rd-order upwind-biased variant.
  function flux3(q_im1, q_i, q_ip1, q_ip2, ua) result(fq)
    real(kind=8), intent(in) :: q_im1
    real(kind=8), intent(in) :: q_i
    real(kind=8), intent(in) :: q_ip1
    real(kind=8), intent(in) :: q_ip2
    real(kind=8), intent(in) :: ua
    real(kind=8) :: fq
    fq = ua * (7.0 * (q_i + q_ip1) - (q_im1 + q_ip2)) / 12.0 &
       - abs(ua) * ((q_ip2 - q_im1) - 3.0 * (q_ip1 - q_i)) / 12.0
  end function flux3

  subroutine atm_compute_dyn_tend_work(rho_in, theta_in, u_in, rho_b, theta_b, &
                                       t_rho, t_theta, t_u)
    real(kind=8), dimension(:), intent(in) :: rho_in
    real(kind=8), dimension(:), intent(in) :: theta_in
    real(kind=8), dimension(:), intent(in) :: u_in
    real(kind=8), dimension(:), intent(in) :: rho_b
    real(kind=8), dimension(:), intent(in) :: theta_b
    real(kind=8), dimension(:), intent(out) :: t_rho
    real(kind=8), dimension(:), intent(out) :: t_theta
    real(kind=8), dimension(:), intent(out) :: t_u
    real(kind=8) :: ru_east
    real(kind=8) :: ru_west
    real(kind=8) :: flux_e
    real(kind=8) :: flux_w
    real(kind=8) :: flux_te
    real(kind=8) :: flux_tw
    real(kind=8) :: adv_u
    real(kind=8) :: lap
    integer :: i
    do i = 3, ncells - 2
      ru_east = 0.5 * (u_in(i) + u_in(i + 1))
      ru_west = 0.5 * (u_in(i - 1) + u_in(i))
      flux_e = flux4(rho_in(i - 1), rho_in(i), rho_in(i + 1), rho_in(i + 2), ru_east)
      flux_w = flux4(rho_in(i - 2), rho_in(i - 1), rho_in(i), rho_in(i + 1), ru_west)
      lap = rho_in(i - 1) - 2.0 * rho_in(i) + rho_in(i + 1)
      t_rho(i) = -(flux_e - flux_w) * rdnw + diff_coef * lap &
               + relax_base * (rho_b(i) - rho_in(i))
      flux_te = flux3(theta_in(i - 1), theta_in(i), theta_in(i + 1), theta_in(i + 2), ru_east)
      flux_tw = flux3(theta_in(i - 2), theta_in(i - 1), theta_in(i), theta_in(i + 1), ru_west)
      lap = theta_in(i - 1) - 2.0 * theta_in(i) + theta_in(i + 1)
      t_theta(i) = -(flux_te - flux_tw) * rdnw + diff_coef * lap &
                 + relax_base * (theta_b(i) - theta_in(i))
      adv_u = u_in(i) * (u_in(i + 1) - u_in(i - 1)) * 0.5
      lap = u_in(i - 1) - 2.0 * u_in(i) + u_in(i + 1)
      t_u(i) = -adv_u * rdnw + diff_coef * lap
    end do
    do i = 1, 2
      t_rho(i) = 0.0
      t_theta(i) = 0.0
      t_u(i) = 0.0
      t_rho(ncells + 1 - i) = 0.0
      t_theta(ncells + 1 - i) = 0.0
      t_u(ncells + 1 - i) = 0.0
    end do
  end subroutine atm_compute_dyn_tend_work

  ! One acoustic/fast-wave substep. Called at high frequency with the full
  ! state argument list — cheap per call, heavy on data flow across the
  ! procedure boundary (the §IV-C criterion-3 hazard).
  subroutine atm_advance_acoustic_step_work(rp, up, t_rho, w_in, pres_in, &
                                            rho_b, theta_b, zgrid_in, fzm_in, fzp_in)
    real(kind=8), dimension(:), intent(inout) :: rp
    real(kind=8), dimension(:), intent(inout) :: up
    real(kind=8), dimension(:), intent(in) :: t_rho
    real(kind=8), dimension(:), intent(in) :: w_in
    real(kind=8), dimension(:), intent(in) :: pres_in
    real(kind=8), dimension(:), intent(in) :: rho_b
    real(kind=8), dimension(:), intent(in) :: theta_b
    real(kind=8), dimension(:), intent(in) :: zgrid_in
    real(kind=8), dimension(:), intent(in) :: fzm_in
    real(kind=8), dimension(:), intent(in) :: fzp_in
    integer :: i
    ! rho_b/theta_b/zgrid_in/fzm_in/fzp_in are part of the standard work-
    ! routine interface; this substep only reads the pressure and vertical
    ! velocity (interface-compatibility arguments are common in the real
    ! model's work routines — and they still cross the precision boundary).
    do i = 2, ncells - 1
      up(i) = 0.99 * up(i) - dts * cs2 * (rp(i + 1) - rp(i - 1)) * 0.5 &
            - dts * 0.002 * (pres_in(i + 1) - pres_in(i - 1))
    end do
    do i = 2, ncells - 1
      rp(i) = 0.99 * rp(i) - dts * (up(i + 1) - up(i - 1)) * 0.5 &
            + dts * t_rho(i) * 0.25 + dts * 0.0005 * w_in(i)
    end do
  end subroutine atm_advance_acoustic_step_work

  subroutine atm_recover_large_step_variables_work(rho_io, theta_io, u_io, &
                                                   w_io, pres_io, rp, up, &
                                                   t_rho, t_theta, t_u)
    real(kind=8), dimension(:), intent(inout) :: rho_io
    real(kind=8), dimension(:), intent(inout) :: theta_io
    real(kind=8), dimension(:), intent(inout) :: u_io
    real(kind=8), dimension(:), intent(inout) :: w_io
    real(kind=8), dimension(:), intent(inout) :: pres_io
    real(kind=8), dimension(:), intent(in) :: rp
    real(kind=8), dimension(:), intent(in) :: up
    real(kind=8), dimension(:), intent(in) :: t_rho
    real(kind=8), dimension(:), intent(in) :: t_theta
    real(kind=8), dimension(:), intent(in) :: t_u
    integer :: i
    do i = 3, ncells - 2
      rho_io(i) = rho_io(i) + dt_large * t_rho(i) + epssm * rp(i)
      theta_io(i) = theta_io(i) + dt_large * t_theta(i)
      u_io(i) = u_io(i) + dt_large * t_u(i) + epssm * up(i)
      w_io(i) = 0.999 * w_io(i) + 0.001 * up(i)
      pres_io(i) = pres_io(i) + 0.05 * t_rho(i)
    end do
  end subroutine atm_recover_large_step_variables_work
end module atm_time_integration

module atm_physics
  use atm_state
  implicit none
  real(kind=8) :: pwork(ncells)
contains
  ! Column physics stand-in: transcendental-heavy, scalar (non-vectorizable
  ! reduction over k), outside the tuned hotspot. Keeps the hotspot at the
  ! paper's ~15% CPU-time share.
  subroutine physics_step()
    integer :: i
    integer :: k
    do i = 1, ncells
      do k = 1, @NPHYS@
        pwork(i) = pwork(i) * 0.98d0 &
                 + exp(-0.08d0 * dble(k)) * log(1.0d0 + theta(i) * 1.0d-3)
      end do
    end do
  end subroutine physics_step
end module atm_physics

module mpas_model
  use atm_state
  use atm_time_integration
  use atm_physics
  implicit none
contains
  ! Offline preprocessing: generates the (double-precision) input state —
  ! the paper's point that the 32-bit *build* converts inputs up front while
  ! a tuned hotspot pays conversion at every call.
  subroutine preprocess()
    integer :: i
    do i = 1, ncells
      rho(i) = 1.0d0 + 0.1d0 * cos(6.2831853071796d0 * dble(i) / dble(ncells))
      theta(i) = 300.0d0 + 10.0d0 * sin(6.2831853071796d0 * dble(i) / dble(ncells))
      u(i) = 0.4d0 + 8.0d0 * sin(12.566370614359d0 * dble(i) / dble(ncells))
      w(i) = 0.1d0 * sin(6.2831853071796d0 * dble(i) / dble(ncells))
      pres(i) = 100.0d0 + 5.0d0 * cos(6.2831853071796d0 * dble(i) / dble(ncells))
      pwork(i) = 0.0d0
    end do
    do i = 1, ncells * nlevels
      rho_base(i) = 1.0d0
      theta_base(i) = 300.0d0
      zgrid(i) = dble(i) * 250.0d0
      fzm(i) = 0.5d0
      fzp(i) = 0.5d0
    end do
    call atm_setup_coefficients()
  end subroutine preprocess

  subroutine run_model()
    integer :: step
    integer :: i
    call preprocess()
    do step = 1, nsteps
      call atm_srk3_step()
      call physics_step()
      do i = 1, ncells
        diag_ke((step - 1) * ncells + i) = 0.5d0 * rho(i) * u(i) * u(i)
      end do
    end do
  end subroutine run_model
end module mpas_model
)f";
  src = replace_all(std::move(src), "@NCELLS@", std::to_string(options.ncells));
  src = replace_all(std::move(src), "@NSTEPS@", std::to_string(options.nsteps));
  src = replace_all(std::move(src), "@NLEV@", std::to_string(options.nlevels));
  src = replace_all(std::move(src), "@NSUB@", std::to_string(options.acoustic_substeps));
  src = replace_all(std::move(src), "@NPHYS@", std::to_string(options.physics_iters));
  return src;
}

namespace {

tuner::TargetSpec base_spec(const MpasOptions& options) {
  tuner::TargetSpec spec;
  spec.name = "MPAS-A";
  spec.source = mpas_source(options);
  spec.entry = "mpas_model::run_model";
  spec.atom_scopes = {"atm_time_integration"};
  spec.hotspot_procs = {
      "atm_time_integration::atm_compute_dyn_tend_work",
      "atm_time_integration::atm_advance_acoustic_step_work",
      "atm_time_integration::atm_recover_large_step_variables_work",
  };
  spec.figure6_procs = {
      "atm_time_integration::atm_compute_dyn_tend_work",
      "atm_time_integration::atm_advance_acoustic_step_work",
      "atm_time_integration::atm_recover_large_step_variables_work",
      "atm_time_integration::flux4",
      "atm_time_integration::flux3",
  };
  // Correctness (§IV-A): KE at each cell, max relative error across cells
  // per step, L2 norm over time. The series is grouped per timestep.
  spec.series_fn = [](const sim::Vm& vm) {
    return vm.get_array("atm_state::diag_ke");
  };
  spec.series_group_size = static_cast<std::size_t>(options.ncells);
  // Threshold: the paper sets it to the error of the developer-provided
  // single-precision build under the same metric; use
  // models::with_uniform32_threshold to recalibrate for non-default scales.
  // This constant is the measured uniform-32 error at the default scale
  // (pinned by the models test suite).
  spec.error_threshold = kDefaultMpasThreshold;
  spec.noise_rsd = 0.01;  // 1% observed baseline RSD → n = 1
  spec.baseline_wall_seconds = 90.0;
  spec.variant_build_seconds = 300.0;
  spec.machine.mpi_ranks = 64;
  return spec;
}

}  // namespace

tuner::TargetSpec mpas_target(const MpasOptions& options) {
  tuner::TargetSpec spec = base_spec(options);
  spec.measure_whole_model = options.whole_model_metric;
  return spec;
}

tuner::TargetSpec mpas_whole_model_target(MpasOptions options) {
  options.whole_model_metric = true;
  return mpas_target(options);
}

}  // namespace prose::models
