// Shared helpers for the model targets.
#pragma once

#include "tuner/evaluator.h"
#include "tuner/target.h"

namespace prose::models {

/// Error of the uniform 32-bit configuration under the spec's own metric
/// (the paper calibrates the MPAS-A threshold as exactly this quantity:
/// the relative error between the developer-provided double- and
/// single-precision builds).
StatusOr<double> uniform32_error(const tuner::TargetSpec& spec);

/// Returns the spec with error_threshold set to the uniform-32 error times
/// `headroom`. Fails if the uniform-32 build itself faults.
StatusOr<tuner::TargetSpec> with_uniform32_threshold(tuner::TargetSpec spec,
                                                     double headroom = 1.0);

}  // namespace prose::models
