// Miniature ADCIRC ocean model with the ITPACK `itpackv` solver hotspot
// (paper §IV-A/§IV-B).
//
// Structure mirrors the tuning-relevant facts of the real target:
//   * a tidal time loop whose per-step cost is dominated by transcendental
//     right-hand-side assembly outside the targeted module (~88% of CPU);
//   * `itpackv` holds a Jacobi-preconditioned conjugate-gradient solve
//     (`jcg` driver, `pjac` preconditioner, `peror` norm) over a tridiagonal
//     SPD system in physical units:
//       - `pjac`'s forward sweep carries a loop dependence → never
//         vectorizes → little to gain from 32-bit (paper Fig. 6);
//       - `peror` (and the CG dot products) reduce across 128 simulated MPI
//         ranks → allreduce-dominated → no vectorization speedup;
//       - `jcg` owns `spectral_est = 1 - 4e-9`, an adaptive acceleration
//         estimate: in 32-bit it rounds to exactly 1, zeroing the
//         acceleration factor; the stagnation guard then bails out of the
//         solve after two iterations — the paper's "single parameter that
//         must remain in 64-bit; otherwise control flow substantially
//         changes" (fast and badly wrong);
//       - a condition-estimate probe divides a large physical-unit scale by
//         the shrinking relative residual: with both operands lowered it
//         overflows binary32 mid-convergence, giving the Table II runtime
//         -error class.
//   * correctness follows the paper: the maximum water-surface elevation at
//     each node over the run, relative errors L2-normed across the grid,
//     threshold 0.1.
#pragma once

#include "tuner/target.h"

namespace prose::models {

struct AdcircOptions {
  int nnodes = 160;
  int nsteps = 24;
  /// Tidal harmonics per node in the (untargeted) assembly step — tunes the
  /// hotspot's CPU share toward the paper's ~12%.
  int harmonics = 450;
  int solver_itmax = 60;
};

std::string adcirc_source(const AdcircOptions& options = {});
tuner::TargetSpec adcirc_target(const AdcircOptions& options = {});

}  // namespace prose::models
