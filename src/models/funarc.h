// The funarc motivating example (paper §II-B).
//
// Computes the arc length of x + Σ_k sin(2^k x)/2^k over [0, π] with a
// hard-coded workload. Eight search atoms (five in `funarc`, three in `fun`),
// the output variable excluded — a 2^8 = 256-variant space small enough for
// the brute-force sweep behind Figure 2.
#pragma once

#include "tuner/target.h"

namespace prose::models {

struct FunarcOptions {
  int intervals = 1000;  // integration intervals (the paper's n)
};

/// The Fortran-subset source of the funarc program.
std::string funarc_source(const FunarcOptions& options = {});

/// Tuning-target spec: whole-program timing, relative error of the final
/// arc length, threshold 4e-4 (the paper's Figure 2 running example).
tuner::TargetSpec funarc_target(const FunarcOptions& options = {});

}  // namespace prose::models
