#include "models/adcirc.h"

#include "support/strings.h"

namespace prose::models {

std::string adcirc_source(const AdcircOptions& options) {
  std::string src = R"f(
module adcirc_mesh
  implicit none
  integer, parameter :: nnodes = @NNODES@
  integer, parameter :: nsteps = @NSTEPS@
  integer, parameter :: nharm = @NHARM@
  ! State in physical units (meters, seconds); forcing amplitudes are large.
  real(kind=8) :: eta(nnodes)
  real(kind=8) :: etamax(nnodes)
  real(kind=8) :: rhs(nnodes)
  real(kind=8) :: depth(nnodes)
end module adcirc_mesh

module itpackv
  use adcirc_mesh
  implicit none
  ! Solver workspace, including the assembled GWCE matrix the caller fills
  ! in (ITPACK owns its workspace arrays — they are search atoms).
  real(kind=8) :: mat_diag(nnodes)
  real(kind=8) :: mat_off(nnodes)
  ! Solver work vectors and parameters (search atoms).
  real(kind=8) :: p_dir(nnodes)
  real(kind=8) :: ap(nnodes)
  real(kind=8) :: resid(nnodes)
  real(kind=8) :: z_prec(nnodes)
  real(kind=8) :: rz_acc
  real(kind=8) :: rz_old
  real(kind=8) :: pap_acc
  real(kind=8) :: alpha_cg
  real(kind=8) :: beta_cg
  real(kind=8) :: bnorm2
  real(kind=8) :: resid2
  real(kind=8) :: diag_cond
  ! Physical-unit scale of the condition probe (a constant of the
  ! formulation, not a tunable variable).
  real(kind=8), parameter :: probe_scale = 1.0d36
  integer, parameter :: itmax = @ITMAX@
contains
  ! The hotspot driver: Jacobi-preconditioned CG with ITPACK-style adaptive
  ! acceleration and stagnation detection. The adaptive parameters live here,
  ! in the driver — the paper's observation that jcg "defines the key
  ! parameters" of the solve.
  subroutine jcg(x, b)
    real(kind=8) :: spectral_est
    real(kind=8) :: cond_probe
    real(kind=8), dimension(:), intent(inout) :: x
    real(kind=8), dimension(:), intent(in) :: b
    real(kind=8) :: gamma_accel
    real(kind=8) :: zeta
    real(kind=8) :: stag_guard
    real(kind=8) :: resid2_rel
    integer :: iter
    integer :: i
    ! Adaptive acceleration: the Jacobi iteration matrix's spectral radius
    ! estimate sits within 4e-9 of 1 for this mesh. In binary32 the estimate
    ! rounds to exactly 1 and the acceleration factor collapses to zero.
    spectral_est = 1.0d0 - 4.0d-9
    gamma_accel = (1.0d0 - spectral_est) * 2.5d8
    zeta = 1.0d-12
    stag_guard = 1.0d-14

    call amult(x, ap)
    do i = 1, nnodes
      resid(i) = b(i) - ap(i)
    end do
    call pjac(z_prec, resid)
    do i = 1, nnodes
      p_dir(i) = z_prec(i)
    end do
    rz_acc = dotp(resid, z_prec)
    bnorm2 = peror(b)
    rz_old = -1.0d0

    do iter = 1, itmax
      call amult(p_dir, ap)
      pap_acc = dotp(p_dir, ap)
      if (pap_acc <= 0.0d0) exit
      alpha_cg = gamma_accel * rz_acc / pap_acc
      do i = 1, nnodes
        x(i) = x(i) + alpha_cg * p_dir(i)
      end do
      do i = 1, nnodes
        resid(i) = resid(i) - alpha_cg * ap(i)
      end do
      call pjac(z_prec, resid)
      rz_old = rz_acc
      rz_acc = dotp(resid, z_prec)
      resid2 = peror(resid)
      resid2_rel = resid2 / bnorm2
      if (resid2_rel < zeta) exit
      if (abs(rz_old - rz_acc) <= stag_guard * abs(rz_acc) + 1.0d-300) exit
      ! Condition-estimate probe in physical units: overflows binary32 once
      ! the relative residual has shrunk a few orders of magnitude.
      cond_probe = probe_scale / resid2_rel
      diag_cond = diag_cond + log(cond_probe) * 1.0d-3
      beta_cg = rz_acc / rz_old
      do i = 1, nnodes
        p_dir(i) = z_prec(i) + beta_cg * p_dir(i)
      end do
    end do
  end subroutine jcg

  ! Tridiagonal SPD matrix-vector product (vectorizable).
  subroutine amult(v, av)
    real(kind=8), dimension(:), intent(in) :: v
    real(kind=8), dimension(:), intent(out) :: av
    integer :: i
    av(1) = mat_diag(1) * v(1) + mat_off(1) * v(2)
    do i = 2, nnodes - 1
      av(i) = mat_diag(i) * v(i) + mat_off(i - 1) * v(i - 1) + mat_off(i) * v(i + 1)
    end do
    av(nnodes) = mat_diag(nnodes) * v(nnodes) + mat_off(nnodes - 1) * v(nnodes - 1)
  end subroutine amult

  ! Symmetric Gauss-Seidel preconditioner M = (D+L) D^-1 (D+U): both sweeps
  ! carry loop dependences that defeat vectorization (paper §IV-B, Fig. 6).
  subroutine pjac(z, r)
    real(kind=8), dimension(:), intent(out) :: z
    real(kind=8), dimension(:), intent(in) :: r
    integer :: i
    z(1) = r(1) / mat_diag(1)
    do i = 2, nnodes
      z(i) = (r(i) - mat_off(i - 1) * z(i - 1)) / mat_diag(i)
    end do
    do i = 1, nnodes
      z(i) = z(i) * mat_diag(i)
    end do
    z(nnodes) = z(nnodes) / mat_diag(nnodes)
    do i = nnodes - 1, 1, -1
      z(i) = (z(i) - mat_off(i) * z(i + 1)) / mat_diag(i)
    end do
  end subroutine pjac

  ! Global residual norm: local reduction + MPI allreduce across the 128
  ! simulated ranks — the collective dominates (paper §IV-B).
  function peror(v) result(norm2)
    real(kind=8), dimension(:), intent(in) :: v
    real(kind=8) :: norm2
    real(kind=8) :: local_sum
    integer :: i
    local_sum = 0.0d0
    do i = 1, nnodes
      local_sum = local_sum + v(i) * v(i)
    end do
    norm2 = mpi_allreduce_sum(local_sum)
  end function peror

  ! Distributed dot product (also a collective).
  function dotp(a, b) result(d)
    real(kind=8), dimension(:), intent(in) :: a
    real(kind=8), dimension(:), intent(in) :: b
    real(kind=8) :: d
    real(kind=8) :: local_sum
    integer :: i
    local_sum = 0.0d0
    do i = 1, nnodes
      local_sum = local_sum + a(i) * b(i)
    end do
    d = mpi_allreduce_sum(local_sum)
  end function dotp
end module itpackv

module adcirc_model
  use adcirc_mesh
  use itpackv
  implicit none
contains
  subroutine setup_mesh()
    integer :: i
    do i = 1, nnodes
      depth(i) = 20.0d0 + 15.0d0 * sin(3.14159265358979d0 * dble(i) / dble(nnodes))
      mat_diag(i) = 4.0d0 + depth(i) * 0.1d0
      mat_off(i) = -1.0d0
      eta(i) = 0.0d0
      etamax(i) = -1.0d30
    end do
    diag_cond = 0.0d0
  end subroutine setup_mesh

  ! GWCE right-hand-side assembly: tidal harmonic forcing plus nonlinear
  ! terms. Outside the targeted module; consumes most of the CPU time.
  subroutine assemble_rhs(step)
    integer, intent(in) :: step
    integer :: i
    integer :: m
    real(kind=8) :: t_now
    real(kind=8) :: force
    t_now = dble(step) * 300.0d0
    do i = 1, nnodes
      force = 0.0d0
      do m = 1, nharm
        force = force + cos(1.4d-4 * dble(m) * t_now + 0.3d0 * dble(m) * dble(i)) &
                        / (1.0d0 + 0.2d0 * dble(m))
      end do
      rhs(i) = 4.0d0 * force + 0.02d0 * eta(i) * abs(eta(i)) / depth(i)
    end do
  end subroutine assemble_rhs

  subroutine run_model()
    integer :: step
    integer :: i
    call setup_mesh()
    do step = 1, nsteps
      call assemble_rhs(step)
      call jcg(eta, rhs)
      do i = 1, nnodes
        etamax(i) = max(etamax(i), eta(i))
      end do
    end do
  end subroutine run_model
end module adcirc_model
)f";
  src = replace_all(std::move(src), "@NNODES@", std::to_string(options.nnodes));
  src = replace_all(std::move(src), "@NSTEPS@", std::to_string(options.nsteps));
  src = replace_all(std::move(src), "@NHARM@", std::to_string(options.harmonics));
  src = replace_all(std::move(src), "@ITMAX@", std::to_string(options.solver_itmax));
  return src;
}

tuner::TargetSpec adcirc_target(const AdcircOptions& options) {
  tuner::TargetSpec spec;
  spec.name = "ADCIRC";
  spec.source = adcirc_source(options);
  spec.entry = "adcirc_model::run_model";
  spec.atom_scopes = {"itpackv"};
  spec.hotspot_procs = {"itpackv::jcg"};
  spec.figure6_procs = {"itpackv::jcg", "itpackv::pjac", "itpackv::peror",
                        "itpackv::amult", "itpackv::dotp"};
  // Correctness (§IV-A): most extreme water-surface elevation at each node
  // over the simulation; L2 of the per-node relative errors across the grid.
  spec.series_fn = [](const sim::Vm& vm) {
    return vm.get_array("adcirc_mesh::etamax");
  };
  spec.series_group_size = 1;
  spec.error_threshold = 0.1;  // the domain expert's threshold (§IV-A)
  spec.noise_rsd = 0.01;       // 1% observed baseline RSD → n = 1
  spec.baseline_wall_seconds = 200.0;
  spec.variant_build_seconds = 240.0;
  spec.machine.mpi_ranks = 128;
  return spec;
}

}  // namespace prose::models
