// Miniature MPAS-A atmosphere model (paper §IV-A/§IV-B/§IV-C).
//
// Reproduces the tuning-relevant structure of the targeted
// `atm_time_integration` hotspot at reduced scale:
//   * three work routines — `atm_compute_dyn_tend_work` (advection tendencies
//     built from high-call-volume `flux4`/`flux3` functions),
//     `atm_advance_acoustic_step_work` (sub-stepped acoustic updates), and
//     `atm_recover_large_step_variables_work` (state recovery) — all invoked
//     per timestep with the prognostic state passed as arguments;
//   * the prognostic state (rho/theta/u) lives *outside* the targeted module
//     and is produced by a double-precision preprocessing step, so lowering
//     the hotspot's dummies routes the state through casting wrappers on
//     every call — the §IV-C whole-model slowdown mechanism;
//   * a transcendental-heavy physics step outside the hotspot keeps the
//     hotspot at roughly the paper's ~15% share of CPU time;
//   * correctness follows the paper: per-cell kinetic energy each timestep,
//     max relative error across cells per step, L2 norm over time.
#pragma once

#include "tuner/target.h"

namespace prose::models {

/// The KE-metric error of the single-precision build at the default scale.
/// The paper sets the threshold to the single-precision model's error; for
/// this mini-model the hotspot-only uniform-32 variant measures 1.63e-4
/// under the same metric, and (as in the paper, where 56% of variants
/// failed) the threshold sits below it, so the search must find mixed
/// variants more accurate than uniform 32-bit. Pinned by the models tests.
inline constexpr double kDefaultMpasThreshold = 8.0e-5;

struct MpasOptions {
  int ncells = 60;
  int nsteps = 24;
  /// Iterations of the per-cell physics loop (tunes the hotspot CPU share).
  int physics_iters = 48;
  /// Acoustic sub-steps per large step (each an individual hotspot call).
  int acoustic_substeps = 10;
  /// Column depth of the reference/geometry fields crossing the hotspot
  /// boundary (the compute itself is single-level).
  int nlevels = 12;
  /// Measure whole-model wall time instead of hotspot CPU time (§IV-C /
  /// Figure 7 mode).
  bool whole_model_metric = false;
};

std::string mpas_source(const MpasOptions& options = {});

/// The hotspot-guided tuning target (Figures 5/6, Tables I/II).
tuner::TargetSpec mpas_target(const MpasOptions& options = {});

/// The whole-model-guided target (Figure 7) — same model, wall-time metric.
tuner::TargetSpec mpas_whole_model_target(MpasOptions options = {});

}  // namespace prose::models
