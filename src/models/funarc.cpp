#include "models/funarc.h"

#include "support/strings.h"

namespace prose::models {

std::string funarc_source(const FunarcOptions& options) {
  return replace_all(R"f(
module funarc_mod
  implicit none
  integer, parameter :: n_intervals = @N@
  real(kind=8) :: result_value
contains
  subroutine funarc()
    real(kind=8) :: s1
    real(kind=8) :: h
    real(kind=8) :: t1
    real(kind=8) :: t2
    real(kind=8) :: dppi
    integer :: i
    dppi = 3.141592653589793d0
    s1 = 0.0d0
    t1 = 0.0d0
    h = dppi / dble(n_intervals)
    do i = 1, n_intervals
      ! real(i) has default kind: the abscissa follows h's precision, as in
      ! the original C funarc where i*h inherits the type of h.
      t2 = fun(real(i) * h)
      s1 = s1 + sqrt(h * h + (t2 - t1) * (t2 - t1))
      t1 = t2
    end do
    result_value = s1
  end subroutine funarc

  function fun(x) result(t1)
    real(kind=8), intent(in) :: x
    real(kind=8) :: t1
    real(kind=8) :: d1
    integer :: k
    d1 = 1.0d0
    t1 = x
    do k = 1, 5
      d1 = d1 * 2.0d0
      t1 = t1 + sin(d1 * x) / d1
    end do
  end function fun
end module funarc_mod
)f",
                     "@N@", std::to_string(options.intervals));
}

tuner::TargetSpec funarc_target(const FunarcOptions& options) {
  tuner::TargetSpec spec;
  spec.name = "funarc";
  spec.source = funarc_source(options);
  spec.entry = "funarc_mod::funarc";
  spec.atom_scopes = {"funarc_mod"};
  spec.exclude_atoms = {"funarc_mod::result_value"};
  spec.hotspot_procs = {"funarc_mod::funarc"};
  spec.figure6_procs = {"funarc_mod::funarc", "funarc_mod::fun"};
  // funarc is timed as a whole program (it *is* the program).
  spec.measure_whole_model = true;
  spec.metric = [](const sim::Vm& vm) {
    return vm.get_scalar("funarc_mod::result_value");
  };
  // The paper's running example uses a 4e-4 budget at its workload size; at
  // our n=1000 the uniform-32 error is ~2.4e-7 and the keep-s1 frontier
  // variant ~2.2e-8 (11x less, vs the paper's 4.5x). The threshold sits
  // between the two so the same frontier selection story plays out.
  spec.error_threshold = 1.0e-7;
  spec.noise_rsd = 0.0;  // a hard-coded kernel: effectively deterministic
  spec.baseline_wall_seconds = 2.0;
  spec.variant_build_seconds = 5.0;
  return spec;
}

}  // namespace prose::models
