#include "support/trace.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace prose::trace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON syntax validator
// ---------------------------------------------------------------------------

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : p_(text.data()), end_(text.data() + text.size()) {}

  bool check(std::string* error) {
    if (!value(0)) {
      if (error != nullptr) *error = error_;
      return false;
    }
    skip_ws();
    if (p_ != end_) {
      if (error != nullptr) *error = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }

  bool fail(const char* what) {
    error_ = what;
    return false;
  }

  bool literal(std::string_view word) {
    if (static_cast<std::size_t>(end_ - p_) < word.size() ||
        std::string_view(p_, word.size()) != word) {
      return fail("invalid literal");
    }
    p_ += word.size();
    return true;
  }

  bool string() {
    if (p_ == end_ || *p_ != '"') return fail("expected string");
    ++p_;
    while (p_ != end_ && *p_ != '"') {
      if (static_cast<unsigned char>(*p_) < 0x20) return fail("raw control character in string");
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return fail("truncated escape");
        const char e = *p_;
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p_;
            if (p_ == end_ || std::isxdigit(static_cast<unsigned char>(*p_)) == 0) {
              return fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape character");
        }
      }
      ++p_;
    }
    if (p_ == end_) return fail("unterminated string");
    ++p_;  // closing quote
    return true;
  }

  bool number() {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    if (p_ == end_ || std::isdigit(static_cast<unsigned char>(*p_)) == 0) {
      return fail("expected digit");
    }
    while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_)) != 0) ++p_;
    if (p_ != end_ && *p_ == '.') {
      ++p_;
      if (p_ == end_ || std::isdigit(static_cast<unsigned char>(*p_)) == 0) {
        return fail("expected fraction digits");
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_)) != 0) ++p_;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ == end_ || std::isdigit(static_cast<unsigned char>(*p_)) == 0) {
        return fail("expected exponent digits");
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_)) != 0) ++p_;
    }
    return p_ != start;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (p_ == end_) return fail("unexpected end of input");
    switch (*p_) {
      case '{': {
        ++p_;
        skip_ws();
        if (p_ != end_ && *p_ == '}') { ++p_; return true; }
        while (true) {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (p_ == end_ || *p_ != ':') return fail("expected ':'");
          ++p_;
          if (!value(depth + 1)) return false;
          skip_ws();
          if (p_ != end_ && *p_ == ',') { ++p_; continue; }
          if (p_ != end_ && *p_ == '}') { ++p_; return true; }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++p_;
        skip_ws();
        if (p_ != end_ && *p_ == ']') { ++p_; return true; }
        while (true) {
          if (!value(depth + 1)) return false;
          skip_ws();
          if (p_ != end_ && *p_ == ',') { ++p_; continue; }
          if (p_ != end_ && *p_ == ']') { ++p_; return true; }
          return fail("expected ',' or ']'");
        }
      }
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const char* p_;
  const char* end_;
  std::string error_;
};

/// Fixed-format double for timestamps/durations (stable across platforms,
/// unlike the default ostream formatting).
std::string fmt_us(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string fmt_value(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

bool validate_json(std::string_view text, std::string* error) {
  return JsonChecker(text).check(error);
}

std::string TraceContext::trace_hex() const {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(trace_id_hi),
                static_cast<unsigned long long>(trace_id_lo));
  return buf;
}

std::string AttrValue::to_json() const {
  switch (kind_) {
    case Kind::kString: return '"' + json_escape(str_) + '"';
    case Kind::kDouble: return fmt_value(num_);
    case Kind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%" PRId64, int_);
      return buf;
    }
    case Kind::kBool: return int_ != 0 ? "true" : "false";
  }
  return "null";
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer::Tracer(const TraceOptions& options) : options_(options) {
  if (!options_.enabled()) return;
  if (!options_.jsonl_path.empty()) {
    jsonl_.open(options_.jsonl_path, std::ios::out | std::ios::trunc);
    if (!jsonl_) {
      error_ = Status(StatusCode::kInvalidArgument,
                      "cannot open trace JSONL file '" + options_.jsonl_path + "'");
      return;
    }
  }
  if (!options_.chrome_path.empty()) {
    // The Chrome export is only written at flush(); probe the path eagerly so
    // an unwritable sink fails at campaign start, not after hours of work.
    std::ofstream probe(options_.chrome_path, std::ios::out | std::ios::trunc);
    if (!probe) {
      error_ = Status(StatusCode::kInvalidArgument,
                      "cannot open trace file '" + options_.chrome_path + "'");
      return;
    }
  }
  epoch_ = std::chrono::steady_clock::now();
  enabled_ = true;
}

Tracer::~Tracer() { (void)flush(); }

double Tracer::now_us() const {
  if (!enabled_) return 0.0;
  const auto d = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(d).count();
}

void Tracer::emit(std::string_view name, char phase, Track track, double ts_us,
                  double dur_us, const Attrs& attrs, bool has_value, double value,
                  bool has_id, std::uint64_t id) {
  if (!enabled_) return;
  std::string ev;
  ev.reserve(128);
  ev += "{\"name\":\"";
  ev += json_escape(name);
  ev += "\",\"cat\":\"prose\",\"ph\":\"";
  ev += phase;
  ev += "\",\"ts\":";
  ev += fmt_us(ts_us);
  if (phase == 'X') {
    ev += ",\"dur\":";
    ev += fmt_us(dur_us);
  }
  if (phase == 'i') ev += ",\"s\":\"t\"";
  if (has_id) {
    char idbuf[32];
    std::snprintf(idbuf, sizeof idbuf, "0x%llx",
                  static_cast<unsigned long long>(id));
    ev += ",\"id\":\"";
    ev += idbuf;
    ev += '"';
  }
  if (phase == 'f') ev += ",\"bp\":\"e\"";
  ev += ",\"pid\":";
  ev += std::to_string(track.pid);
  ev += ",\"tid\":";
  ev += std::to_string(track.tid);
  if (has_value || !attrs.empty()) {
    ev += ",\"args\":{";
    bool first = true;
    if (has_value) {
      ev += "\"value\":";
      ev += fmt_value(value);
      first = false;
    }
    for (const Attr& a : attrs) {
      if (!first) ev += ',';
      first = false;
      ev += '"';
      ev += json_escape(a.key);
      ev += "\":";
      ev += a.value.to_json();
    }
    ev += '}';
  }
  ev += '}';

  if (metrics_.events != nullptr) metrics_.events->inc();
  std::lock_guard lock(mu_);
  if (jsonl_.is_open()) {
    jsonl_ << ev << '\n';
    if (!jsonl_) {
      // Degrade, don't fail: a campaign is worth more than its timeline.
      // Warn once, record the error for the summary, and stop writing so
      // every later emit isn't a failing syscall. (Open failures, by
      // contrast, still fail the campaign up front — see the constructor.)
      const Status failure(StatusCode::kInvalidArgument,
                           "write failed on trace JSONL file '" +
                               options_.jsonl_path + "'");
      if (error_.is_ok()) error_ = failure;
      if (metrics_.write_errors != nullptr) metrics_.write_errors->inc();
      std::fprintf(stderr,
                   "warning: %s — campaign continues; timeline will be "
                   "incomplete\n",
                   failure.to_string().c_str());
      jsonl_.close();
    }
  }
  if (!options_.chrome_path.empty()) chrome_events_.push_back(std::move(ev));
}

void Tracer::set_process_name(int pid, std::string_view name) {
  if (!enabled_ || options_.chrome_path.empty()) return;
  std::lock_guard lock(mu_);
  chrome_events_.push_back("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
                           std::to_string(pid) + ",\"args\":{\"name\":\"" +
                           json_escape(name) + "\"}}");
}

void Tracer::set_thread_name(int pid, int tid, std::string_view name) {
  if (!enabled_ || options_.chrome_path.empty()) return;
  std::lock_guard lock(mu_);
  chrome_events_.push_back("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
                           std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
                           ",\"args\":{\"name\":\"" + json_escape(name) + "\"}}");
}

void Tracer::begin(std::string_view name, Track track, double ts_us,
                   const Attrs& attrs) {
  emit(name, 'B', track, ts_us, 0.0, attrs, /*has_value=*/false, 0.0);
}

void Tracer::end(std::string_view name, Track track, double ts_us,
                 const Attrs& attrs) {
  emit(name, 'E', track, ts_us, 0.0, attrs, /*has_value=*/false, 0.0);
}

void Tracer::complete(std::string_view name, Track track, double ts_us,
                      double dur_us, const Attrs& attrs) {
  emit(name, 'X', track, ts_us, dur_us, attrs, /*has_value=*/false, 0.0);
}

void Tracer::instant(std::string_view name, Track track, double ts_us,
                     const Attrs& attrs) {
  emit(name, 'i', track, ts_us, 0.0, attrs, /*has_value=*/false, 0.0);
}

void Tracer::counter(std::string_view name, Track track, double ts_us,
                     double value) {
  emit(name, 'C', track, ts_us, 0.0, {}, /*has_value=*/true, value);
}

void Tracer::async_begin(std::string_view name, Track track, double ts_us,
                         std::uint64_t id, const Attrs& attrs) {
  emit(name, 'b', track, ts_us, 0.0, attrs, /*has_value=*/false, 0.0,
       /*has_id=*/true, id);
}

void Tracer::async_end(std::string_view name, Track track, double ts_us,
                       std::uint64_t id, const Attrs& attrs) {
  emit(name, 'e', track, ts_us, 0.0, attrs, /*has_value=*/false, 0.0,
       /*has_id=*/true, id);
}

void Tracer::flow_start(std::string_view name, Track track, double ts_us,
                        std::uint64_t id) {
  emit(name, 's', track, ts_us, 0.0, {}, /*has_value=*/false, 0.0,
       /*has_id=*/true, id);
}

void Tracer::flow_end(std::string_view name, Track track, double ts_us,
                      std::uint64_t id) {
  emit(name, 'f', track, ts_us, 0.0, {}, /*has_value=*/false, 0.0,
       /*has_id=*/true, id);
}

Status Tracer::flush() {
  std::lock_guard lock(mu_);
  if (!enabled_ || flushed_) return error_;
  flushed_ = true;
  if (jsonl_.is_open()) jsonl_.flush();
  if (!options_.chrome_path.empty()) {
    std::ofstream out(options_.chrome_path, std::ios::out | std::ios::trunc);
    if (!out) {
      if (error_.is_ok()) {
        error_ = Status(StatusCode::kInvalidArgument,
                        "cannot open Chrome trace file '" + options_.chrome_path + "'");
      }
      return error_;
    }
    out << "{\"traceEvents\":[";
    for (std::size_t i = 0; i < chrome_events_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << chrome_events_[i];
    }
    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
    if (!out && error_.is_ok()) {
      error_ = Status(StatusCode::kInvalidArgument,
                      "write failed on Chrome trace file '" + options_.chrome_path + "'");
    }
  }
  return error_;
}

}  // namespace prose::trace
