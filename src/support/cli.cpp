#include "support/cli.h"

#include <cstdlib>

#include "support/strings.h"

namespace prose {

StatusOr<CliFlags> CliFlags::parse(int argc, const char* const* argv) {
  CliFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    if (body.empty()) {
      return Status(StatusCode::kInvalidArgument, "bare '--' is not a flag");
    }
    const std::size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      flags.values_[std::string(body.substr(0, eq))] = std::string(body.substr(eq + 1));
      continue;
    }
    if (starts_with(body, "no-")) {
      flags.values_[std::string(body.substr(3))] = "false";
      continue;
    }
    // `--name value` when the next token is not itself a flag; otherwise a
    // boolean `--name`.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags.values_[std::string(body)] = argv[++i];
    } else {
      flags.values_[std::string(body)] = "true";
    }
  }
  return flags;
}

bool CliFlags::has(const std::string& name) const { return values_.contains(name); }

std::string CliFlags::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string v = to_lower(it->second);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace prose
