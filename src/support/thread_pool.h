// A small work pool for batch-parallel variant evaluation.
//
// The paper's campaigns fanned transform → compile → execute out one variant
// per Derecho node; this pool is the single-host analogue: a fixed set of
// std::jthread workers that drain an indexed batch of independent work items.
// The pool is deliberately batch-oriented rather than a general task queue —
// the tuner proposes whole delta-debugging rounds at once, and determinism
// comes from the *caller* preassigning every per-item input (noise streams,
// cache slots) before the batch starts, so the order in which workers pick
// items can never influence results.
//
// Guarantees:
//   * for_each(n, fn) calls fn(item, worker) exactly once for every
//     item in [0, n), with worker in [0, size()), and returns only after all
//     items completed (or the pool is unusable).
//   * Exceptions thrown by items are caught per item; after the batch drains,
//     the exception of the *lowest-numbered* failing item is rethrown in the
//     caller (deterministic regardless of worker interleaving).
//   * A batch of zero items returns immediately without touching the workers.
//   * for_each may be called from multiple threads; batches are serialized.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace prose {

/// Observability handles for a pool, registered by the owner (the campaign
/// or the server — they hold the registry; the pool just bumps the
/// instruments). All pointers may be null; the bundle is inert by default.
struct PoolMetrics {
  obs::Counter* batches = nullptr;       // for_each calls
  obs::Counter* items = nullptr;         // work items completed
  obs::Gauge* queue_depth = nullptr;     // items of the active batch not yet taken
  obs::Gauge* active_workers = nullptr;  // workers currently inside an item
};

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 picks the hardware concurrency. The pool
  /// always has at least one worker.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_workers();

  using ItemFn = std::function<void(std::size_t item, std::size_t worker)>;

  /// Runs fn(0..n-1) across the workers and blocks until the batch drains.
  /// Rethrows the lowest-index item's exception, if any.
  void for_each(std::size_t n, const ItemFn& fn);

  /// Attaches observability instruments (copied; null members stay inert).
  /// Pure telemetry: attaching metrics never changes scheduling — workers
  /// bump counters, nothing reads them back.
  void set_metrics(const PoolMetrics& metrics) { metrics_ = metrics; }

 private:
  void worker_loop(std::stop_token stop, std::size_t worker);

  std::mutex batch_mu_;  // serializes concurrent for_each callers

  std::mutex mu_;  // guards everything below
  std::condition_variable_any work_cv_;
  std::condition_variable done_cv_;
  const ItemFn* fn_ = nullptr;  // non-null while a batch is active
  std::size_t batch_n_ = 0;
  std::size_t next_item_ = 0;
  std::size_t done_ = 0;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_;
  PoolMetrics metrics_;  // set before the first batch; read by workers

  std::vector<std::jthread> threads_;  // last member: joins before the rest die
};

}  // namespace prose
