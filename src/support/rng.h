// Deterministic random number generation.
//
// Every stochastic element of the reproduction (run-to-run performance noise,
// randomized search baselines, property-test case generation) draws from a
// seeded xoshiro256** so that experiments are bit-reproducible across runs on
// the same build — the paper's searches are non-deterministic on real
// hardware, but our simulated campaigns should not be.
#pragma once

#include <cstdint>
#include <vector>

namespace prose {

/// SplitMix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), public-domain reference algorithm.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform on [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform on [0, 1).
  double uniform();

  /// Uniform on [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer on [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal multiplicative noise with relative standard deviation `rsd`
  /// around 1.0 — the model used to inject per-run timing jitter.
  /// E[X] == 1, sd(X)/E[X] ≈ rsd for small rsd.
  double lognormal_noise(double rsd);

  /// Bernoulli(p).
  bool chance(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Deterministically derive a child RNG (for per-variant noise streams that
  /// must not depend on evaluation order).
  Rng fork(std::uint64_t stream_id) const;

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace prose
