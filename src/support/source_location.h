// Source locations for the Fortran-subset frontend.
//
// Every token, AST node, and diagnostic carries a SourceLoc so that tuner
// reports can point users back at the exact declaration being retyped.
#pragma once

#include <cstdint>
#include <string>

namespace prose {

/// A position within a named source buffer (1-based line/column).
struct SourceLoc {
  /// Index into the SourceManager's file table; 0 is the synthetic
  /// "<builtin>" buffer used for generated wrappers.
  std::uint32_t file = 0;
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const { return line != 0; }

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// A half-open range [begin, end) of source text.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  friend bool operator==(const SourceRange&, const SourceRange&) = default;
};

/// Renders "name:line:col" for diagnostics.
std::string to_string(const SourceLoc& loc, const std::string& file_name);

}  // namespace prose
