#include "support/json.h"

#include <cctype>
#include <charconv>
#include <limits>

namespace prose::json {

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Appends a Unicode codepoint as UTF-8 (journal strings are ASCII in
/// practice; this keeps \uXXXX escapes lossless anyway).
void append_utf8(std::string& out, unsigned cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xc0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  } else {
    out += static_cast<char>(0xe0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  }
}

}  // namespace

class Parser {
 public:
  explicit Parser(std::string_view text)
      : begin_(text.data()), p_(text.data()), end_(text.data() + text.size()) {}

  StatusOr<Value> run() {
    Value v;
    if (Status s = value(&v, 0); !s.is_ok()) return s;
    skip_ws();
    if (p_ != end_) return fail("trailing characters after JSON value");
    return v;
  }

  /// parse_prefix body: one value from the front, `*consumed` = bytes past
  /// it. A top-level bare number flush against the buffer end is reported
  /// incomplete — "12" may be the front half of "123"; only a following
  /// non-number byte proves the number ended.
  StatusOr<Value> run_prefix(std::size_t* consumed) {
    Value v;
    if (Status s = value(&v, 0); !s.is_ok()) return s;
    if (v.kind() == Value::Kind::kNumber && p_ == end_ && p_ != begin_) {
      const char last = p_[-1];
      if ((last >= '0' && last <= '9') || last == '.' || last == 'e' ||
          last == 'E' || last == '+' || last == '-') {
        return underrun("number may continue past the buffer");
      }
    }
    *consumed = static_cast<std::size_t>(p_ - begin_);
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[nodiscard]] Status fail(const std::string& what) const {
    return Status(StatusCode::kParseError, "json: " + what);
  }

  /// The input ran out mid-value: not malformed, just not all here yet.
  [[nodiscard]] Status underrun(const std::string& what) const {
    return Status(StatusCode::kIncomplete, "json: " + what);
  }

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }

  Status literal(std::string_view word) {
    const std::size_t have = static_cast<std::size_t>(end_ - p_);
    if (have < word.size()) {
      // "tru" is an unfinished "true"; "trx" is garbage.
      return std::string_view(p_, have) == word.substr(0, have)
                 ? underrun("truncated literal")
                 : fail("invalid literal");
    }
    if (std::string_view(p_, word.size()) != word) return fail("invalid literal");
    p_ += word.size();
    return Status::ok();
  }

  Status string(std::string* out) {
    if (p_ == end_) return underrun("input ends before string");
    if (*p_ != '"') return fail("expected string");
    ++p_;
    while (p_ != end_ && *p_ != '"') {
      const char c = *p_;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c == '\\') {
        ++p_;
        if (p_ == end_) return underrun("truncated escape");
        switch (*p_) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              ++p_;
              if (p_ == end_) return underrun("truncated \\u escape");
              if (std::isxdigit(static_cast<unsigned char>(*p_)) == 0) {
                return fail("bad \\u escape");
              }
              const char h = *p_;
              cp = cp * 16 +
                   static_cast<unsigned>(h <= '9' ? h - '0'
                                                  : (h | 0x20) - 'a' + 10);
            }
            append_utf8(*out, cp);
            break;
          }
          default: return fail("bad escape character");
        }
        ++p_;
        continue;
      }
      *out += c;
      ++p_;
    }
    if (p_ == end_) return underrun("unterminated string");
    ++p_;  // closing quote
    return Status::ok();
  }

  Status number(double* out) {
    const char* start = p_;
    const bool negative = p_ != end_ && *p_ == '-';
    if (negative) ++p_;
    // Non-finite tokens, as the journal writes them for shadow divergences
    // (%.17g's "inf"/"nan" are not parseable JSON; "Infinity"/"NaN" are the
    // de-facto extension Python's json module reads and writes).
    if (p_ != end_ && *p_ == 'I') {
      if (Status s = literal("Infinity"); !s.is_ok()) return s;
      *out = negative ? -std::numeric_limits<double>::infinity()
                      : std::numeric_limits<double>::infinity();
      return Status::ok();
    }
    while (p_ != end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) != 0 || *p_ == '.' ||
            *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
      ++p_;
    }
    // std::from_chars is locale-independent by definition — a journal written
    // under the "C" locale parses identically under e.g. de_DE (where strtod
    // would expect a ',' decimal separator and truncate at the '.').
    const auto [ptr, ec] = std::from_chars(start, p_, *out);
    if (ec == std::errc::result_out_of_range) {
      // Out of double range: saturate like strtod did — underflow ("1e-999",
      // spotted by the negative exponent) to zero, overflow to infinity.
      const std::string_view text(start, static_cast<std::size_t>(p_ - start));
      const bool underflow = text.find("e-") != std::string_view::npos ||
                             text.find("E-") != std::string_view::npos;
      const double magnitude =
          underflow ? 0.0 : std::numeric_limits<double>::infinity();
      *out = negative ? -magnitude : magnitude;
      return Status::ok();
    }
    if (ec != std::errc() || ptr != p_ || start == p_) {
      // "1e", "-", "1e+" at the end of a streaming buffer are unfinished,
      // not malformed — some suffix completes them. "1.2.3" is junk no
      // suffix can repair, wherever the buffer ends.
      if (p_ == end_ && is_number_prefix(start, p_)) {
        return underrun("truncated number");
      }
      return fail("malformed number '" +
                  std::string(start, static_cast<std::size_t>(p_ - start)) +
                  "'");
    }
    return Status::ok();
  }

  /// True when [s, e) is a (possibly empty) proper prefix of the JSON number
  /// grammar — i.e. appending more bytes could still yield a valid number.
  static bool is_number_prefix(const char* s, const char* e) {
    const auto digit = [](char c) { return c >= '0' && c <= '9'; };
    if (s != e && *s == '-') ++s;
    if (s == e) return true;
    if (!digit(*s)) return false;
    while (s != e && digit(*s)) ++s;
    if (s != e && *s == '.') {
      ++s;
      while (s != e && digit(*s)) ++s;
    }
    if (s != e && (*s == 'e' || *s == 'E')) {
      ++s;
      if (s != e && (*s == '+' || *s == '-')) ++s;
      while (s != e && digit(*s)) ++s;
    }
    return s == e;
  }

  Status value(Value* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (p_ == end_) return underrun("unexpected end of input");
    switch (*p_) {
      case '{': {
        ++p_;
        out->kind_ = Value::Kind::kObject;
        skip_ws();
        if (p_ != end_ && *p_ == '}') { ++p_; return Status::ok(); }
        while (true) {
          skip_ws();
          std::string key;
          if (Status s = string(&key); !s.is_ok()) return s;
          skip_ws();
          if (p_ == end_) return underrun("input ends before ':'");
          if (*p_ != ':') return fail("expected ':'");
          ++p_;
          Value member;
          if (Status s = value(&member, depth + 1); !s.is_ok()) return s;
          out->members_.emplace_back(std::move(key), std::move(member));
          skip_ws();
          if (p_ == end_) return underrun("input ends inside object");
          if (*p_ == ',') { ++p_; continue; }
          if (*p_ == '}') { ++p_; return Status::ok(); }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++p_;
        out->kind_ = Value::Kind::kArray;
        skip_ws();
        if (p_ != end_ && *p_ == ']') { ++p_; return Status::ok(); }
        while (true) {
          Value item;
          if (Status s = value(&item, depth + 1); !s.is_ok()) return s;
          out->items_.push_back(std::move(item));
          skip_ws();
          if (p_ == end_) return underrun("input ends inside array");
          if (*p_ == ',') { ++p_; continue; }
          if (*p_ == ']') { ++p_; return Status::ok(); }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out->kind_ = Value::Kind::kString;
        return string(&out->str_);
      case 't':
        out->kind_ = Value::Kind::kBool;
        out->bool_ = true;
        return literal("true");
      case 'f':
        out->kind_ = Value::Kind::kBool;
        out->bool_ = false;
        return literal("false");
      case 'n':
        out->kind_ = Value::Kind::kNull;
        return literal("null");
      case 'N':
        out->kind_ = Value::Kind::kNumber;
        out->num_ = std::numeric_limits<double>::quiet_NaN();
        return literal("NaN");
      default:
        out->kind_ = Value::Kind::kNumber;
        return number(&out->num_);
    }
  }

  const char* begin_;
  const char* p_;
  const char* end_;
};

StatusOr<Value> parse(std::string_view text) {
  auto v = Parser(text).run();
  if (!v.is_ok() && v.status().code() == StatusCode::kIncomplete) {
    // Whole-document parsing has no "more bytes coming": truncated IS
    // malformed here, and callers (journal recovery, tests) key off
    // kParseError.
    return Status(StatusCode::kParseError, v.status().message());
  }
  return v;
}

StatusOr<Value> parse_prefix(std::string_view text, std::size_t* consumed) {
  return Parser(text).run_prefix(consumed);
}

}  // namespace prose::json
