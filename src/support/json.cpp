#include "support/json.h"

#include <cctype>
#include <charconv>
#include <limits>

namespace prose::json {

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Appends a Unicode codepoint as UTF-8 (journal strings are ASCII in
/// practice; this keeps \uXXXX escapes lossless anyway).
void append_utf8(std::string& out, unsigned cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xc0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  } else {
    out += static_cast<char>(0xe0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  }
}

}  // namespace

class Parser {
 public:
  explicit Parser(std::string_view text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  StatusOr<Value> run() {
    Value v;
    if (Status s = value(&v, 0); !s.is_ok()) return s;
    skip_ws();
    if (p_ != end_) return fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[nodiscard]] Status fail(const std::string& what) const {
    return Status(StatusCode::kParseError, "json: " + what);
  }

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }

  Status literal(std::string_view word) {
    if (static_cast<std::size_t>(end_ - p_) < word.size() ||
        std::string_view(p_, word.size()) != word) {
      return fail("invalid literal");
    }
    p_ += word.size();
    return Status::ok();
  }

  Status string(std::string* out) {
    if (p_ == end_ || *p_ != '"') return fail("expected string");
    ++p_;
    while (p_ != end_ && *p_ != '"') {
      const char c = *p_;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c == '\\') {
        ++p_;
        if (p_ == end_) return fail("truncated escape");
        switch (*p_) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              ++p_;
              if (p_ == end_ || std::isxdigit(static_cast<unsigned char>(*p_)) == 0) {
                return fail("bad \\u escape");
              }
              const char h = *p_;
              cp = cp * 16 +
                   static_cast<unsigned>(h <= '9' ? h - '0'
                                                  : (h | 0x20) - 'a' + 10);
            }
            append_utf8(*out, cp);
            break;
          }
          default: return fail("bad escape character");
        }
        ++p_;
        continue;
      }
      *out += c;
      ++p_;
    }
    if (p_ == end_) return fail("unterminated string");
    ++p_;  // closing quote
    return Status::ok();
  }

  Status number(double* out) {
    const char* start = p_;
    const bool negative = p_ != end_ && *p_ == '-';
    if (negative) ++p_;
    // Non-finite tokens, as the journal writes them for shadow divergences
    // (%.17g's "inf"/"nan" are not parseable JSON; "Infinity"/"NaN" are the
    // de-facto extension Python's json module reads and writes).
    if (p_ != end_ && *p_ == 'I') {
      if (Status s = literal("Infinity"); !s.is_ok()) return s;
      *out = negative ? -std::numeric_limits<double>::infinity()
                      : std::numeric_limits<double>::infinity();
      return Status::ok();
    }
    while (p_ != end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) != 0 || *p_ == '.' ||
            *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
      ++p_;
    }
    // std::from_chars is locale-independent by definition — a journal written
    // under the "C" locale parses identically under e.g. de_DE (where strtod
    // would expect a ',' decimal separator and truncate at the '.').
    const auto [ptr, ec] = std::from_chars(start, p_, *out);
    if (ec == std::errc::result_out_of_range) {
      // Out of double range: saturate like strtod did — underflow ("1e-999",
      // spotted by the negative exponent) to zero, overflow to infinity.
      const std::string_view text(start, static_cast<std::size_t>(p_ - start));
      const bool underflow = text.find("e-") != std::string_view::npos ||
                             text.find("E-") != std::string_view::npos;
      const double magnitude =
          underflow ? 0.0 : std::numeric_limits<double>::infinity();
      *out = negative ? -magnitude : magnitude;
      return Status::ok();
    }
    if (ec != std::errc() || ptr != p_ || start == p_) {
      return fail("malformed number '" +
                  std::string(start, static_cast<std::size_t>(p_ - start)) +
                  "'");
    }
    return Status::ok();
  }

  Status value(Value* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (p_ == end_) return fail("unexpected end of input");
    switch (*p_) {
      case '{': {
        ++p_;
        out->kind_ = Value::Kind::kObject;
        skip_ws();
        if (p_ != end_ && *p_ == '}') { ++p_; return Status::ok(); }
        while (true) {
          skip_ws();
          std::string key;
          if (Status s = string(&key); !s.is_ok()) return s;
          skip_ws();
          if (p_ == end_ || *p_ != ':') return fail("expected ':'");
          ++p_;
          Value member;
          if (Status s = value(&member, depth + 1); !s.is_ok()) return s;
          out->members_.emplace_back(std::move(key), std::move(member));
          skip_ws();
          if (p_ != end_ && *p_ == ',') { ++p_; continue; }
          if (p_ != end_ && *p_ == '}') { ++p_; return Status::ok(); }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++p_;
        out->kind_ = Value::Kind::kArray;
        skip_ws();
        if (p_ != end_ && *p_ == ']') { ++p_; return Status::ok(); }
        while (true) {
          Value item;
          if (Status s = value(&item, depth + 1); !s.is_ok()) return s;
          out->items_.push_back(std::move(item));
          skip_ws();
          if (p_ != end_ && *p_ == ',') { ++p_; continue; }
          if (p_ != end_ && *p_ == ']') { ++p_; return Status::ok(); }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out->kind_ = Value::Kind::kString;
        return string(&out->str_);
      case 't':
        out->kind_ = Value::Kind::kBool;
        out->bool_ = true;
        return literal("true");
      case 'f':
        out->kind_ = Value::Kind::kBool;
        out->bool_ = false;
        return literal("false");
      case 'n':
        out->kind_ = Value::Kind::kNull;
        return literal("null");
      case 'N':
        out->kind_ = Value::Kind::kNumber;
        out->num_ = std::numeric_limits<double>::quiet_NaN();
        return literal("NaN");
      default:
        out->kind_ = Value::Kind::kNumber;
        return number(&out->num_);
    }
  }

  const char* p_;
  const char* end_;
};

StatusOr<Value> parse(std::string_view text) { return Parser(text).run(); }

}  // namespace prose::json
