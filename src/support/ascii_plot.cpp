#include "support/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "support/status.h"
#include "support/strings.h"

namespace prose {

AsciiScatter::AsciiScatter(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

void AsciiScatter::set_size(std::size_t width, std::size_t height) {
  PROSE_CHECK(width >= 16 && height >= 8);
  width_ = width;
  height_ = height;
}

void AsciiScatter::add_point(double x, double y, char glyph) {
  points_.push_back({x, y, glyph});
}

void AsciiScatter::add_series(const std::vector<PlotPoint>& pts) {
  points_.insert(points_.end(), pts.begin(), pts.end());
}

double AsciiScatter::tx(double x) const {
  return log_x_ ? std::log10(std::max(x, 1e-300)) : x;
}
double AsciiScatter::ty(double y) const {
  return log_y_ ? std::log10(std::max(y, 1e-300)) : y;
}

std::string AsciiScatter::render() const {
  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  std::vector<PlotPoint> pts;
  for (const auto& p : points_) {
    if (std::isfinite(p.x) && std::isfinite(p.y) &&
        (!log_x_ || p.x > 0) && (!log_y_ || p.y > 0)) {
      pts.push_back(p);
    }
  }
  const std::size_t dropped = points_.size() - pts.size();
  if (pts.empty()) {
    os << "(no finite points to plot";
    if (dropped) os << "; " << dropped << " dropped";
    os << ")\n";
    return os.str();
  }

  double xlo = std::numeric_limits<double>::infinity(), xhi = -xlo;
  double ylo = xlo, yhi = -xlo;
  for (const auto& p : pts) {
    xlo = std::min(xlo, tx(p.x));
    xhi = std::max(xhi, tx(p.x));
    ylo = std::min(ylo, ty(p.y));
    yhi = std::max(yhi, ty(p.y));
  }
  for (double g : x_guides_) {
    if (!log_x_ || g > 0) {
      xlo = std::min(xlo, tx(g));
      xhi = std::max(xhi, tx(g));
    }
  }
  for (double g : y_guides_) {
    if (!log_y_ || g > 0) {
      ylo = std::min(ylo, ty(g));
      yhi = std::max(yhi, ty(g));
    }
  }
  const auto widen = [](double& lo, double& hi) {
    if (hi <= lo) {
      lo -= 0.5;
      hi += 0.5;
    } else {
      const double pad = 0.04 * (hi - lo);
      lo -= pad;
      hi += pad;
    }
  };
  widen(xlo, xhi);
  widen(ylo, yhi);

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  const auto col_of = [&](double x) {
    const double t = (tx(x) - xlo) / (xhi - xlo);
    return std::clamp<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(t * static_cast<double>(width_ - 1)), 0,
        static_cast<std::ptrdiff_t>(width_) - 1);
  };
  const auto row_of = [&](double y) {
    const double t = (ty(y) - ylo) / (yhi - ylo);
    const auto from_bottom = std::clamp<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(t * static_cast<double>(height_ - 1)), 0,
        static_cast<std::ptrdiff_t>(height_) - 1);
    return static_cast<std::ptrdiff_t>(height_) - 1 - from_bottom;
  };

  for (double g : x_guides_) {
    if (log_x_ && g <= 0) continue;
    const auto c = col_of(g);
    for (auto& row : grid) row[static_cast<std::size_t>(c)] = ':';
  }
  for (double g : y_guides_) {
    if (log_y_ && g <= 0) continue;
    const auto r = row_of(g);
    for (std::size_t c = 0; c < width_; ++c) {
      grid[static_cast<std::size_t>(r)][c] = '.';
    }
  }
  for (const auto& p : pts) {
    grid[static_cast<std::size_t>(row_of(p.y))][static_cast<std::size_t>(col_of(p.x))] =
        p.glyph;
  }

  const auto fmt_axis = [&](double v, bool log_axis) {
    return format_sci(log_axis ? std::pow(10.0, v) : v, 2);
  };
  os << "y: " << y_label_ << "  [" << fmt_axis(ylo, log_y_) << ", "
     << fmt_axis(yhi, log_y_) << (log_y_ ? "] (log)\n" : "]\n");
  for (const auto& row : grid) os << "  |" << row << "|\n";
  os << "x: " << x_label_ << "  [" << fmt_axis(xlo, log_x_) << ", "
     << fmt_axis(xhi, log_x_) << (log_x_ ? "] (log)" : "]");
  if (dropped) os << "  (" << dropped << " non-plottable points dropped)";
  os << '\n';
  return os.str();
}

}  // namespace prose
