#include "support/rng.h"

#include <cmath>

#include "support/status.h"

namespace prose {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> [0,1) with full double resolution.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  PROSE_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * ((~std::uint64_t{0}) / n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  have_spare_ = true;
  return u * m;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_noise(double rsd) {
  if (rsd <= 0.0) return 1.0;
  // For X ~ LogNormal(mu, sigma^2): rsd^2 = exp(sigma^2) - 1, E[X] = 1 when
  // mu = -sigma^2 / 2.
  const double sigma2 = std::log1p(rsd * rsd);
  const double sigma = std::sqrt(sigma2);
  return std::exp(normal(-0.5 * sigma2, sigma));
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork(std::uint64_t stream_id) const {
  // Hash the current state with the stream id; forked streams are independent
  // of how many draws the parent has made *after* forking.
  SplitMix64 sm(s_[0] ^ rotl(s_[3], 13) ^ (stream_id * 0xD1342543DE82EF95ull));
  return Rng(sm.next());
}

}  // namespace prose
