#include "support/faultinject.h"

#include <algorithm>
#include <cstdlib>
#include <initializer_list>
#include <utility>

#include "support/strings.h"

namespace prose {
namespace {

/// SplitMix64 finalizer: a full-avalanche mix so nearby inputs (attempt 1 vs
/// attempt 2) draw independent uniforms.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Uniform in [0, 1) from the top 53 bits — the standard bit-exact mapping,
/// identical on every platform.
double u01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// One independent uniform per (seed, config, attempt, fault-kind salt).
double draw(std::uint64_t seed, std::uint64_t config_hash, int attempt,
            std::uint64_t salt) {
  std::uint64_t x = seed;
  x = mix64(x ^ config_hash);
  x = mix64(x ^ (static_cast<std::uint64_t>(attempt) * 0x9e3779b97f4a7c15ULL));
  x = mix64(x ^ salt);
  return u01(x);
}

constexpr std::uint64_t kCompileSalt = 0xc0817a11ULL;
constexpr std::uint64_t kTransientSalt = 0x7a2a51e47ULL;
constexpr std::uint64_t kStragglerSalt = 0x57a661e4ULL;
constexpr std::uint64_t kAbortSalt = 0xab047ULL;

/// Parses "0.05" (probability) or fails with a message naming the clause.
Status parse_probability(std::string_view clause, std::string_view text,
                         double* out) {
  char* end = nullptr;
  const std::string s(text);
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status(StatusCode::kInvalidArgument,
                  "fault spec '" + std::string(clause) + "': '" + s +
                      "' is not a number");
  }
  if (v < 0.0 || v > 1.0) {
    return Status(StatusCode::kInvalidArgument,
                  "fault spec '" + std::string(clause) + "': probability " + s +
                      " outside [0, 1]");
  }
  *out = v;
  return Status::ok();
}

/// Parses "4" / "4x" (multiplier) or "3600" / "3600s" / "60m" / "1.5h"
/// (duration in seconds).
Status parse_scaled(std::string_view clause, std::string_view text,
                    double* out, bool duration) {
  std::string s(text);
  double scale = 1.0;
  if (!s.empty()) {
    const char suffix = s.back();
    if (duration && suffix == 's') { s.pop_back(); }
    else if (duration && suffix == 'm') { scale = 60.0; s.pop_back(); }
    else if (duration && suffix == 'h') { scale = 3600.0; s.pop_back(); }
    else if (!duration && suffix == 'x') { s.pop_back(); }
  }
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end == s.c_str() || *end != '\0') {
    return Status(StatusCode::kInvalidArgument,
                  "fault spec '" + std::string(clause) + "': '" +
                      std::string(text) + "' is not a " +
                      (duration ? "duration" : "multiplier"));
  }
  *out = v * scale;
  return Status::ok();
}

}  // namespace

StatusOr<FaultPlan> FaultPlan::parse(std::string_view spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed_ = seed;
  plan.spec_ = std::string(trim(spec));
  bool saw_compile = false, saw_transient = false, saw_straggler = false,
       saw_abort = false;
  for (const std::string& raw : split(plan.spec_, ';')) {
    const std::string clause(trim(raw));
    if (clause.empty()) continue;
    const std::size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      return Status(StatusCode::kInvalidArgument,
                    "fault spec clause '" + clause +
                        "' is missing ':' (expected kind:key=value,...)");
    }
    const std::string kind(trim(clause.substr(0, colon)));

    // key=value parameter list.
    std::vector<std::pair<std::string, std::string>> params;
    for (const std::string& piece : split(clause.substr(colon + 1), ',')) {
      const std::string p(trim(piece));
      if (p.empty()) continue;
      const std::size_t eq = p.find('=');
      if (eq == std::string::npos) {
        return Status(StatusCode::kInvalidArgument,
                      "fault spec '" + clause + "': parameter '" + p +
                          "' is missing '='");
      }
      params.emplace_back(std::string(trim(p.substr(0, eq))),
                          std::string(trim(p.substr(eq + 1))));
    }
    const auto param = [&](const std::string& key) -> const std::string* {
      for (const auto& [k, v] : params) {
        if (k == key) return &v;
      }
      return nullptr;
    };
    const auto reject_unknown =
        [&](std::initializer_list<std::string_view> known) -> Status {
      for (const auto& [k, v] : params) {
        bool ok = false;
        for (const auto& name : known) ok = ok || k == name;
        if (!ok) {
          return Status(StatusCode::kInvalidArgument,
                        "fault spec '" + clause + "': unknown parameter '" + k + "'");
        }
      }
      return Status::ok();
    };
    const auto require_p = [&](double* out, bool* seen) -> Status {
      if (*seen) {
        return Status(StatusCode::kInvalidArgument,
                      "fault spec: duplicate '" + kind + "' clause");
      }
      *seen = true;
      const std::string* p = param("p");
      if (p == nullptr) {
        return Status(StatusCode::kInvalidArgument,
                      "fault spec '" + clause + "': missing p=<probability>");
      }
      return parse_probability(clause, *p, out);
    };

    if (kind == "compile") {
      if (Status s = reject_unknown({"p"}); !s.is_ok()) return s;
      if (Status s = require_p(&plan.compile_p_, &saw_compile); !s.is_ok()) return s;
    } else if (kind == "transient") {
      if (Status s = reject_unknown({"p"}); !s.is_ok()) return s;
      if (Status s = require_p(&plan.transient_p_, &saw_transient); !s.is_ok()) return s;
    } else if (kind == "abort") {
      if (Status s = reject_unknown({"p"}); !s.is_ok()) return s;
      if (Status s = require_p(&plan.abort_p_, &saw_abort); !s.is_ok()) return s;
    } else if (kind == "straggler") {
      if (Status s = reject_unknown({"p", "slow"}); !s.is_ok()) return s;
      if (Status s = require_p(&plan.straggler_p_, &saw_straggler); !s.is_ok()) return s;
      if (const std::string* slow = param("slow"); slow != nullptr) {
        if (Status s = parse_scaled(clause, *slow, &plan.slow_factor_,
                                    /*duration=*/false);
            !s.is_ok()) {
          return s;
        }
        if (plan.slow_factor_ < 1.0) {
          return Status(StatusCode::kInvalidArgument,
                        "fault spec '" + clause + "': slow factor must be >= 1");
        }
      }
    } else if (kind == "node_crash") {
      if (Status s = reject_unknown({"node", "at"}); !s.is_ok()) return s;
      const std::string* node = param("node");
      const std::string* at = param("at");
      if (node == nullptr || at == nullptr) {
        return Status(StatusCode::kInvalidArgument,
                      "fault spec '" + clause +
                          "': node_crash needs node=<id>,at=<time>");
      }
      char* end = nullptr;
      const long long id = std::strtoll(node->c_str(), &end, 10);
      if (end == node->c_str() || *end != '\0' || id < 0) {
        return Status(StatusCode::kInvalidArgument,
                      "fault spec '" + clause + "': '" + *node +
                          "' is not a node id");
      }
      NodeCrash crash;
      crash.node = static_cast<std::size_t>(id);
      if (Status s = parse_scaled(clause, *at, &crash.at_seconds,
                                  /*duration=*/true);
          !s.is_ok()) {
        return s;
      }
      if (crash.at_seconds < 0.0) {
        return Status(StatusCode::kInvalidArgument,
                      "fault spec '" + clause + "': crash time must be >= 0");
      }
      plan.crashes_.push_back(crash);
    } else {
      return Status(StatusCode::kInvalidArgument,
                    "fault spec: unknown fault kind '" + kind +
                        "' (expected compile, transient, straggler, "
                        "node_crash, or abort)");
    }
  }
  std::sort(plan.crashes_.begin(), plan.crashes_.end(),
            [](const NodeCrash& a, const NodeCrash& b) {
              if (a.at_seconds != b.at_seconds) return a.at_seconds < b.at_seconds;
              return a.node < b.node;
            });
  for (std::size_t i = 1; i < plan.crashes_.size(); ++i) {
    if (plan.crashes_[i].node == plan.crashes_[i - 1].node) {
      return Status(StatusCode::kInvalidArgument,
                    "fault spec: node " + std::to_string(plan.crashes_[i].node) +
                        " crashes twice");
    }
  }
  return plan;
}

FaultDecision FaultPlan::decide(std::uint64_t config_hash, int attempt) const {
  FaultDecision d;
  if (abort_p_ > 0.0 &&
      draw(seed_, config_hash, attempt, kAbortSalt) < abort_p_) {
    d.abort = true;
    return d;
  }
  if (compile_p_ > 0.0 &&
      draw(seed_, config_hash, attempt, kCompileSalt) < compile_p_) {
    d.compile_fail = true;
    return d;
  }
  if (transient_p_ > 0.0 &&
      draw(seed_, config_hash, attempt, kTransientSalt) < transient_p_) {
    d.transient_fail = true;
  }
  if (straggler_p_ > 0.0 &&
      draw(seed_, config_hash, attempt, kStragglerSalt) < straggler_p_) {
    d.slow_factor = slow_factor_;
  }
  return d;
}

}  // namespace prose
