#include "support/thread_pool.h"

#include <algorithm>

namespace prose {

std::size_t ThreadPool::hardware_workers() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = hardware_workers();
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads_.emplace_back(
        [this, w](std::stop_token stop) { worker_loop(stop, w); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& t : threads_) t.request_stop();
  work_cv_.notify_all();
  // ~jthread joins each worker.
}

void ThreadPool::worker_loop(std::stop_token stop, std::size_t worker) {
  std::unique_lock lock(mu_);
  for (;;) {
    work_cv_.wait(lock, stop,
                  [this] { return fn_ != nullptr && next_item_ < batch_n_; });
    if (stop.stop_requested()) return;
    while (fn_ != nullptr && next_item_ < batch_n_) {
      const std::size_t item = next_item_++;
      const ItemFn* fn = fn_;
      if (metrics_.queue_depth != nullptr) {
        metrics_.queue_depth->set(static_cast<double>(batch_n_ - next_item_));
      }
      lock.unlock();
      if (metrics_.active_workers != nullptr) metrics_.active_workers->add(1.0);
      std::exception_ptr error;
      try {
        (*fn)(item, worker);
      } catch (...) {
        error = std::current_exception();
      }
      if (metrics_.active_workers != nullptr) metrics_.active_workers->add(-1.0);
      if (metrics_.items != nullptr) metrics_.items->inc();
      lock.lock();
      if (error) errors_.emplace_back(item, error);
      if (++done_ == batch_n_) done_cv_.notify_all();
    }
  }
}

void ThreadPool::for_each(std::size_t n, const ItemFn& fn) {
  if (n == 0) return;
  std::lock_guard batch_lock(batch_mu_);
  if (metrics_.batches != nullptr) metrics_.batches->inc();
  std::unique_lock lock(mu_);
  fn_ = &fn;
  batch_n_ = n;
  next_item_ = 0;
  done_ = 0;
  errors_.clear();
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return done_ == batch_n_; });
  fn_ = nullptr;
  batch_n_ = 0;
  if (errors_.empty()) return;
  const auto first = std::min_element(
      errors_.begin(), errors_.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::exception_ptr error = first->second;
  errors_.clear();
  lock.unlock();
  std::rethrow_exception(error);
}

}  // namespace prose
