// Minimal JSON parser for reading the pipeline's own JSON artifacts back
// (the write-ahead campaign journal, trace JSONL lines in tests).
//
// This is the read-side counterpart of trace.h's json_escape/validate_json:
// a small recursive-descent parser producing an owned Value tree. It accepts
// exactly the JSON the pipeline writes — objects, arrays, strings (with
// escapes), IEEE doubles printed with %.17g (round-tripped bit-exactly via
// locale-independent std::from_chars), booleans, and null. Non-finite doubles
// use the Infinity/-Infinity/NaN extension tokens, matching both the journal
// writer and Python's json module — %.17g's "inf"/"nan" spellings are NOT
// valid. It is not a general-purpose library parser; duplicate keys are the
// caller's problem, and out-of-range magnitudes saturate to ±0/±inf.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/status.h"

namespace prose::json {

class Value {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }

  /// Member lookup on an object; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Typed accessors with fallbacks (for optional journal fields).
  [[nodiscard]] double num_or(double fallback) const {
    return kind_ == Kind::kNumber ? num_ : fallback;
  }
  [[nodiscard]] std::int64_t int_or(std::int64_t fallback) const {
    return kind_ == Kind::kNumber ? static_cast<std::int64_t>(num_) : fallback;
  }
  [[nodiscard]] bool bool_or(bool fallback) const {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  [[nodiscard]] const std::string& str_or(const std::string& fallback) const {
    return kind_ == Kind::kString ? str_ : fallback;
  }

  [[nodiscard]] const std::vector<Value>& items() const { return items_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

 private:
  friend class Parser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> items_;                          // array elements
  std::vector<std::pair<std::string, Value>> members_;  // object members, in order
};

/// Parses one JSON document (the full text must be consumed).
StatusOr<Value> parse(std::string_view text);

/// Incremental frame-boundary parser: parses exactly ONE JSON value from the
/// front of `text` (after leading whitespace) and reports how many bytes it
/// consumed, leaving any trailing bytes untouched. This is what lets a wire
/// receive buffer be scanned once per frame instead of re-parsed per byte.
///
/// Distinguishes "the prefix is not valid JSON" (kParseError) from "the
/// buffer ends before the value does" (kIncomplete — the caller should read
/// more bytes and retry). An empty / all-whitespace buffer is incomplete,
/// not an error. On success `*consumed` is the offset one past the value
/// (trailing whitespace is NOT consumed).
StatusOr<Value> parse_prefix(std::string_view text, std::size_t* consumed);

}  // namespace prose::json
