#include "support/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace prose {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string format_double(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, x);
  return buf;
}

std::string format_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string format_sci(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits - 1, x);
  return buf;
}

std::string pad_right(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

std::string pad_left(std::string s, std::size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace prose
