// ASCII table rendering for bench reports (Table I / Table II style output).
#pragma once

#include <string>
#include <vector>

namespace prose {

/// Column-aligned text table with a header row, e.g.
///
///   | Model  | Total | Pass  | Speedup |
///   |--------|-------|-------|---------|
///   | MPAS-A | 48    | 37.5% | 1.95x   |
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders in GitHub-markdown-compatible form.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer; quotes fields containing separators/quotes/newlines.
class CsvWriter {
 public:
  void add_row(const std::vector<std::string>& row);
  [[nodiscard]] const std::string& str() const { return out_; }

  /// Writes accumulated rows to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  static std::string escape(const std::string& field);
  std::string out_;
};

}  // namespace prose
