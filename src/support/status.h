// Lightweight Status / StatusOr error handling.
//
// The frontend and tuner report recoverable failures (parse errors, variants
// that fail to transform, runtime faults in the VM) as values rather than
// exceptions, per the project style: exceptions are reserved for programmer
// errors surfaced via PROSE_CHECK.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "support/source_location.h"

namespace prose {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller misuse detected at a library boundary
  kParseError,        // frontend rejected the source text
  kSemanticError,     // type/shape checking failed
  kTransformError,    // a precision assignment could not be applied
  kRuntimeFault,      // VM trapped (overflow to inf in a guarded op, OOB, ...)
  kTimeout,           // simulated wall clock exceeded the variant budget
  kNotFound,
  kUnimplemented,
  kIncomplete,        // streaming input ends before the value does (read more)
  kDeadlineExceeded,  // bounded I/O ran out of wall-clock budget
};

/// Human-readable code name, e.g. "ParseError".
const char* status_code_name(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  Status(StatusCode code, std::string message, SourceLoc loc)
      : code_(code), message_(std::move(message)), loc_(loc) {}

  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] const SourceLoc& loc() const { return loc_; }

  /// "ParseError: unexpected token" (with location when available).
  [[nodiscard]] std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  SourceLoc loc_;
};

/// Result-or-error, in the spirit of absl::StatusOr but minimal.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const Status& status() const { return status_; }

  T& value() & {
    require_ok();
    return *value_;
  }
  const T& value() const& {
    require_ok();
    return *value_;
  }
  T&& value() && {
    require_ok();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void require_ok() const {
    if (!value_.has_value()) {
      throw std::logic_error("StatusOr accessed without value: " +
                             status_.to_string());
    }
  }

  Status status_;
  std::optional<T> value_;
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

/// Programmer-error assertion that stays on in release builds.  Used to guard
/// internal invariants (e.g. the wrapper generator's matching-edge invariant).
#define PROSE_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::prose::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                  \
  } while (false)

#define PROSE_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::prose::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                  \
  } while (false)

}  // namespace prose
