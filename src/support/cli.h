// Minimal command-line flag parsing for the bench and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name`. Unknown flags are reported rather than ignored so bench
// invocations stay honest.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/status.h"

namespace prose {

class CliFlags {
 public:
  /// Parses argv (excluding argv[0]); positional arguments are collected in
  /// order. Flags may be declared implicitly by first use of a getter.
  static StatusOr<CliFlags> parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace prose
