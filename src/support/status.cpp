#include "support/status.h"

#include <sstream>

namespace prose {

std::string to_string(const SourceLoc& loc, const std::string& file_name) {
  std::ostringstream os;
  os << file_name << ':' << loc.line << ':' << loc.column;
  return os.str();
}

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kSemanticError: return "SemanticError";
    case StatusCode::kTransformError: return "TransformError";
    case StatusCode::kRuntimeFault: return "RuntimeFault";
    case StatusCode::kTimeout: return "Timeout";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kIncomplete: return "Incomplete";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::to_string() const {
  std::ostringstream os;
  os << status_code_name(code_);
  if (!message_.empty()) os << ": " << message_;
  if (loc_.valid()) os << " (line " << loc_.line << ", col " << loc_.column << ')';
  return os.str();
}

namespace detail {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message) {
  std::ostringstream os;
  os << "PROSE_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw std::logic_error(os.str());
}

}  // namespace detail
}  // namespace prose
