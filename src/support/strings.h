// String helpers shared across the frontend (case-insensitive Fortran
// identifiers) and the report writers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace prose {

/// Lower-cases ASCII. Fortran identifiers are case-insensitive; the frontend
/// canonicalizes them through this.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

std::string_view trim(std::string_view s);

/// Splits on a delimiter; empty fields are kept.
std::vector<std::string> split(std::string_view s, char delim);

/// Splits on runs of whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string s, std::string_view from, std::string_view to);

/// Fixed-point formatting helpers for tables ("1.95", "56.2%").
std::string format_double(double x, int precision);
std::string format_percent(double fraction, int precision = 1);

/// Scientific notation with the given significant digits ("1.4e+02").
std::string format_sci(double x, int digits = 2);

/// Pads/truncates to a column width (left- or right-aligned).
std::string pad_right(std::string s, std::size_t width);
std::string pad_left(std::string s, std::size_t width);

/// 64-bit FNV-1a. Unlike std::hash, the value is fixed by the algorithm —
/// identical across platforms, standard libraries, and process runs — so it
/// is safe to persist (trace config ids) or to key reproducible data
/// structures (the evaluator's memo cache).
std::uint64_t fnv1a64(std::string_view s);

}  // namespace prose
