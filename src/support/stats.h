// Small statistics kit used by the speedup metric (Eq. 1 of the paper), the
// correctness metrics (L2 norms over time/grid), and the bench reports.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace prose {

/// Median of a sample (averaging the middle pair for even sizes).
/// Requires a non-empty sample.
double median(std::span<const double> xs);

double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(std::span<const double> xs);

/// Relative standard deviation: stddev / |mean|. The paper uses the observed
/// RSD of a 10-member baseline ensemble to pick n in Eq. (1).
double relative_stddev(std::span<const double> xs);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Euclidean (L2) norm. Used for "L2-norm over time" correctness metrics.
double l2_norm(std::span<const double> xs);

/// Root-mean-square.
double rms(std::span<const double> xs);

/// p-th percentile (p in [0,100]) with linear interpolation.
double percentile(std::span<const double> xs, double p);

/// |a - b| / |a|, with the convention 0/0 == 0 and x/0 == inf for x != 0.
/// This is exactly the paper's relative-error expression
/// |(out_baseline - out_variant) / out_baseline|.
double relative_error(double baseline, double variant);

/// Online accumulator for streaming min/max/mean/M2 (Welford).
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;  // sample variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram with fixed-width bins over [lo, hi); out-of-range samples clamp
/// to the edge bins. Used by bench reports to show variant distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace prose
