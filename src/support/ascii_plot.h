// Text scatter plots for the bench binaries.
//
// The paper's artifact produces interactive Plotly HTML; our benches emit the
// same series as CSV plus a terminal-renderable scatter so the cluster
// structure (Figures 2, 5, 6, 7) is visible directly in bench output.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace prose {

struct PlotPoint {
  double x = 0.0;
  double y = 0.0;
  char glyph = '*';  // one glyph per series
};

/// Scatter plot on a character grid with optional log axes and threshold
/// guide lines (the dotted speedup/error thresholds in Fig. 5).
class AsciiScatter {
 public:
  AsciiScatter(std::string title, std::string x_label, std::string y_label);

  void set_log_x(bool log_x) { log_x_ = log_x; }
  void set_log_y(bool log_y) { log_y_ = log_y; }
  void set_size(std::size_t width, std::size_t height);

  /// Vertical guide at x = value (rendered with ':').
  void add_x_guide(double value) { x_guides_.push_back(value); }
  /// Horizontal guide at y = value (rendered with '.').
  void add_y_guide(double value) { y_guides_.push_back(value); }

  void add_point(double x, double y, char glyph = '*');
  void add_series(const std::vector<PlotPoint>& pts);

  /// Renders the plot; empty plots render a placeholder note.
  [[nodiscard]] std::string render() const;

 private:
  struct Extent {
    double lo, hi;
  };
  [[nodiscard]] double tx(double x) const;  // axis transforms
  [[nodiscard]] double ty(double y) const;

  std::string title_, x_label_, y_label_;
  bool log_x_ = false, log_y_ = false;
  std::size_t width_ = 72, height_ = 24;
  std::vector<PlotPoint> points_;
  std::vector<double> x_guides_, y_guides_;
};

}  // namespace prose
