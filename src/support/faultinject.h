// Deterministic fault injection for tuning campaigns.
//
// Real HPC campaigns lose nodes, hit flaky compiles, and produce transient
// non-finite runs; the paper's 12-hour / 20-node experiments (§IV-A) simply
// rode those out with scheduler restarts. A FaultPlan reproduces that
// environment *deterministically*: each fault decision is a pure function of
// (plan seed, FNV-1a config hash, attempt number, fault kind), so every run
// with the same seed — at any worker count — sees the identical fault
// sequence, and a resumed campaign replays the exact faults the interrupted
// one saw.
//
// Plans are parsed from a compact spec string of ';'-separated clauses:
//
//   compile:p=0.02                 transform/compile fails (deterministic —
//                                  never retried, the paper's "Error" class)
//   transient:p=0.05               run crashes this *attempt* only; retried
//                                  under the campaign RetryPolicy
//   straggler:p=0.03,slow=4x       the attempt's node-seconds are multiplied
//                                  (slow node / contended filesystem)
//   node_crash:node=7,at=3600s     node 7 dies at simulated t=3600 s; its
//                                  in-flight task is rescheduled and cluster
//                                  capacity shrinks permanently (repeatable)
//   abort:p=0.01                   the evaluator *throws* (host-level crash);
//                                  exercises exception-safety of the memo
//                                  cache — test-only in practice
//
// Durations accept s/m/h suffixes ("at=1.5h"). Probabilities are in [0, 1].
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace prose {

/// Campaign-level retry semantics for injected *transient* faults.
/// Deterministic failures (compile errors, correctness failures, timeouts)
/// are never retried — rerunning a deterministic simulation cannot change
/// the answer. A variant that exhausts its attempts is quarantined as
/// Outcome::kLost ("no information").
struct RetryPolicy {
  int max_attempts = 3;           // total attempts per variant; 1 = no retry
  double backoff_seconds = 30.0;  // simulated node-seconds charged per retry
};

/// One scheduled, permanent node failure.
struct NodeCrash {
  std::size_t node = 0;
  double at_seconds = 0.0;  // simulated campaign clock
};

/// The fault draw for one (config, attempt) pair.
struct FaultDecision {
  bool compile_fail = false;   // deterministic: variant is an Error, final
  bool transient_fail = false; // this attempt crashes; retryable
  bool abort = false;          // host-level: the evaluator throws
  double slow_factor = 1.0;    // straggler multiplier on node-seconds
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses a spec string (grammar above). An empty spec yields an empty
  /// plan. Errors name the offending clause.
  static StatusOr<FaultPlan> parse(std::string_view spec, std::uint64_t seed);

  /// True when no fault clause is active (decide() always returns the
  /// no-fault decision and node_crashes() is empty).
  [[nodiscard]] bool empty() const {
    return compile_p_ == 0.0 && transient_p_ == 0.0 && straggler_p_ == 0.0 &&
           abort_p_ == 0.0 && crashes_.empty();
  }

  /// The deterministic fault draw for one evaluation attempt. `config_hash`
  /// is the FNV-1a hash of the configuration key; `attempt` is 1-based.
  [[nodiscard]] FaultDecision decide(std::uint64_t config_hash, int attempt) const;

  /// Scheduled node failures, sorted by time.
  [[nodiscard]] const std::vector<NodeCrash>& node_crashes() const { return crashes_; }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  /// The spec string the plan was parsed from (for journal headers).
  [[nodiscard]] const std::string& spec() const { return spec_; }

 private:
  double compile_p_ = 0.0;
  double transient_p_ = 0.0;
  double straggler_p_ = 0.0;
  double abort_p_ = 0.0;
  double slow_factor_ = 4.0;
  std::vector<NodeCrash> crashes_;
  std::uint64_t seed_ = 0;
  std::string spec_;
};

}  // namespace prose
