// Campaign flight recorder: structured tracing for the tuning pipeline.
//
// The tuner's layers (evaluator, delta-debug search, cluster scheduler, VM)
// emit spans, instants, and counters into a Tracer, which fans them out to
// two sinks:
//
//   * a JSONL event log (one JSON object per line, streamed as events occur)
//     for programmatic replay/analysis of a campaign, and
//   * a Chrome trace-event JSON file (the `{"traceEvents":[...]}` schema)
//     loadable in Perfetto / chrome://tracing, with one track per (pid, tid)
//     pair — the cluster simulation maps simulated nodes to tids so node
//     occupancy renders as a timeline.
//
// Tracing is zero-cost when disabled: a default-constructed Tracer (or one
// built from empty TraceOptions) answers enabled() == false and every emit
// method returns immediately; call sites guard attribute construction behind
// enabled() so no strings are formatted on the disabled path. Tracing never
// feeds back into simulated results — a traced campaign and an untraced one
// produce bit-identical cycle counts.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"
#include "support/status.h"

namespace prose::trace {

/// Observability handles for a tracer, registered by the owner (the campaign
/// or the server hold the registry; the tracer just bumps the instruments).
/// Null members stay inert. Metrics never feed back into traced results.
struct TraceMetrics {
  obs::Counter* events = nullptr;        // events emitted (all phases)
  obs::Counter* write_errors = nullptr;  // sticky sink degradations
};

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters as \uXXXX or the short forms).
std::string json_escape(std::string_view s);

/// Minimal JSON syntax validator (objects, arrays, strings, numbers,
/// true/false/null). Used by tests and the CI trace-file check; not a full
/// parser — it only answers "would a JSON parser accept this text?".
bool validate_json(std::string_view text, std::string* error = nullptr);

/// Typed attribute value; serializes to a JSON scalar.
class AttrValue {
 public:
  AttrValue(const char* s) : kind_(Kind::kString), str_(s) {}          // NOLINT
  AttrValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  AttrValue(std::string_view s) : kind_(Kind::kString), str_(s) {}     // NOLINT
  AttrValue(double d) : kind_(Kind::kDouble), num_(d) {}               // NOLINT
  AttrValue(bool b) : kind_(Kind::kBool), int_(b ? 1 : 0) {}           // NOLINT
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  AttrValue(T v) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}  // NOLINT

  /// JSON scalar text ("\"x\"", "1.5", "42", "true").
  [[nodiscard]] std::string to_json() const;

 private:
  enum class Kind : std::uint8_t { kString, kDouble, kInt, kBool };
  Kind kind_;
  std::string str_;
  double num_ = 0.0;
  std::int64_t int_ = 0;
};

struct Attr {
  std::string key;
  AttrValue value;
};
using Attrs = std::vector<Attr>;

/// splitmix64 finalizer: the deterministic id mixer shared by every layer
/// that derives trace/span/flow ids from campaign identifiers (namespace
/// digests, content keys, request ids). Never seeded from wall-clock time.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Propagated request identity for distributed tracing across the serve
/// wire: a 128-bit trace id plus the parent span on the client side, all
/// derived deterministically from the campaign's existing ids (namespace
/// digest, content key, request id) — never from wall-clock randomness, so
/// traced runs stay bit-identical to untraced ones. A default-constructed
/// context is "absent": servers still emit spans, just unparented.
struct TraceContext {
  std::uint64_t trace_id_hi = 0;
  std::uint64_t trace_id_lo = 0;
  std::uint64_t parent_span = 0;
  bool sampled = false;

  [[nodiscard]] bool valid() const {
    return trace_id_hi != 0 || trace_id_lo != 0;
  }
  /// 32 lowercase hex chars (the W3C trace-id text form).
  [[nodiscard]] std::string trace_hex() const;

  /// The flow-arrow id stitching a client request span to the server spans
  /// that handled it. Both ends derive it from the context independently,
  /// so the sender's flow_start and the receiver's flow_end pair up without
  /// any extra wire traffic.
  [[nodiscard]] std::uint64_t flow_id() const {
    return mix64(trace_id_lo ^ mix64(parent_span ^ trace_id_hi));
  }
  /// The server-side request span id under that flow.
  [[nodiscard]] std::uint64_t server_span_id() const {
    return mix64(flow_id() ^ 0x5e57e5u);
  }
};

/// Where a trace file pair goes. Empty paths disable the respective sink;
/// both empty disables tracing entirely (the zero-cost path).
struct TraceOptions {
  std::string jsonl_path;   // structured JSONL event log
  std::string chrome_path;  // Chrome trace-event JSON (Perfetto-loadable)

  [[nodiscard]] bool enabled() const {
    return !jsonl_path.empty() || !chrome_path.empty();
  }
};

/// Track identity. Perfetto renders one horizontal track per (pid, tid); the
/// pipeline uses the conventional assignments below so every campaign trace
/// has the same layout.
struct Track {
  int pid = kPipelinePid;
  int tid = 0;

  // Conventional tracks. Real (wall-clock) time lives under kPipelinePid;
  // simulated cluster time lives under kClusterPid, one tid per node.
  static constexpr int kPipelinePid = 1;
  static constexpr int kClusterPid = 2;
  static constexpr int kEvaluatorTid = 0;
  static constexpr int kSearchTid = 1;
  static constexpr int kCampaignTid = 2;
  /// Request-scoped serve spans (client request lifecycles on the campaign
  /// side; admission/queue/execute/replicate lifecycles on the daemon side).
  /// Async (b/e) events only — concurrent requests overlap freely here.
  static constexpr int kServeTid = 3;
  /// Work-pool workers occupy tids kWorkerTidBase + w so a parallel batch
  /// renders as one span track per worker under the pipeline process.
  static constexpr int kWorkerTidBase = 8;

  static Track evaluator() { return {kPipelinePid, kEvaluatorTid}; }
  static Track search() { return {kPipelinePid, kSearchTid}; }
  static Track campaign() { return {kPipelinePid, kCampaignTid}; }
  static Track serve() { return {kPipelinePid, kServeTid}; }
  static Track node(int n) { return {kClusterPid, n}; }
  static Track worker(int w) { return {kPipelinePid, kWorkerTidBase + w}; }
};

/// The flight recorder. Construct with TraceOptions to enable; default
/// construction yields a disabled tracer whose emit methods are no-ops.
///
/// Thread safety: every emit method (and flush) may be called concurrently —
/// the sinks are guarded by an internal mutex, so events from work-pool
/// workers interleave whole, never torn. Spans must still nest *per track*;
/// parallel workers therefore emit on their own Track::worker(w).
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(const TraceOptions& options);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }
  /// Non-OK when a sink file could not be opened or written.
  [[nodiscard]] const Status& error() const { return error_; }

  /// Wall-clock microseconds since construction (the pipeline timeline).
  /// Only meaningful on an enabled tracer; returns 0 when disabled.
  [[nodiscard]] double now_us() const;

  /// Attaches observability instruments (copied; set before emitting from
  /// multiple threads). A write failure that degrades a sink also increments
  /// write_errors, so dashboards catch the degradation the sticky error()
  /// only reports post-hoc.
  void set_metrics(const TraceMetrics& metrics) { metrics_ = metrics; }

  // --- track naming (Chrome metadata events) ---
  void set_process_name(int pid, std::string_view name);
  void set_thread_name(int pid, int tid, std::string_view name);

  // --- events; all no-ops when disabled ---
  /// Span open (ph:"B") / close (ph:"E"). Spans on one track must nest.
  void begin(std::string_view name, Track track, double ts_us,
             const Attrs& attrs = {});
  void end(std::string_view name, Track track, double ts_us,
           const Attrs& attrs = {});
  /// A complete span (ph:"X") with an explicit duration — used for the
  /// cluster node timeline where start and duration are known together.
  void complete(std::string_view name, Track track, double ts_us,
                double dur_us, const Attrs& attrs = {});
  /// A point event (ph:"i").
  void instant(std::string_view name, Track track, double ts_us,
               const Attrs& attrs = {});
  /// A counter sample (ph:"C"); Perfetto renders these as a value track.
  void counter(std::string_view name, Track track, double ts_us, double value);
  /// Async nestable span open (ph:"b") / close (ph:"e"), matched by id.
  /// Unlike begin/end these may overlap freely on one track — the shape of
  /// concurrent serve requests sharing the client's request track.
  void async_begin(std::string_view name, Track track, double ts_us,
                   std::uint64_t id, const Attrs& attrs = {});
  void async_end(std::string_view name, Track track, double ts_us,
                 std::uint64_t id, const Attrs& attrs = {});
  /// Flow arrow start (ph:"s") / finish (ph:"f", bp:"e"), matched by id:
  /// the cross-process stitch from a client request span to the server-side
  /// spans that handled it. Start and finish must share `name`.
  void flow_start(std::string_view name, Track track, double ts_us,
                  std::uint64_t id);
  void flow_end(std::string_view name, Track track, double ts_us,
                std::uint64_t id);

  /// Writes the Chrome trace file and flushes the JSONL stream. Called by
  /// the destructor; call explicitly to observe the Status.
  Status flush();

 private:
  void emit(std::string_view name, char phase, Track track, double ts_us,
            double dur_us, const Attrs& attrs, bool has_value, double value,
            bool has_id = false, std::uint64_t id = 0);

  bool enabled_ = false;
  bool flushed_ = false;
  Status error_;
  TraceOptions options_;
  TraceMetrics metrics_;
  std::mutex mu_;  // guards the sinks (jsonl_, chrome_events_, error_, flushed_)
  std::ofstream jsonl_;
  std::vector<std::string> chrome_events_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span on the wall-clock pipeline timeline. Degrades to a no-op when
/// `tracer` is null or disabled.
class Span {
 public:
  Span(Tracer* tracer, Track track, std::string name, const Attrs& attrs = {})
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        track_(track),
        name_(std::move(name)) {
    if (tracer_ != nullptr) tracer_->begin(name_, track_, tracer_->now_us(), attrs);
  }
  ~Span() { close(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attributes attached to the closing event (e.g. an outcome).
  void annotate(Attrs attrs) { close_attrs_ = std::move(attrs); }
  void close() {
    if (tracer_ != nullptr) {
      tracer_->end(name_, track_, tracer_->now_us(), close_attrs_);
      tracer_ = nullptr;
    }
  }

 private:
  Tracer* tracer_;
  Track track_;
  std::string name_;
  Attrs close_attrs_;
};

}  // namespace prose::trace
