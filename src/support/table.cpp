#include "support/table.h"

#include <algorithm>
#include <fstream>

#include "support/status.h"
#include "support/strings.h"

namespace prose {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  PROSE_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  PROSE_CHECK_MSG(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    out += '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += ' ';
      out += pad_right(row[c], widths[c]);
      out += " |";
    }
    out += '\n';
  };
  emit_row(header_);
  out += '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += std::string(widths[c] + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out_ += ',';
    out_ += escape(row[i]);
  }
  out_ += '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << out_;
  return static_cast<bool>(f);
}

}  // namespace prose
