#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/status.h"

namespace prose {

double median(std::span<const double> xs) {
  PROSE_CHECK(!xs.empty());
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double mean(std::span<const double> xs) {
  PROSE_CHECK(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double relative_stddev(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return std::numeric_limits<double>::infinity();
  return stddev(xs) / std::abs(m);
}

double min_of(std::span<const double> xs) {
  PROSE_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  PROSE_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double l2_norm(std::span<const double> xs) {
  // Scaled accumulation to avoid overflow on large magnitudes.
  double scale = 0.0;
  double ssq = 1.0;
  for (double x : xs) {
    if (x == 0.0) continue;
    const double ax = std::abs(x);
    if (scale < ax) {
      ssq = 1.0 + ssq * (scale / ax) * (scale / ax);
      scale = ax;
    } else {
      ssq += (ax / scale) * (ax / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

double rms(std::span<const double> xs) {
  PROSE_CHECK(!xs.empty());
  return l2_norm(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  PROSE_CHECK(!xs.empty());
  PROSE_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double rank = (p / 100.0) * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double relative_error(double baseline, double variant) {
  const double diff = std::abs(baseline - variant);
  if (diff == 0.0) return 0.0;
  if (baseline == 0.0) return std::numeric_limits<double>::infinity();
  return diff / std::abs(baseline);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PROSE_CHECK(bins > 0 && hi > lo);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

}  // namespace prose
